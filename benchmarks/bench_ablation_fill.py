"""Ablation 3 — the Fill pass (Algorithm 3) of ThresholdGreedy.

``Fill`` spends leftover budget after the thresholded selection.  This
ablation runs ThresholdGreedy with and without the Fill pass over a range of
thresholds and reports the revenue difference — quantifying how much of the
final revenue the budget-exhausting pass contributes (it can only help, by
monotonicity).
"""

from __future__ import annotations

from repro.advertising.oracle import RRSetOracle
from repro.core.threshold_greedy import threshold_greedy
from repro.core.search import gamma_max
from repro.experiments.report import format_table
from repro.rrsets.uniform import UniformRRSampler

from conftest import QUICK


def test_ablation_fill_contribution(lastfm_base, benchmark):
    instance = lastfm_base.instance_for("linear", 0.1)
    sampler = UniformRRSampler(
        instance.graph,
        instance.all_edge_probabilities(),
        instance.cpes(),
        seed=QUICK["seed"],
    )
    collection = sampler.generate_collection(1500)
    oracle = RRSetOracle(collection, instance.gamma)

    max_gamma = gamma_max(instance, oracle)
    thresholds = [0.0, 0.25 * max_gamma, 0.5 * max_gamma, 0.9 * max_gamma]

    rows = []

    def run_at(gamma, run_fill):
        allocation, _ = threshold_greedy(instance, oracle, gamma, run_fill=run_fill)
        return oracle.total_revenue(allocation)

    benchmark.pedantic(lambda: run_at(thresholds[1], True), rounds=1, iterations=1)

    for gamma in thresholds:
        without_fill = run_at(gamma, False)
        with_fill = run_at(gamma, True)
        rows.append(
            {
                "gamma_fraction_of_max": round(gamma / max(max_gamma, 1e-9), 2),
                "revenue_without_fill": without_fill,
                "revenue_with_fill": with_fill,
                "fill_gain_percent": 100.0 * (with_fill - without_fill) / max(without_fill, 1e-9),
            }
        )

    print()
    print(format_table(rows, title="Ablation 3 — contribution of the Fill pass"))

    # Fill never hurts, and it matters most at large thresholds where the
    # thresholded pass leaves most of the budget unspent.
    for row in rows:
        assert row["revenue_with_fill"] >= row["revenue_without_fill"] - 1e-6
    assert rows[-1]["fill_gain_percent"] >= rows[0]["fill_gain_percent"] - 5.0
