"""Ablation 1 — uniform advertiser sampling vs per-advertiser equal pools.

Section 4.2 argues that drawing every RR-set's advertiser with probability
proportional to cpe (one identically-distributed pool) gives sharper
estimates than keeping ``h`` equal-size per-advertiser pools.  This ablation
runs the one-batch solver on both collection types with the same total
number of RR-sets and compares the independently-evaluated revenue and the
estimation error of the solver's own revenue estimate.
"""

from __future__ import annotations

import numpy as np

from repro.advertising.oracle import RRSetOracle
from repro.core.oracle_solver import rm_with_oracle
from repro.experiments.metrics import evaluate_allocation
from repro.experiments.report import format_table
from repro.rrsets.uniform import PerAdvertiserRRSampler, UniformRRSampler

from conftest import QUICK


def _solve_with_collection(instance, collection, rho=0.1):
    oracle = RRSetOracle(collection, instance.gamma)
    relaxed = instance.budgets() * (1.0 + rho / 2.0)
    result = rm_with_oracle(instance, oracle, tau=0.1, budgets=relaxed)
    return result, oracle


def test_ablation_uniform_vs_per_advertiser_sampling(lastfm_base, benchmark):
    instance = lastfm_base.instance_for("linear", 0.1)
    total_rr_sets = 2000
    h = instance.num_advertisers

    def build_uniform():
        sampler = UniformRRSampler(
            instance.graph,
            instance.all_edge_probabilities(),
            instance.cpes(),
            seed=QUICK["seed"],
        )
        return sampler.generate_collection(total_rr_sets)

    uniform_collection = benchmark.pedantic(build_uniform, rounds=1, iterations=1)
    per_ad_sampler = PerAdvertiserRRSampler(
        instance.graph, instance.all_edge_probabilities(), seed=QUICK["seed"]
    )
    per_ad_collection = per_ad_sampler.generate_collection(total_rr_sets // h)

    rows = []
    errors = {}
    for name, collection in (
        ("uniform (paper)", uniform_collection),
        ("per-advertiser pools", per_ad_collection),
    ):
        result, oracle = _solve_with_collection(instance, collection)
        evaluation = evaluate_allocation(
            instance, result.allocation, num_rr_sets=QUICK["evaluation_rr_sets"], seed=123
        )
        error = abs(result.revenue - evaluation.revenue) / max(evaluation.revenue, 1e-9)
        errors[name] = error
        rows.append(
            {
                "sampling": name,
                "rr_sets": len(collection),
                "estimated_revenue": result.revenue,
                "independent_revenue": evaluation.revenue,
                "relative_estimation_error": error,
            }
        )

    print()
    print(format_table(rows, title="Ablation 1 — RR-set sampling strategy"))

    # Both strategies must produce usable solutions; the uniform strategy's
    # self-estimate should not be wildly worse than the per-advertiser one.
    assert all(row["independent_revenue"] > 0 for row in rows)
    assert errors["uniform (paper)"] <= errors["per-advertiser pools"] + 0.5
