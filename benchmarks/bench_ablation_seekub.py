"""Ablation 2 — SeekUB's tightened upper bound vs the naive ``π̃(S⃗*)/λ`` bound.

The progressive solver stops as soon as ``LB(S⃗*) / UB(O⃗) ≥ λ − ε``; a
tighter upper bound therefore lets it stop with fewer RR-sets.  This
ablation measures the tightness ratio ``SeekUB / naive`` across a few
instances and confirms SeekUB is never looser and typically much tighter.
"""

from __future__ import annotations

from repro.advertising.oracle import RRSetOracle
from repro.core.oracle_solver import approximation_ratio, rm_with_oracle
from repro.core.seek_ub import seek_upper_bound
from repro.experiments.report import format_table
from repro.rrsets.uniform import UniformRRSampler

from conftest import QUICK


def test_ablation_seekub_tightness(lastfm_base, flixster_base, benchmark):
    rows = []

    def measure(base, label, alpha):
        instance = base.instance_for("linear", alpha)
        sampler = UniformRRSampler(
            instance.graph,
            instance.all_edge_probabilities(),
            instance.cpes(),
            seed=QUICK["seed"],
        )
        collection = sampler.generate_collection(1500)
        oracle = RRSetOracle(collection, instance.gamma)
        lam = approximation_ratio(instance.num_advertisers, 0.1)
        result = rm_with_oracle(instance, oracle, tau=0.1)
        naive = result.revenue / lam
        tightened = seek_upper_bound(
            result.revenue,
            result.search,
            instance.num_advertisers,
            lam,
            revenue_of=oracle.total_revenue,
        )
        rows.append(
            {
                "instance": label,
                "alpha": alpha,
                "solution_revenue": result.revenue,
                "naive_upper_bound": naive,
                "seekub_upper_bound": tightened,
                "tightening_factor": naive / max(tightened, 1e-9),
            }
        )
        return tightened, naive, result.revenue

    benchmark.pedantic(lambda: measure(lastfm_base, "lastfm_like", 0.1), rounds=1, iterations=1)
    measure(lastfm_base, "lastfm_like", 0.3)
    measure(flixster_base, "flixster_like", 0.1)

    print()
    print(format_table(rows, title="Ablation 2 — SeekUB vs the naive upper bound"))

    for row in rows:
        # SeekUB is a correct upper bound of the solution's own revenue and is
        # never looser than the naive bound.
        assert row["seekub_upper_bound"] >= row["solution_revenue"] - 1e-6
        assert row["seekub_upper_bound"] <= row["naive_upper_bound"] + 1e-6
    # It is strictly tighter somewhere in the batch.
    assert any(row["tightening_factor"] > 1.05 for row in rows)
