"""Figure 10 / Table 6 — plugging SUBSIM into RR-set generation.

Paper shape being reproduced: with SUBSIM-accelerated RR-set generation the
revenues of all algorithms are essentially unchanged (the RR-set
distribution is identical) while generation examines fewer edges; RMA keeps
its ranking.
"""

from __future__ import annotations

from repro.core.sampling_solver import SamplingParameters, rm_without_oracle
from repro.experiments.figures import subsim_sweep
from repro.experiments.metrics import evaluate_allocation
from repro.experiments.report import format_table

from conftest import QUICK


def test_fig10_table6_subsim(lastfm_base, benchmark):
    alphas = (0.1, 0.5)

    def run_sweep():
        return subsim_sweep(
            "lastfm_like",
            alphas=alphas,
            algorithms=("RMA", "TI-CSRM"),
            num_advertisers=QUICK["num_advertisers"],
            evaluation_rr_sets=QUICK["evaluation_rr_sets"],
            seed=QUICK["seed"],
            base=lastfm_base,
        )

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    display = [
        {
            "alpha": row["alpha"],
            "algorithm": row["algorithm"],
            "revenue": row["revenue"],
            "seeding_cost": row["seeding_cost"],
            "time_s": row["running_time_seconds"],
        }
        for row in rows
    ]
    print()
    print(format_table(display, title="Figure 10 / Table 6 — alpha sweep using SUBSIM"))

    # Shape check 1: the ranking is preserved — RMA stays competitive.
    def mean_revenue(algorithm):
        values = [row["revenue"] for row in rows if row["algorithm"] == algorithm]
        return sum(values) / len(values)

    assert mean_revenue("RMA") >= mean_revenue("TI-CSRM") * 0.85

    # Shape check 2: SUBSIM does not change RMA's solution quality relative to
    # the standard generator on the same instance and seed.
    instance = lastfm_base.instance_for("linear", 0.1)
    params = dict(
        initial_rr_sets=QUICK["sampling_overrides"]["initial_rr_sets"],
        max_rr_sets=QUICK["sampling_overrides"]["max_rr_sets"],
        seed=QUICK["seed"],
    )
    from repro.runtime import ExecutionPolicy

    standard = rm_without_oracle(
        instance, SamplingParameters(policy=ExecutionPolicy.seed(), **params)
    )
    subsim = rm_without_oracle(
        instance,
        SamplingParameters(policy=ExecutionPolicy(rr_engine="subsim"), **params),
    )
    revenue_standard = evaluate_allocation(
        instance, standard.allocation, num_rr_sets=4000, seed=1
    ).revenue
    revenue_subsim = evaluate_allocation(
        instance, subsim.allocation, num_rr_sets=4000, seed=1
    ).revenue
    assert abs(revenue_subsim - revenue_standard) <= 0.3 * max(revenue_standard, 1e-9)
