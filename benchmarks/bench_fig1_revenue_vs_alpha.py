"""Figure 1 — total revenue as a function of α, per incentive model and dataset.

Prints the revenue series of RMA, TI-CSRM and TI-CARM for every
(dataset, incentive model, α) cell of the shared sweep, and benchmarks one
representative RMA solve.

Paper shape being reproduced: revenue decreases with α for every algorithm;
RMA is competitive with or better than both baselines, and TI-CARM collapses
under the super-linear incentive model.
"""

from __future__ import annotations

from repro.core.sampling_solver import SamplingParameters, rm_without_oracle
from repro.experiments.report import format_table

from conftest import QUICK


def test_fig1_revenue_vs_alpha(alpha_sweep_rows, lastfm_base, benchmark):
    rows = [
        {
            "dataset": row["dataset"],
            "incentive": row["incentive"],
            "alpha": row["alpha"],
            "algorithm": row["algorithm"],
            "revenue": row["revenue"],
        }
        for row in alpha_sweep_rows
    ]
    print()
    print(format_table(rows, title="Figure 1 — total revenue vs alpha"))

    # Shape check 1: for each algorithm/incentive/dataset, revenue at the
    # largest alpha does not exceed revenue at the smallest alpha by much
    # (costs only go up with alpha).
    by_key = {}
    for row in alpha_sweep_rows:
        key = (row["dataset"], row["incentive"], row["algorithm"])
        by_key.setdefault(key, {})[row["alpha"]] = row["revenue"]
    alphas = sorted(QUICK["alphas"])
    for key, series in by_key.items():
        assert series[alphas[-1]] <= series[alphas[0]] * 1.6, key

    # Shape check 2: RMA beats TI-CARM under the super-linear model on average.
    def mean_revenue(algorithm, incentive):
        values = [
            row["revenue"]
            for row in alpha_sweep_rows
            if row["algorithm"] == algorithm and row["incentive"] == incentive
        ]
        return sum(values) / len(values)

    assert mean_revenue("RMA", "superlinear") >= 0.95 * mean_revenue("TI-CARM", "superlinear")

    # Benchmark one representative RMA solve (lastfm-like, linear, alpha=0.1).
    instance = lastfm_base.instance_for("linear", 0.1)

    def solve():
        return rm_without_oracle(
            instance,
            SamplingParameters(
                initial_rr_sets=QUICK["sampling_overrides"]["initial_rr_sets"],
                max_rr_sets=QUICK["sampling_overrides"]["max_rr_sets"],
                seed=QUICK["seed"],
            ),
        )

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert result.revenue > 0
