"""Figure 2 — total seeding cost as a function of α.

Prints the seeding-cost series from the shared α sweep.  Paper shape being
reproduced: RMA's seeding cost stays at or below TI-CSRM's; TI-CARM spends
very little on seeds under the super-linear model because it can barely
afford any.
"""

from __future__ import annotations

from repro.experiments.report import format_table, summarise_comparison

from conftest import QUICK


def test_fig2_seeding_cost_vs_alpha(alpha_sweep_rows, benchmark):
    rows = [
        {
            "dataset": row["dataset"],
            "incentive": row["incentive"],
            "alpha": row["alpha"],
            "algorithm": row["algorithm"],
            "seeding_cost": row["seeding_cost"],
        }
        for row in alpha_sweep_rows
    ]
    print()
    print(format_table(rows, title="Figure 2 — total seeding cost vs alpha"))

    # Shape check: averaged over the sweep, RMA does not spend more on seed
    # incentives than TI-CSRM (the paper reports consistently lower cost).
    def average_cost(algorithm):
        values = [row["seeding_cost"] for row in alpha_sweep_rows if row["algorithm"] == algorithm]
        return sum(values) / len(values)

    assert average_cost("RMA") <= average_cost("TI-CSRM") * 1.5

    summary = summarise_comparison(
        [
            {"algorithm": row["algorithm"], "seeding_cost": row["seeding_cost"]}
            for row in alpha_sweep_rows
        ],
        "seeding_cost",
    )

    def summarise():
        return summarise_comparison(
            [
                {"algorithm": row["algorithm"], "seeding_cost": row["seeding_cost"]}
                for row in alpha_sweep_rows
            ],
            "seeding_cost",
        )

    benchmark.pedantic(summarise, rounds=1, iterations=1)
    assert set(summary) == set(QUICK["algorithms"])
