"""Figure 3 — total number of selected seeds as a function of α (linear model).

Paper shape being reproduced: seed counts shrink as α grows; RMA and TI-CSRM
select comparable numbers of seeds while TI-CARM selects far fewer.
"""

from __future__ import annotations

from repro.experiments.report import format_table

from conftest import QUICK


def test_fig3_seed_size_vs_alpha(alpha_sweep_rows, benchmark):
    linear_rows = [row for row in alpha_sweep_rows if row["incentive"] == "linear"]
    rows = [
        {
            "dataset": row["dataset"],
            "alpha": row["alpha"],
            "algorithm": row["algorithm"],
            "total_seeds": row["total_seeds"],
        }
        for row in linear_rows
    ]
    print()
    print(format_table(rows, title="Figure 3 — total seed size vs alpha (linear model)"))

    alphas = sorted(QUICK["alphas"])

    # Shape check 1: seed count at the largest alpha <= at the smallest alpha
    # for every dataset/algorithm series.
    by_key = {}
    for row in linear_rows:
        key = (row["dataset"], row["algorithm"])
        by_key.setdefault(key, {})[row["alpha"]] = row["total_seeds"]
    for key, series in by_key.items():
        assert series[alphas[-1]] <= series[alphas[0]] + 3, key

    # Shape check 2: TI-CARM selects fewer seeds than RMA on average.
    def mean_seeds(algorithm):
        values = [row["total_seeds"] for row in linear_rows if row["algorithm"] == algorithm]
        return sum(values) / len(values)

    assert mean_seeds("TI-CARM") <= mean_seeds("RMA")

    benchmark.pedantic(lambda: mean_seeds("RMA"), rounds=1, iterations=1)
