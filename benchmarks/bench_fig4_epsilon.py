"""Figure 4 — impact of ε on revenue and memory (RR-set footprint).

Paper shape being reproduced: RMA's revenue is essentially flat in ε (its
progressive stopping rule rarely needs the worst-case sample size), whereas
the baselines' memory requirement grows steeply (∝ 1/ε²) as ε shrinks.
"""

from __future__ import annotations

from repro.experiments.figures import epsilon_sweep
from repro.experiments.report import format_table

from conftest import QUICK


def test_fig4_epsilon_impact(lastfm_base, benchmark):
    epsilons = (0.05, 0.1, 0.2)

    def run_sweep():
        return epsilon_sweep(
            "lastfm_like",
            epsilons=epsilons,
            algorithms=QUICK["algorithms"],
            num_advertisers=QUICK["num_advertisers"],
            alpha=0.1,
            evaluation_rr_sets=QUICK["evaluation_rr_sets"],
            seed=QUICK["seed"],
            base=lastfm_base,
        )

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    display = [
        {
            "epsilon": row["epsilon"],
            "algorithm": row["algorithm"],
            "revenue": row["revenue"],
            "memory_proxy_bytes": row["memory_proxy_bytes"],
        }
        for row in rows
    ]
    print()
    print(format_table(display, title="Figure 4 — revenue and memory footprint vs epsilon"))

    # Shape check 1: RMA revenue varies little with epsilon.
    rma_revenues = [row["revenue"] for row in rows if row["algorithm"] == "RMA"]
    assert max(rma_revenues) <= 1.5 * max(min(rma_revenues), 1e-9)

    # Shape check 2: the baselines' (required) memory grows as epsilon shrinks.
    for algorithm in ("TI-CSRM", "TI-CARM"):
        by_eps = {
            row["epsilon"]: row["memory_proxy_bytes"]
            for row in rows
            if row["algorithm"] == algorithm
        }
        assert by_eps[min(epsilons)] > by_eps[max(epsilons)], algorithm

    # Shape check 3: at the smallest epsilon the baselines need more RR-set
    # memory than RMA actually used.
    smallest = min(epsilons)
    rma_memory = next(
        row["memory_proxy_bytes"]
        for row in rows
        if row["algorithm"] == "RMA" and row["epsilon"] == smallest
    )
    ti_memory = next(
        row["memory_proxy_bytes"]
        for row in rows
        if row["algorithm"] == "TI-CSRM" and row["epsilon"] == smallest
    )
    assert ti_memory > rma_memory
