"""Figure 5 — scalability in the number of advertisers and in the budgets.

Runs the h-sweep on the DBLP-like network and the budget sweep on the
LiveJournal-like network (both under the Weighted-Cascade model with uniform
budgets, as in the paper).  Shape being reproduced: running time and revenue
grow with h and with the budgets for every algorithm, and RMA's revenue keeps
pace with the baselines.
"""

from __future__ import annotations

from repro.experiments.figures import advertiser_count_sweep, budget_sweep
from repro.experiments.report import format_table

from conftest import QUICK


def test_fig5_advertiser_count_sweep(benchmark):
    counts = (1, 3, 6)

    def run_sweep():
        return advertiser_count_sweep(
            "dblp_like",
            advertiser_counts=counts,
            algorithms=("RMA", "TI-CSRM"),
            scale=QUICK["dblp_scale"],
            alpha=0.2,
            budget_fraction=0.2,
            evaluation_rr_sets=4000,
            seed=QUICK["seed"],
        )

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    display = [
        {
            "h": row["num_advertisers"],
            "algorithm": row["algorithm"],
            "revenue": row["revenue"],
            "time_s": row["running_time_seconds"],
        }
        for row in rows
    ]
    print()
    print(format_table(display, title="Figure 5(a)-(b) — DBLP-like, sweep over h"))

    # Shape check: revenue grows with h for each algorithm (more budgets in play).
    for algorithm in ("RMA", "TI-CSRM"):
        series = {
            row["num_advertisers"]: row["revenue"]
            for row in rows
            if row["algorithm"] == algorithm
        }
        assert series[max(counts)] >= series[min(counts)], algorithm


def test_fig5_budget_sweep(benchmark):
    fractions = (0.1, 0.2, 0.3)

    def run_sweep():
        return budget_sweep(
            "livejournal_like",
            budget_fractions=fractions,
            algorithms=("RMA", "TI-CSRM"),
            num_advertisers=4,
            scale=QUICK["livejournal_scale"],
            alpha=0.2,
            evaluation_rr_sets=4000,
            seed=QUICK["seed"],
        )

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    display = [
        {
            "budget_fraction": row["budget_fraction"],
            "algorithm": row["algorithm"],
            "revenue": row["revenue"],
            "time_s": row["running_time_seconds"],
        }
        for row in rows
    ]
    print()
    print(format_table(display, title="Figure 5(e)-(h) — LiveJournal-like, sweep over budgets"))

    for algorithm in ("RMA", "TI-CSRM"):
        series = {
            row["budget_fraction"]: row["revenue"]
            for row in rows
            if row["algorithm"] == algorithm
        }
        assert series[max(fractions)] >= series[min(fractions)] * 0.9, algorithm
