"""Figure 6 — budget usage and rate of return on the LiveJournal-like network.

Paper shape being reproduced: RMA uses a smaller fraction of the available
budgets than the baselines while achieving a clearly higher rate of return
(revenue per unit of money spent), i.e. it is more "profitable" for the host.
"""

from __future__ import annotations

from repro.experiments.figures import budget_sweep
from repro.experiments.report import format_table

from conftest import QUICK


def test_fig6_budget_usage_and_rate_of_return(benchmark):
    fractions = (0.15, 0.3)

    def run_sweep():
        return budget_sweep(
            "livejournal_like",
            budget_fractions=fractions,
            algorithms=("RMA", "TI-CSRM", "TI-CARM"),
            num_advertisers=4,
            scale=QUICK["livejournal_scale"],
            alpha=0.2,
            evaluation_rr_sets=4000,
            seed=QUICK["seed"],
        )

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    display = [
        {
            "budget_fraction": row["budget_fraction"],
            "algorithm": row["algorithm"],
            "budget_usage": row["budget_usage"],
            "rate_of_return": row["rate_of_return"],
        }
        for row in rows
    ]
    print()
    print(format_table(display, title="Figure 6 — budget usage and rate of return"))

    def mean(metric, algorithm):
        values = [row[metric] for row in rows if row["algorithm"] == algorithm]
        return sum(values) / len(values)

    # Rate of return: RMA at least matches TI-CSRM (the paper reports clearly higher).
    assert mean("rate_of_return", "RMA") >= mean("rate_of_return", "TI-CSRM") * 0.95
    # Budget usage stays within the bicriteria bound for RMA.
    for row in rows:
        if row["algorithm"] == "RMA":
            assert row["budget_usage"] <= 1.3
