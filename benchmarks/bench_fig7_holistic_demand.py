"""Figure 7 — the holistic-demand scenario (Section 5.2.4).

All advertisers have cpe = 1 and random shares of a controlled total demand
``M = Σ_i B_i / n``.  Paper shape being reproduced: revenue grows with the
total demand for every algorithm, and RMA achieves better revenue at lower
seeding cost than the baselines.
"""

from __future__ import annotations

from repro.experiments.figures import holistic_demand_sweep
from repro.experiments.report import format_table

from conftest import QUICK


def test_fig7_holistic_demand(benchmark):
    demands = (1.0, 1.5, 2.0)

    def run_sweep():
        return holistic_demand_sweep(
            "flixster_like",
            total_demands=demands,
            algorithms=("RMA", "TI-CSRM"),
            num_advertisers=QUICK["num_advertisers"],
            scale=QUICK["flixster_scale"],
            alpha=0.1,
            evaluation_rr_sets=QUICK["evaluation_rr_sets"],
            seed=QUICK["seed"],
        )

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    display = [
        {
            "total_demand": row["total_demand"],
            "algorithm": row["algorithm"],
            "revenue": row["revenue"],
            "seeding_cost": row["seeding_cost"],
        }
        for row in rows
    ]
    print()
    print(format_table(display, title="Figure 7 — revenue and seeding cost vs total demand"))

    # Shape check: revenue is non-decreasing in the total demand per algorithm.
    for algorithm in ("RMA", "TI-CSRM"):
        series = {
            row["total_demand"]: row["revenue"] for row in rows if row["algorithm"] == algorithm
        }
        assert series[max(demands)] >= series[min(demands)] * 0.9, algorithm

    # RMA stays competitive on revenue over the demand range.
    def mean_revenue(algorithm):
        values = [row["revenue"] for row in rows if row["algorithm"] == algorithm]
        return sum(values) / len(values)

    assert mean_revenue("RMA") >= mean_revenue("TI-CSRM") * 0.85
