"""Figure 8 / Table 5 — impact of the trade-off parameter τ on RMA.

Paper shape being reproduced: both the revenue and the running time of RMA
shrink slightly as τ grows (a coarser threshold search does less work but
finds marginally worse thresholds); the effect is small.
"""

from __future__ import annotations

from repro.experiments.figures import tau_sweep
from repro.experiments.report import format_table

from conftest import QUICK


def test_fig8_table5_tau_impact(lastfm_base, benchmark):
    taus = (0.05, 0.15, 0.45)

    def run_sweep():
        return tau_sweep(
            "lastfm_like",
            taus=taus,
            num_advertisers=QUICK["num_advertisers"],
            alpha=0.1,
            evaluation_rr_sets=QUICK["evaluation_rr_sets"],
            seed=QUICK["seed"],
            base=lastfm_base,
        )

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 8 / Table 5 — RMA revenue and running time vs tau"))

    revenues = {row["tau"]: row["revenue"] for row in rows}
    times = {row["tau"]: row["running_time_seconds"] for row in rows}

    # Shape check 1: revenue at the largest tau is within 25% of the smallest tau.
    assert revenues[max(taus)] >= 0.75 * revenues[min(taus)]
    # Shape check 2: a coarser search is not drastically slower than a fine one.
    assert times[max(taus)] <= times[min(taus)] * 2.0
