"""Figure 9 — impact of the budget-overshoot control ϱ on RMA.

Following the paper's comparison rule, the budgets fed to RMA are scaled by
``1/(1+ϱ)`` so that the allowed actual spend stays constant across ϱ.  Paper
shape being reproduced: revenue decreases as ϱ grows (RMA is given a smaller
nominal budget to protect against a larger overshoot), which is why small ϱ
values such as 0.1 are the sensible default.
"""

from __future__ import annotations

from repro.experiments.figures import rho_sweep
from repro.experiments.report import format_table

from conftest import QUICK


def test_fig9_rho_impact(lastfm_base, benchmark):
    rhos = (0.1, 0.8, 1.5)

    def run_sweep():
        return rho_sweep(
            "lastfm_like",
            rhos=rhos,
            num_advertisers=QUICK["num_advertisers"],
            alpha=0.1,
            evaluation_rr_sets=QUICK["evaluation_rr_sets"],
            seed=QUICK["seed"],
            base=lastfm_base,
        )

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 9 — RMA revenue vs rho (budgets scaled by 1/(1+rho))"))

    revenues = {row["rho"]: row["revenue"] for row in rows}
    # Shape check: the largest rho (smallest corrected budget) does not beat
    # the smallest rho by a meaningful margin.
    assert revenues[max(rhos)] <= revenues[min(rhos)] * 1.1
