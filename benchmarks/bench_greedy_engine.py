"""Perf-regression harness for the batched lazy-greedy coverage engine.

Times the greedy-allocation consumers — CS-Greedy, CA-Greedy and
ThresholdGreedy + Fill — with the batched coverage engine
(``ExecutionPolicy(greedy_engine="batched")``, the ``fast`` default:
vectorized CELF refreshes through the ``(h, n)`` coverage marginal matrix,
see :mod:`repro.core.batched_greedy`) against the seed scalar path
(``ExecutionPolicy.seed()``: per-element ``oracle.marginal_revenue``
callbacks), on a Weighted-Cascade synthetic graph with an RR-set oracle.

Run directly::

    PYTHONPATH=src python benchmarks/bench_greedy_engine.py          # full (20k nodes)
    PYTHONPATH=src python benchmarks/bench_greedy_engine.py --fast   # CI-sized

The full run writes ``BENCH_greedy_engine.json`` next to the repo root
(override with ``--output``) and fails if the aggregate ``greedy_coverage``
speedup drops below 3x; ``--fast`` applies a smaller CI gate.  The batched
engine replays the scalar heap's schedule bit for bit, so every section also
asserts the two paths returned *identical allocations*
(``tests/test_greedy_engine_equivalence.py`` pins this per consumer).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.advertising.advertiser import Advertiser
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RRSetOracle
from repro.baselines.ca_greedy import ca_greedy
from repro.baselines.cs_greedy import cs_greedy
from repro.core.threshold_greedy import threshold_greedy
from repro.diffusion.models import WeightedCascadeModel
from repro.graph.generators import preferential_attachment_digraph
from repro.rrsets.collection import RRCollection
from repro.rrsets.generator import SubsimRRGenerator
from repro.runtime import ExecutionPolicy
from repro.utils.resources import peak_rss_mib

#: flag=False → scalar heap (seed policy); flag=True → batched engine
ENGINE_POLICIES = {
    False: ExecutionPolicy.seed(),
    True: ExecutionPolicy(greedy_engine="batched"),
}

FULL = {"num_nodes": 20_000, "out_degree": 5, "rr_sets": 3000, "min_speedup": 3.0}
FAST = {"num_nodes": 2_000, "out_degree": 5, "rr_sets": 600, "min_speedup": 1.5}
NUM_ADVERTISERS = 5
GRAPH_SEED = 3
RR_SEED = 5
TAG_SEED = 1
COST_SEED = 7
#: per-advertiser demand fraction B_i = demand · n · cpe_i (Table 2 regime)
DEMAND = 0.15


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def build_workload(config: dict):
    """One RM instance + tagged RR collection shared by both engines."""
    n, out_degree = config["num_nodes"], config["out_degree"]
    graph = preferential_attachment_digraph(n, out_degree=out_degree, seed=GRAPH_SEED)
    model = WeightedCascadeModel(graph)
    advertisers = [
        Advertiser(budget=DEMAND * n * (1.0 + 0.25 * i), cpe=1.0 + 0.25 * i)
        for i in range(NUM_ADVERTISERS)
    ]
    costs = np.random.default_rng(COST_SEED).uniform(1.0, 8.0, size=(NUM_ADVERTISERS, n))
    instance = RMInstance(graph, model, advertisers, costs)
    probabilities = np.asarray(model.edge_probabilities(), dtype=np.float64)
    rr_sets = SubsimRRGenerator(graph, probabilities).generate_batch(
        config["rr_sets"], rng=RR_SEED
    )
    tags = np.random.default_rng(TAG_SEED).integers(
        0, NUM_ADVERTISERS, size=config["rr_sets"]
    )
    collection = RRCollection(n, NUM_ADVERTISERS)
    for rr_set, tag in zip(rr_sets, tags):
        collection.add(rr_set, int(tag))
    # Force the lazy CSR/index build so neither timed path pays for it.
    collection.membership_counts()
    return instance, collection


def run(config: dict) -> dict:
    instance, collection = build_workload(config)
    graph = instance.graph
    results: dict = {
        "graph": {"num_nodes": graph.num_nodes, "num_edges": graph.num_edges},
        "sections": {},
    }

    def fresh_oracle():
        # A fresh oracle per timed run: the scalar path warms per-query
        # caches that must not leak into the next measurement.
        return RRSetOracle(collection, instance.gamma)

    def section(name, solve):
        scalar_s, scalar_out = _timed(lambda: solve(fresh_oracle(), False))
        batched_s, batched_out = _timed(lambda: solve(fresh_oracle(), True))
        for advertiser in range(NUM_ADVERTISERS):
            assert scalar_out.seeds(advertiser) == batched_out.seeds(advertiser), (
                f"{name}: engines disagree for advertiser {advertiser}"
            )
        results["sections"][name] = {
            "scalar_s": round(scalar_s, 6),
            "batched_s": round(batched_s, 6),
            "speedup": round(scalar_s / batched_s, 2) if batched_s else None,
            "seeds_selected": sum(
                len(scalar_out.seeds(i)) for i in range(NUM_ADVERTISERS)
            ),
        }
        print(
            f"{name:<28} scalar {scalar_s:8.3f}s   batched {batched_s:8.3f}s   "
            f"{scalar_s / batched_s:6.2f}x"
        )

    section(
        "cs_greedy",
        lambda oracle, flag: cs_greedy(
            instance, oracle, policy=ENGINE_POLICIES[flag]
        ).allocation,
    )
    section(
        "ca_greedy",
        lambda oracle, flag: ca_greedy(
            instance, oracle, policy=ENGINE_POLICIES[flag]
        ).allocation,
    )
    # One mid-range threshold: exercises the gain-ranked main loop, the
    # single-depletion rescue path and the rate-ranked Fill pass.
    gamma = 0.5 * float(min(instance.cpe(i) for i in range(NUM_ADVERTISERS)))
    section(
        "threshold_fill",
        lambda oracle, flag: threshold_greedy(
            instance, oracle, gamma, policy=ENGINE_POLICIES[flag]
        )[0],
    )

    sections = results["sections"]
    scalar_total = sum(entry["scalar_s"] for entry in sections.values())
    batched_total = sum(entry["batched_s"] for entry in sections.values())
    results["greedy_coverage"] = {
        "sections": list(sections),
        "scalar_s": round(scalar_total, 6),
        "batched_s": round(batched_total, 6),
        "speedup": round(scalar_total / batched_total, 2),
    }
    print(
        f"{'greedy_coverage (total)':<28} scalar {scalar_total:8.3f}s   "
        f"batched {batched_total:8.3f}s   {scalar_total / batched_total:6.2f}x"
    )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="CI-sized run, no JSON output by default"
    )
    parser.add_argument("--output", type=Path, default=None, help="where to write the JSON report")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail if the greedy_coverage speedup is below this (default: per-mode)",
    )
    args = parser.parse_args()
    config = dict(FAST if args.fast else FULL)
    print(
        f"Greedy engine benchmark — {'fast' if args.fast else 'full'} mode: "
        f"{config['num_nodes']} nodes × out-degree {config['out_degree']}, "
        f"{config['rr_sets']} RR-sets, {NUM_ADVERTISERS} advertisers"
    )
    results = run(config)
    payload = {"config": config, "num_advertisers": NUM_ADVERTISERS, **results, "peak_rss_mib": peak_rss_mib()}
    output = args.output
    if output is None and not args.fast:
        output = Path(__file__).resolve().parent.parent / "BENCH_greedy_engine.json"
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {output}")
    gate = args.min_speedup if args.min_speedup is not None else config["min_speedup"]
    speedup = payload["greedy_coverage"]["speedup"]
    if speedup < gate:
        raise SystemExit(
            f"perf regression: greedy_coverage speedup {speedup}x < {gate}x"
        )


if __name__ == "__main__":
    main()
