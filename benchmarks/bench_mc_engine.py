"""Perf-regression harness for the batched Monte-Carlo cascade engine.

Times the two Monte-Carlo estimators the library exposes — ``monte_carlo_spread``
over a fixed seed set and per-node ``singleton_spreads_monte_carlo`` — for the
batched level-synchronous engine (:mod:`repro.diffusion.engine`) against the
sequential reference preserved in :mod:`repro.diffusion.legacy`, on a
Weighted-Cascade synthetic graph.

Run directly::

    PYTHONPATH=src python benchmarks/bench_mc_engine.py              # full (20k nodes)
    PYTHONPATH=src python benchmarks/bench_mc_engine.py --fast       # CI-sized

The full run writes ``BENCH_mc_engine.json`` next to the repo root (override
with ``--output``) and fails if the ``monte_carlo_spread`` speedup drops
below 5x; ``--fast`` applies a smaller CI gate.  The engines draw randomness
in different orders, so the harness also checks the two spread estimates
agree within a Monte-Carlo confidence band (the statistical-equivalence
tests in ``tests/test_mc_engine_equivalence.py`` pin this properly).
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path

import numpy as np

from repro.diffusion.engine import (
    monte_carlo_spread as batched_monte_carlo_spread,
    simulate_cascades_batch,
    singleton_spreads_monte_carlo as batched_singleton_spreads,
)
from repro.diffusion.legacy import (
    legacy_monte_carlo_spread,
    legacy_singleton_spreads_monte_carlo,
)
from repro.diffusion.models import WeightedCascadeModel
from repro.graph.generators import preferential_attachment_digraph
from repro.utils.resources import peak_rss_mib

FULL = {
    "num_nodes": 20_000,
    "out_degree": 5,
    "spread_simulations": 1000,
    "seed_set_size": 50,
    "singleton_nodes": 100,
    "singleton_simulations": 20,
    "min_speedup": 5.0,
}
FAST = {
    "num_nodes": 2_000,
    "out_degree": 5,
    "spread_simulations": 300,
    "seed_set_size": 20,
    "singleton_nodes": 50,
    "singleton_simulations": 10,
    "min_speedup": 2.0,
}
GRAPH_SEED = 3
SEED_SET_SEED = 0
MC_SEED = 5
SANITY_SEED = 17
SANITY_CASCADES = 400


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run(config: dict) -> dict:
    n, out_degree = config["num_nodes"], config["out_degree"]
    graph = preferential_attachment_digraph(n, out_degree=out_degree, seed=GRAPH_SEED)
    probabilities = np.asarray(
        WeightedCascadeModel(graph).edge_probabilities(), dtype=np.float64
    )
    seeds = (
        np.random.default_rng(SEED_SET_SEED)
        .choice(n, size=config["seed_set_size"], replace=False)
        .tolist()
    )
    results: dict = {
        "graph": {"num_nodes": graph.num_nodes, "num_edges": graph.num_edges},
        "sections": {},
    }

    def section(name, legacy_fn, batched_fn):
        legacy_s, legacy_out = _timed(legacy_fn)
        batched_s, batched_out = _timed(batched_fn)
        results["sections"][name] = {
            "legacy_s": round(legacy_s, 6),
            "batched_s": round(batched_s, 6),
            "speedup": round(legacy_s / batched_s, 2) if batched_s else None,
        }
        print(
            f"{name:<24} legacy {legacy_s:8.3f}s   batched {batched_s:8.3f}s   "
            f"{legacy_s / batched_s:6.2f}x"
        )
        return legacy_out, batched_out

    count = config["spread_simulations"]
    legacy_spread, batched_spread = section(
        "monte_carlo_spread",
        lambda: legacy_monte_carlo_spread(graph, probabilities, seeds, count, rng=MC_SEED),
        lambda: batched_monte_carlo_spread(graph, probabilities, seeds, count, rng=MC_SEED),
    )
    # Different draw orders: require agreement within a 6-sigma Monte-Carlo
    # band estimated from an independent batch of cascade sizes.
    sizes = (
        simulate_cascades_batch(graph, probabilities, seeds, SANITY_CASCADES, rng=SANITY_SEED)
        .sum(axis=1)
        .astype(np.float64)
    )
    tolerance = 6.0 * float(sizes.std()) * math.sqrt(2.0 / count)
    assert abs(legacy_spread - batched_spread) <= tolerance + 1e-9, (
        f"engines disagree on spread: legacy {legacy_spread:.2f} vs "
        f"batched {batched_spread:.2f} (tolerance {tolerance:.2f})"
    )
    results["spread_estimates"] = {
        "legacy": round(legacy_spread, 4),
        "batched": round(batched_spread, 4),
        "tolerance_6_sigma": round(tolerance, 4),
    }

    nodes = list(range(config["singleton_nodes"]))
    sims = config["singleton_simulations"]
    legacy_singletons, batched_singletons = section(
        "singleton_spreads",
        lambda: legacy_singleton_spreads_monte_carlo(
            graph, probabilities, num_simulations=sims, rng=MC_SEED, nodes=nodes
        ),
        lambda: batched_singleton_spreads(
            graph, probabilities, num_simulations=sims, rng=MC_SEED, nodes=nodes
        ),
    )
    # Loose per-harness sanity on the mean singleton spread; WC singleton
    # spreads are small, so an absolute band is the stable choice.
    assert abs(legacy_singletons.mean() - batched_singletons.mean()) <= max(
        1.0, 0.25 * legacy_singletons.mean()
    ), "engines disagree on mean singleton spread"

    sections = results["sections"]
    legacy_total = sum(entry["legacy_s"] for entry in sections.values())
    batched_total = sum(entry["batched_s"] for entry in sections.values())
    results["pipeline_mc_total"] = {
        "sections": list(sections),
        "legacy_s": round(legacy_total, 6),
        "batched_s": round(batched_total, 6),
        "speedup": round(legacy_total / batched_total, 2),
    }
    print(
        f"{'pipeline (spread+singleton)':<24} legacy {legacy_total:8.3f}s   "
        f"batched {batched_total:8.3f}s   {legacy_total / batched_total:6.2f}x"
    )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="CI-sized run, no JSON output by default")
    parser.add_argument("--output", type=Path, default=None, help="where to write the JSON report")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail if the monte_carlo_spread speedup is below this (default: per-mode)",
    )
    args = parser.parse_args()
    config = dict(FAST if args.fast else FULL)
    print(
        f"MC engine benchmark — {'fast' if args.fast else 'full'} mode: "
        f"{config['num_nodes']} nodes × out-degree {config['out_degree']}, "
        f"{config['spread_simulations']} cascades × {config['seed_set_size']} seeds, "
        f"{config['singleton_nodes']} singleton nodes × {config['singleton_simulations']} sims"
    )
    results = run(config)
    payload = {"config": config, **results, "peak_rss_mib": peak_rss_mib()}
    output = args.output
    if output is None and not args.fast:
        output = Path(__file__).resolve().parent.parent / "BENCH_mc_engine.json"
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {output}")
    gate = args.min_speedup if args.min_speedup is not None else config["min_speedup"]
    speedup = payload["sections"]["monte_carlo_spread"]["speedup"]
    if speedup < gate:
        raise SystemExit(
            f"perf regression: monte_carlo_spread speedup {speedup}x < {gate}x"
        )


if __name__ == "__main__":
    main()
