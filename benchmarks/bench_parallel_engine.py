"""Perf harness for the sharded parallel execution engine.

Times the two embarrassingly parallel stages — RR-set generation and batched
Monte-Carlo spread estimation — sharded across a multiprocess worker pool
(:mod:`repro.parallel`) against the **best serial fast paths** (the SUBSIM
generator and the batched level-synchronous cascade engine, i.e. the engines
PRs 1–2 shipped), on the same 20k-node / 130k-edge Weighted-Cascade graph as
the other harnesses.

Run directly::

    PYTHONPATH=src python benchmarks/bench_parallel_engine.py          # full, 4 workers
    PYTHONPATH=src python benchmarks/bench_parallel_engine.py --fast   # CI-sized, 2 workers

Scaling measurement
-------------------
Parallel wall-clock only beats serial when the host actually has as many
usable cores as workers, so every section reports two numbers:

* ``parallel_wall_s`` — measured wall-clock of the sharded run;
* ``parallel_critical_path_s`` — ``max(worker CPU seconds) + overhead``,
  where the per-shard CPU seconds are measured *inside* the workers with
  ``time.process_time`` (robust to time-slicing) and
  ``overhead = parallel_wall − Σ worker CPU`` captures the real pool spawn +
  pickle + merge cost.  This is what the wall-clock converges to when one
  core per worker is available.

The reported ``speedup`` uses wall-clock when the host has at least
``workers`` usable cores and the critical-path estimate otherwise; the
``speedup_basis`` field in the JSON says which was used and ``host_cpus``
records the machine.  The gate applies to the combined generation +
estimation sections.  ``REPRO_MAX_JOBS`` caps pool size without changing
shard layout, so the numbers are comparable across runners.

A merge-side section (``collection_merge``) additionally times
``RRCollection.from_shards`` against the per-set ``add`` loop — parent-side
work that the sharded pipeline vectorises regardless of core count.

A pool-lifecycle section (``runtime_pool_reuse``) times an RMA-style
doubling-round scenario — two RR collections grown over several rounds —
with per-call pools (one ``multiprocessing.Pool`` spawn per
``generate_collection``) against a persistent
:class:`repro.runtime.Runtime` pool (one spawn for the whole scenario),
asserting the two paths produce bit-identical collections.  This measures
how much of the sharded pipeline's overhead is pure pool spawn + payload
shipping, i.e. what the ``Runtime`` layer amortises.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import time
from pathlib import Path

import numpy as np

from repro.diffusion.engine import (
    monte_carlo_spread as engine_monte_carlo_spread,
    simulate_cascades_batch,
    singleton_spreads_monte_carlo as engine_singleton_spreads,
)
from repro.diffusion.models import WeightedCascadeModel
from repro.graph.generators import preferential_attachment_digraph
from repro.parallel import ShardedExecutor
from repro.parallel.mc import run_singleton_shards, run_spread_shards
from repro.parallel.rr import run_generation_shards, split_flat
from repro.rrsets.collection import RRCollection
from repro.rrsets.generator import SubsimRRGenerator
from repro.rrsets.uniform import UniformRRSampler
from repro.runtime import ExecutionPolicy, Runtime
from repro.utils.resources import peak_rss_mib

FULL = {
    "num_nodes": 20_000,
    "out_degree": 5,
    "workers": 4,
    "rr_sets": 30_000,
    "spread_simulations": 6000,
    "seed_set_size": 50,
    "singleton_nodes": 1000,
    "singleton_simulations": 40,
    "doubling_rounds": 4,
    "doubling_theta0": 400,
    "repeats": 3,
    "min_speedup": 2.5,
}
FAST = {
    "num_nodes": 2_000,
    "out_degree": 5,
    "workers": 2,
    "rr_sets": 12_000,
    "spread_simulations": 6000,
    "seed_set_size": 20,
    "singleton_nodes": 2_000,
    "singleton_simulations": 50,
    "doubling_rounds": 3,
    "doubling_theta0": 200,
    "repeats": 2,
    "min_speedup": 1.3,
}
NUM_ADVERTISERS = 5
GRAPH_SEED = 3
RR_SEED = 5
TAG_SEED = 1
SEED_SET_SEED = 0
MC_SEED = 5
SANITY_SEED = 17
SANITY_CASCADES = 400
GATE_SECTIONS = ("rr_generation", "mc_spread", "singleton_spreads")


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _timed_best(fn, repeats):
    """Best-of-``repeats`` wall-clock (the sharded runs are deterministic, so
    repeats only de-noise the timing, not the result)."""
    best_s, result = _timed(fn)
    for _ in range(repeats - 1):
        elapsed, result = _timed(fn)
        best_s = min(best_s, elapsed)
    return best_s, result


def _best_parallel(fn, repeats):
    """Run the sharded section ``repeats`` times; keep the least-noisy run
    (smallest critical path).  Returns ``(wall_s, shard_results)``."""
    best = None
    for _ in range(repeats):
        wall_s, shards = _timed(fn)
        cpu = [s.cpu_seconds for s in shards]
        critical = max(cpu) + max(0.0, wall_s - sum(cpu))
        if best is None or critical < best[0]:
            best = (critical, wall_s, shards)
    return best[1], best[2]


def _effective(serial_s, parallel_wall_s, worker_cpu_s, host_cpus, workers):
    """Section scaling record: wall, critical-path model, chosen speedup."""
    total_cpu = float(sum(worker_cpu_s))
    overhead = max(0.0, parallel_wall_s - total_cpu)
    critical_path = max(worker_cpu_s) + overhead if worker_cpu_s else parallel_wall_s
    if host_cpus >= workers:
        basis, effective_s = "wall-clock", parallel_wall_s
    else:
        basis, effective_s = "critical-path model", critical_path
    return {
        "serial_s": round(serial_s, 6),
        "parallel_wall_s": round(parallel_wall_s, 6),
        "parallel_critical_path_s": round(critical_path, 6),
        "worker_cpu_s": [round(s, 6) for s in worker_cpu_s],
        "overhead_s": round(overhead, 6),
        "speedup_basis": basis,
        "effective_parallel_s": round(effective_s, 6),
        "speedup": round(serial_s / effective_s, 2) if effective_s else None,
        "wall_speedup": round(serial_s / parallel_wall_s, 2) if parallel_wall_s else None,
    }


def run(config: dict) -> dict:
    n, out_degree = config["num_nodes"], config["out_degree"]
    workers = config["workers"]
    host_cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    graph = preferential_attachment_digraph(n, out_degree=out_degree, seed=GRAPH_SEED)
    probabilities = np.asarray(
        WeightedCascadeModel(graph).edge_probabilities(), dtype=np.float64
    )
    executor = ShardedExecutor(workers)
    results: dict = {
        "graph": {"num_nodes": graph.num_nodes, "num_edges": graph.num_edges},
        "host_cpus": host_cpus,
        "workers": workers,
        "sections": {},
    }

    def report(name, record):
        results["sections"][name] = record
        print(
            f"{name:<20} serial {record['serial_s']:8.3f}s   "
            f"parallel(wall) {record['parallel_wall_s']:8.3f}s   "
            f"critical-path {record['parallel_critical_path_s']:8.3f}s   "
            f"{record['speedup']:6.2f}x ({record['speedup_basis']})"
        )

    # ------------------------------------------------------------------ #
    # RR-set generation: SUBSIM serial vs sharded
    # ------------------------------------------------------------------ #
    count = config["rr_sets"]
    repeats = config["repeats"]
    serial_s, serial_sets = _timed_best(
        lambda: SubsimRRGenerator(graph, probabilities).generate_batch(count, RR_SEED),
        repeats,
    )
    wall_s, shards = _best_parallel(
        lambda: run_generation_shards(
            SubsimRRGenerator, graph, probabilities, count, RR_SEED, executor
        ),
        repeats,
    )
    assert sum(shard.sizes.size for shard in shards) == count == len(serial_sets)
    report(
        "rr_generation",
        _effective(serial_s, wall_s, [s.cpu_seconds for s in shards], host_cpus, workers),
    )

    # ------------------------------------------------------------------ #
    # parent-side merge: from_shards vs per-set add loop
    # ------------------------------------------------------------------ #
    tags = np.random.default_rng(TAG_SEED).integers(0, NUM_ADVERTISERS, size=count)
    triples = []
    position = 0
    for shard in shards:
        size = shard.sizes.size
        triples.append((shard.members, shard.sizes, tags[position: position + size]))
        position += size
    parallel_sets = [s for shard in shards for s in split_flat(shard.members, shard.sizes)]

    def build_by_add():
        collection = RRCollection(n, NUM_ADVERTISERS)
        for rr_set, tag in zip(parallel_sets, tags.tolist()):
            collection.add(rr_set, tag)
        collection.membership_counts()  # force the CSR + index build
        return collection

    def build_from_shards():
        collection = RRCollection.from_shards(n, NUM_ADVERTISERS, triples)
        collection.membership_counts()
        return collection

    add_s, by_add = _timed_best(build_by_add, repeats)
    merge_s, by_shards = _timed_best(build_from_shards, repeats)
    assert np.array_equal(by_add.member_array, by_shards.member_array)
    assert np.array_equal(by_add.tag_array, by_shards.tag_array)
    results["sections"]["collection_merge"] = {
        "serial_s": round(add_s, 6),
        "parallel_wall_s": round(merge_s, 6),
        "parallel_critical_path_s": round(merge_s, 6),
        "worker_cpu_s": [],
        "overhead_s": 0.0,
        "speedup_basis": "wall-clock (parent-side merge)",
        "effective_parallel_s": round(merge_s, 6),
        "speedup": round(add_s / merge_s, 2) if merge_s else None,
        "wall_speedup": round(add_s / merge_s, 2) if merge_s else None,
    }
    print(
        f"{'collection_merge':<20} add-loop {add_s:6.3f}s   from_shards {merge_s:8.3f}s   "
        f"{add_s / merge_s:6.2f}x (parent-side merge)"
    )

    # ------------------------------------------------------------------ #
    # Monte-Carlo spread: batched engine serial vs sharded
    # ------------------------------------------------------------------ #
    # Drop the generation artifacts before forking the MC pools: a fat dirty
    # parent heap makes every child pay copy-on-write faults inside its
    # timed section, polluting the worker CPU numbers.
    import gc

    del serial_sets, shards, triples, parallel_sets, by_add, by_shards
    gc.collect()
    sims = config["spread_simulations"]
    seeds = (
        np.random.default_rng(SEED_SET_SEED)
        .choice(n, size=config["seed_set_size"], replace=False)
        .astype(np.int64)
    )
    serial_s, serial_spread = _timed_best(
        lambda: engine_monte_carlo_spread(graph, probabilities, seeds, sims, rng=MC_SEED),
        repeats,
    )
    wall_s, spread_shards = _best_parallel(
        lambda: run_spread_shards(graph, probabilities, seeds, sims, MC_SEED, executor),
        repeats,
    )
    parallel_spread = sum(s.activation_total for s in spread_shards) / sims
    sizes = (
        simulate_cascades_batch(graph, probabilities, seeds, SANITY_CASCADES, rng=SANITY_SEED)
        .sum(axis=1)
        .astype(np.float64)
    )
    tolerance = 6.0 * float(sizes.std()) * math.sqrt(2.0 / sims)
    assert abs(serial_spread - parallel_spread) <= tolerance + 1e-9, (
        f"engines disagree on spread: serial {serial_spread:.2f} vs "
        f"parallel {parallel_spread:.2f} (tolerance {tolerance:.2f})"
    )
    results["spread_estimates"] = {
        "serial": round(serial_spread, 4),
        "parallel": round(parallel_spread, 4),
        "tolerance_6_sigma": round(tolerance, 4),
    }
    report(
        "mc_spread",
        _effective(
            serial_s, wall_s, [s.cpu_seconds for s in spread_shards], host_cpus, workers
        ),
    )

    # ------------------------------------------------------------------ #
    # singleton spreads: batched engine serial vs sharded node chunks
    # ------------------------------------------------------------------ #
    nodes = np.arange(config["singleton_nodes"], dtype=np.int64)
    single_sims = config["singleton_simulations"]
    serial_s, serial_singletons = _timed_best(
        lambda: engine_singleton_spreads(
            graph, probabilities, num_simulations=single_sims, rng=MC_SEED, nodes=nodes
        ),
        repeats,
    )
    wall_s, singleton_shards = _best_parallel(
        lambda: run_singleton_shards(
            graph, probabilities, nodes, single_sims, MC_SEED, executor
        ),
        repeats,
    )
    singleton_totals = np.zeros(nodes.size, dtype=np.int64)
    for stripe_index, shard in enumerate(singleton_shards):
        singleton_totals[stripe_index:: len(singleton_shards)] = shard.totals
    parallel_singletons = singleton_totals.astype(np.float64) / single_sims
    assert parallel_singletons.size == serial_singletons.size
    assert abs(parallel_singletons.mean() - serial_singletons.mean()) <= max(
        1.0, 0.25 * serial_singletons.mean()
    ), "engines disagree on mean singleton spread"
    report(
        "singleton_spreads",
        _effective(
            serial_s, wall_s, [s.cpu_seconds for s in singleton_shards], host_cpus, workers
        ),
    )

    # ------------------------------------------------------------------ #
    # pool lifecycle: per-call pools vs one persistent Runtime pool
    # ------------------------------------------------------------------ #
    rounds = config["doubling_rounds"]
    theta0 = config["doubling_theta0"]
    calls = 2 * rounds  # two collections (R1, R2) grown every round, RMA-style

    def doubling_scenario(runtime):
        sampler = UniformRRSampler(
            graph,
            [probabilities] * NUM_ADVERTISERS,
            [1.0] * NUM_ADVERTISERS,
            generator_cls=SubsimRRGenerator,
            seed=RR_SEED,
            n_jobs=workers,
            runtime=runtime,
        )
        one = sampler.generate_collection(theta0)
        two = sampler.generate_collection(theta0)
        for _ in range(rounds - 1):
            sampler.generate_collection(len(one), into=one)
            sampler.generate_collection(len(two), into=two)
        return one, two

    def run_with_runtime():
        # Pool spawn + payload broadcast included in the timed section: the
        # amortization claim has to pay its own setup.
        with Runtime(ExecutionPolicy.seed(n_jobs=workers)) as rt:
            one, two = doubling_scenario(rt)
            return one, two, rt.pool_spawn_count, rt.recovery_stats.events

    per_call_s, (e_one, e_two) = _timed_best(lambda: doubling_scenario(None), repeats)
    runtime_s, (p_one, p_two, spawns, recovery_events) = _timed_best(
        run_with_runtime, repeats
    )
    assert np.array_equal(e_one.member_array, p_one.member_array)
    assert np.array_equal(e_two.member_array, p_two.member_array)
    assert np.array_equal(e_one.tag_array, p_one.tag_array)
    # The supervision loop must be invisible on a healthy host: no crashes,
    # no timeouts, no retries — and therefore no recovery-driven respawns.
    assert recovery_events == 0, f"unexpected recovery events: {recovery_events}"
    results["sections"]["runtime_pool_reuse"] = {
        "scenario": (
            f"RMA doubling rounds: 2 collections x {rounds} rounds, "
            f"theta0={theta0} ({(2 ** rounds - 1) * 2 * theta0} RR-sets total), "
            f"SUBSIM, {workers} workers"
        ),
        "per_call_pools_s": round(per_call_s, 6),
        "runtime_pool_s": round(runtime_s, 6),
        "pool_spawns_per_call_path": calls,
        "pool_spawns_runtime_path": spawns,
        "spawn_overhead_saved_s": round(per_call_s - runtime_s, 6),
        "spawn_overhead_saved_ms_per_call": round(
            1000.0 * (per_call_s - runtime_s) / calls, 3
        ),
        "speedup": round(per_call_s / runtime_s, 2) if runtime_s else None,
        "bit_identical": True,
        "recovery_events": recovery_events,
    }
    print(
        f"{'runtime_pool_reuse':<20} per-call pools {per_call_s:6.3f}s "
        f"({calls} spawns)   Runtime {runtime_s:8.3f}s ({spawns} spawn)   "
        f"{per_call_s / runtime_s:6.2f}x, "
        f"{1000.0 * (per_call_s - runtime_s) / calls:.0f} ms/call amortised"
    )

    # ------------------------------------------------------------------ #
    # combined generation + estimation gate
    # ------------------------------------------------------------------ #
    serial_total = sum(results["sections"][s]["serial_s"] for s in GATE_SECTIONS)
    effective_total = sum(
        results["sections"][s]["effective_parallel_s"] for s in GATE_SECTIONS
    )
    wall_total = sum(results["sections"][s]["parallel_wall_s"] for s in GATE_SECTIONS)
    results["pipeline_generation_plus_estimation"] = {
        "sections": list(GATE_SECTIONS),
        "serial_s": round(serial_total, 6),
        "parallel_wall_s": round(wall_total, 6),
        "effective_parallel_s": round(effective_total, 6),
        "speedup": round(serial_total / effective_total, 2),
        "wall_speedup": round(serial_total / wall_total, 2),
    }
    print(
        f"{'pipeline (gen+est)':<20} serial {serial_total:8.3f}s   "
        f"effective {effective_total:8.3f}s   {serial_total / effective_total:6.2f}x "
        f"at {workers} workers"
    )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="CI-sized run (2 workers), no JSON by default"
    )
    parser.add_argument("--output", type=Path, default=None, help="where to write the JSON report")
    parser.add_argument(
        "--workers", type=int, default=None, help="override the worker count"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per section (best-of)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail if the combined generation+estimation speedup is below this",
    )
    args = parser.parse_args()
    config = dict(FAST if args.fast else FULL)
    if args.workers is not None:
        config["workers"] = args.workers
    if args.repeats is not None:
        config["repeats"] = max(1, args.repeats)
    print(
        f"Parallel engine benchmark — {'fast' if args.fast else 'full'} mode: "
        f"{config['num_nodes']} nodes × out-degree {config['out_degree']}, "
        f"{config['workers']} workers, {config['rr_sets']} RR-sets, "
        f"{config['spread_simulations']} cascades × {config['seed_set_size']} seeds, "
        f"{config['singleton_nodes']} singleton nodes × "
        f"{config['singleton_simulations']} sims"
    )
    results = run(config)
    payload = {"config": config, "num_advertisers": NUM_ADVERTISERS, **results, "peak_rss_mib": peak_rss_mib()}
    output = args.output
    if output is None and not args.fast:
        output = Path(__file__).resolve().parent.parent / "BENCH_parallel_engine.json"
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {output}")
    gate = args.min_speedup if args.min_speedup is not None else config["min_speedup"]
    speedup = payload["pipeline_generation_plus_estimation"]["speedup"]
    if speedup < gate:
        raise SystemExit(
            f"perf regression: generation+estimation speedup {speedup}x < {gate}x "
            f"at {config['workers']} workers"
        )


if __name__ == "__main__":
    main()
