"""Perf-regression harness for the vectorized CSR RR-set engine.

Times the three stages the RMA solver's wall-clock is made of — RR-set
generation, tagged-collection build, and greedy maximum coverage — for the
vectorized engine against the reference (seed) implementation preserved in
:mod:`repro.rrsets.legacy`, on a Weighted-Cascade synthetic graph.

Run directly::

    PYTHONPATH=src python benchmarks/bench_rr_engine.py              # full (~100k edges)
    PYTHONPATH=src python benchmarks/bench_rr_engine.py --fast       # CI-sized

The full run writes ``BENCH_rr_engine.json`` next to the repo root (override
with ``--output``); the JSON records the machine-independent configuration
and the before/after timings so successive PRs can track the perf
trajectory.  Both engines are driven from the same seed, so the timed work
is identical by construction (the equivalence tests in
``tests/test_rr_engine_equivalence.py`` pin this bit-for-bit).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.diffusion.models import WeightedCascadeModel
from repro.graph.generators import preferential_attachment_digraph
from repro.rrsets.collection import CoverageState, RRCollection
from repro.rrsets.generator import RRSetGenerator, SubsimRRGenerator
from repro.rrsets.legacy import (
    LegacyCoverageState,
    LegacyRRCollection,
    LegacyRRSetGenerator,
    LegacySubsimRRGenerator,
)
from repro.utils.resources import peak_rss_mib

FULL = {"num_nodes": 20_000, "out_degree": 5, "rr_sets": 3000, "greedy_seeds": 50}
FAST = {"num_nodes": 2_000, "out_degree": 5, "rr_sets": 600, "greedy_seeds": 20}
NUM_ADVERTISERS = 5
GRAPH_SEED = 3
RR_SEED = 5
TAG_SEED = 1


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _build_collection(cls, rr_sets, tags, num_nodes):
    collection = cls(num_nodes, NUM_ADVERTISERS)
    for rr_set, tag in zip(rr_sets, tags):
        collection.add(rr_set, int(tag))
    return collection


def _greedy_legacy(collection, steps):
    state = LegacyCoverageState(collection)
    for _ in range(steps):
        (advertiser, node), best = max(state._marginal.items(), key=lambda kv: kv[1])
        if best <= 0:
            break
        state.add_seed(advertiser, node)
    return state.covered_count


def _greedy_vectorized(collection, steps, num_nodes):
    state = CoverageState(collection)
    for _ in range(steps):
        matrix = state.marginal_matrix()
        flat = int(np.argmax(matrix))
        if matrix.ravel()[flat] <= 0:
            break
        state.add_seed(flat // num_nodes, flat % num_nodes)
    return state.covered_count


def run(config: dict) -> dict:
    n, out_degree = config["num_nodes"], config["out_degree"]
    count, steps = config["rr_sets"], config["greedy_seeds"]
    graph = preferential_attachment_digraph(n, out_degree=out_degree, seed=GRAPH_SEED)
    probabilities = np.asarray(
        WeightedCascadeModel(graph).edge_probabilities(), dtype=np.float64
    )
    tags = np.random.default_rng(TAG_SEED).integers(0, NUM_ADVERTISERS, size=count)
    results: dict = {
        "graph": {"num_nodes": graph.num_nodes, "num_edges": graph.num_edges},
        "sections": {},
    }

    def section(name, legacy_fn, vectorized_fn):
        legacy_s, legacy_out = _timed(legacy_fn)
        vectorized_s, vectorized_out = _timed(vectorized_fn)
        results["sections"][name] = {
            "legacy_s": round(legacy_s, 6),
            "vectorized_s": round(vectorized_s, 6),
            "speedup": round(legacy_s / vectorized_s, 2) if vectorized_s else None,
        }
        print(
            f"{name:<28} legacy {legacy_s:8.3f}s   vectorized {vectorized_s:8.3f}s   "
            f"{legacy_s / vectorized_s:6.2f}x"
        )
        return legacy_out, vectorized_out

    section(
        "generation/standard",
        lambda: LegacyRRSetGenerator(graph, probabilities).generate_many(count, rng=RR_SEED),
        lambda: RRSetGenerator(graph, probabilities).generate_batch(count, rng=RR_SEED),
    )
    legacy_rr, vectorized_rr = section(
        "generation/subsim",
        lambda: LegacySubsimRRGenerator(graph, probabilities).generate_many(count, rng=RR_SEED),
        lambda: SubsimRRGenerator(graph, probabilities).generate_batch(count, rng=RR_SEED),
    )
    legacy_coll, vectorized_coll = section(
        "collection_build",
        lambda: _build_collection(LegacyRRCollection, legacy_rr, tags, graph.num_nodes),
        lambda: _build_collection(RRCollection, vectorized_rr, tags, graph.num_nodes),
    )
    covered = section(
        "greedy_coverage",
        lambda: _greedy_legacy(legacy_coll, steps),
        lambda: _greedy_vectorized(vectorized_coll, steps, graph.num_nodes),
    )
    # The two argmax drivers break marginal ties differently (dict insertion
    # order vs lowest flat index), so greedy paths may diverge slightly; a
    # material coverage gap still means an engine bug.
    assert abs(covered[0] - covered[1]) <= 0.02 * max(covered), (
        f"engines disagree on greedy coverage: {covered}"
    )

    sections = results["sections"]
    pipeline = ("generation/subsim", "collection_build", "greedy_coverage")
    legacy_total = sum(sections[key]["legacy_s"] for key in pipeline)
    vectorized_total = sum(sections[key]["vectorized_s"] for key in pipeline)
    results["pipeline_generation_plus_greedy"] = {
        "sections": list(pipeline),
        "legacy_s": round(legacy_total, 6),
        "vectorized_s": round(vectorized_total, 6),
        "speedup": round(legacy_total / vectorized_total, 2),
    }
    print(
        f"{'pipeline (gen+build+greedy)':<28} legacy {legacy_total:8.3f}s   "
        f"vectorized {vectorized_total:8.3f}s   {legacy_total / vectorized_total:6.2f}x"
    )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="CI-sized run, no JSON output by default")
    parser.add_argument("--output", type=Path, default=None, help="where to write the JSON report")
    args = parser.parse_args()
    config = dict(FAST if args.fast else FULL)
    print(
        f"RR engine benchmark — {'fast' if args.fast else 'full'} mode: "
        f"{config['num_nodes']} nodes × out-degree {config['out_degree']}, "
        f"{config['rr_sets']} RR-sets, {config['greedy_seeds']} greedy seeds"
    )
    results = run(config)
    payload = {"config": config, "num_advertisers": NUM_ADVERTISERS, **results, "peak_rss_mib": peak_rss_mib()}
    output = args.output
    if output is None and not args.fast:
        output = Path(__file__).resolve().parent.parent / "BENCH_rr_engine.json"
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {output}")
    speedup = payload["pipeline_generation_plus_greedy"]["speedup"]
    if not args.fast and speedup < 5.0:
        raise SystemExit(f"perf regression: pipeline speedup {speedup}x < 5x")


if __name__ == "__main__":
    main()
