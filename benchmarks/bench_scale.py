"""Million-node scalability harness: streamed build, RR + greedy, shm gate.

Charts nodes-vs-wall-time *and* peak RSS for the stages that dominate a
solver run — streamed graph construction (``snap_scale_digraph``), RR-set
generation, and greedy maximum coverage — at 10k / 100k / 1M nodes, then
gates the zero-copy payload path: broadcasting the (graph, probabilities)
payload to spawn-mode workers over shared memory must be **≥5× faster**
than the pickle transport on the largest graph in the run.

Run directly::

    PYTHONPATH=src python benchmarks/bench_scale.py          # 10k/100k/1M, writes JSON
    PYTHONPATH=src python benchmarks/bench_scale.py --fast   # CI-sized: 10k/100k

The full run writes ``BENCH_scale.json`` at the repo root (override with
``--output``).  Spawn mode is forced for the broadcast gate because it is
the start method where the pickle transport pays full freight (fork gets
the parent's pages copy-on-write for free); the shm numbers are the same
under both.  The run also asserts no ``/dev/shm`` segment outlives the
pool — the same invariant ``tests/test_shm_payloads.py`` regression-tests.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.diffusion.models import WeightedCascadeModel
from repro.graph import storage
from repro.graph.generators import snap_scale_digraph
from repro.parallel.executor import PersistentPool
from repro.rrsets.collection import CoverageState, RRCollection
from repro.rrsets.generator import SubsimRRGenerator
from repro.utils.resources import peak_rss_mib

FULL = {
    "sizes": [10_000, 100_000, 1_000_000],
    "rr_sets": 2000,
    "greedy_seeds": 10,
    "broadcast_workers": 2,
    "broadcast_repeats": 2,
    "min_broadcast_speedup": 5.0,
}
FAST = {
    "sizes": [10_000, 100_000],
    "rr_sets": 800,
    "greedy_seeds": 5,
    "broadcast_workers": 2,
    "broadcast_repeats": 2,
    "min_broadcast_speedup": 5.0,
}
NUM_ADVERTISERS = 5
GRAPH_SEED = 7
RR_SEED = 5
TAG_SEED = 1


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _greedy(collection: RRCollection, steps: int, num_nodes: int) -> float:
    state = CoverageState(collection)
    for _ in range(steps):
        matrix = state.marginal_matrix()
        flat = int(np.argmax(matrix))
        if matrix.ravel()[flat] <= 0:
            break
        state.add_seed(flat // num_nodes, flat % num_nodes)
    return float(state.covered_count)


def _payload_mib(graph, probabilities) -> float:
    total = int(probabilities.nbytes) + sum(
        int(a.nbytes) for a in storage.graph_arrays(graph).values()
    )
    return round(total / (1024.0 * 1024.0), 1)


def _time_broadcast(
    payload, payload_mode: str, workers: int, repeats: int
) -> float:
    """Best-of-``repeats`` wall time of a full payload broadcast.

    The pool is spawned and warmed with a tiny broadcast first, so the
    timed section is transport cost only — pack/pickle + ship + worker-side
    rebuild — not process startup.  ``forget_payloads()`` between repeats
    drops worker copies *and* the packed segment, so every repeat pays the
    full first-broadcast cost (the honest number for the gate).
    """
    pool = PersistentPool(start_method="spawn", payload_mode=payload_mode)
    try:
        pool.broadcast(np.zeros(8), processes=workers)  # spawn + warm
        pool.forget_payloads()
        best = None
        for _ in range(repeats):
            elapsed, _ = _timed(lambda: pool.broadcast(payload, processes=workers))
            pool.forget_payloads()
            best = elapsed if best is None else min(best, elapsed)
        return best
    finally:
        pool.close()


def run(config: dict) -> dict:
    host_cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    results: dict = {"host_cpus": host_cpus, "sizes": []}
    largest = None
    for num_nodes in config["sizes"]:
        build_s, graph = _timed(lambda: snap_scale_digraph(num_nodes, seed=GRAPH_SEED))
        probabilities = np.asarray(
            WeightedCascadeModel(graph).edge_probabilities(), dtype=np.float64
        )
        generator = SubsimRRGenerator(graph, probabilities)
        rr_s, rr_sets = _timed(
            lambda: generator.generate_batch(config["rr_sets"], rng=RR_SEED)
        )
        tags = np.random.default_rng(TAG_SEED).integers(
            0, NUM_ADVERTISERS, size=len(rr_sets)
        )
        collection = RRCollection(num_nodes, NUM_ADVERTISERS)
        for rr_set, tag in zip(rr_sets, tags.tolist()):
            collection.add(rr_set, tag)
        greedy_s, covered = _timed(
            lambda: _greedy(collection, config["greedy_seeds"], num_nodes)
        )
        record = {
            "num_nodes": num_nodes,
            "num_edges": graph.num_edges,
            "payload_mib": _payload_mib(graph, probabilities),
            "build_s": round(build_s, 3),
            "rr_generation_s": round(rr_s, 3),
            "greedy_s": round(greedy_s, 3),
            "greedy_covered": covered,
            # ru_maxrss is a high-water mark: with ascending sizes this is
            # the peak for everything up to and including this graph.
            "peak_rss_mib": peak_rss_mib(),
        }
        results["sizes"].append(record)
        print(
            f"n={num_nodes:>9,}  m={graph.num_edges:>11,}  "
            f"build {build_s:7.2f}s  rr {rr_s:6.2f}s  greedy {greedy_s:6.2f}s  "
            f"peakRSS {record['peak_rss_mib']:8.1f} MiB"
        )
        largest = (graph, probabilities)
        del rr_sets, collection

    # -------------------------------------------------------------- #
    # spawn-mode broadcast gate on the largest graph: shm vs pickle
    # -------------------------------------------------------------- #
    graph, probabilities = largest
    payload = (graph, probabilities)
    workers = config["broadcast_workers"]
    repeats = config["broadcast_repeats"]
    pickle_s = _time_broadcast(payload, "pickle", workers, repeats)
    shm_s = _time_broadcast(payload, "shm", workers, repeats)
    leaked = storage.active_segments()
    assert not leaked, f"leaked shared-memory segments after pool close: {leaked}"
    speedup = round(pickle_s / shm_s, 2) if shm_s else None
    results["broadcast_gate"] = {
        "start_method": "spawn",
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "payload_mib": _payload_mib(graph, probabilities),
        "workers": workers,
        "pickle_broadcast_s": round(pickle_s, 4),
        "shm_broadcast_s": round(shm_s, 4),
        "speedup": speedup,
        "min_speedup": config["min_broadcast_speedup"],
    }
    results["peak_rss_mib"] = peak_rss_mib()
    print(
        f"broadcast ({graph.num_nodes:,} nodes, "
        f"{results['broadcast_gate']['payload_mib']} MiB, spawn, {workers} workers): "
        f"pickle {pickle_s:7.3f}s   shm {shm_s:7.3f}s   {speedup:6.2f}x"
    )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="CI-sized run (10k/100k), no JSON by default"
    )
    parser.add_argument("--output", type=Path, default=None, help="where to write the JSON report")
    args = parser.parse_args()
    config = dict(FAST if args.fast else FULL)
    sizes = ", ".join(f"{s:,}" for s in config["sizes"])
    print(
        f"Scale benchmark — {'fast' if args.fast else 'full'} mode: "
        f"sizes [{sizes}], {config['rr_sets']} RR-sets, "
        f"{config['greedy_seeds']} greedy seeds, spawn-mode broadcast gate"
    )
    results = run(config)
    payload = {"config": config, "num_advertisers": NUM_ADVERTISERS, **results}
    output = args.output
    if output is None and not args.fast:
        output = Path(__file__).resolve().parent.parent / "BENCH_scale.json"
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {output}")
    gate = config["min_broadcast_speedup"]
    speedup = payload["broadcast_gate"]["speedup"]
    if speedup is None or speedup < gate:
        raise SystemExit(
            f"perf regression: spawn-mode shm broadcast speedup {speedup}x < {gate}x"
        )


if __name__ == "__main__":
    main()
