"""Table 1 — dataset statistics of the four synthetic stand-ins.

Prints the structural summary of each synthetic network (the analogue of the
paper's Table 1) and benchmarks the cost of building the largest one.
"""

from __future__ import annotations

from repro.datasets.registry import DATASET_BUILDERS
from repro.experiments.figures import table1_datasets
from repro.experiments.report import format_table

from conftest import QUICK


def test_table1_dataset_statistics(benchmark):
    rows = table1_datasets(scale=QUICK["lastfm_scale"], seed=QUICK["seed"])
    print()
    print(format_table(rows, title="Table 1 — synthetic dataset statistics"))

    # Sanity: the size ordering of the paper's datasets is preserved.
    sizes = {row["dataset"]: row["nodes"] for row in rows}
    assert sizes["lastfm_like"] < sizes["flixster_like"] < sizes["livejournal_like"]

    def build_largest():
        return DATASET_BUILDERS["livejournal_like"](
            scale=QUICK["livejournal_scale"], seed=QUICK["seed"]
        )

    network = benchmark.pedantic(build_largest, rounds=1, iterations=1)
    assert network.num_nodes > 0
