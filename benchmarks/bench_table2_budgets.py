"""Table 2 — advertiser budgets and CPE values on the Lastfm/Flixster stand-ins.

Prints the sampled budget and cpe summary (the analogue of the paper's
Table 2, rescaled to the synthetic graph sizes) and benchmarks advertiser
sampling plus seed pricing.
"""

from __future__ import annotations

from repro.datasets.registry import build_dataset
from repro.experiments.figures import table2_budgets
from repro.experiments.report import format_table

from conftest import QUICK


def test_table2_budget_and_cpe_summary(benchmark):
    rows = table2_budgets(
        datasets=("lastfm_like", "flixster_like"),
        num_advertisers=QUICK["num_advertisers"],
        scale=QUICK["lastfm_scale"],
        seed=QUICK["seed"],
    )
    print()
    print(format_table(rows, title="Table 2 — advertiser budgets and CPEs"))

    for row in rows:
        assert row["budget_min"] > 0
        assert 1.0 <= row["cpe_min"] <= row["cpe_max"] <= 2.0
    # Flixster-like budgets are larger than Lastfm-like ones, as in the paper,
    # because the underlying network is bigger.
    by_name = {row["dataset"]: row for row in rows}
    assert by_name["flixster_like"]["budget_mean"] > by_name["lastfm_like"]["budget_mean"]

    def build_priced_dataset():
        return build_dataset(
            "lastfm_like",
            num_advertisers=QUICK["num_advertisers"],
            scale=QUICK["lastfm_scale"],
            seed=QUICK["seed"],
            singleton_rr_sets=300,
        )

    data = benchmark.pedantic(build_priced_dataset, rounds=1, iterations=1)
    assert (data.instance.cost_matrix() > 0).all()
