"""Table 3 — running time of each algorithm under the linear cost model.

Prints the running-time rows from the shared α sweep.  The paper's shape on
its full-size datasets is that RMA is consistently faster than both
baselines (their sampling requirements explode); at this reproduction's
miniature scale the pure-Python RMA pays a large constant factor per greedy
pass, so the printed table is accompanied by the *required* RR-set counts,
which preserve the asymmetry the paper reports (see also Figure 4).
"""

from __future__ import annotations

from repro.experiments.report import format_table, summarise_comparison

from conftest import QUICK


def test_table3_running_time(alpha_sweep_rows, benchmark):
    linear_rows = [row for row in alpha_sweep_rows if row["incentive"] == "linear"]
    rows = [
        {
            "dataset": row["dataset"],
            "alpha": row["alpha"],
            "algorithm": row["algorithm"],
            "running_time_seconds": row["running_time_seconds"],
            "memory_proxy_bytes": row["memory_proxy_bytes"],
        }
        for row in linear_rows
    ]
    print()
    print(format_table(rows, title="Table 3 — running time (seconds), linear cost model"))

    summary = summarise_comparison(
        [
            {"algorithm": row["algorithm"], "t": row["running_time_seconds"]}
            for row in linear_rows
        ],
        "t",
    )
    print("Mean running time per algorithm:", {k: round(v, 3) for k, v in summary.items()})

    # Every algorithm completed every cell of the sweep.
    assert all(row["running_time_seconds"] > 0 for row in linear_rows)
    assert set(summary) == set(QUICK["algorithms"])

    benchmark.pedantic(lambda: summarise_comparison(
        [{"algorithm": row["algorithm"], "t": row["running_time_seconds"]} for row in linear_rows],
        "t",
    ), rounds=1, iterations=1)
