"""Shared configuration for the benchmark suite.

Figures 1-3 and Table 3 of the paper are different views of one experiment
(the α sweep under the three seed incentive models), so the sweep runs once
as a session-scoped fixture and the individual bench modules print the
columns of "their" figure from the shared rows.

The benchmark sizes are deliberately small (scaled-down synthetic networks,
capped RR-set pools) so the whole suite runs on a laptop; the *shape* of the
results — which algorithm wins, how metrics move with each parameter — is
what mirrors the paper, not the absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures

@pytest.fixture(autouse=True)
def passthrough_print(capsys, monkeypatch):
    """Route ``print`` around pytest's capture for the benchmark modules.

    The benches print the paper-style tables; without this they would only be
    visible for failing tests.  Scoped to ``benchmarks/`` via this conftest.
    """
    import builtins

    real_print = builtins.print

    def direct_print(*args, **kwargs):
        with capsys.disabled():
            real_print(*args, **kwargs)

    monkeypatch.setattr(builtins, "print", direct_print)


#: Benchmark-wide size knobs.  Raise these for a longer, closer-to-paper run.
QUICK = {
    "alphas": (0.1, 0.3, 0.5),
    "incentives": ("linear", "quasilinear", "superlinear"),
    "algorithms": ("RMA", "TI-CSRM", "TI-CARM"),
    "num_advertisers": 5,
    "lastfm_scale": 0.25,
    "flixster_scale": 0.15,
    "dblp_scale": 0.15,
    "livejournal_scale": 0.12,
    "evaluation_rr_sets": 4000,
    "seed": 7,
    "sampling_overrides": {"initial_rr_sets": 256, "max_rr_sets": 2048},
    "ti_overrides": {"pilot_size": 128, "max_rr_sets_per_advertiser": 1024, "epsilon": 0.1},
}


@pytest.fixture(scope="session")
def lastfm_base():
    """Lastfm-like network prepared once for the whole benchmark session."""
    return figures.prepare_base(
        "lastfm_like",
        num_advertisers=QUICK["num_advertisers"],
        scale=QUICK["lastfm_scale"],
        seed=QUICK["seed"],
        singleton_rr_sets=500,
    )


@pytest.fixture(scope="session")
def flixster_base():
    """Flixster-like network prepared once for the whole benchmark session."""
    return figures.prepare_base(
        "flixster_like",
        num_advertisers=QUICK["num_advertisers"],
        scale=QUICK["flixster_scale"],
        seed=QUICK["seed"],
        singleton_rr_sets=500,
    )


def _run_alpha_sweep(dataset: str, base) -> list[dict]:
    return figures.alpha_sweep(
        dataset,
        alphas=QUICK["alphas"],
        incentives=QUICK["incentives"],
        algorithms=QUICK["algorithms"],
        num_advertisers=QUICK["num_advertisers"],
        evaluation_rr_sets=QUICK["evaluation_rr_sets"],
        seed=QUICK["seed"],
        sampling_overrides=dict(QUICK["sampling_overrides"]),
        ti_overrides=dict(QUICK["ti_overrides"]),
        base=base,
    )


@pytest.fixture(scope="session")
def alpha_sweep_rows(lastfm_base, flixster_base):
    """The Figures 1-3 / Table 3 sweep on both small datasets, computed once."""
    rows = []
    rows.extend(_run_alpha_sweep("lastfm_like", lastfm_base))
    rows.extend(_run_alpha_sweep("flixster_like", flixster_base))
    return rows
