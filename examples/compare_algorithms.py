"""Compare RMA against the TI-CARM / TI-CSRM baselines (the Figure 1 workload).

Reproduces a single cell of the paper's main comparison: the Flixster-like
network under the linear seed-incentive model at one value of α, reporting
revenue, seeding cost, seed count and running time per algorithm.

No execution knobs are set: every solver runs on the default
``ExecutionPolicy.fast()`` — SUBSIM RR-set generation, batched Monte-Carlo
cascades, vectorized batched seed selection, all cores.  Pass
``policy=ExecutionPolicy.seed()`` to the parameter objects for the serial
bit-reproducible escape hatch.

Run with:  PYTHONPATH=src python examples/compare_algorithms.py
"""

from __future__ import annotations

from repro import SamplingParameters, TIParameters, build_dataset
from repro.experiments.metrics import independent_evaluator
from repro.experiments.report import format_table
from repro.experiments.runner import compare_algorithms


def main() -> None:
    print("Preparing a Flixster-like instance (h = 8, linear incentives, alpha = 0.1) ...")
    data = build_dataset(
        "flixster_like",
        num_advertisers=8,
        incentive="linear",
        alpha=0.1,
        scale=0.4,
        seed=11,
        singleton_rr_sets=600,
    )
    instance = data.instance
    # The paper gives the baselines (1 + rho) x budget because RMA is bicriteria.
    rho = 0.1
    baseline_instance = instance.with_scaled_budgets(1.0 + rho)

    evaluator = independent_evaluator(instance, num_rr_sets=15000, seed=23)

    sampling_params = SamplingParameters(
        epsilon=0.1,
        rho=rho,
        tau=0.1,
        initial_rr_sets=1024,
        max_rr_sets=8192,
        seed=11,
    )
    ti_params = TIParameters(
        epsilon=0.1,
        pilot_size=256,
        max_rr_sets_per_advertiser=2048,
        seed=11,
    )

    rows = []
    print("Running RMA ...")
    rma_runs = compare_algorithms(
        ["RMA"], instance, evaluator=evaluator, sampling_params=sampling_params
    )
    print("Running TI-CSRM and TI-CARM ...")
    ti_runs = compare_algorithms(
        ["TI-CSRM", "TI-CARM"], baseline_instance, evaluator=evaluator, ti_params=ti_params
    )
    for run in rma_runs + ti_runs:
        rows.append(
            {
                "algorithm": run.algorithm,
                "revenue": run.evaluation.revenue,
                "seeding_cost": run.evaluation.seeding_cost,
                "seeds": run.evaluation.total_seeds,
                "rate_of_return": run.evaluation.rate_of_return,
                "time_s": run.running_time_seconds,
            }
        )

    print()
    print(format_table(rows, title="Flixster-like, linear incentive model, alpha = 0.1"))
    best = max(rows, key=lambda row: row["revenue"])
    print(f"Best revenue: {best['algorithm']} ({best['revenue']:.1f})")


if __name__ == "__main__":
    main()
