"""How seed pricing (incentive models) changes the optimal campaign.

Sweeps the incentive scale α under the linear, quasi-linear and super-linear
seed pricing models of Section 5.1 and shows how revenue, seeding cost and
seed-set size respond — the workload behind Figures 1-3 of the paper.

Run with:  python examples/incentive_models.py
"""

from __future__ import annotations

from repro.experiments.figures import alpha_sweep, prepare_base
from repro.experiments.report import format_table


def main() -> None:
    print("Preparing a Lastfm-like base network (shared across the sweep) ...")
    base = prepare_base("lastfm_like", num_advertisers=6, scale=0.35, seed=19,
                        singleton_rr_sets=500)

    print("Sweeping alpha for each incentive model with RMA ...\n")
    rows = alpha_sweep(
        "lastfm_like",
        alphas=(0.1, 0.3, 0.5),
        incentives=("linear", "quasilinear", "superlinear"),
        algorithms=("RMA",),
        base=base,
        evaluation_rr_sets=6000,
        seed=19,
        sampling_overrides={"initial_rr_sets": 512, "max_rr_sets": 2048},
    )
    display = [
        {
            "incentive": row["incentive"],
            "alpha": row["alpha"],
            "revenue": row["revenue"],
            "seeding_cost": row["seeding_cost"],
            "seeds": row["total_seeds"],
        }
        for row in rows
    ]
    print(format_table(display, title="RMA under the three seed incentive models"))

    print("Takeaways (mirroring the paper):")
    print("  * revenue decreases as alpha grows (seeds get more expensive),")
    print("  * super-linear pricing shrinks the affordable seed pool the most,")
    print("  * seeding cost falls with alpha because fewer seeds are bought.")


if __name__ == "__main__":
    main()
