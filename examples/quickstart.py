"""Quickstart: solve one revenue-maximization instance end to end.

Builds a small synthetic Lastfm-like network, prepares advertisers with
heterogeneous budgets and cpe values under the linear seed-incentive model,
runs the paper's RMA solver, and evaluates the resulting allocation with an
independent RR-set estimator.

No execution knobs are needed: every entry point defaults to
``ExecutionPolicy.fast()`` — SUBSIM RR-set generation (``rr_engine="subsim"``),
the batched Monte-Carlo cascade engine (``mc_engine="batched"``), vectorized
CELF seed selection (``greedy_engine="batched"``) and sharding across all
cores (``n_jobs=-1``).  The later sections show the two knobs that remain:

* ``ExecutionPolicy.seed()`` — the serial escape hatch that replays the
  original seed tree's RNG streams bit for bit;
* ``Runtime`` — a context whose persistent worker pool is reused across all
  of RMA's doubling rounds instead of respawning per call.

Run with:  PYTHONPATH=src python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExecutionPolicy, Runtime, SamplingParameters, build_dataset, rm_without_oracle
from repro.advertising.oracle import MonteCarloOracle
from repro.experiments.metrics import evaluate_allocation
from repro.experiments.runner import run_algorithm
from repro.runtime import resolve_policy


def main() -> None:
    print("Building a Lastfm-like dataset (synthetic stand-in) ...")
    data = build_dataset(
        "lastfm_like",
        num_advertisers=5,
        incentive="linear",
        alpha=0.1,
        scale=0.4,
        seed=42,
        singleton_rr_sets=500,
    )
    instance = data.instance
    print(f"  graph: {instance.num_nodes} nodes, {instance.graph.num_edges} edges")
    print(f"  advertisers: {instance.num_advertisers}, Γ = {instance.gamma:.1f}")
    for index, advertiser in enumerate(instance.advertisers):
        print(f"    ad-{index}: budget={advertiser.budget:8.1f}  cpe={advertiser.cpe:.1f}")

    print("\nRunning RMA (RM_without_Oracle) on the default fast policy ...")
    print(f"  effective policy: {resolve_policy(None).describe()}")
    params = SamplingParameters(
        epsilon=0.1,
        delta=0.01,
        tau=0.1,
        rho=0.1,
        initial_rr_sets=1024,
        max_rr_sets=8192,
        seed=42,
    )
    result = rm_without_oracle(instance, params)
    print(f"  RR-sets used:        {result.metadata['rr_sets']}")
    print(f"  empirical ratio β:   {result.metadata['beta']:.3f}")
    print(f"  theoretical λ:       {result.metadata['lambda']:.3f}")
    print(f"  seeds selected:      {result.allocation.total_seed_count()}")

    print("\nEvaluating with an independent estimator ...")
    evaluation = evaluate_allocation(instance, result.allocation, num_rr_sets=20000, seed=7)
    print(f"  total revenue:       {evaluation.revenue:10.1f}")
    print(f"  total seeding cost:  {evaluation.seeding_cost:10.1f}")
    print(f"  budget usage:        {evaluation.budget_usage:10.1%}")
    print(f"  host rate of return: {evaluation.rate_of_return:10.1%}")

    print("\nPer-advertiser breakdown:")
    for advertiser, seeds in result.allocation.items():
        revenue = evaluation.per_advertiser_revenue[advertiser]
        cost = evaluation.per_advertiser_cost[advertiser]
        budget = instance.budget(advertiser)
        print(
            f"  ad-{advertiser}: |S|={len(seeds):3d}  revenue={revenue:8.1f}  "
            f"seed cost={cost:7.1f}  budget={budget:8.1f}  "
            f"spend={(revenue + cost) / budget:6.1%}"
        )

    print("\nCross-checking ad-0 with a Monte-Carlo oracle (batched engine by default) ...")
    mc_oracle = MonteCarloOracle(instance, num_simulations=200, seed=13)
    seeds_zero = result.allocation.seeds(0)
    mc_revenue = mc_oracle.revenue(0, seeds_zero) if seeds_zero else 0.0
    rr_revenue = evaluation.per_advertiser_revenue[0]
    print(f"  RR-set estimate:      {rr_revenue:10.1f}")
    print(f"  Monte-Carlo estimate: {mc_revenue:10.1f}")

    print("\nEscape hatch: policy=ExecutionPolicy.seed() replays the seed RNG streams ...")
    from dataclasses import replace

    seeded = rm_without_oracle(instance, replace(params, policy=ExecutionPolicy.seed()))
    print(f"  seed-policy revenue estimate: {seeded.revenue:10.1f}")
    print("  (bit-identical across runs and machines; serial, so slower)")

    print("\nPool reuse: run_algorithm inside a Runtime ...")
    print("  the persistent worker pool is reused across all doubling rounds")
    with Runtime(ExecutionPolicy.fast(n_jobs=2)) as rt:
        fast_run = run_algorithm(
            "RMA",
            instance,
            sampling_params=replace(params, policy=rt.policy),
            runtime=rt,
            evaluation_rr_sets=5000,
            seed=7,
        )
        print(f"  revenue:             {fast_run.evaluation.revenue:10.1f}")
        print(f"  wall-clock:          {fast_run.running_time_seconds:10.2f}s")
        print(f"  pool spawns:         {rt.pool_spawn_count} (per-call pools would pay one per round)")
    print("  (equivalent CLI: python -m repro.cli solve --policy fast --jobs 2)")
    print("  (serial reproducible CLI: python -m repro.cli solve --policy seed)")


if __name__ == "__main__":
    main()
