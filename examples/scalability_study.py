"""Scalability study: running time and revenue as the number of advertisers grows.

A miniature version of the paper's Figure 5 on the DBLP-like network under
the Weighted-Cascade model with uniform budgets: sweep the number of
advertisers and report running time and revenue of RMA vs TI-CSRM.

Run with:  python examples/scalability_study.py
"""

from __future__ import annotations

from repro.experiments.figures import advertiser_count_sweep
from repro.experiments.report import format_table, summarise_comparison


def main() -> None:
    print("Sweeping the number of advertisers on a DBLP-like network ...")
    rows = advertiser_count_sweep(
        "dblp_like",
        advertiser_counts=(1, 3, 6),
        algorithms=("RMA", "TI-CSRM"),
        scale=0.2,
        alpha=0.2,
        budget_fraction=0.2,
        evaluation_rr_sets=5000,
        seed=3,
    )
    display = [
        {
            "h": row["num_advertisers"],
            "algorithm": row["algorithm"],
            "revenue": row["revenue"],
            "seeds": row["total_seeds"],
            "time_s": row["running_time_seconds"],
        }
        for row in rows
    ]
    print(format_table(display, title="Figure 5 style sweep (dblp_like)"))

    mean_time = summarise_comparison(
        [{"algorithm": row["algorithm"], "value": row["running_time_seconds"]} for row in rows],
        "value",
    )
    print("Mean running time per algorithm:")
    for algorithm, value in sorted(mean_time.items()):
        print(f"  {algorithm:10s} {value:.2f} s")


if __name__ == "__main__":
    main()
