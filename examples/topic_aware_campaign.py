"""Topic-aware campaign planning with learned propagation probabilities.

This example exercises the full TIC pipeline the paper builds on:

1. generate a social network and a *hidden* ground-truth topic-aware model,
2. simulate an action log (users adopting items over time),
3. learn topic-aware edge probabilities from the log (the Barbieri et al.
   step the paper delegates to prior work),
4. define advertisers with different topic mixes (e.g. a sports brand vs a
   music label) and run RMA on the learned model,
5. show how the seed sets differ across topic profiles.

Run with:  python examples/topic_aware_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro import Advertiser, RMInstance, SamplingParameters, rm_without_oracle
from repro.diffusion.action_logs import generate_action_log
from repro.diffusion.learning import learn_topic_edge_probabilities, positive_probability_fraction
from repro.diffusion.models import TopicAwareICModel
from repro.diffusion.topics import skewed_topics
from repro.graph.generators import preferential_attachment_digraph
from repro.incentives.models import LinearIncentiveModel
from repro.incentives.singleton import estimate_singleton_spreads


def main() -> None:
    rng_seed = 29
    num_topics = 3

    print("1. Generating a follower network ...")
    graph = preferential_attachment_digraph(400, out_degree=5, reciprocity=0.4, seed=rng_seed)
    print(f"   {graph.num_nodes} nodes, {graph.num_edges} edges")

    print("2. Simulating an action log under a hidden ground-truth TIC model ...")
    rng = np.random.default_rng(rng_seed)
    ground_truth = rng.uniform(0.0, 0.4, size=(num_topics, graph.num_edges))
    log = generate_action_log(graph, ground_truth, num_items=150, seeds_per_item=4, seed=rng_seed)
    print(f"   {len(log)} adoption events over {log.num_items} items")

    print("3. Learning topic-aware edge probabilities from the log ...")
    learned = learn_topic_edge_probabilities(graph, log, num_topics=num_topics)
    print(f"   positive-probability fraction: {positive_probability_fraction(learned):.1%}")
    model = TopicAwareICModel(graph, learned)

    print("4. Defining topic-skewed advertisers and pricing seeds ...")
    advertisers = [
        Advertiser(budget=120.0, cpe=1.0, topic_mix=skewed_topics(num_topics, 0), name="sports"),
        Advertiser(budget=150.0, cpe=1.5, topic_mix=skewed_topics(num_topics, 1), name="music"),
        Advertiser(budget=100.0, cpe=2.0, topic_mix=skewed_topics(num_topics, 2), name="travel"),
    ]
    spreads = estimate_singleton_spreads(
        graph, model.edge_probabilities(None), num_rr_sets=800, rng=rng_seed
    )
    costs = LinearIncentiveModel(alpha=0.2).costs(spreads)
    instance = RMInstance(graph, model, advertisers, costs)

    print("5. Running RMA ...")
    result = rm_without_oracle(
        instance,
        SamplingParameters(initial_rr_sets=1024, max_rr_sets=4096, rho=0.1, seed=rng_seed),
    )
    print(f"   estimated revenue: {result.revenue:.1f}")
    for index, advertiser in enumerate(advertisers):
        seeds = sorted(result.allocation.seeds(index))
        print(
            f"   {advertiser.name:7s} (budget {advertiser.budget:6.1f}): "
            f"{len(seeds):3d} seeds, e.g. {seeds[:8]}"
        )

    overlap = set()
    for index in range(len(advertisers)):
        for other in range(index + 1, len(advertisers)):
            overlap |= result.allocation.seeds(index) & result.allocation.seeds(other)
    print(f"   seed overlap across ads (must be empty): {sorted(overlap)}")


if __name__ == "__main__":
    main()
