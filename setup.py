"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can be installed in environments whose tooling predates PEP 660
editable installs (``python setup.py develop``) or lacks the ``wheel``
package.
"""

from setuptools import setup

setup()
