"""repro — Revenue Maximization in Social Advertising (SIGMOD 2021).

A from-scratch Python reproduction of "Efficient and Effective Algorithms for
Revenue Maximization in Social Advertising" (Han, Wu, Tang, Cui, Aslay,
Lakshmanan).  The package contains:

* ``repro.graph``       — CSR directed graphs, generators, IO, statistics
* ``repro.diffusion``   — IC / TIC / Weighted-Cascade models, simulation,
  action logs and probability learning
* ``repro.rrsets``      — reverse-reachable set generation and estimators
* ``repro.incentives``  — seed pricing models (linear / quasilinear / superlinear)
* ``repro.advertising`` — advertisers, allocations, RM instances, oracles
* ``repro.core``        — the paper's algorithms (Greedy, ThresholdGreedy,
  Search, RM_with_Oracle, SeekUB, RMA)
* ``repro.parallel``    — sharded multiprocess execution (the ``n_jobs`` knob)
* ``repro.runtime``     — :class:`ExecutionPolicy` (one object for every
  engine knob) and :class:`Runtime` (a persistent worker pool context)
* ``repro.baselines``   — CA/CS-Greedy and TI-CARM/TI-CSRM of Aslay et al.
* ``repro.datasets``    — synthetic stand-ins for Lastfm/Flixster/DBLP/LiveJournal
* ``repro.experiments`` — the harness regenerating every table and figure

Quickstart
----------
>>> from repro import build_dataset, rm_without_oracle, SamplingParameters
>>> data = build_dataset("lastfm_like", num_advertisers=3, scale=0.2, seed=1)
>>> result = rm_without_oracle(
...     data.instance,
...     SamplingParameters(initial_rr_sets=256, max_rr_sets=1024, seed=1),
... )
>>> result.allocation.total_seed_count() >= 0
True
"""

from repro.advertising import Advertiser, Allocation, RMInstance
from repro.advertising.oracle import (
    ExactOracle,
    MonteCarloOracle,
    RevenueOracle,
    RRSetOracle,
)
from repro.core import (
    SamplingParameters,
    SolverResult,
    approximation_ratio,
    greedy_single_advertiser,
    one_batch_rm,
    rm_with_oracle,
    rm_without_oracle,
    search_threshold,
    threshold_greedy,
)
from repro.baselines import TIParameters, ca_greedy, cs_greedy, ti_carm, ti_csrm
from repro.datasets import (
    build_dataset,
    build_instance,
    dblp_like,
    flixster_like,
    lastfm_like,
    livejournal_like,
)
from repro.experiments import compare_algorithms, evaluate_allocation, run_algorithm
from repro.exceptions import PolicyError, ReproError
from repro.runtime import ExecutionPolicy, Runtime, current_runtime

__version__ = "1.0.0"

__all__ = [
    "Advertiser",
    "Allocation",
    "RMInstance",
    "RevenueOracle",
    "ExactOracle",
    "MonteCarloOracle",
    "RRSetOracle",
    "SolverResult",
    "SamplingParameters",
    "approximation_ratio",
    "greedy_single_advertiser",
    "threshold_greedy",
    "search_threshold",
    "rm_with_oracle",
    "rm_without_oracle",
    "one_batch_rm",
    "TIParameters",
    "ca_greedy",
    "cs_greedy",
    "ti_carm",
    "ti_csrm",
    "build_dataset",
    "build_instance",
    "lastfm_like",
    "flixster_like",
    "dblp_like",
    "livejournal_like",
    "run_algorithm",
    "compare_algorithms",
    "evaluate_allocation",
    "ExecutionPolicy",
    "Runtime",
    "current_runtime",
    "PolicyError",
    "ReproError",
    "__version__",
]
