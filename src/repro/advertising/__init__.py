"""Problem layer: advertisers, allocations, RM instances and revenue oracles."""

from repro.advertising.advertiser import Advertiser
from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import (
    RevenueOracle,
    MonteCarloOracle,
    ExactOracle,
    RRSetOracle,
)

__all__ = [
    "Advertiser",
    "Allocation",
    "RMInstance",
    "RevenueOracle",
    "MonteCarloOracle",
    "ExactOracle",
    "RRSetOracle",
]
