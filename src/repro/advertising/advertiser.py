"""The :class:`Advertiser` value object."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.diffusion.topics import TopicDistribution
from repro.exceptions import ProblemDefinitionError


@dataclass(frozen=True)
class Advertiser:
    """One advertiser in the revenue maximization problem.

    Attributes
    ----------
    budget:
        Total amount ``B_i`` the advertiser is willing to spend on seed
        incentives plus engagement payments.
    cpe:
        Cost-per-engagement paid to the host for every activated user.
    topic_mix:
        Distribution ``φ_i`` over latent topics; ``None`` for topic-oblivious
        propagation models (IC, Weighted-Cascade).
    name:
        Optional human-readable label used in reports.
    """

    budget: float
    cpe: float
    topic_mix: Optional[TopicDistribution] = None
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not (self.budget > 0 and self.budget == self.budget):
            raise ProblemDefinitionError(f"budget must be positive, got {self.budget!r}")
        if not (self.cpe > 0 and self.cpe == self.cpe):
            raise ProblemDefinitionError(f"cpe must be positive, got {self.cpe!r}")
        if self.topic_mix is not None and not isinstance(self.topic_mix, TopicDistribution):
            raise ProblemDefinitionError("topic_mix must be a TopicDistribution or None")

    def with_budget(self, budget: float) -> "Advertiser":
        """Return a copy of this advertiser with a different budget.

        Used by the bicriteria machinery, which feeds the solvers a relaxed
        budget ``(1 + ϱ/2)·B_i`` while reporting against the original.
        """
        return Advertiser(budget=budget, cpe=self.cpe, topic_mix=self.topic_mix, name=self.name)

    @property
    def max_engagements(self) -> float:
        """``B_i / cpe_i`` — engagements affordable if nothing is spent on seeds."""
        return self.budget / self.cpe
