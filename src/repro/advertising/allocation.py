"""Seed allocations ``S⃗ = (S_1, …, S_h)``.

An allocation assigns disjoint seed sets to advertisers.  The class enforces
the partition-matroid constraint of the RM problem (a node endorses at most
one ad) at mutation time so that solver bugs surface immediately.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Set, Tuple

from repro.exceptions import ProblemDefinitionError


class Allocation:
    """Mutable mapping from advertiser index to its seed set.

    Parameters
    ----------
    num_advertisers:
        Number of advertisers ``h``; advertiser indices are ``0 .. h-1``.
    """

    def __init__(self, num_advertisers: int):
        if num_advertisers <= 0:
            raise ProblemDefinitionError("num_advertisers must be positive")
        self._num_advertisers = num_advertisers
        self._seed_sets: Dict[int, Set[int]] = {i: set() for i in range(num_advertisers)}
        self._owner: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, num_advertisers: int, seed_sets: Dict[int, Iterable[int]]) -> "Allocation":
        """Build an allocation from ``{advertiser: seeds}``; validates disjointness."""
        allocation = cls(num_advertisers)
        for advertiser, seeds in seed_sets.items():
            for node in seeds:
                allocation.assign(int(node), int(advertiser))
        return allocation

    def copy(self) -> "Allocation":
        """Deep copy of the allocation."""
        clone = Allocation(self._num_advertisers)
        for advertiser, seeds in self._seed_sets.items():
            for node in seeds:
                clone.assign(node, advertiser)
        return clone

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def assign(self, node: int, advertiser: int) -> None:
        """Assign ``node`` to ``advertiser``; raises if the node is already taken."""
        self._check_advertiser(advertiser)
        node = int(node)
        current_owner = self._owner.get(node)
        if current_owner is not None:
            if current_owner == advertiser:
                return
            raise ProblemDefinitionError(
                f"node {node} is already assigned to advertiser {current_owner}"
            )
        self._seed_sets[advertiser].add(node)
        self._owner[node] = advertiser

    def unassign(self, node: int) -> None:
        """Remove ``node`` from whichever advertiser holds it (no-op if unassigned)."""
        node = int(node)
        owner = self._owner.pop(node, None)
        if owner is not None:
            self._seed_sets[owner].discard(node)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def num_advertisers(self) -> int:
        """Number of advertisers this allocation covers."""
        return self._num_advertisers

    def seeds(self, advertiser: int) -> FrozenSet[int]:
        """The (immutable view of the) seed set of ``advertiser``."""
        self._check_advertiser(advertiser)
        return frozenset(self._seed_sets[advertiser])

    def owner_of(self, node: int) -> int | None:
        """The advertiser holding ``node``, or ``None``."""
        return self._owner.get(int(node))

    def is_assigned(self, node: int) -> bool:
        """Whether ``node`` is assigned to any advertiser."""
        return int(node) in self._owner

    def assigned_nodes(self) -> FrozenSet[int]:
        """All nodes assigned to some advertiser."""
        return frozenset(self._owner)

    def total_seed_count(self) -> int:
        """Total number of assigned (node, advertiser) pairs."""
        return len(self._owner)

    def seed_count(self, advertiser: int) -> int:
        """Number of seeds assigned to ``advertiser``."""
        self._check_advertiser(advertiser)
        return len(self._seed_sets[advertiser])

    def items(self) -> Iterator[Tuple[int, FrozenSet[int]]]:
        """Iterate ``(advertiser, seed_set)`` pairs."""
        for advertiser in range(self._num_advertisers):
            yield advertiser, frozenset(self._seed_sets[advertiser])

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(node, advertiser)`` pairs — the set view used in the paper."""
        for node, advertiser in self._owner.items():
            yield node, advertiser

    def as_dict(self) -> Dict[int, FrozenSet[int]]:
        """Return ``{advertiser: frozenset(seeds)}``."""
        return {advertiser: frozenset(seeds) for advertiser, seeds in self._seed_sets.items()}

    def is_empty(self) -> bool:
        """True when no node is assigned."""
        return not self._owner

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return (
            self._num_advertisers == other._num_advertisers
            and self._seed_sets == other._seed_sets
        )

    def __repr__(self) -> str:
        sizes = {advertiser: len(seeds) for advertiser, seeds in self._seed_sets.items()}
        return f"Allocation(num_advertisers={self._num_advertisers}, sizes={sizes})"

    # ------------------------------------------------------------------ #
    def _check_advertiser(self, advertiser: int) -> None:
        if not 0 <= advertiser < self._num_advertisers:
            raise ProblemDefinitionError(
                f"advertiser {advertiser} out of range [0, {self._num_advertisers})"
            )
