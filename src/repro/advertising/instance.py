"""The revenue-maximization problem instance.

:class:`RMInstance` bundles everything that defines one RM problem: the
graph, the propagation model, the advertisers (budgets, cpe values, topic
mixes) and the per-advertiser seeding cost matrix.  Solvers consume instances
through this class only, which keeps the algorithm code independent of how
the costs or probabilities were produced (learned, synthetic, or hand-set).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.advertising.advertiser import Advertiser
from repro.advertising.allocation import Allocation
from repro.diffusion.models import PropagationModel
from repro.exceptions import ProblemDefinitionError
from repro.graph.digraph import CSRDiGraph

CostsLike = Union[np.ndarray, Sequence[Sequence[float]], Dict[int, np.ndarray]]


class RMInstance:
    """One instance of the Revenue Maximization problem (Definition 2.1).

    Parameters
    ----------
    graph:
        The social graph ``G = (V, E)``.
    propagation_model:
        A :class:`~repro.diffusion.models.PropagationModel` bound to ``graph``.
    advertisers:
        The ``h`` advertisers with their budgets, cpe values and topic mixes.
    costs:
        Seeding costs ``c_i(u)``.  Either an ``(h, n)`` array, or a 1-D array
        of length ``n`` shared by all advertisers.
    """

    def __init__(
        self,
        graph: CSRDiGraph,
        propagation_model: PropagationModel,
        advertisers: Sequence[Advertiser],
        costs: CostsLike,
    ):
        if propagation_model.graph is not graph:
            raise ProblemDefinitionError("propagation model must be bound to the same graph")
        if not advertisers:
            raise ProblemDefinitionError("at least one advertiser is required")
        self._graph = graph
        self._model = propagation_model
        self._advertisers: List[Advertiser] = list(advertisers)
        self._costs = self._normalise_costs(costs)
        self._edge_probability_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _normalise_costs(self, costs: CostsLike) -> np.ndarray:
        h, n = len(self._advertisers), self._graph.num_nodes
        if isinstance(costs, dict):
            matrix = np.zeros((h, n), dtype=np.float64)
            for advertiser, row in costs.items():
                if not 0 <= advertiser < h:
                    raise ProblemDefinitionError(f"cost row for unknown advertiser {advertiser}")
                matrix[advertiser] = np.asarray(row, dtype=np.float64)
        else:
            array = np.asarray(costs, dtype=np.float64)
            if array.ndim == 1:
                if array.shape != (n,):
                    raise ProblemDefinitionError(
                        f"shared cost vector must have length {n}, got {array.shape}"
                    )
                matrix = np.tile(array, (h, 1))
            elif array.ndim == 2:
                if array.shape != (h, n):
                    raise ProblemDefinitionError(
                        f"cost matrix must have shape ({h}, {n}), got {array.shape}"
                    )
                matrix = array.copy()
            else:
                raise ProblemDefinitionError("costs must be a 1-D or 2-D array")
        if np.any(matrix <= 0) or np.any(~np.isfinite(matrix)):
            raise ProblemDefinitionError("all seeding costs must be positive and finite")
        matrix.setflags(write=False)
        return matrix

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> CSRDiGraph:
        """The social graph."""
        return self._graph

    @property
    def propagation_model(self) -> PropagationModel:
        """The cascade model governing influence propagation."""
        return self._model

    @property
    def advertisers(self) -> List[Advertiser]:
        """The advertisers (a copy of the internal list)."""
        return list(self._advertisers)

    @property
    def num_advertisers(self) -> int:
        """Number of advertisers ``h``."""
        return len(self._advertisers)

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n`` in the graph."""
        return self._graph.num_nodes

    def advertiser(self, index: int) -> Advertiser:
        """The advertiser with the given index."""
        self._check_advertiser(index)
        return self._advertisers[index]

    def budget(self, advertiser: int) -> float:
        """Budget ``B_i``."""
        return self.advertiser(advertiser).budget

    def budgets(self) -> np.ndarray:
        """All budgets as an array of length ``h``."""
        return np.array([adv.budget for adv in self._advertisers], dtype=np.float64)

    def cpe(self, advertiser: int) -> float:
        """Cost-per-engagement ``cpe(i)``."""
        return self.advertiser(advertiser).cpe

    def cpes(self) -> np.ndarray:
        """All cpe values as an array of length ``h``."""
        return np.array([adv.cpe for adv in self._advertisers], dtype=np.float64)

    @property
    def gamma(self) -> float:
        """``Γ = Σ_i cpe(i)``."""
        return float(self.cpes().sum())

    @property
    def min_budget(self) -> float:
        """``B_min = min_i B_i`` (appears in the sampling bounds)."""
        return float(self.budgets().min())

    # ------------------------------------------------------------------ #
    # costs
    # ------------------------------------------------------------------ #
    def cost(self, advertiser: int, node: int) -> float:
        """Seeding cost ``c_i(u)``."""
        self._check_advertiser(advertiser)
        if not 0 <= node < self._graph.num_nodes:
            raise ProblemDefinitionError(f"node {node} out of range")
        return float(self._costs[advertiser, node])

    def cost_of_set(self, advertiser: int, nodes: Iterable[int]) -> float:
        """Total seeding cost ``c_i(S) = Σ_{u∈S} c_i(u)``."""
        self._check_advertiser(advertiser)
        node_list = list(int(node) for node in nodes)
        if not node_list:
            return 0.0
        return float(self._costs[advertiser, node_list].sum())

    def cost_matrix(self) -> np.ndarray:
        """The full ``(h, n)`` cost matrix (read-only)."""
        return self._costs

    # ------------------------------------------------------------------ #
    # propagation probabilities
    # ------------------------------------------------------------------ #
    def edge_probabilities(self, advertiser: int) -> np.ndarray:
        """Per-edge activation probabilities ``p^i`` for ``advertiser`` (cached)."""
        self._check_advertiser(advertiser)
        cached = self._edge_probability_cache.get(advertiser)
        if cached is None:
            topic_mix = self._advertisers[advertiser].topic_mix
            cached = self._model.edge_probabilities(topic_mix)
            cached = np.asarray(cached, dtype=np.float64)
            cached.setflags(write=False)
            self._edge_probability_cache[advertiser] = cached
        return cached

    def all_edge_probabilities(self) -> List[np.ndarray]:
        """One probability array per advertiser, in advertiser order."""
        return [self.edge_probabilities(i) for i in range(self.num_advertisers)]

    # ------------------------------------------------------------------ #
    # allocation helpers
    # ------------------------------------------------------------------ #
    def empty_allocation(self) -> Allocation:
        """A fresh, empty allocation sized for this instance."""
        return Allocation(self.num_advertisers)

    def total_seeding_cost(self, allocation: Allocation) -> float:
        """``Σ_i c_i(S_i)`` for an allocation."""
        return sum(
            self.cost_of_set(advertiser, seeds) for advertiser, seeds in allocation.items()
        )

    def payment(self, advertiser: int, seeds: Iterable[int], revenue: float) -> float:
        """Advertiser ``i``'s total payment: seeding cost plus revenue (engagements)."""
        return self.cost_of_set(advertiser, seeds) + revenue

    def with_scaled_budgets(self, factor: float) -> "RMInstance":
        """A copy of the instance with every budget multiplied by ``factor``.

        Used by the bicriteria machinery (budgets ``(1 + ϱ/2)·B_i``) and by
        the budget-sweep experiments.
        """
        if factor <= 0:
            raise ProblemDefinitionError("budget scale factor must be positive")
        scaled = [adv.with_budget(adv.budget * factor) for adv in self._advertisers]
        clone = RMInstance(self._graph, self._model, scaled, self._costs)
        clone._edge_probability_cache = dict(self._edge_probability_cache)
        return clone

    # ------------------------------------------------------------------ #
    def _check_advertiser(self, advertiser: int) -> None:
        if not 0 <= advertiser < self.num_advertisers:
            raise ProblemDefinitionError(
                f"advertiser {advertiser} out of range [0, {self.num_advertisers})"
            )

    def __repr__(self) -> str:
        return (
            f"RMInstance(nodes={self.num_nodes}, edges={self._graph.num_edges}, "
            f"advertisers={self.num_advertisers})"
        )
