"""Revenue oracles.

The Section 3 algorithms assume an oracle returning the exact revenue
``π_i(S) = cpe(i)·σ_i(S)`` of any seed set.  Three interchangeable oracles
are provided:

* :class:`ExactOracle` — possible-world enumeration; only for tiny graphs,
  anchors correctness tests.
* :class:`MonteCarloOracle` — simulation-based estimates with caching; the
  practical stand-in for "an exact oracle" on small graphs.
* :class:`RRSetOracle` — the sampling-space revenue function
  ``π̃_i(·, R)`` of Section 4; this is what RMA plugs into the oracle
  algorithms.

All oracles share the :class:`RevenueOracle` interface so the Section 3
algorithms are written once and reused verbatim inside the sampling solver,
mirroring the structure of the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.diffusion.simulation import exact_spread, monte_carlo_spread
from repro.exceptions import SolverError
from repro.rrsets.collection import RRCollection
from repro.utils.rng import RandomSource, as_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import ExecutionPolicy, Runtime


class RevenueOracle(ABC):
    """Interface every revenue oracle implements."""

    @property
    @abstractmethod
    def num_advertisers(self) -> int:
        """Number of advertisers the oracle can answer for."""

    @abstractmethod
    def revenue(self, advertiser: int, seeds: Iterable[int]) -> float:
        """Expected revenue ``π_i(S)`` of assigning ``seeds`` to ``advertiser``."""

    def spread(self, advertiser: int, seeds: Iterable[int], cpe: float) -> float:
        """Expected spread ``σ_i(S) = π_i(S)/cpe(i)``."""
        if cpe <= 0:
            raise SolverError("cpe must be positive")
        return self.revenue(advertiser, seeds) / cpe

    def marginal_revenue(self, advertiser: int, node: int, seeds: Iterable[int]) -> float:
        """Marginal revenue ``π_i(u | S) = π_i(S ∪ {u}) − π_i(S)``."""
        seed_set = frozenset(int(s) for s in seeds)
        if int(node) in seed_set:
            return 0.0
        with_node = self.revenue(advertiser, seed_set | {int(node)})
        without_node = self.revenue(advertiser, seed_set)
        return max(0.0, with_node - without_node)

    def total_revenue(self, allocation: Allocation | Mapping[int, Iterable[int]]) -> float:
        """Total revenue ``π(S⃗) = Σ_i π_i(S_i)``."""
        return sum(
            self.revenue(advertiser, seeds) for advertiser, seeds in allocation.items()
        )


class MonteCarloOracle(RevenueOracle):
    """Monte-Carlo estimate of the revenue function, with memoisation.

    Parameters
    ----------
    instance:
        The RM instance (supplies graph, per-advertiser probabilities, cpe).
    num_simulations:
        Cascade simulations per distinct (advertiser, seed set) query.
    seed:
        RNG seed; queries are deterministic for a fixed seed because the
        oracle derives one child stream per cached query.
    policy:
        :class:`repro.runtime.ExecutionPolicy` selecting the cascade engine
        (``mc_engine``), the per-query sharding (``n_jobs``) and the batch
        size.  ``None`` resolves to :meth:`ExecutionPolicy.fast` — batched
        cascades across all cores; pass :meth:`ExecutionPolicy.seed` to
        reproduce the seed tree's sequential RNG stream exactly.  Sharding
        only engages when ``num_simulations >= MIN_SHARDED_SIMULATIONS``:
        the greedy loops issue many small queries whose serial cost is below
        the pool dispatch overhead — honouring ``n_jobs`` there would make
        "fast" runs slower.
    runtime:
        :class:`repro.runtime.Runtime` whose persistent worker pool sharded
        queries run on (falls back to the ambient runtime, then to per-call
        pools).
    """

    #: Minimum per-query simulation count before ``n_jobs`` engages (below
    #: this the pool-spawn overhead dominates the serial query cost).
    MIN_SHARDED_SIMULATIONS = 512

    def __init__(
        self,
        instance: RMInstance,
        num_simulations: int = 500,
        seed: RandomSource = None,
        policy: Optional["ExecutionPolicy"] = None,
        runtime: Optional["Runtime"] = None,
    ):
        from repro.runtime import resolve_policy

        if num_simulations <= 0:
            raise SolverError("num_simulations must be positive")
        self._instance = instance
        self._num_simulations = num_simulations
        self._rng = as_rng(seed)
        self._policy = resolve_policy(policy)
        self._runtime = runtime
        self._cache: Dict[Tuple[int, FrozenSet[int]], float] = {}

    @property
    def num_advertisers(self) -> int:
        return self._instance.num_advertisers

    @property
    def query_count(self) -> int:
        """Number of distinct (advertiser, seed-set) queries answered so far."""
        return len(self._cache)

    def revenue(self, advertiser: int, seeds: Iterable[int]) -> float:
        seed_set = frozenset(int(s) for s in seeds)
        if not seed_set:
            return 0.0
        key = (advertiser, seed_set)
        cached = self._cache.get(key)
        if cached is None:
            sharded = self._num_simulations >= self.MIN_SHARDED_SIMULATIONS
            spread = monte_carlo_spread(
                self._instance.graph,
                self._instance.edge_probabilities(advertiser),
                seed_set,
                num_simulations=self._num_simulations,
                rng=self._rng,
                use_batched=self._policy.mc_engine == "batched",
                batch_size=self._policy.mc_batch_size,
                n_jobs=self._policy.n_jobs if sharded else None,
                runtime=self._runtime,
            )
            cached = self._instance.cpe(advertiser) * spread
            self._cache[key] = cached
        return cached


class ExactOracle(RevenueOracle):
    """Exact revenue by enumerating live-edge worlds (tiny graphs only)."""

    def __init__(self, instance: RMInstance, max_edges: int = 18):
        if instance.graph.num_edges > max_edges:
            raise SolverError(
                f"ExactOracle supports at most {max_edges} edges, "
                f"graph has {instance.graph.num_edges}"
            )
        self._instance = instance
        self._max_edges = max_edges
        self._cache: Dict[Tuple[int, FrozenSet[int]], float] = {}

    @property
    def num_advertisers(self) -> int:
        return self._instance.num_advertisers

    def revenue(self, advertiser: int, seeds: Iterable[int]) -> float:
        seed_set = frozenset(int(s) for s in seeds)
        if not seed_set:
            return 0.0
        key = (advertiser, seed_set)
        cached = self._cache.get(key)
        if cached is None:
            spread = exact_spread(
                self._instance.graph,
                self._instance.edge_probabilities(advertiser),
                seed_set,
                max_edges=self._max_edges,
            )
            cached = self._instance.cpe(advertiser) * spread
            self._cache[key] = cached
        return cached


class RRSetOracle(RevenueOracle):
    """Sampling-space revenue function ``π̃_i(·, R)`` over a tagged RR collection.

    The oracle memoises the covered RR-set indices per queried seed set as a
    **sorted int64 array** and reuses the memo of any subset it has already
    seen minus/plus one element (merging with ``np.union1d``), which makes
    the greedy algorithms' incremental query pattern cheap.
    """

    def __init__(self, collection: RRCollection, gamma: float):
        if len(collection) == 0:
            raise SolverError("RRSetOracle needs a non-empty collection")
        if gamma <= 0:
            raise SolverError("gamma must be positive")
        self._collection = collection
        self._gamma = gamma
        self._scale = collection.num_nodes * gamma / len(collection)
        self._empty_covered = np.empty(0, dtype=np.int64)
        self._covered_cache: Dict[Tuple[int, FrozenSet[int]], np.ndarray] = {}
        # One boolean covered-mask per advertiser for the current seed set of
        # the greedy loop: marginal queries against an unchanged seed set are
        # one fancy-index count instead of a set merge.
        self._mask_cache: Dict[int, Tuple[FrozenSet[int], np.ndarray]] = {}

    @property
    def num_advertisers(self) -> int:
        return self._collection.num_advertisers

    @property
    def collection(self) -> RRCollection:
        """The underlying RR-set collection."""
        return self._collection

    @property
    def gamma(self) -> float:
        """``Γ = Σ_i cpe(i)`` used for scaling."""
        return self._gamma

    @property
    def scale(self) -> float:
        """``nΓ / |R|`` — revenue contributed by each covered RR-set."""
        return self._scale

    def _covered_indices(self, advertiser: int, seed_set: FrozenSet[int]) -> np.ndarray:
        """Sorted int64 array of RR-set indices covered by ``seed_set``."""
        if not seed_set:
            return self._empty_covered
        key = (advertiser, seed_set)
        cached = self._covered_cache.get(key)
        if cached is not None:
            return cached
        # Try to extend a cached subset by one element (the greedy pattern).
        best_subset: Optional[FrozenSet[int]] = None
        for node in seed_set:
            candidate = seed_set - {node}
            if (advertiser, candidate) in self._covered_cache:
                best_subset = candidate
                break
        if best_subset is not None:
            covered = self._covered_cache[(advertiser, best_subset)]
            extra_nodes = seed_set - best_subset
        else:
            covered = self._empty_covered
            extra_nodes = seed_set
        for node in extra_nodes:
            covered = np.union1d(
                covered, self._collection.sets_containing_array(advertiser, int(node))
            )
        self._covered_cache[key] = covered
        return covered

    def revenue(self, advertiser: int, seeds: Iterable[int]) -> float:
        seed_set = frozenset(int(s) for s in seeds)
        if not 0 <= advertiser < self.num_advertisers:
            raise SolverError(f"advertiser {advertiser} out of range")
        return self._scale * self._covered_indices(advertiser, seed_set).size

    def marginal_revenue(self, advertiser: int, node: int, seeds: Iterable[int]) -> float:
        seed_set = frozenset(int(s) for s in seeds)
        node = int(node)
        if node in seed_set:
            return 0.0
        containing = self._collection.sets_containing_array(advertiser, node)
        if containing.size == 0:
            return 0.0
        covered = self._covered_indices(advertiser, seed_set)
        if covered.size == 0:
            return self._scale * containing.size
        cached = self._mask_cache.get(advertiser)
        if cached is None or cached[0] != seed_set:
            mask = np.zeros(len(self._collection), dtype=bool)
            mask[covered] = True
            self._mask_cache[advertiser] = (seed_set, mask)
        else:
            mask = cached[1]
        already = np.count_nonzero(mask[containing])
        return self._scale * (containing.size - already)
