"""Baseline algorithms of Aslay et al. (VLDB 2017), re-implemented for comparison."""

from repro.baselines.ca_greedy import ca_greedy
from repro.baselines.cs_greedy import cs_greedy
from repro.baselines.tim import estimate_kpt, tim_sample_size, estimate_max_seed_count
from repro.baselines.ti_carm import ti_carm
from repro.baselines.ti_csrm import ti_csrm
from repro.baselines.ti_common import TIParameters

__all__ = [
    "ca_greedy",
    "cs_greedy",
    "estimate_kpt",
    "tim_sample_size",
    "estimate_max_seed_count",
    "ti_carm",
    "ti_csrm",
    "TIParameters",
]
