"""CA-Greedy — the Cost-Agnostic greedy baseline of Aslay et al. [5] (oracle setting).

At every step the algorithm picks the unassigned ``(u, i)`` pair with the
largest *marginal gain* ``π_i(u | S_i)``, ignoring seeding costs.  When the
best element of an advertiser would violate its budget the advertiser is
closed, so a single expensive high-gain node can exhaust a budget — the
behaviour the paper's footnote 8 and the superlinear-cost experiments
illustrate.  The approximation ratio (Eq. 4) is instance dependent and can be
as bad as ``O(1/n)``.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RevenueOracle
from repro.baselines.common import batched_budgeted_allocation, greedy_result
from repro.core.batched_greedy import supports_batched_greedy
from repro.core.result import SolverResult
from repro.exceptions import SolverError
from repro.utils.lazy_heap import LazyMarginalHeap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import ExecutionPolicy


def ca_greedy(
    instance: RMInstance,
    oracle: RevenueOracle,
    budgets: Optional[np.ndarray] = None,
    candidates: Optional[Iterable[int]] = None,
    policy: Optional["ExecutionPolicy"] = None,
) -> SolverResult:
    """Run CA-Greedy and return a :class:`SolverResult`.

    A batched-greedy ``policy`` (the ``fast`` default — ``None`` resolves to
    :meth:`ExecutionPolicy.fast`) runs the element heap on the batched
    coverage engine (RR-set oracles only; other oracles keep the seed scalar
    path).  Both engines select bit-identical allocations.
    """
    from repro.runtime import resolve_policy

    policy = resolve_policy(policy)
    h = instance.num_advertisers
    if oracle.num_advertisers != h:
        raise SolverError("oracle and instance disagree on the number of advertisers")
    budget_array = (
        np.asarray(budgets, dtype=np.float64) if budgets is not None else instance.budgets()
    )

    if policy.greedy_engine == "batched" and supports_batched_greedy(oracle, instance):
        allocation, closed = batched_budgeted_allocation(
            instance, oracle, budget_array, candidates, rank_by_rate=False
        )
        return greedy_result(instance, oracle, allocation, closed, "CA-Greedy")

    allocation = Allocation(h)
    revenue = {i: 0.0 for i in range(h)}
    cost = {i: 0.0 for i in range(h)}
    closed = set()

    nodes = (
        [int(node) for node in candidates]
        if candidates is not None
        else list(range(instance.num_nodes))
    )

    def evaluate(element):
        node, advertiser = element
        return oracle.marginal_revenue(advertiser, node, allocation.seeds(advertiser))

    heap: LazyMarginalHeap = LazyMarginalHeap(evaluate)
    for advertiser in range(h):
        for node in nodes:
            singleton = oracle.revenue(advertiser, {node})
            if instance.cost(advertiser, node) + singleton <= budget_array[advertiser]:
                heap.push((node, advertiser))

    while len(heap) and len(closed) < h:
        popped = heap.pop_best()
        if popped is None:
            break
        (node, advertiser), _gain = popped
        if advertiser in closed or allocation.is_assigned(node):
            continue
        gain = oracle.marginal_revenue(advertiser, node, allocation.seeds(advertiser))
        node_cost = instance.cost(advertiser, node)
        if cost[advertiser] + node_cost + revenue[advertiser] + gain <= budget_array[advertiser]:
            allocation.assign(node, advertiser)
            revenue[advertiser] += gain
            cost[advertiser] += node_cost
            heap.advance_round()
        else:
            # Cost-agnostic greedy stops selecting for this advertiser as soon
            # as its top-gain element no longer fits the budget.
            closed.add(advertiser)

    return greedy_result(instance, oracle, allocation, closed, "CA-Greedy")
