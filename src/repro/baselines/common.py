"""Shared machinery of the CA-Greedy / CS-Greedy oracle baselines.

Both baselines run the same budgeted allocation loop and package the same
:class:`SolverResult`; they differ only in how elements are ranked (marginal
gain vs. marginal rate).  The scalar loops stay in their own modules —
mirroring the paper's presentation — but the batched-engine variant and the
result builder live here so a fix lands once.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RevenueOracle, RRSetOracle
from repro.core.batched_greedy import CoverageGreedyEngine
from repro.core.result import SolverResult
from repro.utils.lazy_heap import BatchedLazyGreedy


def greedy_result(
    instance: RMInstance,
    oracle: RevenueOracle,
    allocation: Allocation,
    closed: Set[int],
    algorithm: str,
) -> SolverResult:
    """Package a finished CA/CS-Greedy allocation as a :class:`SolverResult`."""
    total_revenue = oracle.total_revenue(allocation)
    return SolverResult(
        allocation=allocation,
        revenue=total_revenue,
        per_advertiser_revenue={
            advertiser: (oracle.revenue(advertiser, seeds) if seeds else 0.0)
            for advertiser, seeds in allocation.items()
        },
        seeding_cost=instance.total_seeding_cost(allocation),
        algorithm=algorithm,
        depleted_budgets=len(closed),
        metadata={"closed_advertisers": len(closed)},
    )


def batched_budgeted_allocation(
    instance: RMInstance,
    oracle: RRSetOracle,
    budgets: np.ndarray,
    candidates: Optional[Iterable[int]],
    rank_by_rate: bool,
) -> Tuple[Allocation, Set[int]]:
    """The CA/CS-Greedy allocation loop on the batched coverage engine.

    ``rank_by_rate`` selects the CS-Greedy ranking (marginal rate) over the
    CA-Greedy one (marginal gain); every other decision — singleton
    feasibility, the assigned/closed filters, the budget accept test and the
    advertiser-closing rule — is shared.  Decisions see the same floats as
    the scalar loops, and the heap replays their tie-breaking exactly.
    """
    h = instance.num_advertisers
    n = instance.num_nodes
    engine = CoverageGreedyEngine(instance, oracle)
    heap = BatchedLazyGreedy(engine.rates if rank_by_rate else engine.gains)
    heap.push_array(engine.feasible_element_keys(budgets, candidates))

    allocation = Allocation(h)
    revenue = {i: 0.0 for i in range(h)}
    cost = {i: 0.0 for i in range(h)}
    closed: Set[int] = set()
    while len(heap) and len(closed) < h:
        popped = heap.pop_best()
        if popped is None:
            break
        key, _value = popped
        advertiser, node = divmod(key, n)
        if advertiser in closed or allocation.is_assigned(node):
            continue
        gain = engine.gain(advertiser, node)
        node_cost = instance.cost(advertiser, node)
        if cost[advertiser] + node_cost + revenue[advertiser] + gain <= budgets[advertiser]:
            allocation.assign(node, advertiser)
            engine.add_seed(advertiser, node)
            revenue[advertiser] += gain
            cost[advertiser] += node_cost
            heap.advance_round()
        else:
            closed.add(advertiser)
    return allocation, closed
