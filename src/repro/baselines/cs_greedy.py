"""CS-Greedy — the Cost-Sensitive greedy baseline of Aslay et al. [5] (oracle setting).

Identical loop structure to CA-Greedy but elements are ranked by the marginal
*rate* ``ζ_i(u | S_i)`` (revenue gained per unit of budget consumed), so
cheap, efficient nodes are preferred.  Its approximation ratio (Eq. 3)
depends on the network instance and can be arbitrarily small, which is the
main theoretical gap the paper closes.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RevenueOracle
from repro.baselines.common import batched_budgeted_allocation, greedy_result
from repro.core.batched_greedy import supports_batched_greedy
from repro.core.greedy import marginal_rate
from repro.core.result import SolverResult
from repro.exceptions import SolverError
from repro.utils.lazy_heap import LazyMarginalHeap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import ExecutionPolicy


def cs_greedy(
    instance: RMInstance,
    oracle: RevenueOracle,
    budgets: Optional[np.ndarray] = None,
    candidates: Optional[Iterable[int]] = None,
    policy: Optional["ExecutionPolicy"] = None,
) -> SolverResult:
    """Run CS-Greedy and return a :class:`SolverResult`.

    A batched-greedy ``policy`` (the ``fast`` default — ``None`` resolves to
    :meth:`ExecutionPolicy.fast`) runs the element heap on the batched
    coverage engine (RR-set oracles only; other oracles keep the seed scalar
    path).  Both engines select bit-identical allocations.
    """
    from repro.runtime import resolve_policy

    policy = resolve_policy(policy)
    h = instance.num_advertisers
    if oracle.num_advertisers != h:
        raise SolverError("oracle and instance disagree on the number of advertisers")
    budget_array = (
        np.asarray(budgets, dtype=np.float64) if budgets is not None else instance.budgets()
    )

    if policy.greedy_engine == "batched" and supports_batched_greedy(oracle, instance):
        allocation, closed = batched_budgeted_allocation(
            instance, oracle, budget_array, candidates, rank_by_rate=True
        )
        return greedy_result(instance, oracle, allocation, closed, "CS-Greedy")

    allocation = Allocation(h)
    revenue = {i: 0.0 for i in range(h)}
    cost = {i: 0.0 for i in range(h)}
    closed = set()

    nodes = (
        [int(node) for node in candidates]
        if candidates is not None
        else list(range(instance.num_nodes))
    )

    def evaluate(element):
        node, advertiser = element
        gain = oracle.marginal_revenue(advertiser, node, allocation.seeds(advertiser))
        return marginal_rate(gain, instance.cost(advertiser, node))

    heap: LazyMarginalHeap = LazyMarginalHeap(evaluate)
    for advertiser in range(h):
        for node in nodes:
            singleton = oracle.revenue(advertiser, {node})
            if instance.cost(advertiser, node) + singleton <= budget_array[advertiser]:
                heap.push((node, advertiser))

    while len(heap) and len(closed) < h:
        popped = heap.pop_best()
        if popped is None:
            break
        (node, advertiser), _rate = popped
        if advertiser in closed or allocation.is_assigned(node):
            continue
        gain = oracle.marginal_revenue(advertiser, node, allocation.seeds(advertiser))
        node_cost = instance.cost(advertiser, node)
        if cost[advertiser] + node_cost + revenue[advertiser] + gain <= budget_array[advertiser]:
            allocation.assign(node, advertiser)
            revenue[advertiser] += gain
            cost[advertiser] += node_cost
            heap.advance_round()
        else:
            closed.add(advertiser)
    return greedy_result(instance, oracle, allocation, closed, "CS-Greedy")
