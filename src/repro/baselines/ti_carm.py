"""TI-CARM — the practical, sampling-based Cost-Agnostic baseline of Aslay et al. [5]."""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.advertising.instance import RMInstance
from repro.baselines.ti_common import TIParameters, run_ti_baseline
from repro.core.result import SolverResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import Runtime


def ti_carm(
    instance: RMInstance,
    params: Optional[TIParameters] = None,
    runtime: Optional["Runtime"] = None,
) -> SolverResult:
    """Run TI-CARM (Topic-aware Influence Cost-Agnostic Revenue Maximization).

    Elements are ranked purely by estimated marginal revenue; seeding costs
    are ignored during ranking (they still count against the budget), which
    reproduces the baseline's characteristic failure mode under super-linear
    seed pricing.  ``runtime`` supplies a persistent worker pool for sharded
    policies.
    """
    return run_ti_baseline(
        instance, params, cost_sensitive=False, algorithm_name="TI-CARM", runtime=runtime
    )
