"""Shared machinery of the TI-CARM and TI-CSRM baselines.

Both algorithms follow the same recipe (Aslay et al. [5]):

1. per advertiser, size an RR-set pool with TIM (``1/ε²`` dependence),
2. greedily allocate ``(node, advertiser)`` elements using estimates from the
   per-advertiser pools — ranked by marginal gain (CARM) or marginal rate
   (CSRM),
3. enforce budget feasibility *conservatively*: the estimated revenue is
   inflated by a concentration-bound penalty before being compared against
   the budget, so the allocation never relies on a lucky under-estimate.
   This is exactly the design decision that makes the baselines under-utilise
   budgets (Section 2.2.1, limitation (iv)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.baselines.tim import (
    estimate_kpt,
    estimate_max_seed_count,
    pilot_pool,
    tim_sample_size,
)
from repro.core.greedy import marginal_rate
from repro.core.result import SolverResult
from repro.exceptions import SolverError
from repro.rrsets.collection import CoverageState, RRCollection
from repro.rrsets.generator import RRSetGenerator, SubsimRRGenerator
from repro.runtime import ExecutionPolicy, Runtime, current_runtime, resolve_policy
from repro.utils.lazy_heap import BatchedLazyGreedy, LazyMarginalHeap
from repro.utils.rng import RandomSource, as_rng


@dataclass
class TIParameters:
    """Parameters of the TI-CARM / TI-CSRM baselines.

    ``epsilon`` is the ε of Eq. (5) in the paper — the additive estimation
    error the baselines tolerate; their pool sizes scale as ``1/ε²``.
    ``max_rr_sets_per_advertiser`` caps the actually generated pools so that
    the pure-Python reproduction stays tractable; the uncapped theoretical
    requirement is always reported in the result metadata (it is what the
    Figure 4 memory comparison uses).

    ``policy`` is the configuration channel
    (:class:`repro.runtime.ExecutionPolicy`): ``rr_engine`` selects the pool
    generator, ``greedy_engine="batched"`` runs the allocation loop on the
    batched coverage engine — the per-advertiser pools are merged into one
    advertiser-tagged :class:`~repro.rrsets.collection.RRCollection` and
    stale CELF candidates are refreshed through vectorized gathers on its
    coverage marginal matrix (same floats, same tie-breaking, bit-identical
    allocations) — and ``n_jobs`` shards the bulk pool fill across worker
    processes (the small pilot pools stay serial).  ``None`` defaults to
    :meth:`ExecutionPolicy.fast`; pass :meth:`ExecutionPolicy.seed` for the
    serial seed-stream reference path.
    """

    epsilon: float = 0.1
    delta: float = 0.01
    pilot_size: int = 256
    max_rr_sets_per_advertiser: int = 4096
    seed: RandomSource = None
    policy: Optional[ExecutionPolicy] = None

    def resolved_policy(self) -> ExecutionPolicy:
        """The effective :class:`ExecutionPolicy` (``None`` → ``fast``)."""
        return resolve_policy(self.policy)

    def validate(self) -> None:
        """Raise :class:`SolverError` on inconsistent settings."""
        if self.epsilon <= 0:
            raise SolverError("epsilon must be positive")
        if not 0 < self.delta < 1:
            raise SolverError("delta must lie in (0, 1)")
        if self.pilot_size <= 0:
            raise SolverError("pilot_size must be positive")
        if self.max_rr_sets_per_advertiser <= 0:
            raise SolverError("max_rr_sets_per_advertiser must be positive")


class _AdvertiserPool:
    """Per-advertiser RR-set pool with incremental coverage bookkeeping."""

    def __init__(self, rr_sets: List[np.ndarray], num_nodes: int, cpe: float):
        self.rr_sets = rr_sets
        self.num_nodes = num_nodes
        self.cpe = cpe
        self.scale = cpe * num_nodes / max(1, len(rr_sets))
        self.covered = np.zeros(len(rr_sets), dtype=bool)
        self.membership: Dict[int, List[int]] = {}
        for index, rr_set in enumerate(rr_sets):
            for node in rr_set.tolist():
                self.membership.setdefault(int(node), []).append(index)
        self.covered_count = 0

    def marginal_revenue(self, node: int) -> float:
        """Estimated ``π_i(u | S_i)`` given the RR-sets already covered."""
        indices = self.membership.get(int(node), ())
        fresh = sum(1 for index in indices if not self.covered[index])
        return self.scale * fresh

    def add_seed(self, node: int) -> None:
        """Mark every RR-set containing ``node`` as covered."""
        for index in self.membership.get(int(node), ()):
            if not self.covered[index]:
                self.covered[index] = True
                self.covered_count += 1

    def revenue(self) -> float:
        """Estimated ``π_i(S_i)`` of the currently covered RR-sets."""
        return self.scale * self.covered_count


def _build_pools(
    instance: RMInstance,
    params: TIParameters,
    policy: ExecutionPolicy,
    rng,
    runtime: Optional[Runtime],
) -> tuple[Dict[int, _AdvertiserPool], Dict[str, object]]:
    generator_cls = SubsimRRGenerator if policy.rr_engine == "subsim" else RRSetGenerator
    pools: Dict[int, _AdvertiserPool] = {}
    required_total = 0
    generated_total = 0
    for advertiser in range(instance.num_advertisers):
        seed_count = estimate_max_seed_count(instance, advertiser)
        pilot = pilot_pool(instance, advertiser, size=params.pilot_size, rng=rng)
        kpt = estimate_kpt(pilot, instance.num_nodes, seed_count)
        required = tim_sample_size(
            instance.num_nodes, seed_count, kpt, params.epsilon, params.delta
        )
        required_total += required
        pool_size = min(required, params.max_rr_sets_per_advertiser)
        generator = generator_cls(
            instance.graph, instance.edge_probabilities(advertiser)
        )
        rr_sets = list(pilot)
        if pool_size > len(rr_sets):
            rr_sets.extend(
                generator.generate_batch_parallel(
                    pool_size - len(rr_sets), rng, n_jobs=policy.n_jobs, runtime=runtime
                )
            )
        else:
            rr_sets = rr_sets[:pool_size]
        generated_total += len(rr_sets)
        pools[advertiser] = _AdvertiserPool(
            rr_sets, instance.num_nodes, instance.cpe(advertiser)
        )
    diagnostics = {
        "required_rr_sets_total": required_total,
        "generated_rr_sets_total": generated_total,
        "memory_proxy_bytes": sum(
            sum(rr.size for rr in pool.rr_sets) * 8 for pool in pools.values()
        ),
        "required_memory_proxy_bytes": _required_memory_proxy(
            pools, required_total, generated_total
        ),
    }
    return pools, diagnostics


def _required_memory_proxy(
    pools: Dict[int, _AdvertiserPool], required_total: int, generated_total: int
) -> float:
    """Memory the baselines *would* need without the per-advertiser cap."""
    generated_bytes = sum(sum(rr.size for rr in pool.rr_sets) * 8 for pool in pools.values())
    if generated_total == 0:
        return 0.0
    return generated_bytes * (required_total / generated_total)


def _run_allocation_batched(
    instance: RMInstance,
    pools: Dict[int, _AdvertiserPool],
    penalties: Dict[int, float],
    budgets: np.ndarray,
    cost_sensitive: bool,
) -> tuple[Allocation, set[int], Dict[int, float]]:
    """The TI allocation loop on the batched coverage engine.

    The per-advertiser pools are merged into one advertiser-tagged
    collection, so a :class:`CoverageState` tracks every pool's uncovered
    counts in its flat ``(h·n,)`` marginal matrix and a batch of stale
    candidates is refreshed with one gather (``scale_flat · marginal[keys]``).
    All comparisons see the same ``scale × count`` floats as the scalar loop.
    """
    h = instance.num_advertisers
    n = instance.num_nodes
    combined = RRCollection(n, h)
    for advertiser in range(h):
        for rr_set in pools[advertiser].rr_sets:
            combined.add(rr_set, advertiser)
    state = CoverageState(combined)
    marginal_flat = state.marginal_matrix().ravel()
    cost_flat = instance.cost_matrix().ravel()
    scales = np.array([pools[i].scale for i in range(h)], dtype=np.float64)
    scale_flat = np.repeat(scales, n)

    def batch_values(keys: np.ndarray) -> np.ndarray:
        gains = scale_flat[keys] * marginal_flat[keys]
        if not cost_sensitive:
            return gains
        positive = gains > 0.0
        rates = np.zeros(gains.shape, dtype=np.float64)
        np.divide(gains, cost_flat[keys] + gains, out=rates, where=positive)
        return rates

    # Same singleton-feasibility filter and advertiser-major element order as
    # the scalar loop: singleton revenue is scale × membership count.
    membership_flat = combined.membership_counts().ravel()
    all_keys = np.arange(h * n, dtype=np.int64)
    feasible = cost_flat + scale_flat * membership_flat <= np.repeat(budgets, n)
    heap = BatchedLazyGreedy(batch_values)
    heap.push_array(all_keys[feasible])

    allocation = Allocation(h)
    cost = {i: 0.0 for i in range(h)}
    closed: set[int] = set()
    while len(heap) and len(closed) < h:
        popped = heap.pop_best()
        if popped is None:
            break
        key, value = popped
        advertiser, node = divmod(key, n)
        if advertiser in closed or allocation.is_assigned(node) or value <= 0.0:
            continue
        gain = scales[advertiser] * int(marginal_flat[key])
        node_cost = instance.cost(advertiser, node)
        revenue = scales[advertiser] * state.covered_count_for(advertiser)
        projected_revenue = revenue + gain + penalties[advertiser]
        if cost[advertiser] + node_cost + projected_revenue <= budgets[advertiser]:
            allocation.assign(node, advertiser)
            state.add_seed(advertiser, node)
            cost[advertiser] += node_cost
            heap.advance_round()
        else:
            closed.add(advertiser)

    per_advertiser = {
        advertiser: scales[advertiser] * state.covered_count_for(advertiser)
        for advertiser in range(h)
    }
    return allocation, closed, per_advertiser


def run_ti_baseline(
    instance: RMInstance,
    params: Optional[TIParameters],
    cost_sensitive: bool,
    algorithm_name: str,
    runtime: Optional[Runtime] = None,
) -> SolverResult:
    """Common driver for TI-CARM (``cost_sensitive=False``) and TI-CSRM (True).

    ``runtime`` (or the ambient one) supplies a persistent worker pool for
    the sharded pool fills; when neither exists and the policy shards, the
    driver opens its own runtime for the duration of the call so all ``h``
    fills share one pool.
    """
    params = params or TIParameters()
    params.validate()
    policy = params.resolved_policy()
    rng = as_rng(params.seed)
    owned_runtime: Optional[Runtime] = None
    if runtime is None:
        runtime = current_runtime()
        if runtime is None:
            runtime = owned_runtime = Runtime(policy)
    try:
        pools, diagnostics = _build_pools(instance, params, policy, rng, runtime)
    finally:
        if owned_runtime is not None:
            owned_runtime.close()

    h = instance.num_advertisers
    budgets = instance.budgets()

    # Conservative upper-confidence penalty added to the revenue estimate when
    # checking budget feasibility (Hoeffding bound on the coverage fraction).
    penalties = {}
    for advertiser, pool in pools.items():
        pool_size = max(1, len(pool.rr_sets))
        fraction_error = math.sqrt(math.log(2.0 * h / params.delta) / (2.0 * pool_size))
        penalties[advertiser] = pool.cpe * instance.num_nodes * min(
            fraction_error, params.epsilon
        )

    if policy.greedy_engine == "batched":
        allocation, closed, per_advertiser = _run_allocation_batched(
            instance, pools, penalties, budgets, cost_sensitive
        )
        return SolverResult(
            allocation=allocation,
            revenue=sum(per_advertiser.values()),
            per_advertiser_revenue=per_advertiser,
            seeding_cost=instance.total_seeding_cost(allocation),
            algorithm=algorithm_name,
            depleted_budgets=len(closed),
            metadata={
                "epsilon": params.epsilon,
                "delta": params.delta,
                **diagnostics,
            },
        )

    allocation = Allocation(h)
    cost = {i: 0.0 for i in range(h)}
    closed: set[int] = set()

    def evaluate(element):
        node, advertiser = element
        gain = pools[advertiser].marginal_revenue(node)
        if cost_sensitive:
            return marginal_rate(gain, instance.cost(advertiser, node))
        return gain

    heap: LazyMarginalHeap = LazyMarginalHeap(evaluate)
    for advertiser in range(h):
        for node in range(instance.num_nodes):
            singleton = pools[advertiser].scale * len(
                pools[advertiser].membership.get(node, ())
            )
            if instance.cost(advertiser, node) + singleton <= budgets[advertiser]:
                heap.push((node, advertiser))

    while len(heap) and len(closed) < h:
        popped = heap.pop_best()
        if popped is None:
            break
        (node, advertiser), value = popped
        if advertiser in closed or allocation.is_assigned(node) or value <= 0.0:
            continue
        pool = pools[advertiser]
        gain = pool.marginal_revenue(node)
        node_cost = instance.cost(advertiser, node)
        projected_revenue = pool.revenue() + gain + penalties[advertiser]
        if cost[advertiser] + node_cost + projected_revenue <= budgets[advertiser]:
            allocation.assign(node, advertiser)
            pool.add_seed(node)
            cost[advertiser] += node_cost
            heap.advance_round()
        else:
            closed.add(advertiser)

    per_advertiser = {advertiser: pools[advertiser].revenue() for advertiser in range(h)}
    return SolverResult(
        allocation=allocation,
        revenue=sum(per_advertiser.values()),
        per_advertiser_revenue=per_advertiser,
        seeding_cost=instance.total_seeding_cost(allocation),
        algorithm=algorithm_name,
        depleted_budgets=len(closed),
        metadata={
            "epsilon": params.epsilon,
            "delta": params.delta,
            **diagnostics,
        },
    )
