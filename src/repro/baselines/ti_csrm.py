"""TI-CSRM — the practical, sampling-based Cost-Sensitive baseline of Aslay et al. [5]."""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.advertising.instance import RMInstance
from repro.baselines.ti_common import TIParameters, run_ti_baseline
from repro.core.result import SolverResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import Runtime


def ti_csrm(
    instance: RMInstance,
    params: Optional[TIParameters] = None,
    runtime: Optional["Runtime"] = None,
) -> SolverResult:
    """Run TI-CSRM (Topic-aware Influence Cost-Sensitive Revenue Maximization).

    Elements are ranked by the estimated marginal rate ζ — revenue gained per
    unit of budget consumed — so the allocation prefers cheap efficient seeds
    but still checks budget feasibility with the conservative upper bound
    that under-utilises the budget.  ``runtime`` supplies a persistent worker
    pool for sharded policies.
    """
    return run_ti_baseline(
        instance, params, cost_sensitive=True, algorithm_name="TI-CSRM", runtime=runtime
    )
