"""TIM-style sample sizing (Tang et al. [67]) used by TI-CARM / TI-CSRM.

TI-CARM and TI-CSRM extend TIM: for each advertiser they (i) estimate the
largest possible seed-set size ``k_i`` affordable under the budget, (ii)
estimate ``KPT_i`` — a lower bound on the expected spread of an optimal
``k_i``-seed set — from a pilot pool of RR-sets, and (iii) derive the pool
size ``θ_i ∝ n·(k_i·ln n + ln(1/δ)) / (ε²·KPT_i)``.  The ``1/ε²`` factor is
what makes the baselines' memory and running time blow up as ε shrinks
(Figure 4 of the paper).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.advertising.instance import RMInstance
from repro.exceptions import SolverError
from repro.rrsets.estimators import coverage_counts_by_node
from repro.rrsets.generator import RRSetGenerator
from repro.utils.rng import RandomSource, as_rng


def estimate_max_seed_count(instance: RMInstance, advertiser: int) -> int:
    """``k_i`` — the largest number of seeds advertiser ``i`` could afford.

    Every seed costs at least its seeding cost plus one engagement (itself),
    so ``k_i ≤ B_i / (min_u c_i(u) + cpe(i))``, capped at ``n`` and floored at 1.
    """
    costs = instance.cost_matrix()[advertiser]
    cheapest = float(costs.min()) + instance.cpe(advertiser)
    affordable = instance.budget(advertiser) / cheapest
    return int(min(instance.num_nodes, max(1.0, math.floor(affordable))))


def estimate_kpt(
    rr_sets: Sequence[np.ndarray],
    num_nodes: int,
    seed_count: int,
) -> float:
    """Pilot estimate of ``KPT_i`` — expected spread of a good ``k``-seed set.

    Greedy max-coverage over the pilot pool gives a lower bound on the
    optimal coverage, whose scaled value lower-bounds the optimal spread.
    """
    if not rr_sets:
        raise SolverError("KPT estimation needs a non-empty pilot pool")
    if seed_count <= 0:
        raise SolverError("seed_count must be positive")
    counts = coverage_counts_by_node(rr_sets, num_nodes)
    # Greedy on singleton counts (no overlap correction) is a cheap lower bound
    # surrogate; it only has to get the order of magnitude right.
    top = np.sort(counts)[::-1][:seed_count]
    covered_estimate = min(float(top.sum()), float(len(rr_sets)))
    kpt = num_nodes * covered_estimate / len(rr_sets)
    return max(kpt, 1.0)


def tim_sample_size(
    num_nodes: int,
    seed_count: int,
    kpt: float,
    epsilon: float,
    delta: float,
) -> int:
    """``θ_i`` — the TIM sample size for one advertiser.

    Uses the standard TIM form ``θ = (8 + 2ε)·n·(ln(1/δ) + ln C(n, k)) / (ε²·KPT)``
    with ``ln C(n, k) ≤ k·ln n``.
    """
    if epsilon <= 0 or not 0 < delta < 1:
        raise SolverError("epsilon must be positive and delta in (0, 1)")
    if kpt <= 0 or num_nodes <= 0 or seed_count <= 0:
        raise SolverError("kpt, num_nodes and seed_count must be positive")
    log_choose = seed_count * math.log(num_nodes) if num_nodes > 1 else 1.0
    theta = (8.0 + 2.0 * epsilon) * num_nodes * (math.log(1.0 / delta) + log_choose)
    theta /= epsilon ** 2 * kpt
    return int(math.ceil(theta))


def pilot_pool(
    instance: RMInstance,
    advertiser: int,
    size: int = 256,
    rng: RandomSource = None,
) -> list[np.ndarray]:
    """Generate the pilot RR-set pool used for KPT estimation."""
    if size <= 0:
        raise SolverError("pilot pool size must be positive")
    generator = RRSetGenerator(instance.graph, instance.edge_probabilities(advertiser))
    return generator.generate_many(size, as_rng(rng))
