"""Command-line interface.

Three sub-commands cover the common workflows:

``python -m repro.cli solve``
    Build a synthetic dataset, run one algorithm, print the evaluation.

``python -m repro.cli compare``
    Run several algorithms on the same instance and print a comparison table.

``python -m repro.cli dataset``
    Print the structural statistics of one of the synthetic datasets
    (the Table 1 view).

``python -m repro.cli refresh``
    Exercise the incremental RR-store maintenance loop: build a dataset,
    fill an :class:`~repro.rrsets.store.RRStore`, apply a synthetic batch
    of graph deltas and report how many RR-sets had to be redrawn
    (``--verify`` additionally checks bit-identity against a fresh store
    generated on the post-delta graph).

``python -m repro.cli serve``
    Run the long-lived allocation server: a warm runtime + RR-store
    answering line-delimited JSON requests (``allocate`` / ``spread`` /
    ``refresh`` / ``stats`` / ...) over stdio, TCP or a Unix socket, with
    bounded admission, per-request deadlines, graceful SIGTERM drain and
    checkpointed crash recovery (``--checkpoint-dir``).

The CLI is a thin wrapper over :mod:`repro.experiments`; everything it does
can also be done programmatically (see ``examples/``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.ti_common import TIParameters
from repro.core.sampling_solver import SamplingParameters
from repro.datasets.registry import DATASET_BUILDERS, build_dataset
from repro.experiments.figures import table1_datasets
from repro.experiments.metrics import independent_evaluator
from repro.experiments.report import format_table
from repro.experiments.runner import SAMPLING_ALGORITHMS, run_algorithm
from repro.exceptions import PolicyError
from repro.graph.deltas import (
    AddEdge,
    GraphDelta,
    MutableGraphView,
    RemoveEdge,
    UpdateProbability,
)
from repro.parallel.failure import ON_POOL_FAILURE_MODES
from repro.rrsets.store import RRStore
from repro.runtime import (
    ExecutionPolicy,
    FailurePolicy,
    MAINTENANCE_MODES,
    PAYLOAD_MODES,
    POLICY_PRESETS,
    Runtime,
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Revenue maximization in social advertising (SIGMOD 2021 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="run one algorithm on a synthetic dataset")
    _add_instance_arguments(solve)
    solve.add_argument(
        "--algorithm",
        default="RMA",
        choices=sorted(SAMPLING_ALGORITHMS),
        help="sampling-setting algorithm to run (default: RMA)",
    )
    _add_solver_arguments(solve)

    compare = subparsers.add_parser("compare", help="compare several algorithms on one instance")
    _add_instance_arguments(compare)
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["RMA", "TI-CSRM", "TI-CARM"],
        choices=sorted(SAMPLING_ALGORITHMS),
        help="algorithms to compare",
    )
    _add_solver_arguments(compare)

    dataset = subparsers.add_parser("dataset", help="print statistics of a synthetic dataset")
    dataset.add_argument("--name", default="lastfm_like", choices=sorted(DATASET_BUILDERS))
    dataset.add_argument("--scale", type=float, default=0.5)
    dataset.add_argument("--seed", type=int, default=7)

    refresh = subparsers.add_parser(
        "refresh", help="apply streaming graph deltas to an incremental RR-set store"
    )
    _add_instance_arguments(refresh)
    refresh.add_argument(
        "--rr-sets", type=int, default=2000, help="RR-sets to pre-generate in the store"
    )
    refresh.add_argument(
        "--deltas", type=int, default=8, help="synthetic graph deltas per refresh round"
    )
    refresh.add_argument(
        "--rounds", type=int, default=1, help="number of delta batches to apply"
    )
    refresh.add_argument(
        "--policy",
        default=None,
        choices=sorted(POLICY_PRESETS),
        help="execution-policy preset (default: fast)",
    )
    refresh.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for generation and maintenance re-draws",
    )
    refresh.add_argument(
        "--maintenance",
        default=None,
        choices=sorted(MAINTENANCE_MODES),
        help="where invalidation re-draws run: 'pool' (default) or 'inline'; "
        "bit-identical either way",
    )
    refresh.add_argument(
        "--payload",
        default=None,
        choices=sorted(PAYLOAD_MODES),
        help="worker-broadcast transport: 'auto' (default; shared memory for "
        "multi-MB payloads), 'pickle' or 'shm'; bit-identical either way",
    )
    refresh.add_argument(
        "--verify",
        action="store_true",
        help="after each round, regenerate a fresh store on the post-delta "
        "graph and assert it is bit-identical to the maintained store",
    )

    serve = subparsers.add_parser(
        "serve", help="run the long-lived allocation server (line-delimited JSON)"
    )
    _add_instance_arguments(serve)
    serve.add_argument(
        "--rr-sets", type=int, default=2000, help="RR-sets to generate in the store"
    )
    serve.add_argument(
        "--policy",
        default=None,
        choices=sorted(POLICY_PRESETS),
        help="execution-policy preset (default: fast)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for generation and maintenance re-draws",
    )
    serve.add_argument(
        "--maintenance",
        default=None,
        choices=sorted(MAINTENANCE_MODES),
        help="where invalidation re-draws run: 'pool' (default) or 'inline'",
    )
    serve.add_argument(
        "--payload",
        default=None,
        choices=sorted(PAYLOAD_MODES),
        help="worker-broadcast transport: 'auto' (default; shared memory for "
        "multi-MB payloads), 'pickle' or 'shm'; bit-identical either way",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline (requests may override with their "
        "own deadline_s field; default: none)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="bounded admission queue; requests beyond it are shed with a "
        "structured 'overloaded' error (default: 64)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        metavar="N",
        help="requests dispatched (and coalesced) per engine pass (default: 4)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="wall-clock budget for finishing in-flight requests on "
        "SIGTERM/SIGINT/shutdown (default: 10)",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="directory for the checksummed RR-store checkpoint and the "
        "delta write-ahead journal; enables kill -9 crash recovery",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint every N accepted delta batches (0: only at startup, "
        "on drain and on explicit checkpoint requests)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="listen on TCP 127.0.0.1:PORT instead of stdio (0: ephemeral, "
        "announced on stderr)",
    )
    serve.add_argument(
        "--unix-socket",
        default=None,
        metavar="PATH",
        help="listen on a Unix-domain socket instead of stdio",
    )

    return parser


def _add_instance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="lastfm_like", choices=sorted(DATASET_BUILDERS))
    parser.add_argument("--advertisers", type=int, default=5, help="number of advertisers h")
    parser.add_argument(
        "--incentive",
        default="linear",
        choices=["linear", "quasilinear", "superlinear", "constant", "degree"],
        help="seed incentive (pricing) model",
    )
    parser.add_argument("--alpha", type=float, default=0.1, help="incentive scale α")
    parser.add_argument("--scale", type=float, default=0.3, help="network size multiplier")
    parser.add_argument("--seed", type=int, default=7, help="random seed")


def _add_solver_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--epsilon", type=float, default=0.1, help="approximation slack ε")
    parser.add_argument("--rho", type=float, default=0.1, help="budget overshoot control ϱ")
    parser.add_argument("--tau", type=float, default=0.1, help="threshold-search trade-off τ")
    parser.add_argument("--initial-rr-sets", type=int, default=512)
    parser.add_argument("--max-rr-sets", type=int, default=4096)
    parser.add_argument("--evaluation-rr-sets", type=int, default=10000)
    parser.add_argument(
        "--policy",
        default=None,
        choices=sorted(POLICY_PRESETS),
        help="execution-policy preset: 'fast' (SUBSIM + batched MC + batched "
        "greedy + all cores; the default) or 'seed' (the serial "
        "bit-reproducible escape hatch that replays the original seed "
        "tree's RNG streams); combine with --jobs to pin the worker count",
    )
    parser.add_argument("--subsim", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--batched-greedy", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="shard RR generation and MC estimation across N worker processes "
        "(-1: all cores, the default via --policy fast; 1: serial)",
    )
    parser.add_argument("--fast", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard wall-clock timeout for the worker pool; a shard that "
        "exceeds it is retried or run serially (default: no timeout)",
    )
    parser.add_argument(
        "--on-pool-failure",
        default=None,
        choices=sorted(ON_POOL_FAILURE_MODES),
        help="what to do when a worker dies or a shard times out: 'degrade' "
        "(retry deterministically, then fall back to serial; the default) or "
        "'raise' (fail fast with an ExecutionError)",
    )
    parser.add_argument(
        "--payload",
        default=None,
        choices=sorted(PAYLOAD_MODES),
        help="worker-broadcast transport: 'auto' (default; shared memory once "
        "the graph + probabilities reach a few MB), 'pickle' (always the "
        "pool's pipes) or 'shm' (always one shared-memory segment); results "
        "are bit-identical either way",
    )


def _policy_flag_conflict(args: argparse.Namespace) -> Optional[str]:
    """The retired per-engine-flag error message, or ``None``.

    ``--subsim`` / ``--batched-greedy`` / ``--fast`` are gone; ``--policy``
    is the only engine-selection channel (and ``fast`` is already the
    default).  The flags are still parsed (hidden) so users get a pointed
    message instead of argparse's generic "unrecognized arguments".
    ``main`` reports this through ``parser.error`` (usage text, exit
    code 2).
    """
    retired = [
        flag
        for flag, set_ in (
            ("--subsim", getattr(args, "subsim", False)),
            ("--batched-greedy", getattr(args, "batched_greedy", False)),
            ("--fast", getattr(args, "fast", False)),
        )
        if set_
    ]
    if retired:
        return (
            f"{'/'.join(retired)} has been removed; the fast engines are the "
            "default — use --policy seed for the bit-reproducible serial "
            "path, or --policy fast --jobs N to pin the worker count"
        )
    return None


def _resolve_failure(args: argparse.Namespace) -> Optional[FailurePolicy]:
    """The :class:`FailurePolicy` requested on the command line, or ``None``.

    ``None`` means "keep the policy's default" — recovery knobs never touch
    results, so they layer on top of whatever preset/flags selected the
    engines.
    """
    if args.shard_timeout is None and args.on_pool_failure is None:
        return None
    return FailurePolicy(
        shard_timeout_s=args.shard_timeout,
        on_pool_failure=args.on_pool_failure or "degrade",
    )


def _resolve_policy(args: argparse.Namespace) -> ExecutionPolicy:
    """Build the effective :class:`ExecutionPolicy` from the CLI flags.

    ``--policy fast`` is the default; ``--jobs`` and the failure knobs
    layer on top of whichever preset was selected.
    """
    conflict = _policy_flag_conflict(args)
    if conflict is not None:  # direct programmatic use, bypassing main()
        raise PolicyError(conflict)
    failure = _resolve_failure(args)
    policy = (
        ExecutionPolicy.preset(args.policy)
        if args.policy is not None
        else ExecutionPolicy.fast()
    )
    if args.jobs is not None:
        policy = policy.evolve(n_jobs=args.jobs)
    if failure is not None:
        policy = policy.evolve(failure=failure)
    if getattr(args, "payload", None) is not None:
        policy = policy.evolve(payload=args.payload)
    return policy


def _prepare(args: argparse.Namespace):
    data = build_dataset(
        args.dataset,
        num_advertisers=args.advertisers,
        incentive=args.incentive,
        alpha=args.alpha,
        scale=args.scale,
        seed=args.seed,
        singleton_rr_sets=500,
    )
    policy = _resolve_policy(args)
    sampling = SamplingParameters(
        epsilon=args.epsilon,
        rho=args.rho,
        tau=args.tau,
        initial_rr_sets=args.initial_rr_sets,
        max_rr_sets=args.max_rr_sets,
        policy=policy,
        seed=args.seed,
    )
    ti = TIParameters(
        epsilon=max(args.epsilon, 0.05),
        pilot_size=128,
        max_rr_sets_per_advertiser=max(256, args.max_rr_sets // max(args.advertisers, 1)),
        policy=policy,
        seed=args.seed,
    )
    return data, policy, sampling, ti


def _run_row(args, data, algorithm, sampling, ti, evaluator, runtime) -> dict:
    # The baselines receive the (1 + rho)-scaled budget, as in the paper.
    instance = data.instance
    if algorithm not in ("RMA", "OneBatchRM"):
        instance = instance.with_scaled_budgets(1.0 + args.rho)
    run = run_algorithm(
        algorithm,
        instance,
        evaluator=evaluator,
        sampling_params=sampling,
        ti_params=ti,
        runtime=runtime,
    )
    return {
        "algorithm": algorithm,
        "revenue": run.evaluation.revenue,
        "seeding_cost": run.evaluation.seeding_cost,
        "seeds": run.evaluation.total_seeds,
        "budget_usage": run.evaluation.budget_usage,
        "rate_of_return": run.evaluation.rate_of_return,
        "time_s": round(run.running_time_seconds, 3),
    }


def _report_recovery(runtime: Runtime) -> None:
    """Print the pool's recovery telemetry when any recovery happened.

    Silent on a failure-free run — the common case stays one
    ``effective policy:`` line; crashes/timeouts/retries surface next to it.
    """
    stats = runtime.recovery_stats
    if stats.events:
        print(f"recovery: {stats.describe()}")


def command_solve(args: argparse.Namespace) -> int:
    """Handle ``repro solve``."""
    data, policy, sampling, ti = _prepare(args)
    print(f"effective policy: {policy.describe()}")
    with Runtime(policy) as runtime:
        evaluator = independent_evaluator(
            data.instance,
            num_rr_sets=args.evaluation_rr_sets,
            seed=args.seed + 1,
            policy=policy,
            runtime=runtime,
        )
        row = _run_row(args, data, args.algorithm, sampling, ti, evaluator, runtime)
        _report_recovery(runtime)
    print(
        format_table(
            [row],
            title=(
                f"{args.algorithm} on {args.dataset} "
                f"(h={args.advertisers}, {args.incentive}, alpha={args.alpha})"
            ),
        )
    )
    return 0


def command_compare(args: argparse.Namespace) -> int:
    """Handle ``repro compare``."""
    data, policy, sampling, ti = _prepare(args)
    print(f"effective policy: {policy.describe()}")
    with Runtime(policy) as runtime:
        evaluator = independent_evaluator(
            data.instance,
            num_rr_sets=args.evaluation_rr_sets,
            seed=args.seed + 1,
            policy=policy,
            runtime=runtime,
        )
        rows = [
            _run_row(args, data, algorithm, sampling, ti, evaluator, runtime)
            for algorithm in args.algorithms
        ]
        _report_recovery(runtime)
    print(
        format_table(
            rows,
            title=(
                f"Comparison on {args.dataset} "
                f"(h={args.advertisers}, {args.incentive}, alpha={args.alpha})"
            ),
        )
    )
    best = max(rows, key=lambda row: row["revenue"])
    print(f"Best revenue: {best['algorithm']} ({best['revenue']:.1f})")
    return 0


def command_dataset(args: argparse.Namespace) -> int:
    """Handle ``repro dataset``."""
    rows = table1_datasets(scale=args.scale, seed=args.seed, datasets=[args.name])
    print(format_table(rows, title=f"Dataset statistics: {args.name}"))
    return 0


def _synthesize_deltas(
    view: MutableGraphView, count: int, seed: int
) -> List[GraphDelta]:
    """A deterministic batch of valid deltas for the ``refresh`` demo.

    Mostly per-advertiser probability updates (the localized case), with a
    sprinkle of edge insertions and removals.  Tracks the evolving edge set
    while synthesizing so the batch stays valid when applied in order.
    """
    rng = np.random.default_rng(seed)
    graph = view.graph
    edges = {
        (int(u), int(v)) for u, v in zip(graph.sources, graph.targets)
    }
    h = view.num_advertisers
    n = graph.num_nodes
    deltas: List[GraphDelta] = []
    while len(deltas) < count:
        roll = float(rng.random())
        if roll < 0.7 and edges:
            edge_id = int(rng.integers(0, graph.num_edges))
            u, v = int(graph.sources[edge_id]), int(graph.targets[edge_id])
            if (u, v) not in edges:
                continue
            advertiser = int(rng.integers(0, h))
            deltas.append(
                UpdateProbability(
                    u, v, float(rng.uniform(0.01, 0.5)), advertiser=advertiser
                )
            )
        elif roll < 0.85:
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u == v or (u, v) in edges:
                continue
            probabilities = tuple(float(p) for p in rng.uniform(0.01, 0.5, h))
            deltas.append(AddEdge(u, v, probabilities))
            edges.add((u, v))
        else:
            edge_id = int(rng.integers(0, graph.num_edges))
            u, v = int(graph.sources[edge_id]), int(graph.targets[edge_id])
            if (u, v) not in edges:
                continue
            deltas.append(RemoveEdge(u, v))
            edges.discard((u, v))
    return deltas


def _verify_refresh(store: RRStore, runtime: Runtime) -> None:
    """Assert the maintained store matches a fresh one on the current graph."""
    fresh_view = MutableGraphView(
        store.view.graph, store.view.advertiser_edge_probabilities
    )
    fresh = RRStore(
        fresh_view,
        store.cpes,
        seed=store.seed,
        policy=store.policy,
        runtime=runtime,
    )
    fresh.generate(len(store.collection))
    maintained, regenerated = store.collection, fresh.collection
    identical = (
        np.array_equal(maintained.member_array, regenerated.member_array)
        and np.array_equal(maintained.set_offsets, regenerated.set_offsets)
        and np.array_equal(maintained.tag_array, regenerated.tag_array)
        and np.array_equal(np.asarray(store.roots()), np.asarray(fresh.roots()))
    )
    if not identical:
        raise SystemExit(
            "verification FAILED: maintained store differs from fresh regeneration"
        )
    print("verify: maintained store is bit-identical to fresh regeneration")


def command_refresh(args: argparse.Namespace) -> int:
    """Handle ``repro refresh``."""
    data = build_dataset(
        args.dataset,
        num_advertisers=args.advertisers,
        incentive=args.incentive,
        alpha=args.alpha,
        scale=args.scale,
        seed=args.seed,
        singleton_rr_sets=128,
    )
    instance = data.instance
    policy = (
        ExecutionPolicy.preset(args.policy)
        if args.policy is not None
        else ExecutionPolicy.fast()
    )
    if args.jobs is not None:
        policy = policy.evolve(n_jobs=args.jobs)
    if args.maintenance is not None:
        policy = policy.evolve(maintenance=args.maintenance)
    if args.payload is not None:
        policy = policy.evolve(payload=args.payload)
    print(f"effective policy: {policy.describe()}")
    with Runtime(policy) as runtime:
        view = MutableGraphView(instance.graph, instance.all_edge_probabilities())
        store = RRStore(
            view, instance.cpes(), seed=args.seed, policy=policy, runtime=runtime
        )
        store.generate(args.rr_sets)
        print(
            f"store: {len(store.collection)} RR-sets over "
            f"{view.num_nodes} nodes / {view.num_edges} edges"
        )
        for round_id in range(args.rounds):
            deltas = _synthesize_deltas(
                view, args.deltas, seed=args.seed + 1 + round_id
            )
            report = store.apply_deltas(deltas)
            print(
                f"round {round_id + 1}: {len(deltas)} deltas -> epoch "
                f"{report.epoch}, redrawn {report.redrawn}/{report.total} "
                f"({report.reason}, kept {report.kept})"
            )
            if args.verify:
                _verify_refresh(store, runtime)
    return 0


def command_serve(args: argparse.Namespace) -> int:
    """Handle ``repro serve``.

    Protocol replies go to stdout (stdio mode) or the sockets; operational
    banners and the final drain summary go to stderr so they never corrupt
    the reply stream.
    """
    import signal
    from pathlib import Path

    from repro.serve import AllocationServer, ServicePolicy, SocketListener, serve_stdio

    if args.port is not None and args.unix_socket is not None:
        raise SystemExit("--port and --unix-socket are mutually exclusive")
    data = build_dataset(
        args.dataset,
        num_advertisers=args.advertisers,
        incentive=args.incentive,
        alpha=args.alpha,
        scale=args.scale,
        seed=args.seed,
        singleton_rr_sets=128,
    )
    policy = (
        ExecutionPolicy.preset(args.policy)
        if args.policy is not None
        else ExecutionPolicy.fast()
    )
    if args.jobs is not None:
        policy = policy.evolve(n_jobs=args.jobs)
    if args.maintenance is not None:
        policy = policy.evolve(maintenance=args.maintenance)
    if args.payload is not None:
        policy = policy.evolve(payload=args.payload)
    service = ServicePolicy(
        deadline_s=args.deadline,
        queue_depth=args.queue_depth,
        max_inflight=args.max_inflight,
        drain_grace_s=args.drain_grace,
        checkpoint_every=args.checkpoint_every,
    )
    server = AllocationServer(
        data.instance,
        policy=policy,
        service=service,
        rr_sets=args.rr_sets,
        seed=args.seed,
        checkpoint_dir=Path(args.checkpoint_dir) if args.checkpoint_dir else None,
    )
    server.start()

    def _drain_signal(signum, frame):
        print(f"signal {signum}: draining", file=sys.stderr, flush=True)
        server.initiate_drain()

    # Handlers go in before the readiness banner: once "serving:" is out,
    # a supervisor may signal at any moment.
    signal.signal(signal.SIGTERM, _drain_signal)
    signal.signal(signal.SIGINT, _drain_signal)
    store = server.store
    print(f"effective policy: {policy.describe()}", file=sys.stderr)
    print(f"service policy: {service.describe()}", file=sys.stderr)
    source = (
        f"restored from checkpoint (replayed {server.replayed_batches} "
        "journaled batches)"
        if server.restored
        else "generated fresh"
    )
    print(
        f"serving: {len(store)} RR-sets over {store.view.num_nodes} nodes, "
        f"epoch {server.epoch}, {source}",
        file=sys.stderr,
        flush=True,
    )
    try:
        if args.port is not None or args.unix_socket is not None:
            listener = SocketListener(
                server, port=args.port, unix_path=args.unix_socket
            )
            print(f"listening: {listener.address}", file=sys.stderr, flush=True)
            listener.serve_until_stopped()
        else:
            serve_stdio(server, sys.stdin, sys.stdout)
    finally:
        server.close()
    counters = server.stats.as_dict()
    print(
        f"drained: {counters['completed']} completed, "
        f"{counters['failed']} failed, {counters['shed']} shed, "
        f"{counters['rejected']} rejected",
        file=sys.stderr,
    )
    _report_recovery(server.runtime)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    conflict = _policy_flag_conflict(args) if hasattr(args, "policy") else None
    if conflict is not None:
        parser.error(conflict)
    handlers = {
        "solve": command_solve,
        "compare": command_compare,
        "dataset": command_dataset,
        "refresh": command_refresh,
        "serve": command_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
