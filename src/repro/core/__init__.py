"""The paper's algorithms: oracle-setting solvers, sampling solvers and bounds."""

from repro.core.result import SolverResult, SearchByproducts
from repro.core.batched_greedy import CoverageGreedyEngine, supports_batched_greedy
from repro.core.greedy import greedy_single_advertiser
from repro.core.threshold_greedy import threshold_greedy, fill
from repro.core.search import search_threshold, gamma_max
from repro.core.oracle_solver import rm_with_oracle, approximation_ratio
from repro.core.seek_ub import seek_upper_bound
from repro.core.bounds import (
    theta_max,
    theta_hat_max,
    theta_bar_max,
    theta_zero,
    max_seeds_per_advertiser,
)
from repro.core.sampling_solver import rm_without_oracle, one_batch_rm, SamplingParameters
from repro.core.influence_maximization import (
    influence_maximization,
    greedy_max_coverage,
    spread_of_seeds,
)

__all__ = [
    "SolverResult",
    "SearchByproducts",
    "CoverageGreedyEngine",
    "supports_batched_greedy",
    "greedy_single_advertiser",
    "threshold_greedy",
    "fill",
    "search_threshold",
    "gamma_max",
    "rm_with_oracle",
    "approximation_ratio",
    "seek_upper_bound",
    "theta_max",
    "theta_hat_max",
    "theta_bar_max",
    "theta_zero",
    "max_seeds_per_advertiser",
    "rm_without_oracle",
    "one_batch_rm",
    "SamplingParameters",
    "influence_maximization",
    "greedy_max_coverage",
    "spread_of_seeds",
]
