"""Batched lazy-greedy coverage engine — vectorized element evaluation.

Every greedy consumer in the repo (Algorithms 1-3, CA/CS-Greedy, the TI
baselines' allocation loop) ranks ``(node, advertiser)`` elements by marginal
gain or marginal rate.  With an :class:`~repro.advertising.oracle.RRSetOracle`
those marginals are pure maximum-coverage counts, and
:class:`~repro.rrsets.collection.CoverageState` already maintains the full
``(h, n)`` marginal matrix incrementally.  The seed code path nevertheless
routes every (re-)evaluation through a scalar Python callback —
``oracle.marginal_revenue`` with its frozenset hashing and per-advertiser
mask caches — which is the last large Python-loop hot path after the RR-set
and Monte-Carlo engine rewrites.

This module is the glue between those two layers:

* **Element encoding** — an element ``(node, advertiser)`` is the int64 key
  ``advertiser · n + node``, i.e. the *flat index* into both the raveled
  ``(h, n)`` marginal matrix and the raveled ``(h, n)`` seeding-cost matrix.
  Decoding is one ``divmod``; a batch of keys gathers marginals and costs
  with plain fancy indexing, no per-element arithmetic.
* :class:`CoverageGreedyEngine` — owns a fresh
  :class:`~repro.rrsets.collection.CoverageState` over the oracle's
  collection plus read-only flat views of the marginal and cost matrices,
  and exposes the three vectorized evaluators the consumers need
  (:meth:`gains`, :meth:`rates`, and the feasibility filter
  :meth:`feasible_element_keys`).  ``add_seed`` forwards to the coverage
  state, so a subsequent gather sees the updated marginals.

Paired with :class:`~repro.utils.lazy_heap.BatchedLazyGreedy`, a greedy
round becomes: pop the stale top, refresh it and the next batch of stale
candidates with **one** gather ``scale · marginal[keys]`` (plus one
vectorized rate transform for the rate-ranked consumers), and select the
surviving top element.  Gains are computed as ``scale × integer-count``
exactly like the scalar oracle path, so accept/reject decisions see
bit-identical floats, and the batched heap replays the scalar heap's refresh
schedule and tie-breaking exactly (see :mod:`repro.utils.lazy_heap`) — the
batched consumers select *identical allocations*, just faster.

The engine requires an :class:`RRSetOracle`; consumers fall back to the seed
scalar path for Monte-Carlo / exact oracles, where a batch evaluation would
still be one simulation per element.  Use :func:`supports_batched_greedy` to
test eligibility.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RevenueOracle, RRSetOracle
from repro.exceptions import ProblemDefinitionError
from repro.rrsets.collection import CoverageState

#: default number of stale candidates refreshed per vectorized gather
DEFAULT_BATCH_SIZE = 64


def supports_batched_greedy(oracle: RevenueOracle, instance: RMInstance) -> bool:
    """Whether the batched coverage engine can drive this oracle.

    True only for an :class:`RRSetOracle` covering at least the instance's
    advertisers; other oracles have no coverage matrix to gather from.
    """
    return (
        isinstance(oracle, RRSetOracle)
        and oracle.num_advertisers >= instance.num_advertisers
    )


class CoverageGreedyEngine:
    """Vectorized marginal evaluation over an RR-set oracle's coverage state.

    Parameters
    ----------
    instance:
        Supplies the ``(h, n)`` seeding-cost matrix and budgets.
    oracle:
        The RR-set oracle whose collection backs the coverage state.  The
        engine builds its own :class:`CoverageState`, so the oracle's caches
        are left untouched and remain usable for final revenue queries.
    """

    def __init__(self, instance: RMInstance, oracle: RRSetOracle):
        if not supports_batched_greedy(oracle, instance):
            raise ProblemDefinitionError(
                "CoverageGreedyEngine requires an RRSetOracle covering the instance"
            )
        self._instance = instance
        self._oracle = oracle
        self._num_nodes = instance.num_nodes
        self._scale = oracle.scale
        self._state = CoverageState(oracle.collection)
        # Flat views sharing the underlying buffers: marginal updates made by
        # add_seed are visible through _marginal_flat with no re-gather.
        self._marginal_flat = self._state.marginal_matrix().ravel()
        self._cost_flat = instance.cost_matrix().ravel()

    # ------------------------------------------------------------------ #
    # element encoding
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of graph nodes ``n`` (the key-encoding stride)."""
        return self._num_nodes

    @property
    def scale(self) -> float:
        """``nΓ / |R|`` — revenue per covered RR-set (from the oracle)."""
        return self._scale

    @property
    def state(self) -> CoverageState:
        """The engine's private coverage state."""
        return self._state

    def encode(self, node: int, advertiser: int) -> int:
        """Flat element key ``advertiser·n + node``."""
        return advertiser * self._num_nodes + int(node)

    def decode(self, key: int) -> Tuple[int, int]:
        """Inverse of :meth:`encode` — returns ``(node, advertiser)``."""
        advertiser, node = divmod(int(key), self._num_nodes)
        return node, advertiser

    # ------------------------------------------------------------------ #
    # vectorized evaluators
    # ------------------------------------------------------------------ #
    def gains(self, keys: np.ndarray) -> np.ndarray:
        """Marginal revenues ``π_i(u | S_i)`` for a batch of element keys."""
        return self._scale * self._marginal_flat[keys]

    def rates(self, keys: np.ndarray) -> np.ndarray:
        """Marginal rates ``ζ = gain / (cost + gain)`` for a batch of keys.

        Elementwise identical (IEEE-754) to the scalar
        :func:`repro.core.greedy.marginal_rate` on the same gains/costs.
        """
        gains = self.gains(keys)
        positive = gains > 0.0
        rates = np.zeros(gains.shape, dtype=np.float64)
        np.divide(
            gains, self._cost_flat[keys] + gains, out=rates, where=positive
        )
        return rates

    def node_gains(self, advertiser: int, nodes: np.ndarray) -> np.ndarray:
        """Marginal revenues of ``nodes`` for a single advertiser."""
        return self.gains(advertiser * self._num_nodes + nodes)

    def node_rates(self, advertiser: int, nodes: np.ndarray) -> np.ndarray:
        """Marginal rates of ``nodes`` for a single advertiser."""
        return self.rates(advertiser * self._num_nodes + nodes)

    def gain(self, advertiser: int, node: int) -> float:
        """Scalar marginal revenue — same float the oracle path computes."""
        return self._scale * int(
            self._marginal_flat[advertiser * self._num_nodes + int(node)]
        )

    # ------------------------------------------------------------------ #
    # feasibility initialisation
    # ------------------------------------------------------------------ #
    def candidate_nodes(self, candidates: Optional[Iterable[int]]) -> np.ndarray:
        """Candidate pool as an int64 array (defaults to all nodes), validated."""
        if candidates is None:
            return np.arange(self._num_nodes, dtype=np.int64)
        nodes = np.asarray([int(node) for node in candidates], dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self._num_nodes):
            bad = nodes[(nodes < 0) | (nodes >= self._num_nodes)][0]
            raise ProblemDefinitionError(f"node {bad} out of range")
        return nodes

    def singleton_feasible_nodes(
        self, advertiser: int, budget: float, candidates: Optional[Iterable[int]] = None
    ) -> np.ndarray:
        """Nodes whose singleton cost + revenue fits ``budget`` (Line 1 of Alg. 1).

        Singleton revenue is ``scale × membership count`` — the initial
        marginal matrix — so the filter is one vectorized comparison.
        """
        nodes = self.candidate_nodes(candidates)
        keys = advertiser * self._num_nodes + nodes
        singleton = self._scale * self._oracle.collection.membership_counts().ravel()[keys]
        mask = self._cost_flat[keys] + singleton <= budget
        return nodes[mask]

    def feasible_element_keys(
        self,
        budgets: np.ndarray,
        candidates: Optional[Iterable[int]] = None,
    ) -> np.ndarray:
        """All singleton-feasible element keys, advertiser-major.

        Matches the element order of the scalar
        ``threshold_greedy._candidate_elements`` path (advertiser-major,
        candidate order within each advertiser), which is behaviour: the lazy
        heaps break exact ties by insertion order.
        """
        nodes = self.candidate_nodes(candidates)
        singleton_counts = self._oracle.collection.membership_counts().ravel()
        chunks: List[np.ndarray] = []
        for advertiser in range(self._instance.num_advertisers):
            keys = advertiser * self._num_nodes + nodes
            singleton = self._scale * singleton_counts[keys]
            mask = self._cost_flat[keys] + singleton <= budgets[advertiser]
            chunks.append(keys[mask])
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    # ------------------------------------------------------------------ #
    # state updates
    # ------------------------------------------------------------------ #
    def add_seed(self, advertiser: int, node: int) -> int:
        """Assign ``node`` to ``advertiser``; returns the newly covered count.

        Only RR-sets tagged ``advertiser`` are covered (tags partition the
        collection), so the other advertisers' marginal rows are untouched.
        """
        return self._state.add_seed(advertiser, int(node))

    def revenue_for(self, advertiser: int) -> float:
        """``scale × covered count`` for one advertiser's accumulated seeds."""
        return self._scale * self._state.covered_count_for(advertiser)
