"""Sample-size bounds and concentration helpers of Section 4 (Theorem 4.2).

The one-batch bound ``θ_max = max(θ̂_max, θ̄_max)`` guarantees the bicriteria
approximation when that many RR-sets are generated up front; the progressive
solver uses it as the hard cap of its doubling schedule, together with the
starting size ``θ_0`` and the per-check martingale bounds of Lemma B.7
(the same bounds used by the OPIM-C framework).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.advertising.instance import RMInstance
from repro.exceptions import SolverError


def max_seeds_per_advertiser(instance: RMInstance, rho: float) -> np.ndarray:
    """``μ_i`` — the most nodes advertiser ``i`` can hold under ``(1+ϱ)·B_i``.

    Every selected node costs at least ``c_i(u)`` in incentives and at least
    ``cpe(i)`` in engagement payments (a seed always activates itself), so
    ``μ_i ≤ (1+ϱ)·B_i / min_u(c_i(u) + cpe(i))``, capped at ``n``.
    """
    if rho <= 0:
        raise SolverError("rho must be positive")
    costs = instance.cost_matrix()
    mus = np.zeros(instance.num_advertisers, dtype=np.float64)
    for advertiser in range(instance.num_advertisers):
        cheapest = float(costs[advertiser].min()) + instance.cpe(advertiser)
        affordable = (1.0 + rho) * instance.budget(advertiser) / cheapest
        mus[advertiser] = min(instance.num_nodes, max(1.0, math.floor(affordable)))
    return mus


def theta_hat_max(
    num_nodes: int,
    lam: float,
    epsilon: float,
    delta: float,
    mus: Sequence[float],
) -> float:
    """``θ̂_max`` of Theorem 4.2 — controls the (λ−ε)·OPT approximation events."""
    if epsilon <= 0 or delta <= 0 or delta >= 1:
        raise SolverError("epsilon must be positive and delta in (0, 1)")
    mus = np.asarray(mus, dtype=np.float64)
    log_term = math.log(4.0 / delta)
    entropy_term = float(np.sum(mus * np.log(math.e * num_nodes / np.maximum(mus, 1.0))))
    inner = lam * math.sqrt(log_term) + math.sqrt(lam * (log_term + entropy_term))
    return 2.0 * num_nodes / (epsilon ** 2) * inner ** 2


def theta_bar_max(
    num_nodes: int,
    gamma: float,
    rho: float,
    min_budget: float,
    delta: float,
    num_advertisers: int,
    mu_max: float,
) -> float:
    """``θ̄_max`` of Theorem 4.2 — controls the budget-feasibility events."""
    if min_budget <= 0 or gamma <= 0:
        raise SolverError("gamma and min_budget must be positive")
    if rho <= 0 or not 0 < delta < 1:
        raise SolverError("rho must be positive and delta in (0, 1)")
    log_term = math.log(4.0 * num_advertisers / delta)
    entropy_term = mu_max * math.log(math.e * num_nodes / max(mu_max, 1.0))
    return 8.0 * num_nodes * gamma * (1.0 + rho) / (rho ** 2 * min_budget) * (
        log_term + entropy_term
    )


def theta_max(
    instance: RMInstance,
    lam: float,
    epsilon: float,
    delta: float,
    rho: float,
) -> float:
    """``θ_max = max(θ̂_max, θ̄_max)`` for an instance (Theorem 4.2)."""
    mus = max_seeds_per_advertiser(instance, rho)
    hat = theta_hat_max(instance.num_nodes, lam, epsilon, delta, mus)
    bar = theta_bar_max(
        instance.num_nodes,
        instance.gamma,
        rho,
        instance.min_budget,
        delta,
        instance.num_advertisers,
        float(mus.max()),
    )
    return max(hat, bar)


def theta_zero(instance: RMInstance, rho: float, delta_prime: float) -> float:
    """``θ_0`` — the initial RR-set pool size of Algorithm 6 (Line 3)."""
    if rho <= 0 or not 0 < delta_prime < 1:
        raise SolverError("rho must be positive and delta_prime in (0, 1)")
    return (
        4.0
        * instance.num_nodes
        * instance.gamma
        * (2.0 + rho / 3.0)
        / (rho ** 2 * instance.min_budget)
        * math.log(instance.num_advertisers / delta_prime)
    )


# --------------------------------------------------------------------------- #
# Martingale concentration bounds (Lemma B.7, following Tang et al. OPIM-C)
# --------------------------------------------------------------------------- #
def upper_bound_from_estimate(
    estimated_revenue: float, num_rr_sets: int, scale_total: float, a: float
) -> float:
    """High-probability upper bound on the true revenue given its estimate.

    ``scale_total`` is ``nΓ``; the estimate is ``π̃`` over ``num_rr_sets``
    RR-sets; ``a`` is the log-confidence parameter (``e^{-a}`` failure
    probability).  Implements the first inequality of Lemma B.7.
    """
    if num_rr_sets <= 0 or scale_total <= 0:
        raise SolverError("num_rr_sets and scale_total must be positive")
    if a < 0:
        raise SolverError("a must be non-negative")
    coverage = max(0.0, estimated_revenue) * num_rr_sets / scale_total
    root = math.sqrt(coverage + a / 2.0) + math.sqrt(a / 2.0)
    return root ** 2 * scale_total / num_rr_sets


def lower_bound_from_estimate(
    estimated_revenue: float, num_rr_sets: int, scale_total: float, a: float
) -> float:
    """High-probability lower bound on the true revenue given its estimate.

    Implements the second inequality of Lemma B.7; never returns a negative
    value.
    """
    if num_rr_sets <= 0 or scale_total <= 0:
        raise SolverError("num_rr_sets and scale_total must be positive")
    if a < 0:
        raise SolverError("a must be non-negative")
    coverage = max(0.0, estimated_revenue) * num_rr_sets / scale_total
    root = math.sqrt(coverage + 2.0 * a / 9.0) - math.sqrt(a / 2.0)
    value = (root ** 2 - a / 18.0) * scale_total / num_rr_sets
    return max(0.0, value)


def epsilon_split(
    epsilon: float, lam: float, delta: float, num_nodes: int, mus: Sequence[float]
) -> tuple[float, float]:
    """The (ε1, ε2) split of Eq. (15)-(16) used in the proof of Theorem 4.2.

    Exposed mainly for tests that verify ``ε = λ·ε1 + ε2``.
    """
    if epsilon <= 0 or not 0 < delta < 1:
        raise SolverError("epsilon must be positive and delta in (0, 1)")
    mus = np.asarray(mus, dtype=np.float64)
    log_term = math.log(4.0 / delta)
    entropy_term = float(np.sum(mus * np.log(math.e * num_nodes / np.maximum(mus, 1.0))))
    denominator = lam * math.sqrt(log_term) + math.sqrt(lam * (log_term + entropy_term))
    epsilon_one = epsilon * math.sqrt(log_term) / denominator
    epsilon_two = epsilon - lam * epsilon_one
    return epsilon_one, epsilon_two
