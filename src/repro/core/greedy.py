"""Algorithm 1 — ``Greedy(U, i)`` for a single advertiser.

The algorithm repeatedly picks the candidate with the largest *marginal rate*

    ζ_i(u | S_i) = π_i(u | S_i) / (c_i(u) + π_i(u | S_i))

and adds it to ``S_i`` while the submodular-knapsack constraint
``c_i(S_i) + π_i(S_i) ≤ B_i`` holds.  The first node that would overflow the
budget is stored separately as the "stopple node" ``D_i``, and the better of
``S_i`` and ``D_i`` is returned.  Theorem 3.1 proves this is a
1/3-approximation when ``U = V``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple, TYPE_CHECKING

import numpy as np

from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RevenueOracle
from repro.core.batched_greedy import (
    CoverageGreedyEngine,
    supports_batched_greedy,
)
from repro.exceptions import SolverError
from repro.utils.lazy_heap import BatchedLazyGreedy, LazyMarginalHeap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import ExecutionPolicy


def marginal_rate(marginal_gain: float, cost: float) -> float:
    """The marginal rate ``ζ = gain / (cost + gain)`` (Eq. 2 of the paper).

    Returns 0 for a non-positive gain; the denominator is always positive
    because node costs are strictly positive.
    """
    if marginal_gain <= 0.0:
        return 0.0
    return marginal_gain / (cost + marginal_gain)


def greedy_single_advertiser(
    instance: RMInstance,
    oracle: RevenueOracle,
    advertiser: int,
    candidates: Optional[Iterable[int]] = None,
    budget: Optional[float] = None,
    policy: Optional["ExecutionPolicy"] = None,
) -> Tuple[Set[int], Set[int], Set[int]]:
    """Run ``Greedy(U, i)`` and return ``(S_i*, S_i, D_i)``.

    Parameters
    ----------
    instance:
        The RM instance (supplies costs and the default budget).
    oracle:
        Revenue oracle used to evaluate ``π_i``.
    advertiser:
        The advertiser index ``i``.
    candidates:
        The candidate set ``U``; defaults to all nodes.
    budget:
        Budget override ``B_i`` (the sampling solver passes the relaxed
        ``(1 + ϱ/2)·B_i`` here).
    policy:
        :class:`repro.runtime.ExecutionPolicy`; its ``greedy_engine`` field
        selects between the batched coverage engine
        (:mod:`repro.core.batched_greedy`, the ``fast`` default) — which
        requires an :class:`~repro.advertising.oracle.RRSetOracle` and
        silently falls back to the scalar path otherwise — and per-element
        oracle callbacks (``"scalar"``).  Both paths return bit-identical
        sets.  ``None`` resolves to :meth:`ExecutionPolicy.fast`.

    Returns
    -------
    tuple
        ``(best, selected, stopple)`` where ``best`` is the higher-revenue of
        ``selected`` (= ``S_i``) and ``stopple`` (= ``D_i``).
    """
    from repro.runtime import resolve_policy

    policy = resolve_policy(policy)
    if not 0 <= advertiser < instance.num_advertisers:
        raise SolverError(f"advertiser {advertiser} out of range")
    budget_i = instance.budget(advertiser) if budget is None else float(budget)
    if budget_i <= 0:
        raise SolverError("budget must be positive")
    if policy.greedy_engine == "batched" and supports_batched_greedy(oracle, instance):
        return _greedy_single_advertiser_batched(
            instance, oracle, advertiser, candidates, budget_i
        )
    candidate_pool = (
        set(int(node) for node in candidates)
        if candidates is not None
        else set(range(instance.num_nodes))
    )

    selected: Set[int] = set()
    stopple: Set[int] = set()
    # Revenue of the current S_i, updated incrementally to avoid re-evaluating.
    current_revenue = 0.0

    def singleton_feasible(node: int) -> bool:
        return instance.cost(advertiser, node) + oracle.revenue(advertiser, {node}) <= budget_i

    # Line 1: drop candidates that cannot fit the budget even on their own.
    feasible_candidates = {node for node in candidate_pool if singleton_feasible(node)}

    def evaluate(node: int) -> float:
        gain = oracle.marginal_revenue(advertiser, node, selected)
        return marginal_rate(gain, instance.cost(advertiser, node))

    heap: LazyMarginalHeap[int] = LazyMarginalHeap(evaluate)
    heap.push_many(feasible_candidates)

    while len(heap) and not stopple:
        popped = heap.pop_best()
        if popped is None:
            break
        node, _rate = popped
        gain = oracle.marginal_revenue(advertiser, node, selected)
        cost_with_node = instance.cost_of_set(advertiser, selected | {node})
        revenue_with_node = current_revenue + gain
        if cost_with_node + revenue_with_node <= budget_i:
            selected.add(node)
            current_revenue = revenue_with_node
            heap.advance_round()
        else:
            stopple.add(node)

    revenue_selected = oracle.revenue(advertiser, selected) if selected else 0.0
    revenue_stopple = oracle.revenue(advertiser, stopple) if stopple else 0.0
    best = selected if revenue_selected >= revenue_stopple else stopple
    return set(best), selected, stopple


def _greedy_single_advertiser_batched(
    instance: RMInstance,
    oracle: RevenueOracle,
    advertiser: int,
    candidates: Optional[Iterable[int]],
    budget_i: float,
) -> Tuple[Set[int], Set[int], Set[int]]:
    """Algorithm 1 on the batched coverage engine (same contract, same loop).

    Gains come from one gather against the coverage marginal matrix, so every
    accept/reject comparison sees the same ``scale × count`` floats as the
    scalar oracle path.  The feasibility filter is vectorized, but candidates
    are inserted by iterating the same Python sets the scalar path builds —
    the heaps break exact value ties by insertion order, so the iteration
    order of ``feasible_candidates`` is behaviour.
    """
    engine = CoverageGreedyEngine(instance, oracle)
    candidate_pool = (
        set(int(node) for node in candidates)
        if candidates is not None
        else set(range(instance.num_nodes))
    )
    feasible = engine.singleton_feasible_nodes(
        advertiser, budget_i, sorted(candidate_pool)
    )
    feasible_mask = np.zeros(instance.num_nodes, dtype=bool)
    feasible_mask[feasible] = True
    feasible_candidates = {node for node in candidate_pool if feasible_mask[node]}

    selected: Set[int] = set()
    stopple: Set[int] = set()
    current_revenue = 0.0

    heap = BatchedLazyGreedy(lambda nodes: engine.node_rates(advertiser, nodes))
    heap.push_array(
        np.fromiter(feasible_candidates, dtype=np.int64, count=len(feasible_candidates))
    )

    while len(heap) and not stopple:
        popped = heap.pop_best()
        if popped is None:
            break
        node, _rate = popped
        gain = engine.gain(advertiser, node)
        cost_with_node = instance.cost_of_set(advertiser, selected | {node})
        revenue_with_node = current_revenue + gain
        if cost_with_node + revenue_with_node <= budget_i:
            selected.add(node)
            current_revenue = revenue_with_node
            engine.add_seed(advertiser, node)
            heap.advance_round()
        else:
            stopple.add(node)

    revenue_selected = oracle.revenue(advertiser, selected) if selected else 0.0
    revenue_stopple = oracle.revenue(advertiser, stopple) if stopple else 0.0
    best = selected if revenue_selected >= revenue_stopple else stopple
    return set(best), selected, stopple
