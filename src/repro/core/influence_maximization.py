"""Classic influence maximization on RR-sets.

The RM problem generalises Influence Maximization (IM): with one advertiser,
unit cpe, zero-cost seeds and a cardinality budget, maximizing revenue is
exactly maximizing spread.  This module provides the standard RR-set greedy
for IM — the algorithmic core of TIM/IMM/OPIM that both the paper and its
baselines build on — for three reasons:

* it is the substrate the TI-* baselines' sample sizing reasons about,
* it gives tests a well-understood special case with the classic
  ``1 − 1/e − ε`` behaviour to validate the coverage machinery against,
* it is useful on its own to users who only need plain IM.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SolverError
from repro.graph.digraph import CSRDiGraph
from repro.rrsets.estimators import estimate_spread
from repro.rrsets.generator import RRSetGenerator
from repro.utils.rng import RandomSource, as_rng


def greedy_max_coverage(
    rr_sets: Sequence[np.ndarray], num_nodes: int, seed_count: int
) -> Tuple[List[int], int]:
    """Greedy maximum coverage of RR-sets by ``seed_count`` nodes.

    Returns the selected nodes (in selection order) and the number of RR-sets
    they cover.  This is the (1 − 1/e)-approximate inner step shared by all
    RR-set-based IM algorithms.
    """
    if seed_count <= 0:
        raise SolverError("seed_count must be positive")
    if num_nodes <= 0:
        raise SolverError("num_nodes must be positive")
    if not rr_sets:
        raise SolverError("rr_sets must be non-empty")

    membership: dict[int, list[int]] = {}
    for index, rr_set in enumerate(rr_sets):
        for node in np.asarray(rr_set).tolist():
            membership.setdefault(int(node), []).append(index)

    covered = np.zeros(len(rr_sets), dtype=bool)
    marginal = {node: len(indices) for node, indices in membership.items()}
    selected: List[int] = []
    total_covered = 0

    for _ in range(min(seed_count, num_nodes)):
        if not marginal:
            break
        best_node = max(marginal, key=lambda node: (marginal[node], -node))
        if marginal[best_node] <= 0:
            break
        selected.append(best_node)
        for index in membership.get(best_node, ()):  # mark newly covered sets
            if covered[index]:
                continue
            covered[index] = True
            total_covered += 1
            for member in np.asarray(rr_sets[index]).tolist():
                member = int(member)
                if member in marginal and marginal[member] > 0:
                    marginal[member] -= 1
        del marginal[best_node]
    return selected, total_covered


def influence_maximization(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seed_count: int,
    num_rr_sets: int = 10000,
    rng: RandomSource = None,
    generator: Optional[RRSetGenerator] = None,
) -> Tuple[List[int], float]:
    """Select ``seed_count`` seeds maximizing expected spread (plain IM).

    Returns the seed list and the estimated spread of the selected set,
    measured on the same RR-set pool (so it carries the usual optimistic bias
    of in-sample evaluation; use an independent pool for unbiased numbers).
    """
    if num_rr_sets <= 0:
        raise SolverError("num_rr_sets must be positive")
    generator = generator or RRSetGenerator(graph, edge_probabilities)
    rr_sets = generator.generate_many(num_rr_sets, as_rng(rng))
    seeds, covered = greedy_max_coverage(rr_sets, graph.num_nodes, seed_count)
    spread_estimate = graph.num_nodes * covered / len(rr_sets)
    return seeds, spread_estimate


def spread_of_seeds(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seeds: Sequence[int],
    num_rr_sets: int = 10000,
    rng: RandomSource = None,
) -> float:
    """Estimate the spread of a given seed set with a fresh RR-set pool."""
    generator = RRSetGenerator(graph, edge_probabilities)
    rr_sets = generator.generate_many(num_rr_sets, as_rng(rng))
    return estimate_spread(rr_sets, seeds, graph.num_nodes)
