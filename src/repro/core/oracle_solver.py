"""Algorithm 5 — ``RM_with_Oracle(τ)`` and the approximation ratio λ.

The solver dispatches on the number of advertisers:

* ``h = 1``   → Algorithm 1 (``Greedy``), ratio 1/3,
* ``2 ≤ h ≤ 3`` → ``Search(τ, 1)``, ratio ``1 / (2(h+1)(1+τ))``,
* ``h ≥ 4``   → ``Search(τ, 2)``, ratio ``1 / ((h+6)(1+τ))``,

matching Theorem 3.5 / Eq. (1) of the paper.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RevenueOracle
from repro.core.greedy import greedy_single_advertiser
from repro.core.result import SearchByproducts, SolverResult
from repro.core.search import search_threshold
from repro.exceptions import SolverError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import ExecutionPolicy


def approximation_ratio(num_advertisers: int, tau: float) -> float:
    """The ratio λ of Theorem 3.5 for ``h`` advertisers and trade-off τ."""
    if num_advertisers <= 0:
        raise SolverError("num_advertisers must be positive")
    if not 0.0 < tau < 1.0:
        raise SolverError("tau must lie in (0, 1)")
    if num_advertisers == 1:
        return 1.0 / 3.0
    if num_advertisers <= 3:
        return 1.0 / (2.0 * (num_advertisers + 1) * (1.0 + tau))
    return 1.0 / ((num_advertisers + 6) * (1.0 + tau))


def rm_with_oracle(
    instance: RMInstance,
    oracle: RevenueOracle,
    tau: float = 0.1,
    budgets: Optional[np.ndarray] = None,
    candidates: Optional[Iterable[int]] = None,
    policy: Optional["ExecutionPolicy"] = None,
) -> SolverResult:
    """Algorithm 5 — solve the RM problem given a revenue oracle.

    Parameters
    ----------
    tau:
        Accuracy/efficiency trade-off of the threshold search.
    budgets:
        Per-advertiser budget overrides; the sampling solver passes the
        relaxed budgets ``(1 + ϱ/2)·B_i`` through this parameter.
    candidates:
        Optional candidate node pool (defaults to all nodes).
    policy:
        :class:`repro.runtime.ExecutionPolicy`; ``greedy_engine="batched"``
        (the ``fast`` default — ``None`` resolves to
        :meth:`ExecutionPolicy.fast`) runs every greedy inner loop on the
        batched coverage engine (:mod:`repro.core.batched_greedy`) —
        effective only with an RR-set oracle, other oracles keep the seed
        scalar path.  Both engines select bit-identical allocations.

    Returns
    -------
    SolverResult
        Allocation, revenue (as measured by ``oracle``) and, for ``h ≥ 2``,
        the :class:`SearchByproducts` consumed by ``SeekUB``.
    """
    from repro.runtime import resolve_policy

    policy = resolve_policy(policy)
    h = instance.num_advertisers
    if oracle.num_advertisers != h:
        raise SolverError("oracle and instance disagree on the number of advertisers")
    lam = approximation_ratio(h, tau)

    if h == 1:
        budget = float(budgets[0]) if budgets is not None else None
        best, selected, stopple = greedy_single_advertiser(
            instance,
            oracle,
            0,
            candidates=candidates,
            budget=budget,
            policy=policy,
        )
        allocation = Allocation(1)
        for node in best:
            allocation.assign(node, 0)
        revenue = oracle.revenue(0, best) if best else 0.0
        depleted = 1 if stopple else 0
        result = SolverResult(
            allocation=allocation,
            revenue=revenue,
            per_advertiser_revenue={0: revenue},
            seeding_cost=instance.cost_of_set(0, best),
            algorithm="RM_with_Oracle",
            depleted_budgets=depleted,
            search=None,
            metadata={"lambda": lam, "tau": tau, "h": h},
        )
        return result

    b_min = 1 if h <= 3 else 2
    allocation, revenue, byproducts, diagnostics = search_threshold(
        instance,
        oracle,
        tau=tau,
        b_min=b_min,
        budgets=budgets,
        candidates=candidates,
        policy=policy,
    )
    per_advertiser = {
        advertiser: (oracle.revenue(advertiser, seeds) if seeds else 0.0)
        for advertiser, seeds in allocation.items()
    }
    result = SolverResult(
        allocation=allocation,
        revenue=revenue,
        per_advertiser_revenue=per_advertiser,
        seeding_cost=instance.total_seeding_cost(allocation),
        algorithm="RM_with_Oracle",
        depleted_budgets=byproducts.b_low,
        search=byproducts,
        metadata={"lambda": lam, "tau": tau, "h": h, "b_min": b_min, **diagnostics},
    )
    return result
