"""Result containers returned by the solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.advertising.allocation import Allocation


@dataclass
class SearchByproducts:
    """The two boundary solutions maintained by ``Search`` (Algorithm 4).

    ``SeekUB`` (Algorithm 7) consumes these to derive a tight upper bound on
    the sampling-space optimum.
    """

    #: solution returned by ThresholdGreedy at the lower threshold γ1
    allocation_low: Optional[Allocation] = None
    #: number of depleted budgets at γ1
    b_low: int = 0
    #: lower threshold γ1
    gamma_low: float = 0.0
    #: solution returned by ThresholdGreedy at the upper threshold γ2
    allocation_high: Optional[Allocation] = None
    #: number of depleted budgets at γ2
    b_high: int = 0
    #: upper threshold γ2
    gamma_high: float = 0.0
    #: the ``b_min`` parameter the search was run with
    b_min: int = 1


@dataclass
class SolverResult:
    """Outcome of one solver run.

    ``revenue`` is measured with the revenue function the solver itself used
    (the oracle for Section 3 algorithms, ``π̃(·, R1)`` for the sampling
    solvers).  The experiment harness always re-evaluates allocations with an
    independent estimator before reporting, exactly as the paper does.
    """

    allocation: Allocation
    revenue: float
    per_advertiser_revenue: Dict[int, float] = field(default_factory=dict)
    seeding_cost: float = 0.0
    algorithm: str = ""
    #: number of advertisers whose budget was depleted (the ``b`` of Theorem 3.2)
    depleted_budgets: int = 0
    #: byproducts of the threshold search, when the solver ran one
    search: Optional[SearchByproducts] = None
    #: solver-specific diagnostics (RR-set counts, iterations, bounds, ...)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def total_payment(self) -> float:
        """Revenue plus seeding cost — what the advertisers pay in total."""
        return self.revenue + self.seeding_cost

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by the experiment reporters."""
        return {
            "algorithm": self.algorithm,
            "revenue": self.revenue,
            "seeding_cost": self.seeding_cost,
            "total_seeds": self.allocation.total_seed_count(),
            "depleted_budgets": self.depleted_budgets,
            **{f"meta_{key}": value for key, value in self.metadata.items()},
        }
