"""Algorithm 6 — ``RM_without_Oracle`` (RMA) and the one-batch variant.

The progressive solver keeps two independent RR-set collections ``R1`` and
``R2``.  In every round it

1. runs ``RM_with_Oracle`` on the sampling-space revenue ``π̃(·, R1)`` with
   the relaxed budgets ``(1 + ϱ/2)·B_i``,
2. derives an upper bound on the sampling-space optimum via ``SeekUB``,
3. validates the candidate solution against the *independent* collection
   ``R2``: per-advertiser budget feasibility under ``(1 + ϱ)·B_i`` and the
   approximation check ``LB(S⃗*) / UB(O⃗) ≥ λ − ε``,
4. returns on success, otherwise doubles both collections and repeats, up to
   the one-batch cap ``θ_max`` of Theorem 4.2.

Theorem 4.3 shows the returned solution is a ``(λ − ε)``-approximation that
overshoots each budget by at most a factor ``(1 + ϱ)``, with probability at
least ``1 − δ``.

Practicality note
-----------------
``θ_0`` and ``θ_max`` as defined in the paper target multi-million-edge
graphs run from C++.  On the scaled-down pure-Python instances of this
reproduction they can exceed what is worth generating, so
:class:`SamplingParameters` exposes ``initial_rr_sets`` and ``max_rr_sets``
caps.  The theoretical values are always computed and reported in the result
metadata; when the cap binds, the achieved empirical ratio β is reported so
the caller can see how far the guarantee was actually driven.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RRSetOracle
from repro.core.bounds import (
    lower_bound_from_estimate,
    theta_max as compute_theta_max,
    theta_zero as compute_theta_zero,
    upper_bound_from_estimate,
)
from repro.core.oracle_solver import approximation_ratio, rm_with_oracle
from repro.core.result import SolverResult
from repro.core.seek_ub import seek_upper_bound
from repro.exceptions import SolverError
from repro.rrsets.collection import RRCollection
from repro.rrsets.uniform import UniformRRSampler
from repro.runtime import ExecutionPolicy, Runtime, current_runtime, resolve_policy
from repro.utils.rng import RandomSource, as_rng


@dataclass
class SamplingParameters:
    """Tunable parameters of the RMA solver.

    Attributes
    ----------
    epsilon:
        Approximation slack ε ∈ (0, λ); the guarantee is ``(λ − ε)·OPT``.
    delta:
        Failure probability δ ∈ (0, 1).
    tau:
        Threshold-search trade-off τ ∈ (0, 1).
    rho:
        Budget-overshoot control ϱ ∈ (0, ∞); solutions may spend up to
        ``(1 + ϱ)·B_i`` per advertiser.
    initial_rr_sets:
        Starting size of R1 and R2.  ``None`` uses the paper's ``θ_0``
        clipped to ``[min_initial_rr_sets, max_rr_sets]``.
    max_rr_sets:
        Hard cap on |R1| (and |R2|).  ``None`` uses the paper's ``θ_max``
        (can be astronomically large for small ε).
    min_initial_rr_sets:
        Lower clip applied when ``initial_rr_sets`` is derived from ``θ_0``.
    validation_ratio_check:
        Enables the empirical extension from Section 4.4: if
        ``π̃(S⃗*, R2) / π̃(S⃗*, R1)`` falls below ``validation_ratio`` on the
        final round, the collections are enlarged once more before returning.
    policy:
        :class:`repro.runtime.ExecutionPolicy` selecting the engines (RR
        generator, greedy inner loop) and the ``n_jobs`` sharding.  ``None``
        defaults to :meth:`ExecutionPolicy.fast` — SUBSIM RR generation,
        batched MC and greedy engines, all cores.  Pass
        :meth:`ExecutionPolicy.seed` to pin the serial seed-stream
        reference path.  Fixed ``(seed, policy)`` runs are
        bit-reproducible; ``n_jobs>1`` draws different RNG substreams than
        the serial run (statistically equivalent collections).
    """

    epsilon: float = 0.1
    delta: float = 0.01
    tau: float = 0.1
    rho: float = 0.1
    initial_rr_sets: Optional[int] = None
    max_rr_sets: Optional[int] = 32768
    min_initial_rr_sets: int = 256
    validation_ratio_check: bool = False
    validation_ratio: float = 0.8
    validation_growth_factor: float = 4.0
    seed: RandomSource = None
    policy: Optional[ExecutionPolicy] = None

    def resolved_policy(self) -> ExecutionPolicy:
        """The effective :class:`ExecutionPolicy` (``None`` → ``fast``)."""
        return resolve_policy(self.policy)

    def validate(self) -> None:
        """Raise :class:`SolverError` on any inconsistent setting."""
        if self.epsilon <= 0:
            raise SolverError("epsilon must be positive")
        if not 0 < self.delta < 1:
            raise SolverError("delta must lie in (0, 1)")
        if not 0 < self.tau < 1:
            raise SolverError("tau must lie in (0, 1)")
        if self.rho <= 0:
            raise SolverError("rho must be positive")
        if self.initial_rr_sets is not None and self.initial_rr_sets <= 0:
            raise SolverError("initial_rr_sets must be positive")
        if self.max_rr_sets is not None and self.max_rr_sets <= 0:
            raise SolverError("max_rr_sets must be positive")
        if self.min_initial_rr_sets <= 0:
            raise SolverError("min_initial_rr_sets must be positive")
        if not 0 < self.validation_ratio <= 1:
            raise SolverError("validation_ratio must lie in (0, 1]")
        if self.validation_growth_factor < 1:
            raise SolverError("validation_growth_factor must be at least 1")


def _build_sampler(
    instance: RMInstance, policy: ExecutionPolicy, rng, runtime: Optional[Runtime]
) -> UniformRRSampler:
    return UniformRRSampler(
        instance.graph,
        instance.all_edge_probabilities(),
        instance.cpes(),
        seed=rng,
        policy=policy,
        runtime=runtime,
    )


def _allocation_estimates(
    oracle: RRSetOracle, allocation: Allocation
) -> Dict[int, float]:
    return {
        advertiser: (oracle.revenue(advertiser, seeds) if seeds else 0.0)
        for advertiser, seeds in allocation.items()
    }


def rm_without_oracle(
    instance: RMInstance,
    params: Optional[SamplingParameters] = None,
    runtime: Optional[Runtime] = None,
) -> SolverResult:
    """Algorithm 6 — the RMA progressive-sampling solver.

    Returns a :class:`SolverResult` whose ``revenue`` field is the
    sampling-space estimate ``π̃(S⃗*, R1)``; the metadata records the number
    of RR-sets used, the empirical ratio β, and the theoretical θ values.

    ``runtime`` (or the ambient :func:`repro.runtime.current_runtime`)
    supplies a persistent worker pool shared by every doubling round; when
    neither exists and the policy shards, the solver opens its own runtime
    for the duration of the call, so the pool is spawned at most once per
    run either way.
    """
    params = params or SamplingParameters()
    params.validate()
    policy = params.resolved_policy()
    rng = as_rng(params.seed)
    owned_runtime: Optional[Runtime] = None
    if runtime is None:
        runtime = current_runtime()
        if runtime is None:
            runtime = owned_runtime = Runtime(policy)
    try:
        return _rm_without_oracle_impl(instance, params, policy, rng, runtime)
    finally:
        if owned_runtime is not None:
            owned_runtime.close()


def _rm_without_oracle_impl(
    instance: RMInstance,
    params: SamplingParameters,
    policy: ExecutionPolicy,
    rng,
    runtime: Runtime,
) -> SolverResult:

    h = instance.num_advertisers
    n = instance.num_nodes
    gamma = instance.gamma
    scale_total = n * gamma
    lam = approximation_ratio(h, params.tau)
    epsilon = min(params.epsilon, lam * 0.999)

    delta_prime = params.delta / 4.0
    theoretical_theta_max = compute_theta_max(instance, lam, epsilon, params.delta, params.rho)
    theoretical_theta_zero = compute_theta_zero(instance, params.rho, delta_prime)

    if params.initial_rr_sets is not None:
        theta0 = int(params.initial_rr_sets)
    else:
        theta0 = int(math.ceil(theoretical_theta_zero))
        theta0 = max(params.min_initial_rr_sets, theta0)
    cap = int(math.ceil(theoretical_theta_max))
    if params.max_rr_sets is not None:
        cap = min(cap, int(params.max_rr_sets))
    theta0 = min(theta0, max(cap, params.min_initial_rr_sets))
    t_max = max(1, int(math.ceil(math.log2(max(2.0, cap / max(theta0, 1))))) + 1)
    q = math.log((h + 2) * t_max / delta_prime)

    sampler = _build_sampler(instance, policy, rng, runtime)
    collection_one = sampler.generate_collection(theta0)
    collection_two = sampler.generate_collection(theta0)

    relaxed_budgets = instance.budgets() * (1.0 + params.rho / 2.0)
    feasibility_budgets = instance.budgets() * (1.0 + params.rho)

    iterations = 0
    validation_retries = 0
    best_result: Optional[SolverResult] = None

    while True:
        iterations += 1
        oracle_one = RRSetOracle(collection_one, gamma)
        oracle_two = RRSetOracle(collection_two, gamma)

        inner = rm_with_oracle(
            instance,
            oracle_one,
            tau=params.tau,
            budgets=relaxed_budgets,
            policy=policy,
        )
        allocation = inner.allocation
        revenue_r1 = inner.revenue

        upper_z = seek_upper_bound(
            best_revenue=revenue_r1,
            byproducts=inner.search,
            num_advertisers=h,
            lam=lam,
            revenue_of=lambda alloc: oracle_one.total_revenue(alloc),
        )

        # Budget feasibility against the independent collection R2 (Lines 8-11).
        feasible = True
        per_advertiser_r2 = _allocation_estimates(oracle_two, allocation)
        for advertiser, seeds in allocation.items():
            ub_revenue = upper_bound_from_estimate(
                per_advertiser_r2[advertiser], len(collection_two), scale_total, q
            )
            seed_cost = instance.cost_of_set(advertiser, seeds)
            if ub_revenue > feasibility_budgets[advertiser] - seed_cost:
                feasible = False
                break

        revenue_r2 = oracle_two.total_revenue(allocation)
        lower = lower_bound_from_estimate(revenue_r2, len(collection_two), scale_total, q)
        upper = upper_bound_from_estimate(upper_z, len(collection_one), scale_total, q)
        beta = lower / upper if upper > 0 else 0.0

        reached_cap = len(collection_one) >= cap
        success = beta >= lam - epsilon and feasible

        metadata = {
            "rr_sets": len(collection_one),
            "rr_sets_per_advertiser": collection_one.count_per_advertiser().tolist(),
            "iterations": iterations,
            "beta": beta,
            "lambda": lam,
            "epsilon": epsilon,
            "rho": params.rho,
            "tau": params.tau,
            "feasible": feasible,
            "theta_zero_theoretical": theoretical_theta_zero,
            "theta_max_theoretical": theoretical_theta_max,
            "rr_set_cap": cap,
            "revenue_r2": revenue_r2,
            "upper_bound_opt": upper,
            "lower_bound_solution": lower,
            "edges_examined": sampler.edges_examined(),
            "memory_proxy_bytes": collection_one.memory_proxy_bytes()
            + collection_two.memory_proxy_bytes(),
        }
        best_result = SolverResult(
            allocation=allocation,
            revenue=revenue_r1,
            per_advertiser_revenue=_allocation_estimates(oracle_one, allocation),
            seeding_cost=instance.total_seeding_cost(allocation),
            algorithm="RMA",
            depleted_budgets=inner.depleted_budgets,
            search=inner.search,
            metadata=metadata,
        )

        if success or reached_cap:
            needs_more = (
                params.validation_ratio_check
                and revenue_r1 > 0
                and revenue_r2 / revenue_r1 < params.validation_ratio
                and validation_retries == 0
                and not reached_cap
            )
            if not needs_more:
                return best_result
            validation_retries += 1
            growth = max(1, int(len(collection_one) * (params.validation_growth_factor - 1)))
            sampler.generate_collection(growth, into=collection_one)
            sampler.generate_collection(growth, into=collection_two)
            continue

        # Double both collections and try again (Line 16).
        additional = len(collection_one)
        sampler.generate_collection(additional, into=collection_one)
        sampler.generate_collection(additional, into=collection_two)


def one_batch_rm(
    instance: RMInstance,
    num_rr_sets: int,
    params: Optional[SamplingParameters] = None,
    runtime: Optional[Runtime] = None,
) -> SolverResult:
    """The one-batch algorithm of Section 4.3.

    Generates a single collection of ``num_rr_sets`` RR-sets with the uniform
    sampler and runs ``RM_with_Oracle`` on the resulting estimate with the
    relaxed budgets ``(1 + ϱ/2)·B_i``.  Theorem 4.2 gives the sample size
    under which this is a bicriteria approximation; callers typically pass a
    smaller, practical size.  ``runtime`` supplies the worker pool for a
    sharded policy, like :func:`rm_without_oracle`.
    """
    if num_rr_sets <= 0:
        raise SolverError("num_rr_sets must be positive")
    params = params or SamplingParameters()
    params.validate()
    policy = params.resolved_policy()
    rng = as_rng(params.seed)
    sampler = _build_sampler(instance, policy, rng, runtime)
    collection = sampler.generate_collection(num_rr_sets)
    oracle = RRSetOracle(collection, instance.gamma)
    relaxed_budgets = instance.budgets() * (1.0 + params.rho / 2.0)
    inner = rm_with_oracle(
        instance,
        oracle,
        tau=params.tau,
        budgets=relaxed_budgets,
        policy=policy,
    )
    result = SolverResult(
        allocation=inner.allocation,
        revenue=inner.revenue,
        per_advertiser_revenue=_allocation_estimates(oracle, inner.allocation),
        seeding_cost=instance.total_seeding_cost(inner.allocation),
        algorithm="OneBatchRM",
        depleted_budgets=inner.depleted_budgets,
        search=inner.search,
        metadata={
            "rr_sets": len(collection),
            "rr_sets_per_advertiser": collection.count_per_advertiser().tolist(),
            "rho": params.rho,
            "tau": params.tau,
            "edges_examined": sampler.edges_examined(),
            "memory_proxy_bytes": collection.memory_proxy_bytes(),
        },
    )
    return result
