"""Algorithm 4 — binary search for a good threshold γ.

``Search(τ, b_min)`` runs ``ThresholdGreedy`` for a sequence of thresholds,
maintaining an interval ``[γ1, γ2]`` such that the lower end depletes at
least ``b_min`` budgets and the upper end does not.  The interval shrinks
geometrically until either ``(1+τ)·γ1 ≥ γ2`` or ``γ2`` falls below
``min_i cpe(i) / (h+6)``.  Theorems 3.3 and 3.4 turn this invariant into the
network-independent approximation ratios of the paper.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RevenueOracle
from repro.core.batched_greedy import supports_batched_greedy
from repro.core.greedy import marginal_rate
from repro.core.result import SearchByproducts
from repro.core.threshold_greedy import threshold_greedy
from repro.exceptions import SolverError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import ExecutionPolicy


def gamma_max(
    instance: RMInstance,
    oracle: RevenueOracle,
    budgets: Optional[np.ndarray] = None,
    candidates: Optional[Iterable[int]] = None,
    policy: Optional["ExecutionPolicy"] = None,
) -> float:
    """``γ_max = max{B_j · ζ_j(v | ∅) : v ∈ V, j ∈ [h]}`` (Eq. 6).

    A threshold above this value rejects every node, so the binary search
    never needs to look beyond ``(1+τ)·γ_max``.  With a batched-greedy
    policy (the ``fast`` default — ``None`` resolves to
    :meth:`ExecutionPolicy.fast`) and an RR-set oracle the ``h·n``
    singleton rates come from one vectorized pass over the
    membership-count matrix (the same floats the scalar loop computes, so
    the maximum is unchanged bit for bit).
    """
    from repro.runtime import resolve_policy

    policy = resolve_policy(policy)
    budget_array = (
        np.asarray(budgets, dtype=np.float64) if budgets is not None else instance.budgets()
    )
    if policy.greedy_engine == "batched" and supports_batched_greedy(oracle, instance):
        node_array = (
            np.asarray([int(node) for node in candidates], dtype=np.int64)
            if candidates is not None
            else np.arange(instance.num_nodes, dtype=np.int64)
        )
        if node_array.size == 0:
            return 0.0
        if node_array.min() < 0 or node_array.max() >= instance.num_nodes:
            bad = node_array[(node_array < 0) | (node_array >= instance.num_nodes)][0]
            raise SolverError(f"node {bad} out of range")
        # Singleton revenues are just scale × membership count — no coverage
        # state needed, γ_max never looks past the empty solution.
        singleton = oracle.scale * oracle.collection.membership_counts()
        costs = instance.cost_matrix()
        best = 0.0
        for advertiser in range(instance.num_advertisers):
            gains = singleton[advertiser, node_array]
            positive = gains > 0.0
            rates = np.zeros(gains.shape, dtype=np.float64)
            np.divide(
                gains, costs[advertiser, node_array] + gains, out=rates, where=positive
            )
            best = max(best, float(budget_array[advertiser] * rates.max()))
        return best
    nodes = (
        [int(node) for node in candidates]
        if candidates is not None
        else list(range(instance.num_nodes))
    )
    best = 0.0
    for advertiser in range(instance.num_advertisers):
        budget = float(budget_array[advertiser])
        for node in nodes:
            revenue = oracle.revenue(advertiser, {node})
            rate = marginal_rate(revenue, instance.cost(advertiser, node))
            best = max(best, budget * rate)
    return best


def search_threshold(
    instance: RMInstance,
    oracle: RevenueOracle,
    tau: float,
    b_min: int,
    budgets: Optional[np.ndarray] = None,
    candidates: Optional[Iterable[int]] = None,
    max_iterations: int = 64,
    policy: Optional["ExecutionPolicy"] = None,
) -> Tuple[Allocation, float, SearchByproducts, dict]:
    """Algorithm 4 — returns ``(best allocation, its revenue, byproducts, diagnostics)``.

    Parameters
    ----------
    tau:
        Accuracy/efficiency trade-off τ ∈ (0, 1); the interval stops shrinking
        once ``(1+τ)·γ1 ≥ γ2``.
    b_min:
        Budget-depletion target guiding the search direction (1 for
        ``2 ≤ h ≤ 3``, 2 for ``h ≥ 4``).
    max_iterations:
        Safety cap on the number of ThresholdGreedy invocations; the paper's
        stopping rule terminates in ``O(log(h·γ_max / min_i cpe(i)))``
        iterations, the cap only guards against degenerate inputs.
    policy:
        :class:`repro.runtime.ExecutionPolicy` forwarded to ``gamma_max``
        and every ``threshold_greedy`` invocation (its ``greedy_engine``
        field selects the batched coverage engine, RR-set oracles only;
        ``None`` resolves to :meth:`ExecutionPolicy.fast`).
    """
    from repro.runtime import resolve_policy

    policy = resolve_policy(policy)
    if not 0.0 < tau < 1.0:
        raise SolverError("tau must lie in (0, 1)")
    if b_min not in (1, 2):
        raise SolverError("b_min must be 1 or 2")
    if max_iterations <= 0:
        raise SolverError("max_iterations must be positive")

    h = instance.num_advertisers
    budget_array = (
        np.asarray(budgets, dtype=np.float64) if budgets is not None else instance.budgets()
    )
    min_cpe = float(min(instance.cpe(i) for i in range(h)))
    stop_gamma = min_cpe / (h + 6)

    gamma_upper_limit = (1.0 + tau) * gamma_max(
        instance, oracle, budget_array, candidates, policy=policy
    )
    gamma_low, gamma_high = 0.0, gamma_upper_limit
    gamma = gamma_low

    byproducts = SearchByproducts(b_min=b_min)
    byproducts.gamma_low, byproducts.gamma_high = gamma_low, gamma_high
    tried: list[Tuple[Allocation, float]] = []
    iterations = 0

    while True:
        iterations += 1
        allocation, depleted = threshold_greedy(
            instance,
            oracle,
            gamma,
            budgets=budget_array,
            candidates=candidates,
            policy=policy,
        )
        revenue = oracle.total_revenue(allocation)
        tried.append((allocation, revenue))
        if depleted >= b_min:
            byproducts.allocation_low = allocation
            byproducts.b_low = depleted
            byproducts.gamma_low = gamma
            gamma_low = gamma
        else:
            byproducts.allocation_high = allocation
            byproducts.b_high = depleted
            byproducts.gamma_high = gamma
            gamma_high = gamma
        gamma = (gamma_low + gamma_high) / 2.0
        if (1.0 + tau) * gamma_low >= gamma_high or gamma_high <= stop_gamma:
            break
        if iterations >= max_iterations:
            break

    best_allocation, best_revenue = max(tried, key=lambda pair: pair[1])
    diagnostics = {
        "search_iterations": iterations,
        "gamma_max": gamma_upper_limit / (1.0 + tau),
        "final_gamma_low": gamma_low,
        "final_gamma_high": gamma_high,
    }
    return best_allocation, best_revenue, byproducts, diagnostics
