"""Algorithm 7 — ``SeekUB``: a tight upper bound on the sampling-space optimum.

Given the byproducts of the threshold search run on the collection ``R1``,
Theorem 3.2 yields several valid upper bounds on ``π̃(O⃗, R1)``; ``SeekUB``
picks the applicable one and returns the tighter of it and the trivial bound
``π̃(S⃗*, R1) / λ``.  Lemma B.8 proves every branch is a correct upper bound.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.advertising.allocation import Allocation
from repro.core.result import SearchByproducts
from repro.exceptions import SolverError

RevenueOfAllocation = Callable[[Allocation], float]


def seek_upper_bound(
    best_revenue: float,
    byproducts: Optional[SearchByproducts],
    num_advertisers: int,
    lam: float,
    revenue_of: RevenueOfAllocation,
) -> float:
    """Return an upper bound ``z`` on ``π̃(O⃗, R1)``.

    Parameters
    ----------
    best_revenue:
        ``π̃(S⃗*, R1)`` — the sampling-space revenue of the returned solution.
    byproducts:
        The two boundary solutions of the threshold search (``None`` when
        ``h = 1``, in which case only the trivial bound applies).
    num_advertisers:
        ``h``.
    lam:
        The approximation ratio λ of Theorem 3.5.
    revenue_of:
        Callable evaluating ``π̃(·, R1)`` for an allocation (the caller binds
        the collection).
    """
    if lam <= 0 or lam > 1:
        raise SolverError("lambda must lie in (0, 1]")
    if best_revenue < 0:
        raise SolverError("best_revenue must be non-negative")
    trivial = best_revenue / lam

    if num_advertisers == 1 or byproducts is None:
        return trivial

    b_min = byproducts.b_min
    gamma_high = byproducts.gamma_high
    high = byproducts.allocation_high
    low = byproducts.allocation_low
    high_revenue = revenue_of(high) if high is not None else 0.0
    low_revenue = revenue_of(low) if low is not None else 0.0

    if byproducts.b_low < b_min or low is None:
        # Case 1 of Lemma B.8: the γ = 0 run did not deplete b_min budgets,
        # so ThresholdGreedy(0) is within a factor 6 of the optimum.
        z = 6.0 * high_revenue if high is not None else trivial
    elif high is not None:
        # Case 3: both boundary solutions exist.
        if byproducts.b_high == 0:
            z = 2.0 * high_revenue + num_advertisers * gamma_high
        else:  # b_high == 1 (b_high < b_min ≤ 2)
            z = 6.0 * high_revenue + num_advertisers * gamma_high
    else:
        # Case 2: the search never produced an upper-boundary solution, which
        # means γ1 is within (1+τ) of γ_max; the b ≥ b_min bound applies.
        z = low_revenue / lam

    return min(z, trivial)
