"""Algorithms 2 and 3 — ``ThresholdGreedy(γ)`` and ``Fill(S⃗)``.

``ThresholdGreedy`` selects elements ``(u, i)`` in decreasing order of
*marginal gain* (like CA-Greedy) but only accepts an element whose *marginal
rate* clears the threshold ``γ / B_i``.  The first budget-overflowing node of
each advertiser is parked as the stopple node ``D_i``.  If exactly one budget
was depleted, Algorithm 1 is re-run on the unassigned nodes for that
advertiser (the ``A_i`` set of the paper's analysis).  ``Fill`` then spends
whatever budget is left, greedily by marginal rate.

Theorem 3.2 relates the revenue of the returned allocation to ``OPT`` through
the number ``b`` of depleted budgets, which is what the binary search of
Algorithm 4 exploits.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple, TYPE_CHECKING

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RevenueOracle, RRSetOracle
from repro.core.batched_greedy import (
    CoverageGreedyEngine,
    supports_batched_greedy,
)
from repro.core.greedy import greedy_single_advertiser, marginal_rate
from repro.exceptions import ProblemDefinitionError, SolverError
from repro.utils.lazy_heap import BatchedLazyGreedy, LazyMarginalHeap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import ExecutionPolicy

Element = Tuple[int, int]  # (node, advertiser)


class _GreedyState:
    """Bookkeeping shared by ThresholdGreedy and Fill.

    Tracks, per advertiser, the selected set ``S_i``, its revenue and its
    seeding cost, plus the global node-to-advertiser assignment so the
    partition constraint can be checked in O(1).
    """

    def __init__(self, instance: RMInstance, oracle: RevenueOracle, budgets: np.ndarray):
        self.instance = instance
        self.oracle = oracle
        self.budgets = budgets
        h = instance.num_advertisers
        self.selected: Dict[int, Set[int]] = {i: set() for i in range(h)}
        self.stopple: Dict[int, Set[int]] = {i: set() for i in range(h)}
        self.revenue: Dict[int, float] = {i: 0.0 for i in range(h)}
        self.cost: Dict[int, float] = {i: 0.0 for i in range(h)}
        self.assigned: Set[int] = set()

    def marginal_gain(self, node: int, advertiser: int) -> float:
        """``π_i(u | S_i)`` for the current ``S_i``."""
        return self.oracle.marginal_revenue(advertiser, node, self.selected[advertiser])

    def try_add(self, node: int, advertiser: int, gain: Optional[float] = None) -> str:
        """Attempt to add ``(node, advertiser)``; returns 'selected' or 'stopple'.

        ``gain`` lets the batched path pass the coverage-derived marginal it
        already holds (the same float the oracle would return) instead of a
        redundant oracle query.
        """
        if gain is None:
            gain = self.marginal_gain(node, advertiser)
        node_cost = self.instance.cost(advertiser, node)
        new_cost = self.cost[advertiser] + node_cost
        new_revenue = self.revenue[advertiser] + gain
        if new_cost + new_revenue <= self.budgets[advertiser]:
            self.selected[advertiser].add(node)
            self.revenue[advertiser] = new_revenue
            self.cost[advertiser] = new_cost
            self.assigned.add(node)
            return "selected"
        self.stopple[advertiser].add(node)
        self.assigned.add(node)
        return "stopple"


def _candidate_elements(
    instance: RMInstance,
    oracle: RevenueOracle,
    budgets: np.ndarray,
    candidates: Optional[Iterable[int]],
) -> list[Element]:
    """The initial set ``M`` of singleton-feasible (node, advertiser) pairs.

    For an :class:`~repro.advertising.oracle.RRSetOracle` all ``h·n``
    singleton revenues come from one pass over the collection's membership
    counts (``scale · #{R tagged i : u ∈ R}``), so the feasibility filter is
    a vectorised comparison instead of ``h·n`` oracle queries.  The element
    order (advertiser-major, candidate order) matches the scalar path — the
    lazy heap breaks ties by insertion order, so ordering is behaviour.
    """
    nodes = (
        [int(node) for node in candidates]
        if candidates is not None
        else list(range(instance.num_nodes))
    )
    elements: list[Element] = []
    if isinstance(oracle, RRSetOracle) and oracle.num_advertisers >= instance.num_advertisers:
        node_array = np.asarray(nodes, dtype=np.int64)
        if node_array.size and (
            node_array.min() < 0 or node_array.max() >= instance.num_nodes
        ):
            bad = node_array[(node_array < 0) | (node_array >= instance.num_nodes)][0]
            raise ProblemDefinitionError(f"node {bad} out of range")
        singleton_revenue = oracle.scale * oracle.collection.membership_counts()
        costs = instance.cost_matrix()
        for advertiser in range(instance.num_advertisers):
            feasible = (
                costs[advertiser, node_array] + singleton_revenue[advertiser, node_array]
                <= budgets[advertiser]
            )
            elements.extend(
                (node, advertiser) for node in node_array[feasible].tolist()
            )
        return elements
    for advertiser in range(instance.num_advertisers):
        for node in nodes:
            singleton_revenue = oracle.revenue(advertiser, {node})
            if instance.cost(advertiser, node) + singleton_revenue <= budgets[advertiser]:
                elements.append((node, advertiser))
    return elements


def threshold_greedy(
    instance: RMInstance,
    oracle: RevenueOracle,
    gamma: float,
    budgets: Optional[np.ndarray] = None,
    candidates: Optional[Iterable[int]] = None,
    run_fill: bool = True,
    policy: Optional["ExecutionPolicy"] = None,
) -> Tuple[Allocation, int]:
    """Algorithm 2 — returns ``(allocation S⃗*, b)``.

    Parameters
    ----------
    gamma:
        The marginal-rate threshold γ ≥ 0.
    budgets:
        Optional per-advertiser budget overrides (the sampling solver passes
        the relaxed budgets here); defaults to the instance budgets.
    candidates:
        Candidate node pool; defaults to all nodes.
    run_fill:
        Whether to run the final ``Fill`` pass (Line 12).  Disabled only by
        ablation benchmarks.
    policy:
        :class:`repro.runtime.ExecutionPolicy`; ``greedy_engine="batched"``
        (the ``fast`` default — ``None`` resolves to
        :meth:`ExecutionPolicy.fast`) drives the element heap through the
        batched coverage engine (:mod:`repro.core.batched_greedy`) — RR-set
        oracles only, falls back to the seed scalar path otherwise.
        Bit-identical allocations.
    """
    from repro.runtime import resolve_policy

    policy = resolve_policy(policy)
    if gamma < 0:
        raise SolverError("gamma must be non-negative")
    h = instance.num_advertisers
    budget_array = (
        np.asarray(budgets, dtype=np.float64) if budgets is not None else instance.budgets()
    )
    if budget_array.shape != (h,):
        raise SolverError(f"budgets must have length {h}")
    if np.any(budget_array <= 0):
        raise SolverError("budgets must be positive")

    state = _GreedyState(instance, oracle, budget_array)
    depleted: Set[int] = set()
    batched = policy.greedy_engine == "batched" and supports_batched_greedy(oracle, instance)

    if batched:
        engine = CoverageGreedyEngine(instance, oracle)
        n = instance.num_nodes
        heap_b = BatchedLazyGreedy(engine.gains)
        heap_b.push_array(engine.feasible_element_keys(budget_array, candidates))
        # Main loop (Lines 3-8), batched: pop by max marginal gain refreshed
        # through one coverage gather per stale batch, same three filters.
        while len(heap_b) and len(depleted) < h:
            popped_b = heap_b.pop_best()
            if popped_b is None:
                break
            key, _stale_gain = popped_b
            advertiser, node = divmod(key, n)
            if state.stopple[advertiser]:
                continue
            gain = engine.gain(advertiser, node)
            rate = marginal_rate(gain, instance.cost(advertiser, node))
            if rate < gamma / budget_array[advertiser]:
                continue
            if node in state.assigned:
                continue
            outcome = state.try_add(node, advertiser, gain=gain)
            if outcome == "selected":
                engine.add_seed(advertiser, node)
                heap_b.advance_round()
            else:
                depleted.add(advertiser)
    else:

        def evaluate(element: Element) -> float:
            node, advertiser = element
            return state.marginal_gain(node, advertiser)

        heap: LazyMarginalHeap[Element] = LazyMarginalHeap(evaluate)
        heap.push_many(_candidate_elements(instance, oracle, budget_array, candidates))

        # Main loop (Lines 3-8): pop by max marginal gain, apply the three filters.
        while len(heap) and len(depleted) < h:
            popped = heap.pop_best()
            if popped is None:
                break
            (node, advertiser), _gain = popped
            # Filter 1: threshold on the marginal rate w.r.t. S_i ∪ D_i, and skip
            # advertisers whose budget is already depleted (D_i non-empty).
            if state.stopple[advertiser]:
                continue
            gain = state.marginal_gain(node, advertiser)
            rate = marginal_rate(gain, instance.cost(advertiser, node))
            if rate < gamma / budget_array[advertiser]:
                continue
            # Filter 2: the node must not be assigned to any advertiser yet.
            if node in state.assigned:
                continue
            outcome = state.try_add(node, advertiser)
            if outcome == "selected":
                heap.advance_round()
            else:
                depleted.add(advertiser)

    # Line 9-10: when exactly one budget is depleted, re-run Greedy for it on
    # the still-unassigned nodes; its result backs the b = 1 case of Thm 3.2.
    rescue: Dict[int, Set[int]] = {i: set() for i in range(h)}
    if len(depleted) == 1:
        advertiser = next(iter(depleted))
        unassigned = [
            node
            for node in (candidates if candidates is not None else range(instance.num_nodes))
            if int(node) not in set().union(*state.selected.values())
        ]
        best, _selected, _stopple = greedy_single_advertiser(
            instance,
            oracle,
            advertiser,
            candidates=unassigned,
            budget=float(budget_array[advertiser]),
            policy=policy,
        )
        rescue[advertiser] = best

    # Line 11: per advertiser keep the best of S_j, D_j, A_j.
    chosen: Dict[int, Set[int]] = {}
    for advertiser in range(h):
        options = [state.selected[advertiser], state.stopple[advertiser], rescue[advertiser]]
        revenues = [
            oracle.revenue(advertiser, option) if option else 0.0 for option in options
        ]
        chosen[advertiser] = set(options[int(np.argmax(revenues))])

    # The paper's Fill expects a partition; resolve cross-advertiser duplicates
    # (possible when a stopple node of one advertiser was selected by another)
    # by keeping the copy with the larger marginal contribution.
    _deduplicate(chosen, oracle)

    allocation = Allocation(h)
    for advertiser, nodes in chosen.items():
        for node in nodes:
            allocation.assign(node, advertiser)

    if run_fill:
        allocation = fill(
            instance,
            oracle,
            allocation,
            budgets=budget_array,
            candidates=candidates,
            policy=policy,
        )
    return allocation, len(depleted)


def _deduplicate(chosen: Dict[int, Set[int]], oracle: RevenueOracle) -> None:
    """Ensure no node appears in two advertisers' chosen sets (keep best owner)."""
    owners: Dict[int, int] = {}
    for advertiser, nodes in chosen.items():
        for node in list(nodes):
            previous = owners.get(node)
            if previous is None:
                owners[node] = advertiser
                continue
            keep_gain = oracle.marginal_revenue(previous, node, chosen[previous] - {node})
            new_gain = oracle.marginal_revenue(advertiser, node, chosen[advertiser] - {node})
            if new_gain > keep_gain:
                chosen[previous].discard(node)
                owners[node] = advertiser
            else:
                chosen[advertiser].discard(node)


def fill(
    instance: RMInstance,
    oracle: RevenueOracle,
    allocation: Allocation,
    budgets: Optional[np.ndarray] = None,
    candidates: Optional[Iterable[int]] = None,
    policy: Optional["ExecutionPolicy"] = None,
) -> Allocation:
    """Algorithm 3 — greedily spend leftover budget by maximum marginal rate.

    Returns a new allocation extending ``allocation`` (the input is copied,
    not mutated).  ``policy.greedy_engine == "batched"`` (the ``fast``
    default — ``None`` resolves to :meth:`ExecutionPolicy.fast`) selects
    the batched coverage engine (RR-set oracles only; falls back to the
    scalar path otherwise).
    """
    from repro.runtime import resolve_policy

    policy = resolve_policy(policy)
    h = instance.num_advertisers
    budget_array = (
        np.asarray(budgets, dtype=np.float64) if budgets is not None else instance.budgets()
    )
    if budget_array.shape != (h,):
        raise SolverError(f"budgets must have length {h}")

    result = allocation.copy()
    revenue: Dict[int, float] = {}
    cost: Dict[int, float] = {}
    for advertiser, seeds in result.items():
        revenue[advertiser] = oracle.revenue(advertiser, seeds) if seeds else 0.0
        cost[advertiser] = instance.cost_of_set(advertiser, seeds)

    if policy.greedy_engine == "batched" and supports_batched_greedy(oracle, instance):
        return _fill_batched(
            instance, oracle, result, budget_array, candidates, revenue, cost
        )

    def evaluate(element: Element) -> float:
        node, advertiser = element
        gain = oracle.marginal_revenue(advertiser, node, result.seeds(advertiser))
        return marginal_rate(gain, instance.cost(advertiser, node))

    heap: LazyMarginalHeap[Element] = LazyMarginalHeap(evaluate)
    heap.push_many(_candidate_elements(instance, oracle, budget_array, candidates))

    while len(heap):
        popped = heap.pop_best()
        if popped is None:
            break
        (node, advertiser), _rate = popped
        if result.is_assigned(node):
            continue
        gain = oracle.marginal_revenue(advertiser, node, result.seeds(advertiser))
        node_cost = instance.cost(advertiser, node)
        if cost[advertiser] + node_cost + revenue[advertiser] + gain <= budget_array[advertiser]:
            result.assign(node, advertiser)
            revenue[advertiser] += gain
            cost[advertiser] += node_cost
            heap.advance_round()
    return result


def _fill_batched(
    instance: RMInstance,
    oracle: RevenueOracle,
    result: Allocation,
    budget_array: np.ndarray,
    candidates: Optional[Iterable[int]],
    revenue: Dict[int, float],
    cost: Dict[int, float],
) -> Allocation:
    """Algorithm 3 on the batched coverage engine (rate-ranked elements).

    The engine's fresh coverage state is replayed to the incoming partial
    allocation first, so element gains are marginals w.r.t. the seeds Fill
    starts from — the same quantities the scalar path queries the oracle for.
    """
    engine = CoverageGreedyEngine(instance, oracle)
    n = instance.num_nodes
    for advertiser, seeds in result.items():
        for node in seeds:
            engine.add_seed(advertiser, int(node))

    heap = BatchedLazyGreedy(engine.rates)
    heap.push_array(engine.feasible_element_keys(budget_array, candidates))

    while len(heap):
        popped = heap.pop_best()
        if popped is None:
            break
        key, _rate = popped
        advertiser, node = divmod(key, n)
        if result.is_assigned(node):
            continue
        gain = engine.gain(advertiser, node)
        node_cost = instance.cost(advertiser, node)
        if cost[advertiser] + node_cost + revenue[advertiser] + gain <= budget_array[advertiser]:
            result.assign(node, advertiser)
            engine.add_seed(advertiser, node)
            revenue[advertiser] += gain
            cost[advertiser] += node_cost
            heap.advance_round()
    return result
