"""Synthetic, scaled-down stand-ins for the paper's four evaluation datasets."""

from repro.datasets.synthetic import (
    SyntheticNetwork,
    lastfm_like,
    flixster_like,
    dblp_like,
    livejournal_like,
    synthetic_tic_probabilities,
)
from repro.datasets.registry import (
    PreparedDataset,
    DATASET_BUILDERS,
    build_dataset,
    build_instance,
    sample_advertisers,
)

__all__ = [
    "SyntheticNetwork",
    "lastfm_like",
    "flixster_like",
    "dblp_like",
    "livejournal_like",
    "synthetic_tic_probabilities",
    "PreparedDataset",
    "DATASET_BUILDERS",
    "build_dataset",
    "build_instance",
    "sample_advertisers",
]
