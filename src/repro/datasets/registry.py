"""Turning synthetic networks into ready-to-solve RM instances.

A :class:`PreparedDataset` bundles the network, the advertisers (with budgets
and cpe values sampled in the same regime as Table 2 of the paper, rescaled
to the synthetic graph size), the seeding cost matrix produced by an
incentive model, and the singleton spreads the costs were derived from.
The experiment harness and the examples build everything through
:func:`build_dataset` / :func:`build_instance` so all figures share one
construction path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.advertising.advertiser import Advertiser
from repro.advertising.instance import RMInstance
from repro.datasets.synthetic import (
    SyntheticNetwork,
    dblp_like,
    flixster_like,
    lastfm_like,
    livejournal_like,
    snap_scale,
)
from repro.diffusion.topics import TopicDistribution, random_topics
from repro.exceptions import DatasetError
from repro.incentives.models import IncentiveModel, incentive_model_by_name
from repro.incentives.singleton import estimate_singleton_spreads
from repro.utils.rng import RandomSource, as_rng

#: dataset name -> builder of the underlying synthetic network
DATASET_BUILDERS: Dict[str, Callable[..., SyntheticNetwork]] = {
    "lastfm_like": lastfm_like,
    "flixster_like": flixster_like,
    "dblp_like": dblp_like,
    "livejournal_like": livejournal_like,
    # SNAP-scale stress network (1M nodes / 10M+ edges at scale=1.0).  Keep
    # ``scale`` small for interactive use — the default 1.0 builds the full
    # million-node graph.
    "snap_scale": snap_scale,
}


@dataclass
class PreparedDataset:
    """A synthetic network with advertisers, costs and an :class:`RMInstance`."""

    network: SyntheticNetwork
    instance: RMInstance
    singleton_spreads: np.ndarray
    incentive_model: IncentiveModel
    alpha: float

    @property
    def name(self) -> str:
        """The dataset's short name (``lastfm_like`` etc.)."""
        return self.network.name


def sample_advertisers(
    num_advertisers: int,
    num_nodes: int,
    num_topics: int,
    demand_range: tuple[float, float] = (0.08, 0.45),
    cpe_values: Sequence[float] = (1.0, 1.5, 2.0),
    uniform_budget_fraction: Optional[float] = None,
    seed: RandomSource = None,
) -> List[Advertiser]:
    """Sample advertisers with heterogeneous budgets and cpe values.

    The paper (Table 2) assigns heterogeneous budgets whose scale tracks the
    network size: the implied per-advertiser demand ``M_i = B_i / (n·cpe_i)``
    sits around 0.15-0.25 for both Lastfm and Flixster.  Budgets here are
    sampled as ``M_i · n · cpe_i`` with ``M_i`` uniform over ``demand_range``,
    which preserves that regime on the rescaled graphs.

    ``uniform_budget_fraction`` switches to identical budgets
    ``B_i = fraction · n · cpe_i`` for every advertiser — the setting the
    paper uses in the DBLP / LiveJournal scalability experiments.
    """
    if num_advertisers <= 0:
        raise DatasetError("num_advertisers must be positive")
    if num_nodes <= 0:
        raise DatasetError("num_nodes must be positive")
    if not cpe_values:
        raise DatasetError("cpe_values must be non-empty")
    low, high = demand_range
    if not 0 < low <= high:
        raise DatasetError("demand_range must satisfy 0 < low <= high")
    rng = as_rng(seed)
    advertisers: List[Advertiser] = []
    for index in range(num_advertisers):
        cpe = float(rng.choice(np.asarray(cpe_values, dtype=np.float64)))
        if uniform_budget_fraction is not None:
            demand = float(uniform_budget_fraction)
        else:
            demand = float(rng.uniform(low, high))
        budget = max(1.0, demand * num_nodes * cpe)
        topic_mix: Optional[TopicDistribution] = None
        if num_topics > 1:
            topic_mix = random_topics(num_topics, concentration=0.3, seed=rng)
        advertisers.append(
            Advertiser(budget=budget, cpe=cpe, topic_mix=topic_mix, name=f"ad-{index}")
        )
    return advertisers


def build_dataset(
    name: str,
    num_advertisers: int = 10,
    incentive: str = "linear",
    alpha: float = 0.1,
    scale: float = 1.0,
    advertisers: Optional[Sequence[Advertiser]] = None,
    uniform_budget_fraction: Optional[float] = None,
    singleton_rr_sets: int = 1000,
    seed: RandomSource = None,
) -> PreparedDataset:
    """Build a fully prepared dataset by name.

    Parameters
    ----------
    name:
        One of ``lastfm_like``, ``flixster_like``, ``dblp_like``,
        ``livejournal_like``.
    num_advertisers:
        Number of advertisers ``h`` (ignored when ``advertisers`` is given).
    incentive:
        Incentive model name (``linear``, ``quasilinear``, ``superlinear``, ...).
    alpha:
        Incentive scale α.
    scale:
        Network size multiplier passed to the synthetic builder.
    advertisers:
        Pre-built advertisers to use instead of sampling them.
    uniform_budget_fraction:
        Forwarded to :func:`sample_advertisers` for the scalability setting.
    singleton_rr_sets:
        RR-sets used to estimate the singleton spreads that drive node costs.
    """
    if name not in DATASET_BUILDERS:
        raise DatasetError(f"unknown dataset {name!r}; expected one of {sorted(DATASET_BUILDERS)}")
    rng = as_rng(seed)
    builder = DATASET_BUILDERS[name]
    if name in ("lastfm_like", "flixster_like"):
        network = builder(scale=scale, seed=rng)
    else:
        network = builder(scale=scale, seed=rng)

    if advertisers is None:
        advertisers = sample_advertisers(
            num_advertisers,
            network.num_nodes,
            network.num_topics,
            uniform_budget_fraction=uniform_budget_fraction,
            seed=rng,
        )
    advertisers = list(advertisers)

    # Node costs are driven by singleton spreads under a topic-neutral mix,
    # shared across advertisers (the per-advertiser differences are second
    # order and sharing keeps dataset preparation fast).
    reference_probabilities = network.propagation_model.edge_probabilities(None)
    spreads = estimate_singleton_spreads(
        network.graph,
        reference_probabilities,
        num_rr_sets=singleton_rr_sets,
        rng=rng,
    )
    incentive_model = incentive_model_by_name(incentive, alpha=alpha)
    costs = incentive_model.costs(spreads)
    instance = RMInstance(
        graph=network.graph,
        propagation_model=network.propagation_model,
        advertisers=advertisers,
        costs=costs,
    )
    return PreparedDataset(
        network=network,
        instance=instance,
        singleton_spreads=spreads,
        incentive_model=incentive_model,
        alpha=alpha,
    )


def build_instance(
    name: str,
    num_advertisers: int = 10,
    incentive: str = "linear",
    alpha: float = 0.1,
    scale: float = 1.0,
    seed: RandomSource = None,
    **kwargs,
) -> RMInstance:
    """Convenience wrapper returning just the :class:`RMInstance`."""
    return build_dataset(
        name,
        num_advertisers=num_advertisers,
        incentive=incentive,
        alpha=alpha,
        scale=scale,
        seed=seed,
        **kwargs,
    ).instance
