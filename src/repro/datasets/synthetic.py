"""Synthetic networks mimicking the paper's four datasets at laptop scale.

The original datasets (Table 1 of the paper) are not available offline, so
each builder produces a graph with a comparable structural character
(directed vs undirected, heavy-tailed vs flat degrees, reciprocity) scaled to
a size the pure-Python solvers can handle.  The default sizes keep the same
*relative* ordering (lastfm < flixster < dblp < livejournal) so the
scalability experiments retain their shape.

============  ==========  ============  ======================================
paper name    paper size  default here  generator
============  ==========  ============  ======================================
Lastfm        1.3K/14.7K  600/7K        preferential attachment, reciprocal
Flixster      30K/425K    1.5K/18K      power-law configuration model
DBLP          317K/1.05M  2.5K/15K      small-world (undirected collaboration)
LiveJournal   4.8M/69M    4K/60K        power-law configuration model
============  ==========  ============  ======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.diffusion.models import (
    PropagationModel,
    TopicAwareICModel,
    WeightedCascadeModel,
)
from repro.exceptions import DatasetError
from repro.graph.digraph import CSRDiGraph
from repro.graph.generators import (
    power_law_configuration_digraph,
    preferential_attachment_digraph,
    small_world_digraph,
    snap_scale_digraph,
)
from repro.utils.rng import RandomSource, as_rng


@dataclass
class SyntheticNetwork:
    """A generated network plus its propagation model and metadata."""

    name: str
    graph: CSRDiGraph
    propagation_model: PropagationModel
    num_topics: int
    directed: bool
    #: which paper dataset this network stands in for
    stands_in_for: str = ""

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the generated graph."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of directed edges in the generated graph."""
        return self.graph.num_edges


def synthetic_tic_probabilities(
    graph: CSRDiGraph,
    num_topics: int,
    positive_fraction: float = 0.9,
    strength: float = 1.0,
    seed: RandomSource = None,
) -> np.ndarray:
    """Generate a ``(num_topics, num_edges)`` TIC probability matrix.

    Each topic's probabilities start from the weighted-cascade baseline
    ``1 / in_degree(v)`` (so influence mass per node is bounded) and are
    modulated by a per-topic, per-edge affinity factor; a
    ``1 - positive_fraction`` share of entries is zeroed to mimic the sparsity
    of probabilities learned from real action logs (the paper reports 95% /
    77% positive entries for Flixster / Lastfm).
    """
    if num_topics <= 0:
        raise DatasetError("num_topics must be positive")
    if not 0.0 < positive_fraction <= 1.0:
        raise DatasetError("positive_fraction must lie in (0, 1]")
    if strength <= 0:
        raise DatasetError("strength must be positive")
    rng = as_rng(seed)
    in_degrees = graph.in_degrees().astype(np.float64)
    targets = graph.targets
    base = np.where(in_degrees[targets] > 0, 1.0 / np.maximum(in_degrees[targets], 1.0), 0.0)
    matrix = np.zeros((num_topics, graph.num_edges), dtype=np.float64)
    for topic in range(num_topics):
        affinity = rng.gamma(shape=2.0, scale=0.5 * strength, size=graph.num_edges)
        probabilities = np.clip(base * affinity, 0.0, 1.0)
        zero_mask = rng.random(graph.num_edges) > positive_fraction
        probabilities[zero_mask] = 0.0
        matrix[topic] = probabilities
    return matrix


def lastfm_like(
    scale: float = 1.0, num_topics: int = 10, seed: RandomSource = None
) -> SyntheticNetwork:
    """Stand-in for the Lastfm network (small, directed, reciprocal friendships)."""
    _check_scale(scale)
    rng = as_rng(seed)
    num_nodes = max(50, int(600 * scale))
    graph = preferential_attachment_digraph(
        num_nodes, out_degree=6, reciprocity=0.5, seed=rng
    )
    matrix = synthetic_tic_probabilities(
        graph, num_topics, positive_fraction=0.77, strength=1.2, seed=rng
    )
    model = TopicAwareICModel(graph, matrix)
    return SyntheticNetwork(
        name="lastfm_like",
        graph=graph,
        propagation_model=model,
        num_topics=num_topics,
        directed=True,
        stands_in_for="Lastfm (1.3K nodes / 14.7K edges)",
    )


def flixster_like(
    scale: float = 1.0, num_topics: int = 10, seed: RandomSource = None
) -> SyntheticNetwork:
    """Stand-in for the Flixster network (directed, heavy-tailed in-degrees)."""
    _check_scale(scale)
    rng = as_rng(seed)
    num_nodes = max(100, int(1500 * scale))
    graph = power_law_configuration_digraph(
        num_nodes, exponent=2.1, mean_degree=12.0, seed=rng
    )
    matrix = synthetic_tic_probabilities(
        graph, num_topics, positive_fraction=0.95, strength=1.0, seed=rng
    )
    model = TopicAwareICModel(graph, matrix)
    return SyntheticNetwork(
        name="flixster_like",
        graph=graph,
        propagation_model=model,
        num_topics=num_topics,
        directed=True,
        stands_in_for="Flixster (30K nodes / 425K edges)",
    )


def dblp_like(scale: float = 1.0, seed: RandomSource = None) -> SyntheticNetwork:
    """Stand-in for DBLP (undirected collaboration network, Weighted-Cascade)."""
    _check_scale(scale)
    rng = as_rng(seed)
    num_nodes = max(100, int(2500 * scale))
    graph = small_world_digraph(
        num_nodes, nearest_neighbors=6, rewire_probability=0.1, seed=rng
    )
    model = WeightedCascadeModel(graph)
    return SyntheticNetwork(
        name="dblp_like",
        graph=graph,
        propagation_model=model,
        num_topics=1,
        directed=False,
        stands_in_for="DBLP (317K nodes / 1.05M edges)",
    )


def livejournal_like(scale: float = 1.0, seed: RandomSource = None) -> SyntheticNetwork:
    """Stand-in for LiveJournal (large directed friendship graph, Weighted-Cascade)."""
    _check_scale(scale)
    rng = as_rng(seed)
    num_nodes = max(200, int(4000 * scale))
    graph = power_law_configuration_digraph(
        num_nodes, exponent=2.2, mean_degree=15.0, seed=rng
    )
    model = WeightedCascadeModel(graph)
    return SyntheticNetwork(
        name="livejournal_like",
        graph=graph,
        propagation_model=model,
        num_topics=1,
        directed=True,
        stands_in_for="LiveJournal (4.8M nodes / 69M edges)",
    )


def snap_scale(scale: float = 1.0, seed: RandomSource = None) -> SyntheticNetwork:
    """SNAP-scale stress network: ``scale=1.0`` → 1M nodes / >10M edges.

    Unlike the four paper stand-ins this one targets raw size, not structural
    fidelity to a specific dataset: it exists to exercise the zero-copy
    payload path and out-of-core graph storage at the node counts of the real
    SNAP snapshots (LiveJournal-class).  Construction streams through
    :func:`~repro.graph.generators.snap_scale_digraph`, so builder memory
    stays bounded by the final CSR arrays rather than intermediate edge
    stacks.  Weighted-Cascade probabilities (``1/in_degree``) keep the
    propagation model parameter-free at this size.
    """
    _check_scale(scale)
    rng = as_rng(seed)
    num_nodes = max(1000, int(1_000_000 * scale))
    graph = snap_scale_digraph(num_nodes, exponent=2.1, mean_degree=12.0, seed=rng)
    model = WeightedCascadeModel(graph)
    return SyntheticNetwork(
        name="snap_scale",
        graph=graph,
        propagation_model=model,
        num_topics=1,
        directed=True,
        stands_in_for="SNAP-scale snapshot (1M+ nodes / 10M+ edges)",
    )


def _check_scale(scale: float) -> None:
    if not 0.0 < scale <= 10.0:
        raise DatasetError(f"scale must lie in (0, 10], got {scale}")
