"""Influence-propagation substrate: topic models, cascade models, simulation."""

from repro.diffusion.topics import TopicDistribution, uniform_topics, random_topics, skewed_topics
from repro.diffusion.models import (
    PropagationModel,
    IndependentCascadeModel,
    WeightedCascadeModel,
    TrivalencyModel,
    TopicAwareICModel,
)
from repro.diffusion.simulation import (
    simulate_cascade,
    monte_carlo_spread,
    exact_spread,
    singleton_spreads_monte_carlo,
)
from repro.diffusion.engine import simulate_cascades_batch
from repro.diffusion.action_logs import ActionLog, ActionEvent, generate_action_log
from repro.diffusion.learning import learn_topic_edge_probabilities

__all__ = [
    "TopicDistribution",
    "uniform_topics",
    "random_topics",
    "skewed_topics",
    "PropagationModel",
    "IndependentCascadeModel",
    "WeightedCascadeModel",
    "TrivalencyModel",
    "TopicAwareICModel",
    "simulate_cascade",
    "simulate_cascades_batch",
    "monte_carlo_spread",
    "exact_spread",
    "singleton_spreads_monte_carlo",
    "ActionLog",
    "ActionEvent",
    "generate_action_log",
    "learn_topic_edge_probabilities",
]
