"""Synthetic action logs.

Flixster and Lastfm ship "logs of past propagations" (users rating movies or
listening to music over time).  Those logs are what Barbieri et al. [9] use to
learn the topic-aware edge probabilities.  Real logs are unavailable offline,
so this module *generates* logs by propagating synthetic items (each with its
own latent topic) over the graph with a hidden ground-truth TIC model.  The
learner in :mod:`repro.diffusion.learning` then recovers edge probabilities
from the logs, exercising the same pipeline the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.exceptions import DiffusionError
from repro.graph.digraph import CSRDiGraph
from repro.diffusion.simulation import simulate_cascade
from repro.utils.rng import RandomSource, as_rng


@dataclass(frozen=True)
class ActionEvent:
    """A single "user performed action on item at time" record."""

    user: int
    item: int
    timestamp: int


@dataclass
class ActionLog:
    """A collection of action events plus per-item topic annotations."""

    events: List[ActionEvent] = field(default_factory=list)
    item_topics: Dict[int, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ActionEvent]:
        return iter(self.events)

    @property
    def num_items(self) -> int:
        """Number of distinct items appearing in the log."""
        return len(self.item_topics)

    def events_for_item(self, item: int) -> List[ActionEvent]:
        """All events of ``item`` sorted by timestamp."""
        selected = [event for event in self.events if event.item == item]
        return sorted(selected, key=lambda event: event.timestamp)

    def users(self) -> set:
        """The set of users appearing in the log."""
        return {event.user for event in self.events}


def generate_action_log(
    graph: CSRDiGraph,
    topic_edge_probabilities: np.ndarray,
    num_items: int = 50,
    seeds_per_item: int = 3,
    seed: RandomSource = None,
) -> ActionLog:
    """Generate an action log by simulating item cascades.

    Each item is assigned a latent topic uniformly at random, a few random
    seed users adopt it at time 0, and a cascade under that topic's edge
    probabilities produces the remaining adoptions.  Activation times are the
    BFS layer at which the node was reached, which is what timestamp-based
    learners consume.
    """
    matrix = np.asarray(topic_edge_probabilities, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != graph.num_edges:
        raise DiffusionError("topic_edge_probabilities must be (num_topics, num_edges)")
    if num_items <= 0:
        raise DiffusionError("num_items must be positive")
    if seeds_per_item <= 0:
        raise DiffusionError("seeds_per_item must be positive")
    rng = as_rng(seed)
    num_topics = matrix.shape[0]
    log = ActionLog()
    for item in range(num_items):
        topic = int(rng.integers(0, num_topics))
        log.item_topics[item] = topic
        if graph.num_nodes == 0:
            continue
        seeds = rng.choice(
            graph.num_nodes, size=min(seeds_per_item, graph.num_nodes), replace=False
        )
        activation_time = _layered_cascade(graph, matrix[topic], seeds.tolist(), rng)
        for user, timestamp in activation_time.items():
            log.events.append(ActionEvent(user=user, item=item, timestamp=timestamp))
    return log


def _layered_cascade(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seeds: Sequence[int],
    rng: np.random.Generator,
) -> Dict[int, int]:
    """Run an IC cascade recording the activation time (BFS layer) of each node."""
    activation_time: Dict[int, int] = {int(s): 0 for s in seeds}
    frontier = list(activation_time)
    current_time = 0
    while frontier:
        current_time += 1
        next_frontier: List[int] = []
        for node in frontier:
            neighbor_ids = graph.out_neighbors(node)
            if neighbor_ids.size == 0:
                continue
            edge_ids = graph.out_edge_ids(node)
            draws = rng.random(neighbor_ids.size)
            successes = draws < edge_probabilities[edge_ids]
            for neighbor in neighbor_ids[successes].tolist():
                if neighbor not in activation_time:
                    activation_time[int(neighbor)] = current_time
                    next_frontier.append(int(neighbor))
        frontier = next_frontier
    return activation_time


def cascades_touching_edge(log: ActionLog, source: int, target: int) -> int:
    """Number of items where ``source`` acted strictly before ``target``.

    Used as the denominator/numerator bookkeeping sanity check in tests of the
    probability learner.
    """
    count = 0
    for item in log.item_topics:
        events = log.events_for_item(item)
        time_of = {event.user: event.timestamp for event in events}
        if source in time_of and target in time_of and time_of[source] < time_of[target]:
            count += 1
    return count
