"""Batched, CSR-vectorized forward-cascade engine.

The reference Monte-Carlo estimator (preserved in
:mod:`repro.diffusion.legacy`) runs one Python BFS per cascade and draws one
block of uniforms per dequeued node.  This engine instead advances **all live
cascades of a batch one BFS level at a time** on flat numpy arrays, so the
per-level Python overhead is constant no matter how many cascades are in
flight.

Frontier-batching layout
------------------------
A batch of ``B`` cascades over an ``n``-node graph keeps three flat
structures:

* ``active`` — a ``(B, n)`` boolean activation bitmap, addressed through its
  raveled ``B·n`` view so membership tests and activation writes are single
  fancy-index operations on ``cascade·n + node`` keys;
* the frontier as two parallel int64 arrays ``(frontier_cascades,
  frontier_nodes)`` holding every (cascade, node) pair activated in the
  previous level, across *all* cascades at once;
* the edge probabilities gathered **once** into out-CSR order
  (``probabilities[graph.out_edge_id_array]``), so per-level probability
  lookups are contiguous gathers with no per-edge indirection.

One BFS level is then five vectorised steps:

1. ``np.repeat`` the frontier by its out-degrees to expand every frontier
   entry into its out-edge block (a single CSR gather builds the flat edge
   positions for the whole level);
2. one bulk ``rng.random(total_edges)`` Bernoulli draw against the
   pre-gathered probabilities;
3. gather the successful edges' targets and their owning cascades;
4. dedupe attempted activations *within* the level via ``np.unique`` on the
   ``cascade·n + node`` keys (two frontier nodes of the same cascade may hit
   the same target in one level);
5. drop already-active keys with one mask against the raveled bitmap, flip
   the fresh ones, and split the keys back into the next level's frontier.

Cascades that die out simply stop contributing frontier entries; the loop
ends when the combined frontier is empty.  Per-cascade activation counts are
accumulated with ``np.bincount`` per level, so estimators never materialise
more than one batch bitmap at a time (``batch_size`` bounds it).

The engine draws randomness in a different order than the sequential
reference, so results are **statistically equivalent, not bit-identical**;
``tests/test_mc_engine_equivalence.py`` pins the equivalence with fixed-seed
KS and mean-within-3σ tests against the legacy path, ``exact_spread`` and the
RR-set estimator.  Callers that need the seed tree's exact stream keep the
default (non-batched) path in :mod:`repro.diffusion.simulation` — see the
RNG seed-stream-compatibility policy in ``docs/architecture.md``, which
also explains how this engine's raveled ``B·n`` bitmap relates to the CSR
gather order of :mod:`repro.rrsets.generator` and the ``(h, n)`` marginal
matrix of :mod:`repro.rrsets.collection`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.exceptions import DiffusionError
from repro.graph.digraph import CSRDiGraph
# simulation.py imports this module lazily inside its dispatch functions, so
# sharing its validation helper introduces no import cycle.
from repro.diffusion.simulation import _as_seed_array
from repro.utils.rng import RandomSource, as_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import Runtime

#: Soft cap on the number of activation-bitmap cells (``batch · num_nodes``)
#: a single batch may allocate when the caller does not pass ``batch_size``;
#: 32M bool cells ≈ 32 MB, comfortably cache/RAM friendly.
_DEFAULT_BITMAP_CELLS = 32 * 1024 * 1024


def _validated_probabilities(
    graph: CSRDiGraph, edge_probabilities: np.ndarray
) -> np.ndarray:
    probabilities = np.asarray(edge_probabilities, dtype=np.float64)
    if probabilities.shape != (graph.num_edges,):
        raise DiffusionError("edge_probabilities must have one entry per edge")
    return probabilities


def default_batch_size(num_nodes: int, num_cascades: int) -> int:
    """Batch size keeping the activation bitmap within the soft memory cap."""
    if num_cascades <= 0:
        return 1
    per_cascade = max(1, num_nodes)
    return max(1, min(num_cascades, _DEFAULT_BITMAP_CELLS // per_cascade))


def _run_level_synchronous(
    graph: CSRDiGraph,
    out_probs: np.ndarray,
    active_flat: np.ndarray,
    frontier_cascades: np.ndarray,
    frontier_nodes: np.ndarray,
    batch: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Advance a batch to absorption; returns per-cascade activation counts.

    ``active_flat`` is the raveled ``(batch, n)`` bitmap with the seeds
    already flipped; ``frontier_*`` hold the seed (cascade, node) pairs.
    """
    n = graph.num_nodes
    out_offsets = graph.out_offsets
    out_targets = graph.out_target_array
    counts = np.bincount(frontier_cascades, minlength=batch).astype(np.int64)
    while frontier_nodes.size:
        starts = out_offsets[frontier_nodes]
        degrees = out_offsets[frontier_nodes + 1] - starts
        total = int(degrees.sum())
        if total == 0:
            break
        # CSR expansion of the whole frontier: block starts repeated per edge
        # plus the within-block ramp gives every out-edge position flat.
        block_ends = np.cumsum(degrees)
        origin = np.repeat(np.arange(frontier_nodes.size, dtype=np.int64), degrees)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            block_ends - degrees, degrees
        )
        edge_positions = starts[origin] + within
        successes = rng.random(total) < out_probs[edge_positions]
        if not successes.any():
            break
        keys = (
            frontier_cascades[origin[successes]] * n
            + out_targets[edge_positions[successes]]
        )
        keys = np.unique(keys)
        fresh = keys[~active_flat[keys]]
        if fresh.size == 0:
            break
        active_flat[fresh] = True
        frontier_cascades = fresh // n
        frontier_nodes = fresh - frontier_cascades * n
        counts += np.bincount(frontier_cascades, minlength=batch)
    return counts


def simulate_cascades_batch(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seeds: Iterable[int],
    num_cascades: int = 1,
    rng: RandomSource = None,
) -> np.ndarray:
    """Run ``num_cascades`` independent cascades from ``seeds`` at once.

    Returns the ``(num_cascades, num_nodes)`` boolean activation bitmap:
    row ``b`` flags the nodes activated in cascade ``b``.  All cascades share
    the same seed set; their Bernoulli draws are independent.
    """
    if num_cascades <= 0:
        raise DiffusionError("num_cascades must be positive")
    probabilities = _validated_probabilities(graph, edge_probabilities)
    generator = as_rng(rng)
    n = graph.num_nodes
    seed_array = _as_seed_array(seeds, n)
    active = np.zeros((num_cascades, n), dtype=bool)
    if seed_array.size == 0:
        return active
    active[:, seed_array] = True
    out_probs = (
        probabilities[graph.out_edge_id_array] if probabilities.size else probabilities
    )
    frontier_cascades = np.repeat(
        np.arange(num_cascades, dtype=np.int64), seed_array.size
    )
    frontier_nodes = np.tile(seed_array, num_cascades)
    _run_level_synchronous(
        graph,
        out_probs,
        active.reshape(-1),
        frontier_cascades,
        frontier_nodes,
        num_cascades,
        generator,
    )
    return active


def monte_carlo_activation_total(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seeds: Iterable[int],
    num_simulations: int,
    rng: RandomSource = None,
    batch_size: Optional[int] = None,
) -> int:
    """Integer total of activated nodes over ``num_simulations`` cascades.

    The batched engine's inner loop, exposed separately so the sharded
    parallel path (:mod:`repro.parallel.mc`) can merge worker results as
    exact integer sums — the merge is then order-independent and a fixed
    ``(seed, n_jobs)`` run is bit-reproducible.
    """
    if num_simulations <= 0:
        raise DiffusionError("num_simulations must be positive")
    probabilities = _validated_probabilities(graph, edge_probabilities)
    n = graph.num_nodes
    seed_array = _as_seed_array(seeds, n)
    if seed_array.size == 0:
        return 0
    generator = as_rng(rng)
    if batch_size is None:
        batch_size = default_batch_size(n, num_simulations)
    if batch_size <= 0:
        raise DiffusionError("batch_size must be positive")
    out_probs = (
        probabilities[graph.out_edge_id_array] if probabilities.size else probabilities
    )
    total = 0
    remaining = num_simulations
    while remaining > 0:
        batch = min(batch_size, remaining)
        active = np.zeros((batch, n), dtype=bool)
        active[:, seed_array] = True
        frontier_cascades = np.repeat(
            np.arange(batch, dtype=np.int64), seed_array.size
        )
        frontier_nodes = np.tile(seed_array, batch)
        counts = _run_level_synchronous(
            graph,
            out_probs,
            active.reshape(-1),
            frontier_cascades,
            frontier_nodes,
            batch,
            generator,
        )
        total += int(counts.sum())
        remaining -= batch
    return total


def monte_carlo_spread(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seeds: Iterable[int],
    num_simulations: int = 1000,
    rng: RandomSource = None,
    batch_size: Optional[int] = None,
    n_jobs: Optional[int] = None,
    runtime: Optional["Runtime"] = None,
) -> float:
    """Batched estimate of the expected spread ``σ(seeds)``.

    Statistically equivalent to the sequential reference
    (:func:`repro.diffusion.legacy.legacy_monte_carlo_spread`) but runs the
    cascades in level-synchronous batches of ``batch_size`` (default: sized
    by :func:`default_batch_size`).

    ``n_jobs>1`` shards the simulation count across worker processes
    (:mod:`repro.parallel.mc`): each worker runs this engine on its own
    ``SeedSequence.spawn()`` substream and the integer activation totals are
    summed in worker-index order — fixed ``(seed, n_jobs)`` runs are
    bit-reproducible and ``n_jobs=1`` is bit-identical to the serial engine.
    ``runtime`` (or the ambient one) supplies a persistent worker pool.
    """
    from repro.runtime import acquire_executor

    executor = acquire_executor(n_jobs, runtime)
    if executor.n_jobs > 1 and num_simulations > 1:
        from repro.parallel.mc import sharded_spread

        probabilities = _validated_probabilities(graph, edge_probabilities)
        seed_array = _as_seed_array(seeds, graph.num_nodes)
        if seed_array.size == 0:
            return 0.0
        return sharded_spread(
            graph, probabilities, seed_array, num_simulations, rng, executor, batch_size
        )
    total = monte_carlo_activation_total(
        graph, edge_probabilities, seeds, num_simulations, rng=rng, batch_size=batch_size
    )
    return total / num_simulations


def _validated_node_array(graph: CSRDiGraph, nodes: Optional[Sequence[int]]) -> np.ndarray:
    n = graph.num_nodes
    if nodes is None:
        return np.arange(n, dtype=np.int64)
    node_array = np.asarray(list(nodes), dtype=np.int64)
    if node_array.size and (node_array.min() < 0 or node_array.max() >= n):
        raise DiffusionError("seed ids must be valid node ids")
    return node_array


def singleton_activation_totals(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    node_array: np.ndarray,
    num_simulations: int,
    rng: RandomSource = None,
    batch_size: Optional[int] = None,
) -> np.ndarray:
    """Per-node integer activation totals over ``num_simulations`` cascades.

    The singleton estimator's inner loop on a pre-validated node array,
    exposed for the sharded parallel path (each worker handles a round-robin
    node stripe and the parent scatters the exact integer totals back into
    node order).
    """
    if num_simulations <= 0:
        raise DiffusionError("num_simulations must be positive")
    probabilities = _validated_probabilities(graph, edge_probabilities)
    n = graph.num_nodes
    node_array = np.asarray(node_array, dtype=np.int64)
    if node_array.size == 0:
        return np.zeros(0, dtype=np.int64)
    generator = as_rng(rng)
    total_cascades = node_array.size * num_simulations
    if batch_size is None:
        batch_size = default_batch_size(n, total_cascades)
    if batch_size <= 0:
        raise DiffusionError("batch_size must be positive")
    out_probs = (
        probabilities[graph.out_edge_id_array] if probabilities.size else probabilities
    )
    # Cascade b of the flat stream seeds node_array[b // num_simulations].
    totals = np.zeros(node_array.size, dtype=np.int64)
    position = 0
    while position < total_cascades:
        batch = min(batch_size, total_cascades - position)
        cascade_ids = np.arange(position, position + batch, dtype=np.int64)
        seed_nodes = node_array[cascade_ids // num_simulations]
        active = np.zeros((batch, n), dtype=bool)
        local = np.arange(batch, dtype=np.int64)
        active[local, seed_nodes] = True
        counts = _run_level_synchronous(
            graph,
            out_probs,
            active.reshape(-1),
            local,
            seed_nodes,
            batch,
            generator,
        )
        np.add.at(totals, cascade_ids // num_simulations, counts)
        position += batch
    return totals


def singleton_spreads_monte_carlo(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    num_simulations: int = 200,
    rng: RandomSource = None,
    nodes: Optional[Sequence[int]] = None,
    batch_size: Optional[int] = None,
    n_jobs: Optional[int] = None,
    runtime: Optional["Runtime"] = None,
) -> np.ndarray:
    """Batched Monte-Carlo estimates of ``σ({v})`` for the requested nodes.

    The (node, simulation) grid is flattened into one stream of single-seed
    cascades and processed in batches, so different nodes' simulations share
    the same level-synchronous sweeps.

    ``n_jobs>1`` shards the node list into round-robin stripes
    (``nodes[k::n_jobs]``, balancing degree-correlated per-node cost) across
    worker processes (:mod:`repro.parallel.mc`), each estimating its stripe
    on its own ``SeedSequence.spawn()`` substream; the parent scatters the
    per-node totals back into node order by stripe index, so fixed
    ``(seed, n_jobs)`` runs are bit-reproducible and ``n_jobs=1`` is
    bit-identical to the serial engine.
    """
    probabilities = _validated_probabilities(graph, edge_probabilities)
    node_array = _validated_node_array(graph, nodes)
    if node_array.size == 0:
        return np.zeros(0, dtype=np.float64)
    from repro.runtime import acquire_executor

    executor = acquire_executor(n_jobs, runtime)
    if executor.n_jobs > 1 and node_array.size > 1:
        from repro.parallel.mc import sharded_singleton_spreads

        return sharded_singleton_spreads(
            graph, probabilities, node_array, num_simulations, rng, executor, batch_size
        )
    totals = singleton_activation_totals(
        graph, probabilities, node_array, num_simulations, rng=rng, batch_size=batch_size
    )
    return totals.astype(np.float64) / num_simulations
