"""Learning topic-aware edge probabilities from action logs.

The paper relies on the method of Barbieri et al. [9] to learn
``p̂^z_(u,v)`` from the Flixster and Lastfm action logs.  The full EM
procedure of [9] is orthogonal to the paper's contribution, so we implement a
frequency-based credit-attribution learner in the spirit of Goyal et al.'s
"data-based approach": for each latent topic ``z``, the probability of edge
``(u, v)`` is the fraction of topic-``z`` items adopted by ``u`` that ``v``
adopted *afterwards* (within a propagation window), Laplace-smoothed.

The output matrix plugs directly into
:class:`repro.diffusion.models.TopicAwareICModel`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

import numpy as np

from repro.exceptions import DiffusionError
from repro.graph.digraph import CSRDiGraph
from repro.diffusion.action_logs import ActionLog


def learn_topic_edge_probabilities(
    graph: CSRDiGraph,
    log: ActionLog,
    num_topics: int,
    propagation_window: int = 10,
    smoothing: float = 0.0,
    max_probability: float = 1.0,
) -> np.ndarray:
    """Estimate the ``(num_topics, num_edges)`` TIC probability matrix.

    Parameters
    ----------
    graph:
        Social graph whose canonical edge order indexes the output columns.
    log:
        Action log with per-item topic annotations.
    num_topics:
        Number of latent topics ``L``.
    propagation_window:
        ``v``'s adoption is credited to ``u`` only if it happened no more than
        this many time units after ``u``'s adoption.
    smoothing:
        Additive (Laplace) smoothing applied to the success counts.
    max_probability:
        Upper clamp applied to the learned probabilities.
    """
    if num_topics <= 0:
        raise DiffusionError("num_topics must be positive")
    if propagation_window <= 0:
        raise DiffusionError("propagation_window must be positive")
    if smoothing < 0:
        raise DiffusionError("smoothing must be non-negative")
    if not 0.0 < max_probability <= 1.0:
        raise DiffusionError("max_probability must be in (0, 1]")
    for item, topic in log.item_topics.items():
        if not 0 <= topic < num_topics:
            raise DiffusionError(f"item {item} has topic {topic} outside [0, {num_topics})")

    successes: Dict[Tuple[int, int], float] = defaultdict(float)
    trials: Dict[Tuple[int, int], float] = defaultdict(float)

    events_by_item: Dict[int, Dict[int, int]] = defaultdict(dict)
    for event in log.events:
        existing = events_by_item[event.item].get(event.user)
        if existing is None or event.timestamp < existing:
            events_by_item[event.item][event.user] = event.timestamp

    for item, adoption_times in events_by_item.items():
        topic = log.item_topics.get(item)
        if topic is None:
            continue
        for user, user_time in adoption_times.items():
            if user >= graph.num_nodes:
                continue
            neighbor_ids = graph.out_neighbors(user)
            for neighbor in neighbor_ids.tolist():
                key = (topic, _edge_lookup(graph, user, neighbor))
                trials[key] += 1.0
                neighbor_time = adoption_times.get(int(neighbor))
                if neighbor_time is not None and 0 < neighbor_time - user_time <= propagation_window:
                    successes[key] += 1.0

    matrix = np.zeros((num_topics, graph.num_edges), dtype=np.float64)
    for (topic, edge_id), trial_count in trials.items():
        win = successes.get((topic, edge_id), 0.0)
        matrix[topic, edge_id] = (win + smoothing) / (trial_count + 2.0 * smoothing)
    np.clip(matrix, 0.0, max_probability, out=matrix)
    return matrix


_EDGE_INDEX_CACHE: Dict[int, Dict[Tuple[int, int], int]] = {}


def _edge_lookup(graph: CSRDiGraph, source: int, target: int) -> int:
    """Canonical edge id of ``source -> target`` (cached per graph object)."""
    cache_key = id(graph)
    index = _EDGE_INDEX_CACHE.get(cache_key)
    if index is None:
        index = {
            (int(u), int(v)): edge_id
            for edge_id, (u, v) in enumerate(zip(graph.sources, graph.targets))
        }
        _EDGE_INDEX_CACHE[cache_key] = index
    try:
        return index[(int(source), int(target))]
    except KeyError as exc:
        raise DiffusionError(f"edge ({source}, {target}) does not exist") from exc


def positive_probability_fraction(matrix: np.ndarray) -> float:
    """Fraction of strictly positive entries in a probability matrix.

    The paper reports that >95% (Flixster) and 77% (Lastfm) of learned
    probabilities are positive; the dataset builders use this metric to check
    the synthetic stand-ins are in a comparable regime.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.size == 0:
        return 0.0
    return float(np.count_nonzero(matrix > 0.0)) / matrix.size
