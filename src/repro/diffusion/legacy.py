"""Reference (pre-vectorization) Monte-Carlo cascade path, kept for equivalence proofs.

This module preserves the seed tree's per-cascade simulation functions exactly
as they shipped: one Python BFS per cascade, one block of ``degree`` uniform
draws per dequeued node, FIFO frontier order, and the full
``itertools.product`` possible-world enumeration of ``exact_spread``.  They
are the *specification* the batched engine in :mod:`repro.diffusion.engine`
must stay statistically equivalent to, and the draw-order contract the
default path in :mod:`repro.diffusion.simulation` must match bit-for-bit:

* ``tests/test_mc_engine_equivalence.py`` drives the default path and this
  module from the same RNG seed and asserts identical activated sets and
  spread estimates, then checks the batched engine against both with
  fixed-seed statistical tests (KS, mean-within-3σ).
* ``benchmarks/bench_mc_engine.py`` times this module as the "before" side of
  the perf-regression harness.

Nothing in the library imports this module on a hot path; do not "optimize"
it — its only value is being a faithful copy of the seed semantics.
"""

from __future__ import annotations

from collections import deque
from itertools import product
from typing import Iterable, Optional, Sequence, Set

import numpy as np

from repro.exceptions import DiffusionError
from repro.graph.digraph import CSRDiGraph
from repro.utils.rng import RandomSource, as_rng


def _as_seed_array(seeds: Iterable[int], num_nodes: int) -> np.ndarray:
    seed_array = np.unique(np.asarray(list(seeds), dtype=np.int64))
    if seed_array.size and (seed_array.min() < 0 or seed_array.max() >= num_nodes):
        raise DiffusionError("seed ids must be valid node ids")
    return seed_array


def legacy_simulate_cascade(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seeds: Iterable[int],
    rng: RandomSource = None,
) -> Set[int]:
    """The seed tree's single-cascade BFS (one uniform block per dequeued node)."""
    generator = as_rng(rng)
    probabilities = np.asarray(edge_probabilities, dtype=np.float64)
    if probabilities.shape != (graph.num_edges,):
        raise DiffusionError("edge_probabilities must have one entry per edge")
    seed_array = _as_seed_array(seeds, graph.num_nodes)
    activated: Set[int] = set(int(s) for s in seed_array)
    frontier = deque(activated)
    while frontier:
        node = frontier.popleft()
        neighbor_ids = graph.out_neighbors(node)
        if neighbor_ids.size == 0:
            continue
        edge_ids = graph.out_edge_ids(node)
        draws = generator.random(neighbor_ids.size)
        successes = draws < probabilities[edge_ids]
        for neighbor in neighbor_ids[successes].tolist():
            if neighbor not in activated:
                activated.add(int(neighbor))
                frontier.append(int(neighbor))
    return activated


def legacy_monte_carlo_spread(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seeds: Iterable[int],
    num_simulations: int = 1000,
    rng: RandomSource = None,
) -> float:
    """The seed tree's Monte-Carlo spread: ``num_simulations`` sequential cascades."""
    if num_simulations <= 0:
        raise DiffusionError("num_simulations must be positive")
    seed_list = list(seeds)
    if not seed_list:
        return 0.0
    generator = as_rng(rng)
    total = 0
    for _ in range(num_simulations):
        total += len(
            legacy_simulate_cascade(graph, edge_probabilities, seed_list, generator)
        )
    return total / num_simulations


def _legacy_reachable_from(
    graph: CSRDiGraph, seeds: Iterable[int], live_edges: np.ndarray
) -> Set[int]:
    live = np.asarray(live_edges, dtype=bool)
    if live.shape != (graph.num_edges,):
        raise DiffusionError("live_edges must have one entry per edge")
    seed_array = _as_seed_array(seeds, graph.num_nodes)
    visited: Set[int] = set(int(s) for s in seed_array)
    frontier = deque(visited)
    while frontier:
        node = frontier.popleft()
        neighbor_ids = graph.out_neighbors(node)
        if neighbor_ids.size == 0:
            continue
        edge_ids = graph.out_edge_ids(node)
        for neighbor, edge_id in zip(neighbor_ids.tolist(), edge_ids.tolist()):
            if live[edge_id] and neighbor not in visited:
                visited.add(int(neighbor))
                frontier.append(int(neighbor))
    return visited


def legacy_exact_spread(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seeds: Iterable[int],
    max_edges: int = 20,
) -> float:
    """The seed tree's exact spread: ``itertools.product`` over *all* edges.

    The replacement in :mod:`repro.diffusion.simulation` enumerates only the
    edges reachable from the seed set; this copy pins the original semantics
    (including the ``max_edges`` gate on the *total* edge count).
    """
    probabilities = np.asarray(edge_probabilities, dtype=np.float64)
    if probabilities.shape != (graph.num_edges,):
        raise DiffusionError("edge_probabilities must have one entry per edge")
    if graph.num_edges > max_edges:
        raise DiffusionError(
            f"exact_spread is limited to {max_edges} edges, graph has {graph.num_edges}"
        )
    seed_list = list(seeds)
    if not seed_list:
        return 0.0
    expected = 0.0
    num_edges = graph.num_edges
    for world in product([False, True], repeat=num_edges):
        live = np.array(world, dtype=bool)
        world_probability = 1.0
        for edge_id in range(num_edges):
            p = probabilities[edge_id]
            world_probability *= p if live[edge_id] else (1.0 - p)
        if world_probability == 0.0:
            continue
        expected += world_probability * len(
            _legacy_reachable_from(graph, seed_list, live)
        )
    return expected


def legacy_singleton_spreads_monte_carlo(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    num_simulations: int = 200,
    rng: RandomSource = None,
    nodes: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """The seed tree's per-node singleton spreads: one MC loop per node."""
    generator = as_rng(rng)
    node_list = list(nodes) if nodes is not None else list(range(graph.num_nodes))
    spreads = np.zeros(len(node_list), dtype=np.float64)
    for index, node in enumerate(node_list):
        spreads[index] = legacy_monte_carlo_spread(
            graph,
            edge_probabilities,
            [node],
            num_simulations=num_simulations,
            rng=generator,
        )
    return spreads
