"""Cascade propagation models.

All models expose a single interface: :meth:`PropagationModel.edge_probabilities`
returns a ``float64`` array of length ``graph.num_edges`` aligned with the
graph's canonical edge order.  Ad-independent models (IC, Weighted-Cascade,
Trivalency) ignore the supplied topic mix; the Topic-aware IC model combines
per-topic probabilities with the mix as ``p^i = Σ_z φ_i(z) · p̂^z`` exactly as
defined in Section 2.1 of the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import DiffusionError
from repro.graph.digraph import CSRDiGraph
from repro.diffusion.topics import TopicDistribution


TopicMix = Union[TopicDistribution, Sequence[float], np.ndarray, None]


def _mix_to_array(topic_mix: TopicMix, num_topics: int) -> np.ndarray:
    if isinstance(topic_mix, TopicDistribution):
        weights = topic_mix.weights
    else:
        weights = np.asarray(topic_mix, dtype=np.float64)
    if weights.shape != (num_topics,):
        raise DiffusionError(
            f"topic mix must have length {num_topics}, got shape {weights.shape}"
        )
    if np.any(weights < 0) or not np.isclose(weights.sum(), 1.0):
        raise DiffusionError("topic mix must be a probability vector")
    return weights


class PropagationModel(ABC):
    """Base class of every cascade model.

    Sub-classes are immutable value objects bound to a specific graph so that
    the edge-probability arrays they produce are guaranteed to be aligned with
    that graph's edge numbering.
    """

    def __init__(self, graph: CSRDiGraph):
        self._graph = graph

    @property
    def graph(self) -> CSRDiGraph:
        """The graph the model is defined on."""
        return self._graph

    @property
    def num_topics(self) -> int:
        """Number of latent topics (1 for topic-oblivious models)."""
        return 1

    @abstractmethod
    def edge_probabilities(self, topic_mix: TopicMix = None) -> np.ndarray:
        """Per-edge activation probabilities for an ad with the given topic mix."""

    def _validate_probability_array(self, probabilities: np.ndarray) -> np.ndarray:
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if probabilities.shape != (self._graph.num_edges,):
            raise DiffusionError(
                "probability array must have one entry per edge "
                f"({self._graph.num_edges}), got shape {probabilities.shape}"
            )
        if np.any(probabilities < 0) or np.any(probabilities > 1):
            raise DiffusionError("edge probabilities must lie in [0, 1]")
        return probabilities


class IndependentCascadeModel(PropagationModel):
    """Classic IC model with a fixed probability per edge.

    Parameters
    ----------
    graph:
        The underlying social graph.
    probability:
        Either a scalar applied to every edge or an array with one entry per
        edge in canonical order.
    """

    def __init__(self, graph: CSRDiGraph, probability: Union[float, np.ndarray] = 0.1):
        super().__init__(graph)
        if np.isscalar(probability):
            value = float(probability)
            if not 0.0 <= value <= 1.0:
                raise DiffusionError("probability must lie in [0, 1]")
            self._probabilities = np.full(graph.num_edges, value, dtype=np.float64)
        else:
            self._probabilities = self._validate_probability_array(np.asarray(probability))
        self._probabilities.setflags(write=False)

    def edge_probabilities(self, topic_mix: TopicMix = None) -> np.ndarray:
        """Return the fixed edge probabilities (topic mix is ignored)."""
        return self._probabilities


class WeightedCascadeModel(PropagationModel):
    """Weighted-Cascade model: ``p_(u,v) = 1 / in_degree(v)``.

    This is the model the paper uses for the DBLP and LiveJournal scalability
    experiments (Section 5.2.3).
    """

    def __init__(self, graph: CSRDiGraph):
        super().__init__(graph)
        in_degrees = graph.in_degrees().astype(np.float64)
        targets = graph.targets
        with np.errstate(divide="ignore"):
            probabilities = np.where(
                in_degrees[targets] > 0, 1.0 / np.maximum(in_degrees[targets], 1.0), 0.0
            )
        self._probabilities = probabilities
        self._probabilities.setflags(write=False)

    def edge_probabilities(self, topic_mix: TopicMix = None) -> np.ndarray:
        """Return the in-degree-normalised edge probabilities."""
        return self._probabilities


class TrivalencyModel(PropagationModel):
    """Trivalency model: each edge gets a probability drawn from a small set.

    The classic TRIVALENCY benchmark assigns each edge one of
    ``{0.1, 0.01, 0.001}`` uniformly at random; the values are configurable.
    """

    def __init__(
        self,
        graph: CSRDiGraph,
        values: Sequence[float] = (0.1, 0.01, 0.001),
        seed=None,
    ):
        super().__init__(graph)
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0 or np.any(values < 0) or np.any(values > 1):
            raise DiffusionError("trivalency values must be probabilities")
        from repro.utils.rng import as_rng

        rng = as_rng(seed)
        self._probabilities = rng.choice(values, size=graph.num_edges)
        self._probabilities.setflags(write=False)

    def edge_probabilities(self, topic_mix: TopicMix = None) -> np.ndarray:
        """Return the randomly assigned per-edge probabilities."""
        return self._probabilities


class TopicAwareICModel(PropagationModel):
    """Topic-aware Independent Cascade (TIC) model of Barbieri et al. [9].

    Parameters
    ----------
    graph:
        The underlying social graph.
    topic_edge_probabilities:
        Array of shape ``(num_topics, num_edges)`` where row ``z`` holds the
        per-edge activation probabilities ``p̂^z_(u,v)`` under latent topic
        ``z``, aligned with the graph's canonical edge order.
    """

    def __init__(self, graph: CSRDiGraph, topic_edge_probabilities: np.ndarray):
        super().__init__(graph)
        matrix = np.asarray(topic_edge_probabilities, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != graph.num_edges:
            raise DiffusionError(
                "topic_edge_probabilities must have shape (num_topics, num_edges)"
            )
        if matrix.shape[0] == 0:
            raise DiffusionError("at least one topic is required")
        if np.any(matrix < 0) or np.any(matrix > 1):
            raise DiffusionError("topic edge probabilities must lie in [0, 1]")
        self._matrix = matrix
        self._matrix.setflags(write=False)

    @property
    def num_topics(self) -> int:
        """Number of latent topics ``L``."""
        return int(self._matrix.shape[0])

    @property
    def topic_edge_probabilities(self) -> np.ndarray:
        """The full ``(L, num_edges)`` probability matrix (read-only)."""
        return self._matrix

    def edge_probabilities(self, topic_mix: TopicMix = None) -> np.ndarray:
        """Mix the per-topic probabilities with the ad's topic distribution.

        A ``None`` topic mix defaults to the uniform distribution, which is
        convenient in tests and quickstart examples.
        """
        if topic_mix is None:
            weights = np.full(self.num_topics, 1.0 / self.num_topics)
        else:
            weights = _mix_to_array(topic_mix, self.num_topics)
        mixed = weights @ self._matrix
        # Mixing preserves the [0, 1] range but guard against float drift.
        return np.clip(mixed, 0.0, 1.0)
