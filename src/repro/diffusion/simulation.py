"""Cascade simulation: single runs, Monte-Carlo spread, exact spread.

``monte_carlo_spread`` is the reference estimator used by the Monte-Carlo
revenue oracle and by tests that validate the RR-set estimators.  Its default
path draws randomness in exactly the same order as the seed implementation
(preserved verbatim in :mod:`repro.diffusion.legacy`), so fixed-seed results
are reproducible across releases; passing ``use_batched=True`` routes the
estimate through the level-synchronous batched engine in
:mod:`repro.diffusion.engine`, which is ~an order of magnitude faster and
statistically equivalent (``tests/test_mc_engine_equivalence.py`` pins both
claims).

``exact_spread`` enumerates live-edge worlds and anchors correctness tests of
everything else.  The enumeration is restricted to the edges reachable from
the seed set — edges no cascade from ``seeds`` can ever traverse contribute a
marginal factor of 1 and are skipped — so graphs with many edges but small
forward closures stay feasible (the seed semantics over *all* edges are kept
in :func:`repro.diffusion.legacy.legacy_exact_spread`).
"""

from __future__ import annotations

from collections import deque
from itertools import product
from typing import Iterable, Optional, Sequence, Set, TYPE_CHECKING

import numpy as np

from repro.exceptions import DiffusionError
from repro.graph.digraph import CSRDiGraph
from repro.utils.rng import RandomSource, as_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import ExecutionPolicy, Runtime


def _as_seed_array(seeds: Iterable[int], num_nodes: int) -> np.ndarray:
    seed_array = np.unique(np.asarray(list(seeds), dtype=np.int64))
    if seed_array.size and (seed_array.min() < 0 or seed_array.max() >= num_nodes):
        raise DiffusionError("seed ids must be valid node ids")
    return seed_array


def simulate_cascade(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seeds: Iterable[int],
    rng: RandomSource = None,
) -> Set[int]:
    """Run one forward cascade from ``seeds`` and return the activated node set.

    The cascade follows the Independent Cascade dynamics: every newly
    activated node gets a single chance to activate each currently inactive
    out-neighbour, succeeding independently with the edge's probability.

    This is the seed-compatible path: the draw order (one uniform block per
    dequeued node, FIFO frontier) matches :mod:`repro.diffusion.legacy`
    bit-for-bit under a fixed seed.
    """
    generator = as_rng(rng)
    probabilities = np.asarray(edge_probabilities, dtype=np.float64)
    if probabilities.shape != (graph.num_edges,):
        raise DiffusionError("edge_probabilities must have one entry per edge")
    seed_array = _as_seed_array(seeds, graph.num_nodes)
    activated: Set[int] = set(int(s) for s in seed_array)
    frontier = deque(activated)
    while frontier:
        node = frontier.popleft()
        neighbor_ids = graph.out_neighbors(node)
        if neighbor_ids.size == 0:
            continue
        edge_ids = graph.out_edge_ids(node)
        draws = generator.random(neighbor_ids.size)
        successes = draws < probabilities[edge_ids]
        for neighbor in neighbor_ids[successes].tolist():
            if neighbor not in activated:
                activated.add(int(neighbor))
                frontier.append(int(neighbor))
    return activated


def monte_carlo_spread(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seeds: Iterable[int],
    num_simulations: int = 1000,
    rng: RandomSource = None,
    use_batched: Optional[bool] = None,
    batch_size: Optional[int] = None,
    n_jobs: Optional[int] = None,
    policy: Optional["ExecutionPolicy"] = None,
    runtime: Optional["Runtime"] = None,
) -> float:
    """Estimate the expected spread ``σ(seeds)`` by Monte-Carlo simulation.

    Parameters
    ----------
    use_batched:
        Route the estimate through the batched level-synchronous engine
        (:mod:`repro.diffusion.engine`).  Off by default: the sequential path
        reproduces the seed tree's RNG stream exactly, the batched path is
        statistically equivalent but draws in a different order.
    batch_size:
        Cascades per batch for the batched path (ignored otherwise);
        ``None`` picks a size that keeps the activation bitmap small.
    n_jobs:
        Shard the simulations across this many worker processes.  ``n_jobs>1``
        implies the batched engine (the sharded path is built on it);
        ``None``/1 leaves the selected path untouched.
    policy:
        :class:`repro.runtime.ExecutionPolicy` supplying defaults for
        ``use_batched`` / ``batch_size`` / ``n_jobs``.  Explicit arguments
        win — including an explicit ``use_batched=False``, which pins the
        sequential engine against a batched policy (``None`` means
        "defer to the policy").
    runtime:
        :class:`repro.runtime.Runtime` whose persistent pool the sharded
        path runs on.
    """
    from repro.parallel import resolve_n_jobs

    if policy is not None:
        if use_batched is None:
            use_batched = policy.mc_engine == "batched"
        batch_size = batch_size if batch_size is not None else policy.mc_batch_size
        n_jobs = n_jobs if n_jobs is not None else policy.n_jobs
    if use_batched or resolve_n_jobs(n_jobs) > 1:
        from repro.diffusion import engine

        return engine.monte_carlo_spread(
            graph,
            edge_probabilities,
            seeds,
            num_simulations=num_simulations,
            rng=rng,
            batch_size=batch_size,
            n_jobs=n_jobs,
            runtime=runtime,
        )
    if num_simulations <= 0:
        raise DiffusionError("num_simulations must be positive")
    seed_list = list(seeds)
    if not seed_list:
        return 0.0
    generator = as_rng(rng)
    total = 0
    for _ in range(num_simulations):
        total += len(simulate_cascade(graph, edge_probabilities, seed_list, generator))
    return total / num_simulations


def reachable_from(
    graph: CSRDiGraph, seeds: Iterable[int], live_edges: np.ndarray
) -> Set[int]:
    """Nodes reachable from ``seeds`` using only edges flagged in ``live_edges``."""
    live = np.asarray(live_edges, dtype=bool)
    if live.shape != (graph.num_edges,):
        raise DiffusionError("live_edges must have one entry per edge")
    seed_array = _as_seed_array(seeds, graph.num_nodes)
    visited: Set[int] = set(int(s) for s in seed_array)
    frontier = deque(visited)
    while frontier:
        node = frontier.popleft()
        neighbor_ids = graph.out_neighbors(node)
        if neighbor_ids.size == 0:
            continue
        edge_ids = graph.out_edge_ids(node)
        for neighbor, edge_id in zip(neighbor_ids.tolist(), edge_ids.tolist()):
            if live[edge_id] and neighbor not in visited:
                visited.add(int(neighbor))
                frontier.append(int(neighbor))
    return visited


def _reachable_edge_ids(graph: CSRDiGraph, seed_array: np.ndarray) -> np.ndarray:
    """Canonical ids of the edges whose source lies in the forward closure of
    ``seed_array`` (over *all* edges) — the only edges whose live/dead state
    can influence which nodes a cascade from the seeds reaches."""
    if graph.num_edges == 0 or seed_array.size == 0:
        return np.empty(0, dtype=np.int64)
    closure = reachable_from(
        graph, seed_array, np.ones(graph.num_edges, dtype=bool)
    )
    in_closure = np.zeros(graph.num_nodes, dtype=bool)
    in_closure[np.fromiter(closure, dtype=np.int64, count=len(closure))] = True
    return np.flatnonzero(in_closure[graph.sources]).astype(np.int64)


def exact_spread(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seeds: Iterable[int],
    max_edges: int = 20,
) -> float:
    """Exact expected spread by enumerating live-edge possible worlds.

    The sum runs over ``2^r`` worlds where ``r`` is the number of edges
    reachable from the seed set: an edge whose source no cascade from
    ``seeds`` can ever activate is never traversed, so marginalising over its
    state multiplies every term by ``p + (1-p) = 1``.  ``max_edges`` bounds
    ``r`` (the seed implementation bounded the total edge count; it is kept
    in :func:`repro.diffusion.legacy.legacy_exact_spread` and the two
    enumerations are pinned equal in tests).
    """
    probabilities = np.asarray(edge_probabilities, dtype=np.float64)
    if probabilities.shape != (graph.num_edges,):
        raise DiffusionError("edge_probabilities must have one entry per edge")
    seed_list = list(seeds)
    if not seed_list:
        return 0.0
    seed_array = _as_seed_array(seed_list, graph.num_nodes)
    relevant = _reachable_edge_ids(graph, seed_array)
    if relevant.size > max_edges:
        raise DiffusionError(
            f"exact_spread is limited to {max_edges} reachable edges, "
            f"{relevant.size} of the graph's {graph.num_edges} edges are "
            "reachable from the seed set"
        )
    if relevant.size == 0:
        return float(seed_array.size)
    expected = 0.0
    live = np.zeros(graph.num_edges, dtype=bool)
    relevant_probs = probabilities[relevant]
    for world in product([False, True], repeat=int(relevant.size)):
        world_mask = np.array(world, dtype=bool)
        world_probability = float(
            np.prod(np.where(world_mask, relevant_probs, 1.0 - relevant_probs))
        )
        if world_probability == 0.0:
            continue
        live[relevant] = world_mask
        expected += world_probability * len(reachable_from(graph, seed_list, live))
    return expected


def singleton_spreads_monte_carlo(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    num_simulations: int = 200,
    rng: RandomSource = None,
    nodes: Optional[Sequence[int]] = None,
    use_batched: Optional[bool] = None,
    batch_size: Optional[int] = None,
    n_jobs: Optional[int] = None,
    policy: Optional["ExecutionPolicy"] = None,
    runtime: Optional["Runtime"] = None,
) -> np.ndarray:
    """Monte-Carlo estimates of ``σ({v})`` for every node ``v``.

    Used by the seed-incentive cost models, which price a node by its
    singleton influence spread (Section 5.1).  ``use_batched`` routes all
    (node, simulation) cascades through the batched engine in one stream;
    ``n_jobs>1`` additionally shards the node list across worker processes
    (and implies the batched engine).  ``policy`` supplies defaults for the
    three knobs; explicit arguments win, including an explicit
    ``use_batched=False`` (``None`` defers to the policy).  ``runtime``
    supplies a persistent worker pool for the sharded path.
    """
    from repro.parallel import resolve_n_jobs

    if policy is not None:
        if use_batched is None:
            use_batched = policy.mc_engine == "batched"
        batch_size = batch_size if batch_size is not None else policy.mc_batch_size
        n_jobs = n_jobs if n_jobs is not None else policy.n_jobs
    if use_batched or resolve_n_jobs(n_jobs) > 1:
        from repro.diffusion import engine

        return engine.singleton_spreads_monte_carlo(
            graph,
            edge_probabilities,
            num_simulations=num_simulations,
            rng=rng,
            nodes=nodes,
            batch_size=batch_size,
            n_jobs=n_jobs,
            runtime=runtime,
        )
    generator = as_rng(rng)
    node_list = list(nodes) if nodes is not None else list(range(graph.num_nodes))
    spreads = np.zeros(len(node_list), dtype=np.float64)
    for index, node in enumerate(node_list):
        spreads[index] = monte_carlo_spread(
            graph, edge_probabilities, [node], num_simulations=num_simulations, rng=generator
        )
    return spreads
