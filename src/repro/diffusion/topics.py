"""Topic distributions for the Topic-aware Independent Cascade (TIC) model.

Every ad ``i`` is associated with a distribution ``phi_i`` over ``L`` latent
topics (Section 2.1 of the paper).  :class:`TopicDistribution` is a validated
wrapper around a probability vector with a few convenience constructors used
by the synthetic dataset builders.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DiffusionError
from repro.utils.rng import RandomSource, as_rng


class TopicDistribution:
    """A probability distribution over ``L`` latent topics.

    Parameters
    ----------
    weights:
        Non-negative weights; they are normalised to sum to one.  An
        all-zero vector is rejected.
    """

    __slots__ = ("_weights",)

    def __init__(self, weights: Sequence[float]):
        array = np.asarray(weights, dtype=np.float64)
        if array.ndim != 1 or array.size == 0:
            raise DiffusionError("topic weights must be a non-empty 1-D sequence")
        if np.any(array < 0) or np.any(~np.isfinite(array)):
            raise DiffusionError("topic weights must be finite and non-negative")
        total = float(array.sum())
        if total <= 0:
            raise DiffusionError("topic weights must not all be zero")
        self._weights = array / total
        self._weights.setflags(write=False)

    @property
    def weights(self) -> np.ndarray:
        """Normalised topic weights (read-only array of length ``num_topics``)."""
        return self._weights

    @property
    def num_topics(self) -> int:
        """Number of latent topics ``L``."""
        return int(self._weights.size)

    def probability(self, topic: int) -> float:
        """Probability mass assigned to ``topic``."""
        if not 0 <= topic < self.num_topics:
            raise DiffusionError(f"topic {topic} out of range [0, {self.num_topics})")
        return float(self._weights[topic])

    def sample(self, rng: RandomSource = None) -> int:
        """Draw a topic index according to the distribution."""
        generator = as_rng(rng)
        return int(generator.choice(self.num_topics, p=self._weights))

    def entropy(self) -> float:
        """Shannon entropy (nats) of the distribution."""
        positive = self._weights[self._weights > 0]
        return float(-(positive * np.log(positive)).sum())

    def __len__(self) -> int:
        return self.num_topics

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TopicDistribution):
            return NotImplemented
        return np.allclose(self._weights, other._weights)

    def __repr__(self) -> str:
        return f"TopicDistribution({np.array2string(self._weights, precision=3)})"


def uniform_topics(num_topics: int) -> TopicDistribution:
    """The uniform distribution over ``num_topics`` topics."""
    if num_topics <= 0:
        raise DiffusionError("num_topics must be positive")
    return TopicDistribution(np.ones(num_topics))


def random_topics(
    num_topics: int, concentration: float = 1.0, seed: RandomSource = None
) -> TopicDistribution:
    """A Dirichlet-random topic distribution.

    ``concentration`` below one produces sparse, peaked mixes (one or two
    dominant topics per ad), matching the topic profiles learned from real
    action logs.
    """
    if num_topics <= 0:
        raise DiffusionError("num_topics must be positive")
    if concentration <= 0:
        raise DiffusionError("concentration must be positive")
    rng = as_rng(seed)
    return TopicDistribution(rng.dirichlet(np.full(num_topics, concentration)))


def skewed_topics(num_topics: int, dominant_topic: int, dominance: float = 0.8) -> TopicDistribution:
    """A distribution placing ``dominance`` mass on one topic, the rest uniform."""
    if num_topics <= 0:
        raise DiffusionError("num_topics must be positive")
    if not 0 <= dominant_topic < num_topics:
        raise DiffusionError("dominant_topic out of range")
    if not 0.0 < dominance <= 1.0:
        raise DiffusionError("dominance must be in (0, 1]")
    weights = np.full(num_topics, (1.0 - dominance) / max(1, num_topics - 1))
    if num_topics == 1:
        weights = np.array([1.0])
    else:
        weights[dominant_topic] = dominance
    return TopicDistribution(weights)
