"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything coming out of the library with a single ``except`` clause
while still being able to distinguish configuration mistakes from runtime
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation on it is invalid."""


class DiffusionError(ReproError):
    """Raised when a propagation model is configured inconsistently."""


class ProblemDefinitionError(ReproError):
    """Raised when an RM problem instance is invalid (budgets, costs, cpe)."""


class PolicyError(ReproError, ValueError):
    """Raised when an :class:`~repro.runtime.ExecutionPolicy` is inconsistent.

    Subclasses :class:`ValueError` so callers that treat conflicting engine
    flags as plain value errors (the documented contract of
    ``run_algorithm``) do not need to import the library hierarchy.
    """


class SolverError(ReproError):
    """Raised when a solver is invoked with invalid parameters."""


class SamplingError(ReproError):
    """Raised when RR-set sampling parameters or state are invalid."""


class DatasetError(ReproError):
    """Raised when a synthetic dataset cannot be constructed as requested."""


class ExperimentError(ReproError):
    """Raised by the experiment harness on invalid configurations."""


class ExecutionError(ReproError, RuntimeError):
    """Raised when the sharded execution layer fails or is misconfigured.

    Subclasses :class:`RuntimeError` because the failures it describes —
    dead worker processes, hung shards, invalid execution environment
    variables — are conditions of the run, not of the inputs.
    """


class ServiceError(ReproError):
    """Raised by the allocation service layer (:mod:`repro.serve`).

    Covers server lifecycle misuse (submitting to a stopped server, double
    start) and unrecoverable service states; protocol- and storage-level
    failures use the subclasses below."""


class ProtocolError(ServiceError):
    """A malformed or invalid service request.

    Carries a machine-readable ``code`` (one of
    :data:`repro.serve.protocol.ERROR_CODES`) so transports can reply with a
    structured error instead of a stack trace."""

    def __init__(self, message: str, code: str = "bad-request"):
        super().__init__(message)
        self.code = code


class CheckpointError(ServiceError):
    """A checkpoint file or delta journal is missing, torn or corrupt.

    Raised on checksum mismatches and structural damage; recovery treats a
    torn *trailing* journal entry as a clean truncation point (the batch was
    never acknowledged) rather than an error."""


class WorkerCrashError(ExecutionError):
    """A worker process died mid-call (OOM kill, segfault, external kill).

    Raised only under ``FailurePolicy(on_pool_failure="raise")``; the default
    ``"degrade"`` policy re-executes the lost shards instead (the determinism
    contract makes the re-run bit-identical)."""


class ShardTimeoutError(ExecutionError):
    """A shard exceeded ``FailurePolicy.shard_timeout_s``.

    Raised only under ``FailurePolicy(on_pool_failure="raise")``; the default
    ``"degrade"`` policy retries the shard on a fresh pool and finally runs
    it in-process serially."""
