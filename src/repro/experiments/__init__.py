"""Experiment harness reproducing every table and figure of the paper."""

from repro.experiments.metrics import (
    EvaluationResult,
    evaluate_allocation,
    independent_evaluator,
    budget_usage,
    rate_of_return,
)
from repro.experiments.runner import AlgorithmRun, run_algorithm, compare_algorithms
from repro.experiments.report import format_table, format_series, rows_to_csv
from repro.experiments.persistence import (
    save_rows_json,
    load_rows_json,
    save_rows_csv,
    load_rows_csv,
)
from repro.experiments import figures

__all__ = [
    "EvaluationResult",
    "evaluate_allocation",
    "independent_evaluator",
    "budget_usage",
    "rate_of_return",
    "AlgorithmRun",
    "run_algorithm",
    "compare_algorithms",
    "format_table",
    "format_series",
    "rows_to_csv",
    "save_rows_json",
    "load_rows_json",
    "save_rows_csv",
    "load_rows_csv",
    "figures",
]
