"""Per-figure and per-table experiment definitions.

Each ``figure*`` / ``table*`` function runs the sweep behind one artefact of
the paper's evaluation section and returns plain result rows; the benchmark
scripts under ``benchmarks/`` print them with the formatting helpers and
time the underlying solver calls with pytest-benchmark.

All functions take explicit size/accuracy knobs so the same code serves both
the quick benchmark configuration and larger offline runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.advertising.advertiser import Advertiser
from repro.advertising.instance import RMInstance
from repro.baselines.ti_common import TIParameters
from repro.core.sampling_solver import SamplingParameters
from repro.datasets.registry import DATASET_BUILDERS, sample_advertisers
from repro.datasets.synthetic import SyntheticNetwork
from repro.exceptions import ExperimentError
from repro.experiments.metrics import independent_evaluator
from repro.experiments.runner import AlgorithmRun, run_algorithm
from repro.graph.stats import compute_stats
from repro.runtime import ExecutionPolicy
from repro.incentives.models import incentive_model_by_name
from repro.incentives.singleton import estimate_singleton_spreads
from repro.utils.rng import RandomSource, as_rng

DEFAULT_ALGORITHMS = ("RMA", "TI-CSRM", "TI-CARM")


@dataclass
class ExperimentBase:
    """A network prepared once and reused across a parameter sweep."""

    network: SyntheticNetwork
    advertisers: List[Advertiser]
    singleton_spreads: np.ndarray
    seed: int

    def instance_for(self, incentive: str, alpha: float) -> RMInstance:
        """Build an instance with costs from ``incentive`` at scale ``alpha``."""
        model = incentive_model_by_name(incentive, alpha=alpha)
        costs = model.costs(self.singleton_spreads)
        return RMInstance(
            graph=self.network.graph,
            propagation_model=self.network.propagation_model,
            advertisers=self.advertisers,
            costs=costs,
        )

    def instance_with_advertisers(
        self, advertisers: Sequence[Advertiser], incentive: str, alpha: float
    ) -> RMInstance:
        """Build an instance with a different advertiser list (h / budget sweeps)."""
        model = incentive_model_by_name(incentive, alpha=alpha)
        costs = model.costs(self.singleton_spreads)
        return RMInstance(
            graph=self.network.graph,
            propagation_model=self.network.propagation_model,
            advertisers=list(advertisers),
            costs=costs,
        )


def prepare_base(
    dataset: str,
    num_advertisers: int = 10,
    scale: float = 1.0,
    singleton_rr_sets: int = 800,
    uniform_budget_fraction: Optional[float] = None,
    seed: int = 7,
) -> ExperimentBase:
    """Generate the network, advertisers and singleton spreads for a sweep."""
    if dataset not in DATASET_BUILDERS:
        raise ExperimentError(f"unknown dataset {dataset!r}")
    rng = as_rng(seed)
    network = DATASET_BUILDERS[dataset](scale=scale, seed=rng)
    advertisers = sample_advertisers(
        num_advertisers,
        network.num_nodes,
        network.num_topics,
        uniform_budget_fraction=uniform_budget_fraction,
        seed=rng,
    )
    spreads = estimate_singleton_spreads(
        network.graph,
        network.propagation_model.edge_probabilities(None),
        num_rr_sets=singleton_rr_sets,
        rng=rng,
    )
    return ExperimentBase(
        network=network, advertisers=advertisers, singleton_spreads=spreads, seed=seed
    )


def _default_sampling_params(seed: int, **overrides) -> SamplingParameters:
    params = SamplingParameters(
        epsilon=0.1,
        delta=0.01,
        tau=0.1,
        rho=0.1,
        initial_rr_sets=overrides.pop("initial_rr_sets", 512),
        max_rr_sets=overrides.pop("max_rr_sets", 4096),
        seed=seed,
    )
    for key, value in overrides.items():
        setattr(params, key, value)
    return params


def _default_ti_params(seed: int, **overrides) -> TIParameters:
    params = TIParameters(
        epsilon=overrides.pop("epsilon", 0.1),
        delta=0.01,
        pilot_size=overrides.pop("pilot_size", 128),
        max_rr_sets_per_advertiser=overrides.pop("max_rr_sets_per_advertiser", 1024),
        seed=seed,
    )
    for key, value in overrides.items():
        setattr(params, key, value)
    return params


def _run_all(
    algorithms: Sequence[str],
    instance: RMInstance,
    evaluator,
    sampling_params: SamplingParameters,
    ti_params: TIParameters,
    extra_row: Dict[str, object],
) -> List[Dict[str, object]]:
    """Run each algorithm and flatten the results into report rows.

    The paper gives the baselines a ``(1 + ϱ)×`` larger budget than RMA
    (Section 5.1), because RMA is a bicriteria algorithm allowed to overshoot
    by that factor; the same convention is applied here.
    """
    rows = []
    baseline_instance = instance.with_scaled_budgets(1.0 + sampling_params.rho)
    for algorithm in algorithms:
        target_instance = instance if algorithm in ("RMA", "OneBatchRM") else baseline_instance
        run = run_algorithm(
            algorithm,
            target_instance,
            evaluator=evaluator,
            sampling_params=sampling_params,
            ti_params=ti_params,
        )
        row: Dict[str, object] = dict(extra_row)
        row["algorithm"] = algorithm
        row["revenue"] = run.evaluation.revenue
        row["seeding_cost"] = run.evaluation.seeding_cost
        row["total_seeds"] = run.evaluation.total_seeds
        row["budget_usage"] = run.evaluation.budget_usage
        row["rate_of_return"] = run.evaluation.rate_of_return
        row["running_time_seconds"] = run.running_time_seconds
        row["memory_proxy_bytes"] = run.metadata.get(
            "required_memory_proxy_bytes", run.metadata.get("memory_proxy_bytes", 0)
        )
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Tables 1 & 2
# --------------------------------------------------------------------------- #
def table1_datasets(
    scale: float = 0.5, seed: int = 7, datasets: Optional[Sequence[str]] = None
) -> List[Dict[str, object]]:
    """Table 1 — structural statistics of the four synthetic stand-ins."""
    rows = []
    for name in datasets or sorted(DATASET_BUILDERS):
        network = DATASET_BUILDERS[name](scale=scale, seed=seed)
        stats = compute_stats(network.graph)
        row = {"dataset": name, "stands_in_for": network.stands_in_for, "directed": network.directed}
        row.update(stats.as_row())
        rows.append(row)
    return rows


def table2_budgets(
    datasets: Sequence[str] = ("lastfm_like", "flixster_like"),
    num_advertisers: int = 10,
    scale: float = 0.5,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Table 2 — advertiser budget and cpe summary per dataset."""
    rows = []
    for name in datasets:
        network = DATASET_BUILDERS[name](scale=scale, seed=seed)
        advertisers = sample_advertisers(
            num_advertisers, network.num_nodes, network.num_topics, seed=seed
        )
        budgets = np.array([advertiser.budget for advertiser in advertisers])
        cpes = np.array([advertiser.cpe for advertiser in advertisers])
        rows.append(
            {
                "dataset": name,
                "budget_mean": float(budgets.mean()),
                "budget_max": float(budgets.max()),
                "budget_min": float(budgets.min()),
                "cpe_mean": float(cpes.mean()),
                "cpe_max": float(cpes.max()),
                "cpe_min": float(cpes.min()),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figures 1-3 and Table 3: the α sweep under the three incentive models
# --------------------------------------------------------------------------- #
def alpha_sweep(
    dataset: str,
    alphas: Sequence[float] = (0.1, 0.3, 0.5),
    incentives: Sequence[str] = ("linear",),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    num_advertisers: int = 10,
    scale: float = 0.5,
    evaluation_rr_sets: int = 8000,
    seed: int = 7,
    sampling_overrides: Optional[dict] = None,
    ti_overrides: Optional[dict] = None,
    base: Optional[ExperimentBase] = None,
) -> List[Dict[str, object]]:
    """The sweep behind Figures 1-3 and Table 3.

    Returns one row per (incentive, α, algorithm) carrying revenue, seeding
    cost, seed-set size and running time.
    """
    base = base or prepare_base(dataset, num_advertisers=num_advertisers, scale=scale, seed=seed)
    sampling_params = _default_sampling_params(seed, **(sampling_overrides or {}))
    ti_params = _default_ti_params(seed, **(ti_overrides or {}))
    rows: List[Dict[str, object]] = []
    for incentive in incentives:
        for alpha in alphas:
            instance = base.instance_for(incentive, alpha)
            evaluator = independent_evaluator(instance, num_rr_sets=evaluation_rr_sets, seed=seed)
            rows.extend(
                _run_all(
                    algorithms,
                    instance,
                    evaluator,
                    sampling_params,
                    ti_params,
                    {"dataset": dataset, "incentive": incentive, "alpha": alpha},
                )
            )
    return rows


# --------------------------------------------------------------------------- #
# Figure 4: impact of ε on revenue and memory
# --------------------------------------------------------------------------- #
def epsilon_sweep(
    dataset: str,
    epsilons: Sequence[float] = (0.02, 0.1, 0.2),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    num_advertisers: int = 10,
    scale: float = 0.5,
    alpha: float = 0.1,
    incentive: str = "linear",
    evaluation_rr_sets: int = 8000,
    seed: int = 7,
    base: Optional[ExperimentBase] = None,
) -> List[Dict[str, object]]:
    """Figure 4 — revenue and memory (RR-set footprint) as ε varies."""
    base = base or prepare_base(dataset, num_advertisers=num_advertisers, scale=scale, seed=seed)
    instance = base.instance_for(incentive, alpha)
    evaluator = independent_evaluator(instance, num_rr_sets=evaluation_rr_sets, seed=seed)
    rows: List[Dict[str, object]] = []
    for epsilon in epsilons:
        sampling_params = _default_sampling_params(seed, epsilon=epsilon)
        ti_params = _default_ti_params(seed, epsilon=epsilon)
        rows.extend(
            _run_all(
                algorithms,
                instance,
                evaluator,
                sampling_params,
                ti_params,
                {"dataset": dataset, "epsilon": epsilon},
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 5: scalability in the number of advertisers and in the budgets
# --------------------------------------------------------------------------- #
def advertiser_count_sweep(
    dataset: str,
    advertiser_counts: Sequence[int] = (1, 5, 10),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    scale: float = 0.35,
    alpha: float = 0.2,
    budget_fraction: float = 0.2,
    evaluation_rr_sets: int = 6000,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Figure 5(a)-(d) — running time and revenue as ``h`` grows."""
    rng = as_rng(seed)
    base = prepare_base(
        dataset, num_advertisers=max(advertiser_counts), scale=scale,
        uniform_budget_fraction=budget_fraction, seed=seed,
    )
    sampling_params = _default_sampling_params(seed)
    ti_params = _default_ti_params(seed)
    rows: List[Dict[str, object]] = []
    for count in advertiser_counts:
        advertisers = sample_advertisers(
            count,
            base.network.num_nodes,
            base.network.num_topics,
            uniform_budget_fraction=budget_fraction,
            seed=rng,
        )
        instance = base.instance_with_advertisers(advertisers, "linear", alpha)
        evaluator = independent_evaluator(instance, num_rr_sets=evaluation_rr_sets, seed=seed)
        rows.extend(
            _run_all(
                algorithms,
                instance,
                evaluator,
                sampling_params,
                ti_params,
                {"dataset": dataset, "num_advertisers": count},
            )
        )
    return rows


def budget_sweep(
    dataset: str,
    budget_fractions: Sequence[float] = (0.1, 0.2, 0.3),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    num_advertisers: int = 5,
    scale: float = 0.35,
    alpha: float = 0.2,
    evaluation_rr_sets: int = 6000,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Figure 5(e)-(h) and Figure 6 — sweeps over identical advertiser budgets."""
    base = prepare_base(
        dataset,
        num_advertisers=num_advertisers,
        scale=scale,
        uniform_budget_fraction=budget_fractions[0],
        seed=seed,
    )
    sampling_params = _default_sampling_params(seed)
    ti_params = _default_ti_params(seed)
    rows: List[Dict[str, object]] = []
    for fraction in budget_fractions:
        advertisers = [
            adv.with_budget(fraction * base.network.num_nodes * adv.cpe)
            for adv in base.advertisers
        ]
        instance = base.instance_with_advertisers(advertisers, "linear", alpha)
        evaluator = independent_evaluator(instance, num_rr_sets=evaluation_rr_sets, seed=seed)
        rows.extend(
            _run_all(
                algorithms,
                instance,
                evaluator,
                sampling_params,
                ti_params,
                {"dataset": dataset, "budget_fraction": fraction},
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 7: holistic demand
# --------------------------------------------------------------------------- #
def holistic_demand_sweep(
    dataset: str,
    total_demands: Sequence[float] = (2.0, 2.25, 2.5),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    num_advertisers: int = 10,
    scale: float = 0.5,
    alpha: float = 0.1,
    evaluation_rr_sets: int = 8000,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Figure 7(a)-(b) — revenue and seeding cost as the total demand M varies.

    Every advertiser gets ``cpe = 1`` and a random share of the total demand
    ``M = Σ_i B_i / n``, exactly as in Section 5.2.4.
    """
    rng = as_rng(seed)
    base = prepare_base(dataset, num_advertisers=num_advertisers, scale=scale, seed=seed)
    sampling_params = _default_sampling_params(seed)
    ti_params = _default_ti_params(seed)
    rows: List[Dict[str, object]] = []
    n = base.network.num_nodes
    for total_demand in total_demands:
        shares = rng.dirichlet(np.ones(num_advertisers)) * total_demand
        advertisers = [
            Advertiser(
                budget=max(1.0, float(share) * n),
                cpe=1.0,
                topic_mix=base.advertisers[index % len(base.advertisers)].topic_mix,
                name=f"ad-{index}",
            )
            for index, share in enumerate(shares)
        ]
        instance = base.instance_with_advertisers(advertisers, "linear", alpha)
        evaluator = independent_evaluator(instance, num_rr_sets=evaluation_rr_sets, seed=seed)
        rows.extend(
            _run_all(
                algorithms,
                instance,
                evaluator,
                sampling_params,
                ti_params,
                {"dataset": dataset, "total_demand": total_demand},
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# Figures 8-9 / Table 5: impact of τ and ϱ on RMA
# --------------------------------------------------------------------------- #
def tau_sweep(
    dataset: str,
    taus: Sequence[float] = (0.05, 0.15, 0.45),
    num_advertisers: int = 10,
    scale: float = 0.5,
    alpha: float = 0.1,
    evaluation_rr_sets: int = 8000,
    seed: int = 7,
    base: Optional[ExperimentBase] = None,
) -> List[Dict[str, object]]:
    """Figure 8 / Table 5 — RMA revenue and running time as τ varies."""
    base = base or prepare_base(dataset, num_advertisers=num_advertisers, scale=scale, seed=seed)
    instance = base.instance_for("linear", alpha)
    evaluator = independent_evaluator(instance, num_rr_sets=evaluation_rr_sets, seed=seed)
    rows: List[Dict[str, object]] = []
    for tau in taus:
        sampling_params = _default_sampling_params(seed, tau=tau)
        run = run_algorithm("RMA", instance, evaluator=evaluator, sampling_params=sampling_params)
        rows.append(
            {
                "dataset": dataset,
                "tau": tau,
                "algorithm": "RMA",
                "revenue": run.evaluation.revenue,
                "running_time_seconds": run.running_time_seconds,
                "total_seeds": run.evaluation.total_seeds,
            }
        )
    return rows


def rho_sweep(
    dataset: str,
    rhos: Sequence[float] = (0.1, 0.8, 1.5),
    num_advertisers: int = 10,
    scale: float = 0.5,
    alpha: float = 0.1,
    evaluation_rr_sets: int = 8000,
    seed: int = 7,
    base: Optional[ExperimentBase] = None,
) -> List[Dict[str, object]]:
    """Figure 9 — RMA revenue as the budget-overshoot control ϱ varies.

    Following the paper's comparison rule, the budgets fed to RMA are scaled
    by ``1 / (1 + ϱ)`` so the *actual* spend stays comparable across ϱ.
    """
    base = base or prepare_base(dataset, num_advertisers=num_advertisers, scale=scale, seed=seed)
    instance = base.instance_for("linear", alpha)
    evaluator = independent_evaluator(instance, num_rr_sets=evaluation_rr_sets, seed=seed)
    rows: List[Dict[str, object]] = []
    for rho in rhos:
        sampling_params = _default_sampling_params(seed, rho=rho)
        scaled_instance = instance.with_scaled_budgets(1.0 / (1.0 + rho))
        run = run_algorithm(
            "RMA", scaled_instance, evaluator=evaluator, sampling_params=sampling_params
        )
        rows.append(
            {
                "dataset": dataset,
                "rho": rho,
                "algorithm": "RMA",
                "revenue": run.evaluation.revenue,
                "seeding_cost": run.evaluation.seeding_cost,
                "total_seeds": run.evaluation.total_seeds,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 10 / Table 6: SUBSIM acceleration
# --------------------------------------------------------------------------- #
def subsim_sweep(
    dataset: str,
    alphas: Sequence[float] = (0.1, 0.3, 0.5),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    num_advertisers: int = 10,
    scale: float = 0.5,
    incentive: str = "linear",
    evaluation_rr_sets: int = 8000,
    seed: int = 7,
    base: Optional[ExperimentBase] = None,
) -> List[Dict[str, object]]:
    """Figure 10 / Table 6 — the α sweep with SUBSIM RR-set generation."""
    base = base or prepare_base(dataset, num_advertisers=num_advertisers, scale=scale, seed=seed)
    subsim = ExecutionPolicy(rr_engine="subsim")
    sampling_params = _default_sampling_params(seed, policy=subsim)
    ti_params = _default_ti_params(seed, policy=subsim)
    rows: List[Dict[str, object]] = []
    for alpha in alphas:
        instance = base.instance_for(incentive, alpha)
        evaluator = independent_evaluator(instance, num_rr_sets=evaluation_rr_sets, seed=seed)
        rows.extend(
            _run_all(
                algorithms,
                instance,
                evaluator,
                sampling_params,
                ti_params,
                {"dataset": dataset, "alpha": alpha, "generator": "SUBSIM"},
            )
        )
    return rows
