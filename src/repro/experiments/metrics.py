"""Evaluation metrics.

The paper measures the revenue of every algorithm's allocation with a large
pool of RR-sets generated *independently* of the algorithms (Section 5.1).
:func:`independent_evaluator` builds such a pool once per instance and
:func:`evaluate_allocation` reports revenue, seeding cost, budget usage and
rate of return against it, which is exactly what Figures 1-10 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RRSetOracle
from repro.exceptions import ExperimentError
from repro.rrsets.uniform import UniformRRSampler
from repro.utils.rng import RandomSource, as_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import ExecutionPolicy, Runtime


@dataclass
class EvaluationResult:
    """Independent evaluation of one allocation."""

    revenue: float
    seeding_cost: float
    total_seeds: int
    per_advertiser_revenue: Dict[int, float] = field(default_factory=dict)
    per_advertiser_cost: Dict[int, float] = field(default_factory=dict)
    budget_usage: float = 0.0
    rate_of_return: float = 0.0

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary for tabular reporting."""
        return {
            "revenue": self.revenue,
            "seeding_cost": self.seeding_cost,
            "total_seeds": self.total_seeds,
            "budget_usage": self.budget_usage,
            "rate_of_return": self.rate_of_return,
        }


def independent_evaluator(
    instance: RMInstance,
    num_rr_sets: int = 20000,
    seed: RandomSource = None,
    policy: Optional["ExecutionPolicy"] = None,
    runtime: Optional["Runtime"] = None,
) -> RRSetOracle:
    """Build an RR-set oracle independent of any solver, for fair evaluation.

    The paper uses ``10^7`` RR-sets; the default here is sized for the
    scaled-down synthetic networks and can be raised by callers that want
    tighter estimates.

    ``policy`` selects the sampler's RR engine and sharding (``None``
    resolves to :meth:`repro.runtime.ExecutionPolicy.fast`); ``runtime``
    supplies the persistent worker pool for the sharded path (falling back
    to the ambient :func:`repro.runtime.current_runtime`, then to a
    per-call pool).
    """
    if num_rr_sets <= 0:
        raise ExperimentError("num_rr_sets must be positive")
    rng = as_rng(seed)
    sampler = UniformRRSampler(
        instance.graph,
        instance.all_edge_probabilities(),
        instance.cpes(),
        seed=rng,
        policy=policy,
        runtime=runtime,
    )
    collection = sampler.generate_collection(num_rr_sets)
    return RRSetOracle(collection, instance.gamma)


def budget_usage(
    instance: RMInstance, revenue: float, seeding_cost: float
) -> float:
    """``(π(S⃗) + Σ_i c_i(S_i)) / Σ_i B_i`` — the actual budget usage rate (Fig. 6a)."""
    total_budget = float(instance.budgets().sum())
    if total_budget <= 0:
        raise ExperimentError("total budget must be positive")
    return (revenue + seeding_cost) / total_budget


def rate_of_return(revenue: float, seeding_cost: float) -> float:
    """``π(S⃗) / (π(S⃗) + Σ_i c_i(S_i))`` — the host's rate of return (Fig. 6b)."""
    total = revenue + seeding_cost
    if total <= 0:
        return 0.0
    return revenue / total


def evaluate_allocation(
    instance: RMInstance,
    allocation: Allocation,
    evaluator: Optional[RRSetOracle] = None,
    num_rr_sets: int = 20000,
    seed: RandomSource = None,
    policy: Optional["ExecutionPolicy"] = None,
    runtime: Optional["Runtime"] = None,
) -> EvaluationResult:
    """Evaluate an allocation with an independent RR-set oracle.

    ``policy`` / ``runtime`` configure the auto-built evaluator exactly as
    in :func:`independent_evaluator`; both are ignored when an explicit
    ``evaluator`` is passed.
    """
    oracle = evaluator if evaluator is not None else independent_evaluator(
        instance, num_rr_sets=num_rr_sets, seed=seed, policy=policy, runtime=runtime
    )
    per_revenue: Dict[int, float] = {}
    per_cost: Dict[int, float] = {}
    for advertiser, seeds in allocation.items():
        per_revenue[advertiser] = oracle.revenue(advertiser, seeds) if seeds else 0.0
        per_cost[advertiser] = instance.cost_of_set(advertiser, seeds)
    revenue = float(np.sum(list(per_revenue.values()))) if per_revenue else 0.0
    seeding_cost = float(np.sum(list(per_cost.values()))) if per_cost else 0.0
    return EvaluationResult(
        revenue=revenue,
        seeding_cost=seeding_cost,
        total_seeds=allocation.total_seed_count(),
        per_advertiser_revenue=per_revenue,
        per_advertiser_cost=per_cost,
        budget_usage=budget_usage(instance, revenue, seeding_cost),
        rate_of_return=rate_of_return(revenue, seeding_cost),
    )
