"""Saving and loading experiment results.

The benchmark harness produces plain rows (lists of dictionaries).  This
module persists them as JSON or CSV so that longer offline runs can be
archived and re-plotted without re-running the solvers, and so that two runs
can be diffed.

Writes are crash-safe: the content is serialized in memory first and lands
through :func:`repro.utils.atomic.atomic_write_text` (tmp file +
``os.replace``), so a process killed mid-save — or a row that fails to
serialize halfway through — can never leave a torn result file where a good
one used to be.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.exceptions import ExperimentError
from repro.utils.atomic import atomic_write_text

PathLike = Union[str, Path]
Rows = List[Dict[str, object]]


def save_rows_json(rows: Sequence[Dict[str, object]], path: PathLike, metadata: dict | None = None) -> None:
    """Write result rows (plus optional run metadata) to a JSON file."""
    payload = {"metadata": metadata or {}, "rows": list(rows)}
    text = json.dumps(payload, indent=2, sort_keys=True, default=str)
    atomic_write_text(path, text)


def load_rows_json(path: PathLike) -> tuple[Rows, dict]:
    """Read rows and metadata previously written by :func:`save_rows_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "rows" not in payload:
        raise ExperimentError(f"{path} is not a saved result file")
    return list(payload["rows"]), dict(payload.get("metadata", {}))


def save_rows_csv(rows: Sequence[Dict[str, object]], path: PathLike) -> None:
    """Write result rows to a CSV file (columns are the union of row keys)."""
    rows = list(rows)
    if not rows:
        raise ExperimentError("cannot save an empty row list to CSV")
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO(newline="")
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    atomic_write_text(path, buffer.getvalue())


def load_rows_csv(path: PathLike) -> Rows:
    """Read rows from a CSV file, converting numeric-looking fields back."""
    rows: Rows = []
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        for raw in reader:
            rows.append({key: _coerce(value) for key, value in raw.items()})
    return rows


def _coerce(value: str) -> object:
    """Best-effort conversion of a CSV cell back to int / float / bool / str."""
    if value is None:
        return None
    text = value.strip()
    if text == "":
        return ""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def merge_result_files(paths: Sequence[PathLike]) -> Rows:
    """Concatenate the rows of several saved JSON result files."""
    merged: Rows = []
    for path in paths:
        rows, _ = load_rows_json(path)
        merged.extend(rows)
    return merged
