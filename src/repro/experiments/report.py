"""Plain-text table / series formatting for the benchmark harness.

The benchmarks print rows in the same layout the paper's tables and figures
use (one row per parameter setting, one column per algorithm), so the shape
of the results — who wins, by roughly what factor, where crossovers happen —
can be read directly off the pytest output.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Sequence


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of dictionaries as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    formatted = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in formatted))
        for index, column in enumerate(columns)
    ]
    buffer = io.StringIO()
    if title:
        buffer.write(title + "\n")
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    buffer.write(header + "\n")
    buffer.write("-" * len(header) + "\n")
    for line in formatted:
        buffer.write("  ".join(cell.ljust(width) for cell, width in zip(line, widths)) + "\n")
    return buffer.getvalue()


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render one figure panel: x values as rows, one column per series."""
    rows = []
    for index, x_value in enumerate(x_values):
        row: Dict[str, object] = {x_label: x_value}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else ""
        rows.append(row)
    return format_table(rows, title=title)


def rows_to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Serialise result rows as CSV text (for saving alongside bench output)."""
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(str(row.get(column, "")) for column in columns))
    return "\n".join(lines) + "\n"


def summarise_comparison(rows: Iterable[Dict[str, object]], metric: str) -> Dict[str, float]:
    """Average ``metric`` per algorithm over a set of result rows."""
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for row in rows:
        algorithm = str(row.get("algorithm", "?"))
        value = row.get(metric)
        if value is None or value == "":
            continue
        sums[algorithm] = sums.get(algorithm, 0.0) + float(value)
        counts[algorithm] = counts.get(algorithm, 0) + 1
    return {
        algorithm: sums[algorithm] / counts[algorithm]
        for algorithm in sums
        if counts[algorithm]
    }
