"""Running and comparing algorithms on prepared instances.

:func:`run_algorithm` dispatches on the algorithm name used throughout the
paper's figures ("RMA", "TI-CARM", "TI-CSRM", plus the oracle-setting
algorithms), measures wall-clock time, and re-evaluates the returned
allocation with an independent estimator so the reported revenue is
comparable across algorithms.

Every stage resolves :meth:`repro.runtime.ExecutionPolicy.fast` when no
policy is given — SUBSIM RR generation, batched Monte-Carlo and greedy
engines, all cores.  Pass ``policy=ExecutionPolicy.seed()`` to pin the
serial seed-stream reference path instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

from repro.advertising.instance import RMInstance
from repro.advertising.oracle import MonteCarloOracle, RevenueOracle, RRSetOracle
from repro.baselines.ti_carm import ti_carm
from repro.baselines.ti_common import TIParameters
from repro.baselines.ti_csrm import ti_csrm
from repro.baselines.ca_greedy import ca_greedy
from repro.baselines.cs_greedy import cs_greedy
from repro.core.oracle_solver import rm_with_oracle
from repro.core.result import SolverResult
from repro.core.sampling_solver import SamplingParameters, one_batch_rm, rm_without_oracle
from repro.exceptions import ExperimentError, PolicyError
from repro.runtime import ExecutionPolicy, Runtime, current_runtime, resolve_policy
from repro.utils.rng import RandomSource
from repro.experiments.metrics import EvaluationResult, evaluate_allocation


@dataclass
class AlgorithmRun:
    """Outcome of running one algorithm on one instance."""

    algorithm: str
    solver_result: SolverResult
    evaluation: EvaluationResult
    running_time_seconds: float
    metadata: Dict[str, object] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary used by the tabular reporters."""
        row = {
            "algorithm": self.algorithm,
            "running_time_seconds": round(self.running_time_seconds, 4),
            **self.evaluation.as_row(),
        }
        row.update({f"meta_{key}": value for key, value in self.metadata.items()})
        return row


#: algorithm names accepted by :func:`run_algorithm`
SAMPLING_ALGORITHMS = ("RMA", "OneBatchRM", "TI-CARM", "TI-CSRM")
ORACLE_ALGORITHMS = ("RM_with_Oracle", "CA-Greedy", "CS-Greedy")


def _reject_params_policy_conflict(name: str, params, policy: ExecutionPolicy) -> None:
    """Refuse a run-level ``policy=`` that disagrees with a parameter object's.

    Silently discarding the parameter object's configuration would hand the
    caller a different engine (and RNG stream) than they asked for.  An equal
    ``params.policy`` is allowed — passing the same policy on both levels
    is redundant, not contradictory.
    """
    if params is None:
        return
    if params.policy is not None and params.policy != policy:
        raise PolicyError(
            f"run_algorithm: policy= disagrees with {name}.policy; pass one "
            "policy (or make them equal)"
        )


def run_algorithm(
    algorithm: str,
    instance: RMInstance,
    evaluator: Optional[RRSetOracle] = None,
    sampling_params: Optional[SamplingParameters] = None,
    ti_params: Optional[TIParameters] = None,
    oracle: Optional[RevenueOracle] = None,
    one_batch_rr_sets: int = 2048,
    evaluation_rr_sets: int = 20000,
    mc_oracle_simulations: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
    runtime: Optional[Runtime] = None,
    seed: RandomSource = None,
) -> AlgorithmRun:
    """Run one algorithm by name and evaluate its allocation independently.

    Parameters
    ----------
    algorithm:
        One of ``RMA``, ``OneBatchRM``, ``TI-CARM``, ``TI-CSRM`` (sampling
        setting) or ``RM_with_Oracle``, ``CA-Greedy``, ``CS-Greedy`` (oracle
        setting; requires ``oracle`` or ``mc_oracle_simulations``).
    evaluator:
        Shared independent evaluator; building one per call is expensive, so
        sweeps construct it once and pass it in.
    mc_oracle_simulations:
        When an oracle-setting algorithm is requested without an explicit
        ``oracle``, build a :class:`MonteCarloOracle` with this many cascade
        simulations per query instead of raising.
    policy:
        :class:`repro.runtime.ExecutionPolicy` applied to every stage —
        sampler engines and sharding (copied into the parameter objects,
        which are never mutated), the auto-built Monte-Carlo oracle, the
        independent evaluator, and the oracle-setting greedy loops.
        ``None`` resolves to :meth:`ExecutionPolicy.fast` — SUBSIM RR
        generation, batched MC and greedy engines, all cores; pass
        :meth:`ExecutionPolicy.seed` for the serial seed-stream escape
        hatch.  A ``policy=`` that disagrees with a parameter object's own
        ``params.policy`` raises :class:`~repro.exceptions.PolicyError` (a
        :class:`ValueError`).
    runtime:
        :class:`repro.runtime.Runtime` whose persistent worker pool every
        sharded stage reuses.  Defaults to the ambient runtime; when there
        is none, the call opens its own for its duration, so RMA's doubling
        rounds and the MC oracle's queries always share one pool.
    """
    effective = resolve_policy(policy)
    if policy is not None:
        _reject_params_policy_conflict("sampling_params", sampling_params, policy)
        _reject_params_policy_conflict("ti_params", ti_params, policy)
        sampling_params = replace(
            sampling_params or SamplingParameters(), policy=policy
        )
        ti_params = replace(ti_params or TIParameters(), policy=policy)

    owned_runtime: Optional[Runtime] = None
    if runtime is None:
        runtime = current_runtime()
        if runtime is None:
            runtime = owned_runtime = Runtime(effective)
    try:
        if (
            algorithm in ORACLE_ALGORITHMS
            and oracle is None
            and mc_oracle_simulations is not None
        ):
            oracle = MonteCarloOracle(
                instance,
                num_simulations=mc_oracle_simulations,
                seed=seed,
                policy=effective,
                runtime=runtime,
            )
        started = time.perf_counter()
        if algorithm == "RMA":
            result = rm_without_oracle(instance, sampling_params, runtime=runtime)
        elif algorithm == "OneBatchRM":
            result = one_batch_rm(
                instance, one_batch_rr_sets, sampling_params, runtime=runtime
            )
        elif algorithm == "TI-CARM":
            result = ti_carm(instance, ti_params, runtime=runtime)
        elif algorithm == "TI-CSRM":
            result = ti_csrm(instance, ti_params, runtime=runtime)
        elif algorithm in ORACLE_ALGORITHMS:
            if oracle is None:
                raise ExperimentError(f"{algorithm} requires a revenue oracle")
            if algorithm == "RM_with_Oracle":
                result = rm_with_oracle(instance, oracle, policy=effective)
            elif algorithm == "CA-Greedy":
                result = ca_greedy(instance, oracle, policy=effective)
            else:
                result = cs_greedy(instance, oracle, policy=effective)
        else:
            raise ExperimentError(
                f"unknown algorithm {algorithm!r}; expected one of "
                f"{SAMPLING_ALGORITHMS + ORACLE_ALGORITHMS}"
            )
        elapsed = time.perf_counter() - started

        evaluation = evaluate_allocation(
            instance,
            result.allocation,
            evaluator=evaluator,
            num_rr_sets=evaluation_rr_sets,
            seed=seed,
            policy=effective,
            runtime=runtime,
        )
    finally:
        if owned_runtime is not None:
            owned_runtime.close()
    return AlgorithmRun(
        algorithm=algorithm,
        solver_result=result,
        evaluation=evaluation,
        running_time_seconds=elapsed,
        metadata=dict(result.metadata),
    )


def compare_algorithms(
    algorithms: Iterable[str],
    instance: RMInstance,
    evaluator: Optional[RRSetOracle] = None,
    **kwargs,
) -> List[AlgorithmRun]:
    """Run several algorithms on the same instance with a shared evaluator."""
    runs = []
    for algorithm in algorithms:
        runs.append(run_algorithm(algorithm, instance, evaluator=evaluator, **kwargs))
    return runs
