"""Running and comparing algorithms on prepared instances.

:func:`run_algorithm` dispatches on the algorithm name used throughout the
paper's figures ("RMA", "TI-CARM", "TI-CSRM", plus the oracle-setting
algorithms), measures wall-clock time, and re-evaluates the returned
allocation with an independent estimator so the reported revenue is
comparable across algorithms.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

from repro.advertising.instance import RMInstance
from repro.advertising.oracle import MonteCarloOracle, RevenueOracle, RRSetOracle
from repro.baselines.ti_carm import ti_carm
from repro.baselines.ti_common import TIParameters
from repro.baselines.ti_csrm import ti_csrm
from repro.baselines.ca_greedy import ca_greedy
from repro.baselines.cs_greedy import cs_greedy
from repro.core.oracle_solver import rm_with_oracle
from repro.core.result import SolverResult
from repro.core.sampling_solver import SamplingParameters, one_batch_rm, rm_without_oracle
from repro.exceptions import ExperimentError
from repro.experiments.metrics import EvaluationResult, evaluate_allocation
from repro.utils.rng import RandomSource


@dataclass
class AlgorithmRun:
    """Outcome of running one algorithm on one instance."""

    algorithm: str
    solver_result: SolverResult
    evaluation: EvaluationResult
    running_time_seconds: float
    metadata: Dict[str, object] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary used by the tabular reporters."""
        row = {
            "algorithm": self.algorithm,
            "running_time_seconds": round(self.running_time_seconds, 4),
            **self.evaluation.as_row(),
        }
        row.update({f"meta_{key}": value for key, value in self.metadata.items()})
        return row


#: algorithm names accepted by :func:`run_algorithm`
SAMPLING_ALGORITHMS = ("RMA", "OneBatchRM", "TI-CARM", "TI-CSRM")
ORACLE_ALGORITHMS = ("RM_with_Oracle", "CA-Greedy", "CS-Greedy")


def run_algorithm(
    algorithm: str,
    instance: RMInstance,
    evaluator: Optional[RRSetOracle] = None,
    sampling_params: Optional[SamplingParameters] = None,
    ti_params: Optional[TIParameters] = None,
    oracle: Optional[RevenueOracle] = None,
    one_batch_rr_sets: int = 2048,
    evaluation_rr_sets: int = 20000,
    mc_oracle_simulations: Optional[int] = None,
    use_batched_mc: bool = False,
    use_batched_greedy: bool = False,
    n_jobs: Optional[int] = None,
    fast: bool = False,
    seed: RandomSource = None,
) -> AlgorithmRun:
    """Run one algorithm by name and evaluate its allocation independently.

    Parameters
    ----------
    algorithm:
        One of ``RMA``, ``OneBatchRM``, ``TI-CARM``, ``TI-CSRM`` (sampling
        setting) or ``RM_with_Oracle``, ``CA-Greedy``, ``CS-Greedy`` (oracle
        setting; requires ``oracle`` or ``mc_oracle_simulations``).
    evaluator:
        Shared independent evaluator; building one per call is expensive, so
        sweeps construct it once and pass it in.
    mc_oracle_simulations:
        When an oracle-setting algorithm is requested without an explicit
        ``oracle``, build a :class:`MonteCarloOracle` with this many cascade
        simulations per query instead of raising.
    use_batched_mc:
        Run the auto-built Monte-Carlo oracle on the batched cascade engine
        (:mod:`repro.diffusion.engine`).  Default off so fixed-seed runs
        reproduce the seed tree's RNG stream, mirroring
        ``SamplingParameters.use_subsim``.
    use_batched_greedy:
        Run the oracle-setting greedy loops (``RM_with_Oracle``,
        ``CA-Greedy``, ``CS-Greedy``) on the batched coverage engine
        (:mod:`repro.core.batched_greedy`); effective only when the oracle is
        an RR-set oracle.  The sampling algorithms take the equivalent flag
        through ``SamplingParameters.use_batched_greedy`` /
        ``TIParameters.use_batched_greedy``.
    n_jobs:
        One knob for the sharded parallel engines (:mod:`repro.parallel`):
        threaded into ``sampling_params.n_jobs`` / ``ti_params.n_jobs`` (RR
        generation) and the auto-built Monte-Carlo oracle (spread
        estimation).  Parameter objects passed by the caller are copied, not
        mutated.  ``None`` leaves everything as configured.
    fast:
        One switch for every fast path: flips ``use_subsim``,
        ``use_batched_mc`` and ``use_batched_greedy`` on (copying any passed
        parameter objects) and defaults ``n_jobs`` to ``os.cpu_count()``
        unless an explicit ``n_jobs`` is given.  Results are statistically
        equivalent to the defaults, not bit-identical (see the RNG policy in
        ``docs/architecture.md``).
    """
    if fast:
        if n_jobs is None:
            n_jobs = os.cpu_count() or 1
        use_batched_mc = True
        use_batched_greedy = True
        sampling_params = replace(
            sampling_params or SamplingParameters(),
            use_subsim=True,
            use_batched_greedy=True,
        )
        ti_params = replace(
            ti_params or TIParameters(),
            use_subsim=True,
            use_batched_greedy=True,
        )
    if n_jobs is not None:
        sampling_params = replace(sampling_params or SamplingParameters(), n_jobs=n_jobs)
        ti_params = replace(ti_params or TIParameters(), n_jobs=n_jobs)
    if algorithm in ORACLE_ALGORITHMS and oracle is None and mc_oracle_simulations is not None:
        oracle = MonteCarloOracle(
            instance,
            num_simulations=mc_oracle_simulations,
            seed=seed,
            use_batched_mc=use_batched_mc,
            n_jobs=n_jobs,
        )
    started = time.perf_counter()
    if algorithm == "RMA":
        result = rm_without_oracle(instance, sampling_params)
    elif algorithm == "OneBatchRM":
        result = one_batch_rm(instance, one_batch_rr_sets, sampling_params)
    elif algorithm == "TI-CARM":
        result = ti_carm(instance, ti_params)
    elif algorithm == "TI-CSRM":
        result = ti_csrm(instance, ti_params)
    elif algorithm in ORACLE_ALGORITHMS:
        if oracle is None:
            raise ExperimentError(f"{algorithm} requires a revenue oracle")
        if algorithm == "RM_with_Oracle":
            result = rm_with_oracle(instance, oracle, use_batched_greedy=use_batched_greedy)
        elif algorithm == "CA-Greedy":
            result = ca_greedy(instance, oracle, use_batched_greedy=use_batched_greedy)
        else:
            result = cs_greedy(instance, oracle, use_batched_greedy=use_batched_greedy)
    else:
        raise ExperimentError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{SAMPLING_ALGORITHMS + ORACLE_ALGORITHMS}"
        )
    elapsed = time.perf_counter() - started

    evaluation = evaluate_allocation(
        instance,
        result.allocation,
        evaluator=evaluator,
        num_rr_sets=evaluation_rr_sets,
        seed=seed,
    )
    return AlgorithmRun(
        algorithm=algorithm,
        solver_result=result,
        evaluation=evaluation,
        running_time_seconds=elapsed,
        metadata=dict(result.metadata),
    )


def compare_algorithms(
    algorithms: Iterable[str],
    instance: RMInstance,
    evaluator: Optional[RRSetOracle] = None,
    **kwargs,
) -> List[AlgorithmRun]:
    """Run several algorithms on the same instance with a shared evaluator."""
    runs = []
    for algorithm in algorithms:
        runs.append(run_algorithm(algorithm, instance, evaluator=evaluator, **kwargs))
    return runs
