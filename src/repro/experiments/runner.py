"""Running and comparing algorithms on prepared instances.

:func:`run_algorithm` dispatches on the algorithm name used throughout the
paper's figures ("RMA", "TI-CARM", "TI-CSRM", plus the oracle-setting
algorithms), measures wall-clock time, and re-evaluates the returned
allocation with an independent estimator so the reported revenue is
comparable across algorithms.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

from repro.advertising.instance import RMInstance
from repro.advertising.oracle import MonteCarloOracle, RevenueOracle, RRSetOracle
from repro.baselines.ti_carm import ti_carm
from repro.baselines.ti_common import TIParameters
from repro.baselines.ti_csrm import ti_csrm
from repro.baselines.ca_greedy import ca_greedy
from repro.baselines.cs_greedy import cs_greedy
from repro.core.oracle_solver import rm_with_oracle
from repro.core.result import SolverResult
from repro.core.sampling_solver import SamplingParameters, one_batch_rm, rm_without_oracle
from repro.exceptions import ExperimentError, PolicyError
from repro.runtime import ExecutionPolicy, Runtime, current_runtime
from repro.utils.rng import RandomSource
from repro.experiments.metrics import EvaluationResult, evaluate_allocation


@dataclass
class AlgorithmRun:
    """Outcome of running one algorithm on one instance."""

    algorithm: str
    solver_result: SolverResult
    evaluation: EvaluationResult
    running_time_seconds: float
    metadata: Dict[str, object] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary used by the tabular reporters."""
        row = {
            "algorithm": self.algorithm,
            "running_time_seconds": round(self.running_time_seconds, 4),
            **self.evaluation.as_row(),
        }
        row.update({f"meta_{key}": value for key, value in self.metadata.items()})
        return row


#: algorithm names accepted by :func:`run_algorithm`
SAMPLING_ALGORITHMS = ("RMA", "OneBatchRM", "TI-CARM", "TI-CSRM")
ORACLE_ALGORITHMS = ("RM_with_Oracle", "CA-Greedy", "CS-Greedy")


def _flags_to_overrides(
    fast: bool,
    use_batched_mc: Optional[bool],
    use_batched_greedy: Optional[bool],
    n_jobs: Optional[int],
) -> Dict[str, object]:
    """Partial :class:`ExecutionPolicy` overrides from the legacy kwargs.

    Only explicitly passed flags produce overrides, so parameter objects
    keep any engine choices the caller already made (the historical
    semantics: ``n_jobs=4`` on top of ``use_subsim=True`` params keeps
    SUBSIM).  Conflicting combinations were already rejected by
    :meth:`ExecutionPolicy.from_flags` before this runs.
    """
    overrides: Dict[str, object] = {}
    if fast:
        overrides.update(
            rr_engine="subsim", mc_engine="batched", greedy_engine="batched"
        )
        overrides["n_jobs"] = n_jobs if n_jobs is not None else -1
        return overrides
    if use_batched_mc is not None:
        overrides["mc_engine"] = "batched" if use_batched_mc else "legacy"
    if use_batched_greedy is not None:
        overrides["greedy_engine"] = "batched" if use_batched_greedy else "scalar"
    if n_jobs is not None:
        overrides["n_jobs"] = n_jobs
    return overrides


def _reject_params_policy_conflict(name: str, params, policy: ExecutionPolicy) -> None:
    """Refuse a run-level ``policy=`` that would override engine choices the
    caller already baked into a parameter object.

    Silently discarding the parameter object's configuration would hand the
    caller a different engine (and RNG stream) than they asked for; every
    other mixed-channel combination raises, so this one does too.  An equal
    ``params.policy`` is allowed — passing the same policy on both levels
    is redundant, not contradictory.
    """
    if params is None:
        return
    legacy = [
        field_name
        for field_name, set_ in (
            ("use_subsim", params.use_subsim),
            ("use_batched_greedy", params.use_batched_greedy),
            ("n_jobs", params.n_jobs is not None),
        )
        if set_
    ]
    if legacy:
        raise PolicyError(
            f"run_algorithm: policy= conflicts with the deprecated "
            f"{name}.{'/'.join(legacy)} field(s); configure the engines "
            "through one channel"
        )
    if params.policy is not None and params.policy != policy:
        raise PolicyError(
            f"run_algorithm: policy= disagrees with {name}.policy; pass one "
            "policy (or make them equal)"
        )


def run_algorithm(
    algorithm: str,
    instance: RMInstance,
    evaluator: Optional[RRSetOracle] = None,
    sampling_params: Optional[SamplingParameters] = None,
    ti_params: Optional[TIParameters] = None,
    oracle: Optional[RevenueOracle] = None,
    one_batch_rr_sets: int = 2048,
    evaluation_rr_sets: int = 20000,
    mc_oracle_simulations: Optional[int] = None,
    use_batched_mc: Optional[bool] = None,
    use_batched_greedy: Optional[bool] = None,
    n_jobs: Optional[int] = None,
    fast: bool = False,
    policy: Optional[ExecutionPolicy] = None,
    runtime: Optional[Runtime] = None,
    seed: RandomSource = None,
) -> AlgorithmRun:
    """Run one algorithm by name and evaluate its allocation independently.

    Parameters
    ----------
    algorithm:
        One of ``RMA``, ``OneBatchRM``, ``TI-CARM``, ``TI-CSRM`` (sampling
        setting) or ``RM_with_Oracle``, ``CA-Greedy``, ``CS-Greedy`` (oracle
        setting; requires ``oracle`` or ``mc_oracle_simulations``).
    evaluator:
        Shared independent evaluator; building one per call is expensive, so
        sweeps construct it once and pass it in.
    mc_oracle_simulations:
        When an oracle-setting algorithm is requested without an explicit
        ``oracle``, build a :class:`MonteCarloOracle` with this many cascade
        simulations per query instead of raising.
    policy:
        :class:`repro.runtime.ExecutionPolicy` applied to every stage —
        sampler engines and sharding (copied into the parameter objects,
        which are never mutated), the auto-built Monte-Carlo oracle, and the
        oracle-setting greedy loops.  ``ExecutionPolicy.seed()`` is
        bit-identical to the historical defaults and
        ``ExecutionPolicy.fast()`` to ``fast=True``.  Combining ``policy``
        with any of the deprecated flags below raises
        :class:`~repro.exceptions.PolicyError` (a :class:`ValueError`), as
        does any internally conflicting flag combination such as
        ``fast=True`` with an explicit ``use_batched_mc=False`` — or a
        parameter object that already carries its own engine configuration
        (legacy fields, or a different ``params.policy``).
    runtime:
        :class:`repro.runtime.Runtime` whose persistent worker pool every
        sharded stage reuses.  Defaults to the ambient runtime; when there
        is none, the call opens its own for its duration, so RMA's doubling
        rounds and the MC oracle's queries always share one pool.
    use_batched_mc:
        Deprecated — ``policy.mc_engine`` replaces it (the auto-built
        Monte-Carlo oracle's engine).
    use_batched_greedy:
        Deprecated — ``policy.greedy_engine`` replaces it (the oracle-setting
        greedy loops; sampling algorithms configure theirs through their
        parameter objects).
    n_jobs:
        Deprecated — ``policy.n_jobs`` replaces it.
    fast:
        Deprecated — ``policy=ExecutionPolicy.fast()`` replaces it.
    """
    flag_names = [
        name
        for name, value in (
            ("use_batched_mc", use_batched_mc),
            ("use_batched_greedy", use_batched_greedy),
            ("n_jobs", n_jobs),
            ("fast", fast or None),
        )
        if value is not None
    ]
    flags_policy: Optional[ExecutionPolicy] = None
    if flag_names:
        warnings.warn(
            f"run_algorithm: the {', '.join(flag_names)} keyword(s) are "
            "deprecated; pass policy=ExecutionPolicy.from_flags(...) (or a "
            "preset such as ExecutionPolicy.fast()) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        # Validates the combination (fast=True with an explicit False engine
        # flag raises PolicyError) and doubles as the oracle-stage policy.
        flags_policy = ExecutionPolicy.from_flags(
            fast=fast or None,
            use_batched_mc=use_batched_mc,
            use_batched_greedy=use_batched_greedy,
            n_jobs=n_jobs,
        )
        if policy is not None:
            raise PolicyError(
                "run_algorithm: pass either policy= or the legacy flags "
                f"({', '.join(flag_names)}), not both"
            )

    effective = policy if policy is not None else flags_policy
    if policy is not None:
        _reject_params_policy_conflict("sampling_params", sampling_params, policy)
        _reject_params_policy_conflict("ti_params", ti_params, policy)
        sampling_params = replace(
            sampling_params or SamplingParameters(),
            policy=policy,
            use_subsim=False,
            use_batched_greedy=False,
            n_jobs=None,
        )
        ti_params = replace(
            ti_params or TIParameters(),
            policy=policy,
            use_subsim=False,
            use_batched_greedy=False,
            n_jobs=None,
        )
    elif flag_names:
        overrides = _flags_to_overrides(fast, use_batched_mc, use_batched_greedy, n_jobs)
        sampling_overrides = dict(overrides)
        # use_batched_mc only concerns the MC oracle; the sampling params
        # never consumed it, so don't force it into their policy.
        if not fast:
            sampling_overrides.pop("mc_engine", None)
        sampling_params = replace(
            sampling_params or SamplingParameters(),
            policy=(sampling_params or SamplingParameters())
            .resolved_policy()
            .evolve(**sampling_overrides),
            use_subsim=False,
            use_batched_greedy=False,
            n_jobs=None,
        )
        ti_params = replace(
            ti_params or TIParameters(),
            policy=(ti_params or TIParameters()).resolved_policy().evolve(**sampling_overrides),
            use_subsim=False,
            use_batched_greedy=False,
            n_jobs=None,
        )

    owned_runtime: Optional[Runtime] = None
    if runtime is None:
        runtime = current_runtime()
        if runtime is None:
            runtime = owned_runtime = Runtime(effective)
    try:
        if (
            algorithm in ORACLE_ALGORITHMS
            and oracle is None
            and mc_oracle_simulations is not None
        ):
            oracle = MonteCarloOracle(
                instance,
                num_simulations=mc_oracle_simulations,
                seed=seed,
                policy=effective,
                runtime=runtime,
            )
        started = time.perf_counter()
        if algorithm == "RMA":
            result = rm_without_oracle(instance, sampling_params, runtime=runtime)
        elif algorithm == "OneBatchRM":
            result = one_batch_rm(
                instance, one_batch_rr_sets, sampling_params, runtime=runtime
            )
        elif algorithm == "TI-CARM":
            result = ti_carm(instance, ti_params, runtime=runtime)
        elif algorithm == "TI-CSRM":
            result = ti_csrm(instance, ti_params, runtime=runtime)
        elif algorithm in ORACLE_ALGORITHMS:
            if oracle is None:
                raise ExperimentError(f"{algorithm} requires a revenue oracle")
            if algorithm == "RM_with_Oracle":
                result = rm_with_oracle(instance, oracle, policy=effective)
            elif algorithm == "CA-Greedy":
                result = ca_greedy(instance, oracle, policy=effective)
            else:
                result = cs_greedy(instance, oracle, policy=effective)
        else:
            raise ExperimentError(
                f"unknown algorithm {algorithm!r}; expected one of "
                f"{SAMPLING_ALGORITHMS + ORACLE_ALGORITHMS}"
            )
        elapsed = time.perf_counter() - started

        evaluation = evaluate_allocation(
            instance,
            result.allocation,
            evaluator=evaluator,
            num_rr_sets=evaluation_rr_sets,
            seed=seed,
        )
    finally:
        if owned_runtime is not None:
            owned_runtime.close()
    return AlgorithmRun(
        algorithm=algorithm,
        solver_result=result,
        evaluation=evaluation,
        running_time_seconds=elapsed,
        metadata=dict(result.metadata),
    )


def compare_algorithms(
    algorithms: Iterable[str],
    instance: RMInstance,
    evaluator: Optional[RRSetOracle] = None,
    **kwargs,
) -> List[AlgorithmRun]:
    """Run several algorithms on the same instance with a shared evaluator."""
    runs = []
    for algorithm in algorithms:
        runs.append(run_algorithm(algorithm, instance, evaluator=evaluator, **kwargs))
    return runs
