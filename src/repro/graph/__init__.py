"""Directed-graph substrate used by the diffusion and sampling layers."""

from repro.graph.digraph import CSRDiGraph
from repro.graph.deltas import (
    AddEdge,
    AddNode,
    DeltaEffect,
    MutableGraphView,
    RemoveEdge,
    RemoveNode,
    UpdateProbability,
)
from repro.graph.builders import from_edge_array, from_edge_list, from_networkx, to_networkx
from repro.graph.generators import (
    erdos_renyi_digraph,
    preferential_attachment_digraph,
    small_world_digraph,
    power_law_configuration_digraph,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import GraphStats, compute_stats

__all__ = [
    "CSRDiGraph",
    "AddEdge",
    "AddNode",
    "DeltaEffect",
    "MutableGraphView",
    "RemoveEdge",
    "RemoveNode",
    "UpdateProbability",
    "from_edge_array",
    "from_edge_list",
    "from_networkx",
    "to_networkx",
    "erdos_renyi_digraph",
    "preferential_attachment_digraph",
    "small_world_digraph",
    "power_law_configuration_digraph",
    "read_edge_list",
    "write_edge_list",
    "GraphStats",
    "compute_stats",
]
