"""Constructors converting other edge representations into :class:`CSRDiGraph`."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graph.digraph import CSRDiGraph


def from_edge_list(
    edges: Iterable[Tuple[int, int]],
    num_nodes: Optional[int] = None,
    undirected: bool = False,
) -> CSRDiGraph:
    """Build a graph from an iterable of ``(source, target)`` pairs.

    Parameters
    ----------
    edges:
        Directed edges.  Duplicates are merged; self-loops are rejected.
    num_nodes:
        Total node count.  Defaults to ``max endpoint + 1``.
    undirected:
        When True every pair is inserted in both directions, matching how the
        paper treats the undirected DBLP network.
    """
    pairs = [(int(u), int(v)) for u, v in edges]
    if undirected:
        pairs = pairs + [(v, u) for u, v in pairs]
    if pairs:
        sources = np.array([u for u, _ in pairs], dtype=np.int64)
        targets = np.array([v for _, v in pairs], dtype=np.int64)
        inferred = int(max(sources.max(), targets.max())) + 1
    else:
        sources = np.empty(0, dtype=np.int64)
        targets = np.empty(0, dtype=np.int64)
        inferred = 0
    if num_nodes is None:
        num_nodes = inferred
    elif num_nodes < inferred:
        raise GraphError(
            f"num_nodes={num_nodes} is smaller than required by edges ({inferred})"
        )
    return CSRDiGraph(num_nodes, sources, targets)


def from_edge_array(
    sources: Sequence[int],
    targets: Sequence[int],
    num_nodes: Optional[int] = None,
    undirected: bool = False,
) -> CSRDiGraph:
    """Build a graph from two parallel endpoint arrays."""
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if undirected:
        sources, targets = (
            np.concatenate([sources, targets]),
            np.concatenate([targets, sources]),
        )
    if num_nodes is None:
        num_nodes = int(max(sources.max(initial=-1), targets.max(initial=-1))) + 1
    return CSRDiGraph(num_nodes, sources, targets)


def from_networkx(nx_graph) -> CSRDiGraph:
    """Convert a :mod:`networkx` graph (directed or undirected) to CSR form.

    Node labels must be integers ``0 .. n-1``; use
    ``networkx.convert_node_labels_to_integers`` beforehand otherwise.
    """
    import networkx as nx

    num_nodes = nx_graph.number_of_nodes()
    labels = set(nx_graph.nodes())
    if labels and labels != set(range(num_nodes)):
        raise GraphError("networkx graph must be labelled with integers 0..n-1")
    undirected = not nx_graph.is_directed()
    edges = [(u, v) for u, v in nx_graph.edges() if u != v]
    return from_edge_list(edges, num_nodes=num_nodes, undirected=undirected)


def to_networkx(graph: CSRDiGraph):
    """Convert a :class:`CSRDiGraph` to a :class:`networkx.DiGraph`."""
    import networkx as nx

    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(range(graph.num_nodes))
    nx_graph.add_edges_from(graph.edges())
    return nx_graph
