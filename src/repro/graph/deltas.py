"""Streaming graph deltas over an immutable :class:`CSRDiGraph`.

:class:`CSRDiGraph` is frozen by design — the traversal engines depend on its
CSR arrays never moving underneath them.  :class:`MutableGraphView` is the
mutability layer on top: it owns the *current* graph together with the
per-advertiser edge-probability arrays, accepts **typed delta batches**
(:class:`AddEdge`, :class:`RemoveEdge`, :class:`UpdateProbability`,
:class:`AddNode`, :class:`RemoveNode`), and rebuilds a fresh frozen CSR
snapshot per batch.  Every applied batch advances an epoch counter and is
appended to a delta log, so downstream consumers (the incremental RR-set
store in :mod:`repro.rrsets.store`) can reason about *what changed* instead
of diffing graphs.

The dirty-region contract
-------------------------
Reverse-reachability traversals only ever examine the **in-neighbourhood of
nodes they visit**: an RR-set's replay is a pure function of the root draw,
the advertiser draw, and the in-CSR blocks of its member nodes.  A delta
batch therefore dirties exactly the nodes whose in-blocks it touches:

* ``AddEdge(u, v)`` / ``RemoveEdge(u, v)`` dirty ``v`` (for every
  advertiser — the block's degree and content change);
* ``UpdateProbability(u, v, advertiser=i)`` dirties ``v`` *for advertiser
  i only* (other advertisers' probability arrays are untouched);
* ``RemoveNode(x)`` removes all incident edges, dirtying every out-neighbour
  of ``x`` (their in-blocks lose the edge from ``x``) and ``x`` itself when
  it had in-edges.  The node *id* survives as an isolated node — removal is
  **isolation**, which keeps the id space (and the root-draw domain) stable;
* ``AddNode`` grows the id space, which changes the root-draw domain for
  every RR-set — reported as ``num_nodes_changed`` so consumers know the
  delta is global, not localized.

:meth:`MutableGraphView.apply` returns a :class:`DeltaEffect` carrying this
dirty region; the RR store intersects it with each RR-set's member signature
to decide what to invalidate.  Canonical edge order of the rebuilt snapshot
is the same lexicographic ``(source, target)`` order :class:`CSRDiGraph`
derives itself, so the probability arrays stay aligned with
``graph.sources`` / ``graph.targets`` by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.exceptions import GraphError
from repro.graph.digraph import CSRDiGraph

_EMPTY_NODES = np.empty(0, dtype=np.int64)
_EMPTY_NODES.setflags(write=False)


# ---------------------------------------------------------------------- #
# typed deltas
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class AddEdge:
    """Insert the directed edge ``source -> target``.

    ``probabilities`` carries one activation probability per advertiser for
    the new edge (length ``h``); the edge must not already exist.
    """

    source: int
    target: int
    probabilities: Tuple[float, ...]


@dataclass(frozen=True)
class RemoveEdge:
    """Delete the directed edge ``source -> target`` (must exist)."""

    source: int
    target: int


@dataclass(frozen=True)
class UpdateProbability:
    """Set the activation probability of an existing edge.

    ``advertiser=None`` updates every advertiser's probability for the edge
    (dirtying the target globally); an explicit index updates — and dirties —
    only that advertiser's view of the edge.
    """

    source: int
    target: int
    probability: float
    advertiser: Optional[int] = None


@dataclass(frozen=True)
class AddNode:
    """Append ``count`` fresh isolated nodes (ids ``n .. n + count - 1``)."""

    count: int = 1


@dataclass(frozen=True)
class RemoveNode:
    """Isolate ``node``: delete all incident edges, keep the id.

    True id compaction would renumber every surviving node and invalidate
    all recorded RR-sets; isolation keeps the id space stable so the delta
    stays localized.  The isolated id remains a valid (degree-0) node.
    """

    node: int


GraphDelta = Union[AddEdge, RemoveEdge, UpdateProbability, AddNode, RemoveNode]


@dataclass(frozen=True)
class DeltaEffect:
    """What one applied batch dirtied — the invalidation input of consumers.

    Attributes
    ----------
    epoch:
        The view's epoch *after* the batch was applied.
    num_deltas:
        Number of deltas in the batch.
    dirty_nodes:
        Sorted node ids whose in-neighbourhood changed for **every**
        advertiser (structural edge changes and all-advertiser probability
        updates).
    dirty_nodes_by_advertiser:
        Per-advertiser sorted node ids dirtied only for that advertiser
        (single-advertiser probability updates); advertisers with no
        private dirt are absent.
    num_nodes_changed:
        ``True`` when the batch grew the node id space (``AddNode``) —
        a global delta for consumers whose draws depend on ``num_nodes``.
    """

    epoch: int
    num_deltas: int
    dirty_nodes: np.ndarray
    dirty_nodes_by_advertiser: Mapping[int, np.ndarray] = field(default_factory=dict)
    num_nodes_changed: bool = False

    @property
    def is_global(self) -> bool:
        """Whether the batch invalidates consumers regardless of locality."""
        return self.num_nodes_changed


class MutableGraphView:
    """A mutable (graph, per-advertiser probabilities) pair with a delta log.

    Parameters
    ----------
    graph:
        The initial frozen snapshot.
    advertiser_edge_probabilities:
        One probability array per advertiser, aligned with the graph's
        canonical edge order (exactly what
        :meth:`~repro.advertising.instance.RMInstance.all_edge_probabilities`
        returns).  Copied — the view never aliases caller arrays.
    """

    def __init__(
        self,
        graph: CSRDiGraph,
        advertiser_edge_probabilities: Sequence[np.ndarray],
    ):
        if len(advertiser_edge_probabilities) == 0:
            raise GraphError("at least one advertiser probability array is required")
        self._num_advertisers = len(advertiser_edge_probabilities)
        self._num_nodes = graph.num_nodes
        sources = graph.sources
        targets = graph.targets
        matrix = np.empty((self._num_advertisers, graph.num_edges), dtype=np.float64)
        for row, probabilities in enumerate(advertiser_edge_probabilities):
            probabilities = np.asarray(probabilities, dtype=np.float64)
            if probabilities.shape != (graph.num_edges,):
                raise GraphError(
                    "every probability array must have one entry per edge"
                )
            if probabilities.size and (
                probabilities.min() < 0 or probabilities.max() > 1
            ):
                raise GraphError("edge probabilities must lie in [0, 1]")
            matrix[row] = probabilities
        # Edge registry: (u, v) -> per-advertiser probability vector.  The
        # canonical (lexicographic) order is recovered by sorting the keys at
        # snapshot time, which matches CSRDiGraph's own edge order.
        self._edges: Dict[Tuple[int, int], np.ndarray] = {
            (int(sources[k]), int(targets[k])): matrix[:, k].copy()
            for k in range(graph.num_edges)
        }
        self._out_map: Dict[int, Set[int]] = {}
        self._in_map: Dict[int, Set[int]] = {}
        for u, v in self._edges:
            self._out_map.setdefault(u, set()).add(v)
            self._in_map.setdefault(v, set()).add(u)
        self._epoch = 0
        self._log: List[Tuple[int, GraphDelta]] = []
        self._graph = graph
        self._probabilities = [
            np.asarray(p, dtype=np.float64).copy()
            for p in advertiser_edge_probabilities
        ]
        for array in self._probabilities:
            array.setflags(write=False)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> CSRDiGraph:
        """The current frozen CSR snapshot."""
        return self._graph

    @property
    def advertiser_edge_probabilities(self) -> List[np.ndarray]:
        """Per-advertiser probability arrays aligned with the current snapshot."""
        return list(self._probabilities)

    @property
    def num_advertisers(self) -> int:
        """Number of advertisers ``h`` (fixed at construction)."""
        return self._num_advertisers

    @property
    def num_nodes(self) -> int:
        """Current node count (grows under :class:`AddNode`)."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Current edge count."""
        return len(self._edges)

    @property
    def epoch(self) -> int:
        """Number of delta batches applied so far."""
        return self._epoch

    @property
    def log(self) -> Tuple[Tuple[int, GraphDelta], ...]:
        """Every applied delta as ``(epoch, delta)``, in application order."""
        return tuple(self._log)

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge currently exists."""
        return (int(source), int(target)) in self._edges

    def edge_probability(self, source: int, target: int, advertiser: int) -> float:
        """Current activation probability of an edge for one advertiser."""
        key = (int(source), int(target))
        if key not in self._edges:
            raise GraphError(f"edge {key} does not exist")
        if not 0 <= advertiser < self._num_advertisers:
            raise GraphError(f"advertiser {advertiser} out of range")
        return float(self._edges[key][advertiser])

    def edges(self) -> List[Tuple[int, int]]:
        """Current edges in canonical (lexicographic) order."""
        return sorted(self._edges)

    # ------------------------------------------------------------------ #
    # delta application
    # ------------------------------------------------------------------ #
    def apply(self, deltas: Iterable[GraphDelta]) -> DeltaEffect:
        """Apply one batch of deltas, rebuild the snapshot, return the effect.

        Deltas are validated and applied **in order** against the evolving
        state, so a batch may add an edge and remove it again (an inverse
        pair — still dirties the target conservatively).  Validation failures
        raise :class:`~repro.exceptions.GraphError` *before* any state is
        mutated for that batch: the batch is applied onto a scratch copy and
        committed atomically.
        """
        deltas = list(deltas)
        edges = dict(self._edges)
        out_map = {node: set(peers) for node, peers in self._out_map.items()}
        in_map = {node: set(peers) for node, peers in self._in_map.items()}
        num_nodes = self._num_nodes
        dirty: Set[int] = set()
        dirty_by_advertiser: Dict[int, Set[int]] = {}
        nodes_changed = False
        h = self._num_advertisers

        def check_node(node: int) -> int:
            node = int(node)
            if not 0 <= node < num_nodes:
                raise GraphError(f"node {node} is out of range [0, {num_nodes})")
            return node

        for delta in deltas:
            if isinstance(delta, AddEdge):
                u, v = check_node(delta.source), check_node(delta.target)
                if u == v:
                    raise GraphError("self-loops are not supported")
                if (u, v) in edges:
                    raise GraphError(f"edge ({u}, {v}) already exists")
                probabilities = np.asarray(delta.probabilities, dtype=np.float64)
                if probabilities.shape != (h,):
                    raise GraphError(
                        f"AddEdge needs one probability per advertiser ({h})"
                    )
                if probabilities.min() < 0 or probabilities.max() > 1:
                    raise GraphError("edge probabilities must lie in [0, 1]")
                edges[(u, v)] = probabilities
                out_map.setdefault(u, set()).add(v)
                in_map.setdefault(v, set()).add(u)
                dirty.add(v)
            elif isinstance(delta, RemoveEdge):
                u, v = check_node(delta.source), check_node(delta.target)
                if (u, v) not in edges:
                    raise GraphError(f"edge ({u}, {v}) does not exist")
                del edges[(u, v)]
                out_map[u].discard(v)
                in_map[v].discard(u)
                dirty.add(v)
            elif isinstance(delta, UpdateProbability):
                u, v = check_node(delta.source), check_node(delta.target)
                if (u, v) not in edges:
                    raise GraphError(f"edge ({u}, {v}) does not exist")
                p = float(delta.probability)
                if not 0.0 <= p <= 1.0:
                    raise GraphError("edge probabilities must lie in [0, 1]")
                vector = edges[(u, v)].copy()
                if delta.advertiser is None:
                    vector[:] = p
                    dirty.add(v)
                else:
                    if not 0 <= delta.advertiser < h:
                        raise GraphError(
                            f"advertiser {delta.advertiser} out of range [0, {h})"
                        )
                    vector[delta.advertiser] = p
                    dirty_by_advertiser.setdefault(int(delta.advertiser), set()).add(v)
                edges[(u, v)] = vector
            elif isinstance(delta, AddNode):
                if int(delta.count) <= 0:
                    raise GraphError("AddNode.count must be positive")
                num_nodes += int(delta.count)
                nodes_changed = True
            elif isinstance(delta, RemoveNode):
                x = check_node(delta.node)
                for v in sorted(out_map.get(x, ())):
                    del edges[(x, v)]
                    in_map[v].discard(x)
                    dirty.add(v)
                in_edges = sorted(in_map.get(x, ()))
                for u in in_edges:
                    del edges[(u, x)]
                    out_map[u].discard(x)
                if in_edges:
                    dirty.add(x)
                out_map[x] = set()
                in_map[x] = set()
            else:
                raise GraphError(f"unknown delta type: {type(delta).__name__}")

        # Commit: rebuild the frozen snapshot in canonical order.
        keys = sorted(edges)
        if keys:
            sources = np.fromiter((u for u, _ in keys), dtype=np.int64, count=len(keys))
            targets = np.fromiter((v for _, v in keys), dtype=np.int64, count=len(keys))
            matrix = np.stack([edges[key] for key in keys], axis=1)
        else:
            sources = np.empty(0, dtype=np.int64)
            targets = np.empty(0, dtype=np.int64)
            matrix = np.empty((h, 0), dtype=np.float64)
        graph = CSRDiGraph(num_nodes, sources, targets)
        assert graph.num_edges == len(keys)  # canonical order already unique
        self._edges = edges
        self._out_map = out_map
        self._in_map = in_map
        self._num_nodes = num_nodes
        self._graph = graph
        self._probabilities = [matrix[row].copy() for row in range(h)]
        for array in self._probabilities:
            array.setflags(write=False)
        self._epoch += 1
        self._log.extend((self._epoch, delta) for delta in deltas)

        def frozen(nodes: Set[int]) -> np.ndarray:
            if not nodes:
                return _EMPTY_NODES
            array = np.fromiter(sorted(nodes), dtype=np.int64, count=len(nodes))
            array.setflags(write=False)
            return array

        return DeltaEffect(
            epoch=self._epoch,
            num_deltas=len(deltas),
            dirty_nodes=frozen(dirty),
            dirty_nodes_by_advertiser={
                advertiser: frozen(nodes)
                for advertiser, nodes in sorted(dirty_by_advertiser.items())
            },
            num_nodes_changed=nodes_changed,
        )

    def __repr__(self) -> str:
        return (
            f"MutableGraphView(num_nodes={self._num_nodes}, "
            f"num_edges={len(self._edges)}, h={self._num_advertisers}, "
            f"epoch={self._epoch})"
        )
