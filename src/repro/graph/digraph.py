"""Compressed-sparse-row directed graph.

The RR-set generators need fast access to the *in*-neighbourhood of a node
(reverse BFS), while forward Monte-Carlo simulation needs the
*out*-neighbourhood.  :class:`CSRDiGraph` therefore stores both adjacency
directions as CSR arrays built once at construction time.

Edges are identified by their position in the canonical edge arrays
(``sources``, ``targets``), so per-topic and per-advertiser probabilities can
be stored as plain ``float`` arrays of length ``num_edges`` aligned with those
positions.  The in-CSR keeps, for every in-edge, the index of the canonical
edge it mirrors (``in_edge_ids``) so probability lookups during reverse
traversal stay O(1) and vectorisable.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.exceptions import GraphError


class CSRDiGraph:
    """Immutable directed graph in CSR form.

    Parameters
    ----------
    num_nodes:
        Number of nodes; nodes are the integers ``0 .. num_nodes - 1``.
    sources, targets:
        Parallel integer arrays defining the directed edges
        ``sources[k] -> targets[k]``.  Self-loops and exact duplicate edges
        are rejected because the diffusion models assume simple graphs.
    """

    def __init__(self, num_nodes: int, sources: np.ndarray, targets: np.ndarray):
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        if sources.shape != targets.shape or sources.ndim != 1:
            raise GraphError("sources and targets must be 1-D arrays of equal length")
        if sources.size:
            if sources.min(initial=0) < 0 or targets.min(initial=0) < 0:
                raise GraphError("edge endpoints must be non-negative node ids")
            if sources.max(initial=-1) >= num_nodes or targets.max(initial=-1) >= num_nodes:
                raise GraphError("edge endpoint exceeds num_nodes - 1")
            if np.any(sources == targets):
                raise GraphError("self-loops are not supported")
        self._num_nodes = int(num_nodes)
        self._sources, self._targets = self._deduplicate(sources, targets)
        self._build_out_csr()
        self._build_in_csr()
        self._freeze()

    # ------------------------------------------------------------------ #
    # alternate constructors (trusted inputs, no copies)
    # ------------------------------------------------------------------ #
    @classmethod
    def from_sorted_edges(
        cls, num_nodes: int, sources: np.ndarray, targets: np.ndarray
    ) -> "CSRDiGraph":
        """Build a graph from edges already in canonical order — no dedup pass.

        The caller guarantees the edge list is lexicographically sorted by
        ``(source, target)``, duplicate-free, self-loop-free and in range;
        only the cheap O(m) sortedness check runs.  Because canonical order
        equals out-CSR order, the out adjacency is adopted **without a sort
        or a copy** — this is the streamed-builder fast path that keeps
        million-edge construction inside a bounded memory envelope.
        """
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        if sources.shape != targets.shape or sources.ndim != 1:
            raise GraphError("sources and targets must be 1-D arrays of equal length")
        if sources.size:
            order = (sources[:-1] < sources[1:]) | (
                (sources[:-1] == sources[1:]) & (targets[:-1] < targets[1:])
            )
            if not bool(order.all()):
                raise GraphError(
                    "from_sorted_edges requires strictly increasing "
                    "(source, target) pairs; use CSRDiGraph(...) for unsorted edges"
                )
        graph = cls.__new__(cls)
        graph._num_nodes = int(num_nodes)
        graph._sources = sources
        graph._targets = targets
        # Canonical order == out-CSR order: adopt, don't sort.
        graph._out_targets = targets
        graph._out_edge_ids = np.arange(sources.size, dtype=np.int64)
        counts = np.bincount(sources, minlength=num_nodes) if sources.size else np.zeros(
            num_nodes, dtype=np.int64
        )
        graph._out_offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        graph._build_in_csr()
        graph._freeze()
        return graph

    @classmethod
    def from_parts(
        cls,
        num_nodes: int,
        sources: np.ndarray,
        targets: np.ndarray,
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        out_edge_ids: np.ndarray,
        in_offsets: np.ndarray,
        in_sources: np.ndarray,
        in_edge_ids: np.ndarray,
    ) -> "CSRDiGraph":
        """Adopt pre-built CSR arrays verbatim — zero validation, zero copy.

        The reconstruction path of :mod:`repro.graph.storage`: the arrays are
        typically read-only views over one packed shared-memory segment or
        memory-mapped file, so attaching a million-node graph in a worker
        costs microseconds and no RSS.  All arrays are marked read-only.
        """
        graph = cls.__new__(cls)
        graph._num_nodes = int(num_nodes)
        graph._sources = np.asarray(sources, dtype=np.int64)
        graph._targets = np.asarray(targets, dtype=np.int64)
        graph._out_offsets = np.asarray(out_offsets, dtype=np.int64)
        graph._out_targets = np.asarray(out_targets, dtype=np.int64)
        graph._out_edge_ids = np.asarray(out_edge_ids, dtype=np.int64)
        graph._in_offsets = np.asarray(in_offsets, dtype=np.int64)
        graph._in_sources = np.asarray(in_sources, dtype=np.int64)
        graph._in_edge_ids = np.asarray(in_edge_ids, dtype=np.int64)
        graph._freeze()
        return graph

    def _freeze(self) -> None:
        # Every CSR array is read-only for the graph's whole life: workers
        # rebuild views over one shared physical copy, and a writable view
        # anywhere would let one process silently corrupt every other's
        # graph.  Mutation goes through MutableGraphView snapshots instead.
        for array in (
            self._sources,
            self._targets,
            self._out_offsets,
            self._out_targets,
            self._out_edge_ids,
            self._in_offsets,
            self._in_sources,
            self._in_edge_ids,
        ):
            array.setflags(write=False)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _deduplicate(sources: np.ndarray, targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if sources.size == 0:
            return sources.copy(), targets.copy()
        stacked = np.stack([sources, targets], axis=1)
        unique = np.unique(stacked, axis=0)
        return unique[:, 0].copy(), unique[:, 1].copy()

    def _build_out_csr(self) -> None:
        order = np.argsort(self._sources, kind="stable")
        self._out_targets = self._targets[order]
        self._out_edge_ids = order.astype(np.int64)
        counts = np.bincount(self._sources, minlength=self._num_nodes)
        self._out_offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    def _build_in_csr(self) -> None:
        order = np.argsort(self._targets, kind="stable")
        self._in_sources = self._sources[order]
        self._in_edge_ids = order.astype(np.int64)
        counts = np.bincount(self._targets, minlength=self._num_nodes)
        self._in_offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of directed edges in the graph."""
        return int(self._sources.size)

    @property
    def sources(self) -> np.ndarray:
        """Canonical edge source array (read-only view)."""
        view = self._sources.view()
        view.setflags(write=False)
        return view

    @property
    def targets(self) -> np.ndarray:
        """Canonical edge target array (read-only view)."""
        view = self._targets.view()
        view.setflags(write=False)
        return view

    def nodes(self) -> range:
        """Iterate node identifiers ``0 .. num_nodes - 1``."""
        return range(self._num_nodes)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield directed edges as ``(source, target)`` pairs."""
        for u, v in zip(self._sources.tolist(), self._targets.tolist()):
            yield u, v

    # ------------------------------------------------------------------ #
    # adjacency
    # ------------------------------------------------------------------ #
    def out_neighbors(self, node: int) -> np.ndarray:
        """Targets of the out-edges of ``node`` (read-only slice)."""
        self._check_node(node)
        return self._out_targets[self._out_offsets[node]: self._out_offsets[node + 1]]

    def out_edge_ids(self, node: int) -> np.ndarray:
        """Canonical edge ids of the out-edges of ``node``."""
        self._check_node(node)
        return self._out_edge_ids[self._out_offsets[node]: self._out_offsets[node + 1]]

    def in_neighbors(self, node: int) -> np.ndarray:
        """Sources of the in-edges of ``node`` (read-only slice)."""
        self._check_node(node)
        return self._in_sources[self._in_offsets[node]: self._in_offsets[node + 1]]

    def in_edge_ids(self, node: int) -> np.ndarray:
        """Canonical edge ids of the in-edges of ``node``."""
        self._check_node(node)
        return self._in_edge_ids[self._in_offsets[node]: self._in_offsets[node + 1]]

    def out_degree(self, node: int) -> int:
        """Number of out-edges of ``node``."""
        self._check_node(node)
        return int(self._out_offsets[node + 1] - self._out_offsets[node])

    def in_degree(self, node: int) -> int:
        """Number of in-edges of ``node``."""
        self._check_node(node)
        return int(self._in_offsets[node + 1] - self._in_offsets[node])

    def out_degrees(self) -> np.ndarray:
        """Array of out-degrees for every node."""
        return np.diff(self._out_offsets)

    def in_degrees(self) -> np.ndarray:
        """Array of in-degrees for every node."""
        return np.diff(self._in_offsets)

    @property
    def in_offsets(self) -> np.ndarray:
        """CSR offsets of the in-adjacency (length ``num_nodes + 1``)."""
        view = self._in_offsets.view()
        view.setflags(write=False)
        return view

    @property
    def in_sources(self) -> np.ndarray:
        """Concatenated in-neighbour array aligned with :attr:`in_offsets`."""
        view = self._in_sources.view()
        view.setflags(write=False)
        return view

    @property
    def in_edge_id_array(self) -> np.ndarray:
        """Canonical edge ids aligned with :attr:`in_sources`."""
        view = self._in_edge_ids.view()
        view.setflags(write=False)
        return view

    @property
    def out_offsets(self) -> np.ndarray:
        """CSR offsets of the out-adjacency (length ``num_nodes + 1``)."""
        view = self._out_offsets.view()
        view.setflags(write=False)
        return view

    @property
    def out_target_array(self) -> np.ndarray:
        """Concatenated out-neighbour array aligned with :attr:`out_offsets`."""
        view = self._out_targets.view()
        view.setflags(write=False)
        return view

    @property
    def out_edge_id_array(self) -> np.ndarray:
        """Canonical edge ids aligned with :attr:`out_target_array`."""
        view = self._out_edge_ids.view()
        view.setflags(write=False)
        return view

    def in_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The in-adjacency as one ``(offsets, sources, edge_ids)`` triple.

        Hot-path accessor for the RR-set engine: one call hands out all three
        aligned arrays (read-only views) instead of three property lookups.
        """
        return self.in_offsets, self.in_sources, self.in_edge_id_array

    def out_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The out-adjacency as one ``(offsets, targets, edge_ids)`` triple."""
        return self.out_offsets, self.out_target_array, self.out_edge_id_array

    def has_edge(self, source: int, target: int) -> bool:
        """Return True if the directed edge ``source -> target`` exists."""
        self._check_node(source)
        self._check_node(target)
        return bool(np.any(self.out_neighbors(source) == target))

    def reverse(self) -> "CSRDiGraph":
        """Return a new graph with every edge direction flipped."""
        return CSRDiGraph(self._num_nodes, self._targets.copy(), self._sources.copy())

    def subgraph(self, nodes: Iterable[int]) -> "CSRDiGraph":
        """Induced subgraph on ``nodes`` with node ids relabelled ``0..k-1``.

        The relabelling follows the sorted order of the provided nodes.
        """
        node_list = np.unique(np.asarray(list(nodes), dtype=np.int64))
        if node_list.size and (node_list.min() < 0 or node_list.max() >= self._num_nodes):
            raise GraphError("subgraph nodes must be existing node ids")
        relabel = -np.ones(self._num_nodes, dtype=np.int64)
        relabel[node_list] = np.arange(node_list.size)
        keep = (relabel[self._sources] >= 0) & (relabel[self._targets] >= 0)
        return CSRDiGraph(
            int(node_list.size),
            relabel[self._sources[keep]],
            relabel[self._targets[keep]],
        )

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise GraphError(f"node {node} is out of range [0, {self._num_nodes})")

    def __repr__(self) -> str:
        return f"CSRDiGraph(num_nodes={self._num_nodes}, num_edges={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRDiGraph):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and np.array_equal(self._sources, other._sources)
            and np.array_equal(self._targets, other._targets)
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs used as dict keys rarely
        return hash((self._num_nodes, self.num_edges))
