"""Synthetic directed-graph generators.

The paper evaluates on four real networks (Lastfm, Flixster, DBLP,
LiveJournal).  Those datasets are not available offline, so
:mod:`repro.datasets` builds scaled-down synthetic stand-ins from the
generators in this module.  The generators aim for the structural features
that matter to influence propagation: heavy-tailed in/out degree
distributions, local clustering, and a giant weakly-connected component.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import GraphError
from repro.graph.builders import from_edge_array
from repro.graph.digraph import CSRDiGraph
from repro.utils.rng import RandomSource, as_rng


def erdos_renyi_digraph(
    num_nodes: int, edge_probability: float, seed: RandomSource = None
) -> CSRDiGraph:
    """Directed Erdős–Rényi graph: every ordered pair is an edge independently.

    Uses a binomial draw of the edge count followed by rejection of self-loops
    and duplicates, which is O(m) rather than O(n^2) for sparse graphs.
    """
    if num_nodes < 0:
        raise GraphError("num_nodes must be non-negative")
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError("edge_probability must be in [0, 1]")
    rng = as_rng(seed)
    possible = num_nodes * (num_nodes - 1)
    if possible == 0 or edge_probability == 0.0:
        return CSRDiGraph(num_nodes, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    expected = int(rng.binomial(possible, edge_probability))
    sources = rng.integers(0, num_nodes, size=2 * expected + 8)
    targets = rng.integers(0, num_nodes, size=2 * expected + 8)
    keep = sources != targets
    sources, targets = sources[keep][:expected], targets[keep][:expected]
    return from_edge_array(sources, targets, num_nodes=num_nodes)


def preferential_attachment_digraph(
    num_nodes: int,
    out_degree: int,
    seed: RandomSource = None,
    reciprocity: float = 0.3,
) -> CSRDiGraph:
    """Directed preferential-attachment (Bollobás-style) graph.

    Each new node issues ``out_degree`` edges whose targets are chosen
    proportionally to current in-degree + 1, producing a heavy-tailed
    in-degree distribution like real follower networks.  With probability
    ``reciprocity`` the reverse edge is added as well, mimicking mutual
    friendship links (Flixster/LiveJournal are declared-friendship graphs).
    """
    if num_nodes <= 0:
        raise GraphError("num_nodes must be positive")
    if out_degree <= 0:
        raise GraphError("out_degree must be positive")
    if not 0.0 <= reciprocity <= 1.0:
        raise GraphError("reciprocity must be in [0, 1]")
    rng = as_rng(seed)
    sources: list[int] = []
    targets: list[int] = []
    # Repeated-target list implements preferential attachment in O(1) per draw.
    attachment_pool: list[int] = [0]
    for node in range(1, num_nodes):
        degree = min(out_degree, node)
        chosen: set[int] = set()
        attempts = 0
        while len(chosen) < degree and attempts < 20 * degree:
            attempts += 1
            pick = attachment_pool[rng.integers(0, len(attachment_pool))]
            if pick != node:
                chosen.add(int(pick))
        for target in chosen:
            sources.append(node)
            targets.append(target)
            attachment_pool.append(target)
            if rng.random() < reciprocity:
                sources.append(target)
                targets.append(node)
                attachment_pool.append(node)
        attachment_pool.append(node)
    return from_edge_array(
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        num_nodes=num_nodes,
    )


def small_world_digraph(
    num_nodes: int,
    nearest_neighbors: int,
    rewire_probability: float,
    seed: RandomSource = None,
) -> CSRDiGraph:
    """Directed Watts–Strogatz small-world graph (ring lattice + rewiring).

    Used for the collaboration-network stand-in (DBLP) where clustering is
    high and the degree distribution is comparatively flat.
    """
    if num_nodes <= 0:
        raise GraphError("num_nodes must be positive")
    if nearest_neighbors <= 0 or nearest_neighbors >= num_nodes:
        raise GraphError("nearest_neighbors must be in [1, num_nodes - 1]")
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError("rewire_probability must be in [0, 1]")
    rng = as_rng(seed)
    sources: list[int] = []
    targets: list[int] = []
    half = max(1, nearest_neighbors // 2)
    for node in range(num_nodes):
        for offset in range(1, half + 1):
            neighbor = (node + offset) % num_nodes
            if rng.random() < rewire_probability:
                neighbor = int(rng.integers(0, num_nodes))
                while neighbor == node:
                    neighbor = int(rng.integers(0, num_nodes))
            sources.extend([node, neighbor])
            targets.extend([neighbor, node])
    return from_edge_array(
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        num_nodes=num_nodes,
    )


def power_law_configuration_digraph(
    num_nodes: int,
    exponent: float = 2.1,
    mean_degree: float = 10.0,
    max_degree: Optional[int] = None,
    seed: RandomSource = None,
) -> CSRDiGraph:
    """Configuration-model digraph with power-law out-degrees.

    Out-degrees are drawn from a discrete power law with the given exponent
    and rescaled to hit ``mean_degree`` on average; targets are sampled with
    probability proportional to a second, independent power-law weight so the
    in-degree distribution is heavy-tailed as well.  This is the workhorse for
    the Flixster/LiveJournal-like stand-ins.
    """
    if num_nodes <= 0:
        raise GraphError("num_nodes must be positive")
    if exponent <= 1.0:
        raise GraphError("exponent must exceed 1")
    if mean_degree <= 0:
        raise GraphError("mean_degree must be positive")
    rng = as_rng(seed)
    max_degree = max_degree or max(2, num_nodes // 10)
    # Draw raw power-law samples via inverse transform on a truncated Pareto.
    uniform = rng.random(num_nodes)
    raw = (1.0 - uniform * (1.0 - max_degree ** (1.0 - exponent))) ** (1.0 / (1.0 - exponent))
    out_degrees = np.clip(raw, 1, max_degree)
    out_degrees = out_degrees * (mean_degree / out_degrees.mean())
    out_degrees = np.maximum(1, np.round(out_degrees)).astype(np.int64)
    out_degrees = np.minimum(out_degrees, num_nodes - 1)

    popularity = rng.pareto(exponent - 1.0, size=num_nodes) + 1.0
    popularity = popularity / popularity.sum()

    total_edges = int(out_degrees.sum())
    sources = np.repeat(np.arange(num_nodes, dtype=np.int64), out_degrees)
    targets = rng.choice(num_nodes, size=total_edges, p=popularity)
    keep = sources != targets
    return from_edge_array(sources[keep], targets[keep], num_nodes=num_nodes)


def snap_scale_digraph(
    num_nodes: int,
    exponent: float = 2.1,
    mean_degree: float = 12.0,
    max_degree: Optional[int] = None,
    chunk_nodes: int = 1 << 16,
    seed: RandomSource = None,
) -> CSRDiGraph:
    """Streamed heavy-tailed digraph for million-node scalability runs.

    Same degree recipe as :func:`power_law_configuration_digraph` (truncated-
    Pareto out-degrees rescaled to ``mean_degree``, Pareto-weighted targets so
    in-degrees are heavy-tailed too), but engineered for SNAP-scale sizes:

    * construction is **chunked** over ``chunk_nodes`` consecutive sources —
      working arrays are bounded by the chunk's edge count, never the graph's;
    * per-chunk self-loop removal and duplicate-edge dedup happen on packed
      ``source * n + target`` keys, and because chunks cover ascending source
      ranges, the concatenated edge list is already globally sorted — the
      graph is adopted through :meth:`CSRDiGraph.from_sorted_edges`, skipping
      the O(m log m) edge argsort of the generic builder entirely;
    * target draws invert one precomputed cumulative popularity table
      (``searchsorted``), so each chunk costs O(edges · log n) with no
      per-chunk table rebuilds.

    The peak transient footprint is ~2× the final edge arrays (the chunk list
    plus its single concatenation) + the in-CSR build, which is what lets a
    1M-node / 10M+-edge graph materialise in bounded memory.
    """
    if num_nodes < 0:
        raise GraphError("num_nodes must be non-negative")
    if exponent <= 1.0:
        raise GraphError("exponent must exceed 1")
    if mean_degree <= 0:
        raise GraphError("mean_degree must be positive")
    if chunk_nodes <= 0:
        raise GraphError("chunk_nodes must be positive")
    rng = as_rng(seed)
    if num_nodes <= 1:
        return CSRDiGraph(
            num_nodes, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
    max_degree = max_degree or max(2, int(round(num_nodes ** 0.5)))
    uniform = rng.random(num_nodes)
    raw = (1.0 - uniform * (1.0 - max_degree ** (1.0 - exponent))) ** (
        1.0 / (1.0 - exponent)
    )
    out_degrees = np.clip(raw, 1.0, max_degree)
    out_degrees *= mean_degree / out_degrees.mean()
    out_degrees = np.maximum(1, np.round(out_degrees)).astype(np.int64)
    out_degrees = np.minimum(out_degrees, num_nodes - 1)

    popularity = rng.pareto(exponent - 1.0, size=num_nodes) + 1.0
    cumulative = np.cumsum(popularity)
    cumulative /= cumulative[-1]

    source_chunks: list[np.ndarray] = []
    target_chunks: list[np.ndarray] = []
    for lo in range(0, num_nodes, chunk_nodes):
        hi = min(lo + chunk_nodes, num_nodes)
        degrees = out_degrees[lo:hi]
        count = int(degrees.sum())
        chunk_sources = np.repeat(np.arange(lo, hi, dtype=np.int64), degrees)
        chunk_targets = cumulative.searchsorted(
            rng.random(count), side="right"
        ).astype(np.int64)
        np.minimum(chunk_targets, num_nodes - 1, out=chunk_targets)
        # Packed keys sort + dedup the chunk in one pass; ascending-source
        # chunks keep the concatenation globally sorted.
        keys = np.unique(chunk_sources * np.int64(num_nodes) + chunk_targets)
        chunk_sources, chunk_targets = (
            keys // num_nodes,
            keys % num_nodes,
        )
        keep = chunk_sources != chunk_targets
        source_chunks.append(chunk_sources[keep])
        target_chunks.append(chunk_targets[keep])
    sources = np.concatenate(source_chunks)
    targets = np.concatenate(target_chunks)
    del source_chunks, target_chunks
    return CSRDiGraph.from_sorted_edges(num_nodes, sources, targets)
