"""Plain-text edge-list input/output.

The format is the SNAP-style whitespace-separated ``source target`` per line,
with ``#``-prefixed comment lines, which is how the paper's datasets (DBLP,
LiveJournal) are distributed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.exceptions import GraphError
from repro.graph.builders import from_edge_list
from repro.graph.digraph import CSRDiGraph

PathLike = Union[str, Path]


def read_edge_list(path: PathLike, undirected: bool = False) -> CSRDiGraph:
    """Read a whitespace-separated edge list file into a graph.

    Lines starting with ``#`` are treated as comments.  Node ids must be
    non-negative integers; they are used verbatim (no relabelling), matching
    SNAP conventions.
    """
    edges = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{line_number}: expected 'source target', got {line!r}")
            try:
                source, target = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{line_number}: endpoints must be integers, got {line!r}"
                ) from exc
            if source == target:
                continue
            edges.append((source, target))
    return from_edge_list(edges, undirected=undirected)


def write_edge_list(graph: CSRDiGraph, path: PathLike, header: str = "") -> None:
    """Write ``graph`` as a whitespace-separated edge list.

    ``header`` (if non-empty) is emitted as a ``#`` comment on the first line.
    """
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# {header}\n")
        handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for source, target in graph.edges():
            handle.write(f"{source}\t{target}\n")
