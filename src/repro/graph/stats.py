"""Structural statistics used by the Table 1 reproduction and dataset sanity checks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import CSRDiGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a directed graph."""

    num_nodes: int
    num_edges: int
    mean_out_degree: float
    max_out_degree: int
    max_in_degree: int
    reciprocity: float
    fraction_isolated: float
    largest_wcc_fraction: float

    def as_row(self) -> dict:
        """Return the statistics as a plain dict for tabular reporting."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "mean_out_degree": round(self.mean_out_degree, 3),
            "max_out_degree": self.max_out_degree,
            "max_in_degree": self.max_in_degree,
            "reciprocity": round(self.reciprocity, 3),
            "fraction_isolated": round(self.fraction_isolated, 3),
            "largest_wcc_fraction": round(self.largest_wcc_fraction, 3),
        }


def _largest_wcc_fraction(graph: CSRDiGraph) -> float:
    """Fraction of nodes in the largest weakly-connected component (union-find)."""
    if graph.num_nodes == 0:
        return 0.0
    parent = np.arange(graph.num_nodes, dtype=np.int64)

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    for u, v in zip(graph.sources.tolist(), graph.targets.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    roots = np.array([find(int(node)) for node in range(graph.num_nodes)])
    _, counts = np.unique(roots, return_counts=True)
    return float(counts.max()) / graph.num_nodes


def _reciprocity(graph: CSRDiGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    if graph.num_edges == 0:
        return 0.0
    forward = set(zip(graph.sources.tolist(), graph.targets.tolist()))
    mutual = sum(1 for u, v in forward if (v, u) in forward)
    return mutual / len(forward)


def compute_stats(graph: CSRDiGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    out_degrees = graph.out_degrees()
    in_degrees = graph.in_degrees()
    num_nodes = graph.num_nodes
    isolated = int(np.sum((out_degrees == 0) & (in_degrees == 0))) if num_nodes else 0
    return GraphStats(
        num_nodes=num_nodes,
        num_edges=graph.num_edges,
        mean_out_degree=float(out_degrees.mean()) if num_nodes else 0.0,
        max_out_degree=int(out_degrees.max()) if num_nodes else 0,
        max_in_degree=int(in_degrees.max()) if num_nodes else 0,
        reciprocity=_reciprocity(graph),
        fraction_isolated=(isolated / num_nodes) if num_nodes else 0.0,
        largest_wcc_fraction=_largest_wcc_fraction(graph),
    )
