"""Zero-copy frozen-graph storage: one packed buffer, many cheap views.

A :class:`CSRDiGraph` plus its per-advertiser probability arrays is, at
bottom, a handful of flat numpy arrays.  This module freezes that bundle
into **one contiguous buffer with a versioned header** describing every
array (name, dtype, shape, byte offset), so the same bytes can live

* in a ``multiprocessing.shared_memory.SharedMemory`` segment — one
  physical copy backing every worker process with zero serialization and
  zero added RSS per process (the executor's ``payload="shm"`` path), or
* in an ordinary file opened with ``np.memmap`` — million-node graphs that
  never fully enter the heap (the out-of-core path).

Reconstruction is **zero-copy**: :func:`unpack_arrays` hands back read-only
``np.ndarray`` views over the buffer, and :func:`graph_from_arrays` rebuilds
a fully functional :class:`CSRDiGraph` from those views without re-sorting,
re-validating or copying anything (:meth:`CSRDiGraph.from_parts`).

Header format (version 1)
-------------------------
The header is UTF-8 JSON — small, versioned, and forward-inspectable::

    {"magic": "repro-csr", "version": 1, "total_bytes": N,
     "arrays": [{"name": "...", "dtype": "<i8", "shape": [...],
                 "offset": k}, ...],
     "meta": {...}}                      # e.g. num_nodes, num_probs

Array payloads are 64-byte aligned so reconstructed views stay friendly to
vectorised kernels.  The on-disk file format prepends ``MAGIC`` + a little-
endian ``uint64`` header length to the same JSON header, then the packed
buffer at its natural alignment.

Nothing here coordinates: the payload is read-only by construction (every
view has ``writeable=False``), which is what makes one physical copy safe
to share across any number of workers.
"""

from __future__ import annotations

import json
import os
import secrets
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graph.digraph import CSRDiGraph

#: Header magic + supported version.
MAGIC = "repro-csr"
VERSION = 1

#: On-disk file preamble: magic bytes + little-endian uint64 header length.
FILE_MAGIC = b"RPROCSR1"

#: Byte alignment of every packed array.
ALIGNMENT = 64

#: Prefix of every shared-memory segment this library creates.  Lifecycle
#: tests (and operators) probe ``/dev/shm`` for this prefix to assert no
#: segment outlives its owning pool.
SHM_NAME_PREFIX = "repro_shm_"

#: The canonical array names of a frozen :class:`CSRDiGraph`, in pack order.
GRAPH_ARRAY_NAMES = (
    "sources",
    "targets",
    "out_offsets",
    "out_targets",
    "out_edge_ids",
    "in_offsets",
    "in_sources",
    "in_edge_ids",
)


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


# ---------------------------------------------------------------------- #
# generic named-array packing
# ---------------------------------------------------------------------- #
def pack_layout(
    arrays: Mapping[str, np.ndarray], meta: Optional[Dict[str, Any]] = None
) -> Tuple[Dict[str, Any], int]:
    """Compute the version-1 header and total byte size for ``arrays``.

    Order is the mapping's iteration order; every array must have a simple
    (non-object) dtype.  ``meta`` is carried verbatim in the header.
    """
    entries: List[Dict[str, Any]] = []
    offset = 0
    for name, array in arrays.items():
        array = np.asarray(array)
        if array.dtype.hasobject:
            raise GraphError(f"array {name!r} has an object dtype; cannot pack")
        offset = _align(offset)
        entries.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        offset += array.nbytes
    header = {
        "magic": MAGIC,
        "version": VERSION,
        "total_bytes": offset,
        "arrays": entries,
        "meta": dict(meta or {}),
    }
    return header, offset


def pack_arrays(
    buffer, header: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
) -> None:
    """Copy every array into ``buffer`` at its header offset (the one copy)."""
    view = memoryview(buffer)
    for entry in header["arrays"]:
        source = np.ascontiguousarray(arrays[entry["name"]])
        nbytes = source.nbytes
        if nbytes:
            destination = np.frombuffer(
                view, dtype=np.uint8, count=nbytes, offset=entry["offset"]
            )
            destination[:] = source.view(np.uint8).reshape(-1)


def unpack_arrays(buffer, header: Mapping[str, Any]) -> Dict[str, np.ndarray]:
    """Read-only zero-copy views over ``buffer``, one per header entry."""
    if header.get("magic") != MAGIC:
        raise GraphError(f"not a {MAGIC} buffer (magic={header.get('magic')!r})")
    if header.get("version") != VERSION:
        raise GraphError(
            f"unsupported {MAGIC} header version {header.get('version')!r} "
            f"(this build reads version {VERSION})"
        )
    views: Dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        count = int(np.prod(shape)) if shape else 1
        view = np.frombuffer(
            buffer, dtype=dtype, count=count, offset=entry["offset"]
        ).reshape(shape)
        view.setflags(write=False)
        views[entry["name"]] = view
    return views


def header_to_bytes(header: Mapping[str, Any]) -> bytes:
    """Serialize a header to compact UTF-8 JSON bytes."""
    return json.dumps(header, separators=(",", ":")).encode("utf-8")


def header_from_bytes(data: bytes) -> Dict[str, Any]:
    """Parse header bytes, validating magic and version."""
    try:
        header = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GraphError(f"malformed {MAGIC} header: {exc}") from exc
    if header.get("magic") != MAGIC:
        raise GraphError(f"not a {MAGIC} header (magic={header.get('magic')!r})")
    if header.get("version") != VERSION:
        raise GraphError(
            f"unsupported {MAGIC} header version {header.get('version')!r} "
            f"(this build reads version {VERSION})"
        )
    return header


# ---------------------------------------------------------------------- #
# graph <-> named arrays
# ---------------------------------------------------------------------- #
def graph_arrays(graph: CSRDiGraph) -> Dict[str, np.ndarray]:
    """The eight CSR arrays of ``graph`` under their canonical pack names."""
    out_offsets, out_targets, out_edge_ids = graph.out_csr()
    in_offsets, in_sources, in_edge_ids = graph.in_csr()
    return {
        "sources": graph.sources,
        "targets": graph.targets,
        "out_offsets": out_offsets,
        "out_targets": out_targets,
        "out_edge_ids": out_edge_ids,
        "in_offsets": in_offsets,
        "in_sources": in_sources,
        "in_edge_ids": in_edge_ids,
    }


def graph_from_arrays(num_nodes: int, arrays: Mapping[str, np.ndarray]) -> CSRDiGraph:
    """Rebuild a :class:`CSRDiGraph` from packed views — no copy, no sort."""
    return CSRDiGraph.from_parts(
        num_nodes, **{name: arrays[name] for name in GRAPH_ARRAY_NAMES}
    )


def freeze_payload(
    graph: CSRDiGraph,
    probability_arrays: Sequence[np.ndarray] = (),
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Header + named arrays for a graph-and-probabilities bundle.

    Probability arrays pack under ``probs.<i>``; the header's ``meta`` block
    records ``num_nodes`` and ``num_probs`` so :func:`thaw_payload` can
    reassemble the bundle from the header alone.
    """
    arrays = dict(graph_arrays(graph))
    for index, probabilities in enumerate(probability_arrays):
        arrays[f"probs.{index}"] = np.asarray(probabilities, dtype=np.float64)
    header, _ = pack_layout(
        arrays,
        meta={"num_nodes": graph.num_nodes, "num_probs": len(probability_arrays)},
    )
    return header, arrays


def thaw_payload(buffer, header: Mapping[str, Any]) -> Tuple[CSRDiGraph, List[np.ndarray]]:
    """Rebuild ``(graph, probability_arrays)`` from a packed buffer."""
    views = unpack_arrays(buffer, header)
    meta = header["meta"]
    graph = graph_from_arrays(int(meta["num_nodes"]), views)
    probs = [views[f"probs.{index}"] for index in range(int(meta["num_probs"]))]
    return graph, probs


# ---------------------------------------------------------------------- #
# shared-memory materialization
# ---------------------------------------------------------------------- #
def new_segment_name() -> str:
    """A collision-resistant segment name under :data:`SHM_NAME_PREFIX`."""
    return f"{SHM_NAME_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"


class SharedGraphSegment:
    """A packed payload living in a ``SharedMemory`` segment (parent side).

    The creating process owns the lifecycle: :meth:`unlink` removes the
    segment name from the OS (workers that already attached keep their
    mappings until they close).  Workers attach with :func:`attach_segment`.
    """

    def __init__(self, segment, header: Dict[str, Any]):
        self._segment = segment
        self.header = header
        self.header_bytes = header_to_bytes(header)

    @property
    def name(self) -> str:
        """The OS-level segment name (``/dev/shm/<name>`` on Linux)."""
        return self._segment.name

    @property
    def nbytes(self) -> int:
        """Packed payload size in bytes (excluding the header)."""
        return int(self.header["total_bytes"])

    def views(self) -> Dict[str, np.ndarray]:
        """Read-only views over the live segment (parent-side convenience)."""
        return unpack_arrays(self._segment.buf, self.header)

    def close(self) -> None:
        """Unmap this process's view (the segment itself survives)."""
        try:
            self._segment.close()
        except (BufferError, OSError):  # pragma: no cover - platform specific
            pass

    def unlink(self) -> None:
        """Remove the segment from the OS; safe to call more than once."""
        self.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass


def pack_to_shm(
    arrays: Mapping[str, np.ndarray],
    meta: Optional[Dict[str, Any]] = None,
    name: Optional[str] = None,
) -> SharedGraphSegment:
    """Pack named arrays into a fresh shared-memory segment (one copy)."""
    from multiprocessing import shared_memory

    header, total = pack_layout(arrays, meta=meta)
    segment = shared_memory.SharedMemory(
        name=name or new_segment_name(), create=True, size=max(1, total)
    )
    pack_arrays(segment.buf, header, arrays)
    return SharedGraphSegment(segment, header)


def freeze_to_shm(
    graph: CSRDiGraph, probability_arrays: Sequence[np.ndarray] = ()
) -> SharedGraphSegment:
    """Freeze ``graph`` + probabilities into a shared-memory segment."""
    header, arrays = freeze_payload(graph, probability_arrays)
    return pack_to_shm(arrays, meta=header["meta"])


def attach_segment(name: str):
    """Attach an existing segment by name, resource-tracker-safe.

    Within a ``multiprocessing`` tree every process — fork *and* spawn —
    inherits the parent's ``resource_tracker`` fd, so the attach-side
    registration is an idempotent no-op on the shared tracker's name set
    and the creating process's :meth:`SharedGraphSegment.unlink` performs
    the single unregister.  (Unregistering here would strip the parent's
    registration, defeating crash cleanup and making the eventual unlink
    noisy.)  Returns the ``SharedMemory`` object (caller closes it when
    done and must keep it referenced while any view over it is alive).
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def attach_views(name: str, header_bytes: bytes):
    """Attach a segment and rebuild its read-only views.

    Returns ``(segment, views)``; the caller keeps ``segment`` alive for as
    long as any view is in use and closes it afterwards.
    """
    header = header_from_bytes(header_bytes)
    segment = attach_segment(name)
    return segment, unpack_arrays(segment.buf, header)


def segment_exists(name: str) -> bool:
    """Whether a segment of that name is currently linked in the OS.

    Probes ``/dev/shm`` by path where available (Linux) — attaching just to
    probe would register the name with *this* process's resource tracker,
    which is wrong when probing a segment owned by a foreign process tree
    (the tracker would unlink it on our exit).  The non-Linux fallback
    attaches and immediately withdraws the registration for that reason.
    """
    if os.path.isdir("/dev/shm"):
        return os.path.exists(os.path.join("/dev/shm", name))
    from multiprocessing import shared_memory  # pragma: no cover - non-Linux

    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(probe._name, "shared_memory")
    except Exception:
        pass
    probe.close()
    return True


def active_segments() -> List[str]:
    """Names of live ``repro`` shared-memory segments on this host.

    Linux-only (reads ``/dev/shm``); returns ``[]`` elsewhere.  The leak
    tests assert this is empty after every pool close / drain / crash path.
    """
    try:
        entries = os.listdir("/dev/shm")
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return []
    return sorted(entry for entry in entries if entry.startswith(SHM_NAME_PREFIX))


# ---------------------------------------------------------------------- #
# on-disk materialization (np.memmap)
# ---------------------------------------------------------------------- #
def save_frozen(
    path,
    graph: CSRDiGraph,
    probability_arrays: Sequence[np.ndarray] = (),
) -> None:
    """Write a frozen graph bundle to ``path`` (atomic via rename).

    Layout: ``FILE_MAGIC`` + uint64 header length + header JSON + padding to
    :data:`ALIGNMENT` + the packed buffer.  The data region starts aligned,
    so :func:`load_frozen` can hand out ``np.memmap`` views directly.
    """
    header, arrays = freeze_payload(graph, probability_arrays)
    header_bytes = header_to_bytes(header)
    preamble = len(FILE_MAGIC) + 8 + len(header_bytes)
    data_start = _align(preamble)
    header["meta"]["data_start"] = data_start
    header_bytes = header_to_bytes(header)
    # Re-aligning after embedding data_start can grow the header past the
    # padding; recompute until stable (at most twice — the length only grows).
    while _align(len(FILE_MAGIC) + 8 + len(header_bytes)) != data_start:
        data_start = _align(len(FILE_MAGIC) + 8 + len(header_bytes))
        header["meta"]["data_start"] = data_start
        header_bytes = header_to_bytes(header)
    tmp_path = str(path) + ".tmp"
    with open(tmp_path, "w+b") as handle:
        handle.write(FILE_MAGIC)
        handle.write(len(header_bytes).to_bytes(8, "little"))
        handle.write(header_bytes)
        handle.write(b"\0" * (data_start - len(FILE_MAGIC) - 8 - len(header_bytes)))
        handle.truncate(data_start + max(1, int(header["total_bytes"])))
        handle.flush()
        buffer = np.memmap(
            handle, dtype=np.uint8, mode="r+", offset=data_start,
            shape=(max(1, int(header["total_bytes"])),),
        )
        pack_arrays(buffer, header, arrays)
        buffer.flush()
        del buffer
    os.replace(tmp_path, path)


def load_frozen(path, mmap: bool = True) -> Tuple[CSRDiGraph, List[np.ndarray]]:
    """Load a frozen graph bundle written by :func:`save_frozen`.

    ``mmap=True`` (the default) memory-maps the data region read-only — the
    graph's arrays are demand-paged from disk and never duplicated in the
    heap, which is what lets million-node graphs run in bounded memory.
    ``mmap=False`` reads the buffer into the heap instead.
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(FILE_MAGIC))
        if magic != FILE_MAGIC:
            raise GraphError(f"{path}: not a frozen-graph file (bad magic)")
        header_len = int.from_bytes(handle.read(8), "little")
        header = header_from_bytes(handle.read(header_len))
        data_start = int(header["meta"]["data_start"])
        if mmap:
            buffer = np.memmap(
                handle, dtype=np.uint8, mode="r", offset=data_start,
                shape=(max(1, int(header["total_bytes"])),),
            )
        else:
            handle.seek(data_start)
            buffer = np.frombuffer(
                handle.read(int(header["total_bytes"])), dtype=np.uint8
            )
    return thaw_payload(buffer, header)
