"""Seed incentive (node seeding cost) models from Section 5.1 of the paper."""

from repro.incentives.models import (
    IncentiveModel,
    LinearIncentiveModel,
    QuasiLinearIncentiveModel,
    SuperLinearIncentiveModel,
    ConstantIncentiveModel,
    DegreeIncentiveModel,
    incentive_model_by_name,
)
from repro.incentives.singleton import estimate_singleton_spreads

__all__ = [
    "IncentiveModel",
    "LinearIncentiveModel",
    "QuasiLinearIncentiveModel",
    "SuperLinearIncentiveModel",
    "ConstantIncentiveModel",
    "DegreeIncentiveModel",
    "incentive_model_by_name",
    "estimate_singleton_spreads",
]
