"""Seed incentive models.

The paper's experiments price node ``u`` for advertiser ``i`` as a function of
the node's singleton influence spread ``σ_i({u})`` scaled by a constant
``α`` (Section 5.1):

* Linear:      ``c_i(u) = α · σ_i({u})``
* QuasiLinear: ``c_i(u) = α · σ_i({u}) · ln(σ_i({u}))``
* SuperLinear: ``c_i(u) = α · σ_i({u})²``

Two extra models are provided for tests and examples: a constant cost and a
follower-count (out-degree) proportional cost, the simple pricing strategy
mentioned in Section 2.1's discussion.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Type

import numpy as np

from repro.exceptions import ProblemDefinitionError
from repro.utils.validation import check_non_negative, check_positive


class IncentiveModel(ABC):
    """Maps per-node singleton spreads to seeding costs for one advertiser."""

    #: short name used by the experiment configs ("linear", "quasilinear", ...)
    name: str = "abstract"

    def __init__(self, alpha: float = 0.1, min_cost: float = 1e-6):
        self.alpha = check_positive("alpha", alpha)
        self.min_cost = check_non_negative("min_cost", min_cost)

    @abstractmethod
    def _raw_costs(self, singleton_spreads: np.ndarray) -> np.ndarray:
        """Model-specific cost before the minimum-cost clamp."""

    def costs(self, singleton_spreads: np.ndarray) -> np.ndarray:
        """Seeding cost of every node given its singleton spread.

        Costs are clamped below by ``min_cost`` so that every node has a
        strictly positive price, as the problem definition requires.
        """
        spreads = np.asarray(singleton_spreads, dtype=np.float64)
        if spreads.ndim != 1:
            raise ProblemDefinitionError("singleton_spreads must be a 1-D array")
        if np.any(spreads < 0) or np.any(~np.isfinite(spreads)):
            raise ProblemDefinitionError("singleton spreads must be finite and non-negative")
        raw = self._raw_costs(spreads)
        return np.maximum(raw, self.min_cost)

    def cost_of(self, singleton_spread: float) -> float:
        """Cost of a single node given its singleton spread."""
        return float(self.costs(np.array([singleton_spread]))[0])

    def __repr__(self) -> str:
        return f"{type(self).__name__}(alpha={self.alpha})"


class LinearIncentiveModel(IncentiveModel):
    """``c(u) = α · σ({u})``."""

    name = "linear"

    def _raw_costs(self, singleton_spreads: np.ndarray) -> np.ndarray:
        return self.alpha * singleton_spreads


class QuasiLinearIncentiveModel(IncentiveModel):
    """``c(u) = α · σ({u}) · ln(σ({u}))`` (natural log, clamped at zero)."""

    name = "quasilinear"

    def _raw_costs(self, singleton_spreads: np.ndarray) -> np.ndarray:
        safe = np.maximum(singleton_spreads, 1.0)
        return self.alpha * singleton_spreads * np.log(safe)


class SuperLinearIncentiveModel(IncentiveModel):
    """``c(u) = α · σ({u})²``."""

    name = "superlinear"

    def _raw_costs(self, singleton_spreads: np.ndarray) -> np.ndarray:
        return self.alpha * np.square(singleton_spreads)


class ConstantIncentiveModel(IncentiveModel):
    """Every node costs exactly ``alpha`` regardless of its influence."""

    name = "constant"

    def _raw_costs(self, singleton_spreads: np.ndarray) -> np.ndarray:
        return np.full_like(singleton_spreads, self.alpha)


class DegreeIncentiveModel(IncentiveModel):
    """``c(u) = α · (out_degree(u) + 1)`` — the follower-count pricing strategy.

    The "singleton spread" argument of :meth:`costs` is interpreted as the
    node's follower count (out-degree) for this model.
    """

    name = "degree"

    def _raw_costs(self, singleton_spreads: np.ndarray) -> np.ndarray:
        return self.alpha * (singleton_spreads + 1.0)


_REGISTRY: Dict[str, Type[IncentiveModel]] = {
    LinearIncentiveModel.name: LinearIncentiveModel,
    QuasiLinearIncentiveModel.name: QuasiLinearIncentiveModel,
    SuperLinearIncentiveModel.name: SuperLinearIncentiveModel,
    ConstantIncentiveModel.name: ConstantIncentiveModel,
    DegreeIncentiveModel.name: DegreeIncentiveModel,
}


def incentive_model_by_name(name: str, alpha: float = 0.1, min_cost: float = 1e-6) -> IncentiveModel:
    """Instantiate an incentive model from its short name.

    Recognised names: ``linear``, ``quasilinear``, ``superlinear``,
    ``constant``, ``degree``.
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise ProblemDefinitionError(
            f"unknown incentive model {name!r}; expected one of {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](alpha=alpha, min_cost=min_cost)
