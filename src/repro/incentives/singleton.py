"""Singleton-spread estimation used to price seed nodes.

Seeding costs are functions of ``σ_i({u})``.  Running full Monte-Carlo for
every node and advertiser is wasteful, so this module estimates singleton
spreads from RR-sets: the number of RR-sets (generated under advertiser
``i``'s probabilities) containing ``u`` divided by the pool size, scaled by
``n``, is an unbiased estimate of ``σ_i({u})`` — the standard single-node
special case of the Borgs et al. estimator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.digraph import CSRDiGraph
from repro.rrsets.estimators import coverage_counts_by_node
from repro.rrsets.generator import RRSetGenerator
from repro.utils.rng import RandomSource, as_rng


def estimate_singleton_spreads(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    num_rr_sets: int = 2000,
    rng: RandomSource = None,
    generator: Optional[RRSetGenerator] = None,
) -> np.ndarray:
    """Estimate ``σ({u})`` for every node ``u`` from an RR-set pool.

    Parameters
    ----------
    graph:
        Social graph.
    edge_probabilities:
        Edge probabilities of the advertiser the spreads are estimated for.
    num_rr_sets:
        Pool size; the estimates have standard deviation ``O(n / sqrt(num_rr_sets))``
        per node, which is ample for pricing purposes.
    generator:
        Pre-built RR-set generator to reuse (the default builds a fresh one).

    Returns
    -------
    numpy.ndarray
        Array of length ``num_nodes`` with ``σ({u})`` estimates, each at
        least 1 (a seed always activates itself).
    """
    if num_rr_sets <= 0:
        raise SamplingError("num_rr_sets must be positive")
    rng = as_rng(rng)
    if generator is None:
        generator = RRSetGenerator(graph, edge_probabilities)
    rr_sets = generator.generate_many(num_rr_sets, rng)
    counts = coverage_counts_by_node(rr_sets, graph.num_nodes)
    estimates = graph.num_nodes * counts.astype(np.float64) / num_rr_sets
    return np.maximum(estimates, 1.0)
