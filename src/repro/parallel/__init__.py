"""Sharded multiprocess execution for the sampling pipeline.

One ``n_jobs`` knob fans the two embarrassingly parallel stages — RR-set
generation and Monte-Carlo spread estimation — out across a
:mod:`multiprocessing` worker pool:

* :class:`ShardedExecutor` owns the pool mechanics (fork-inherited /
  pickled-once payloads, shard-order result merge, the ``REPRO_MAX_JOBS``
  process cap) and the supervision loop that survives worker loss;
* :class:`FailurePolicy` / :class:`RecoveryStats` describe and count the
  fault-tolerance behaviour (timeouts, deterministic shard retry, graceful
  serial degradation);
* :mod:`repro.parallel.faults` is the test-driven fault-injection harness
  that proves recovered runs stay bit-identical;
* :mod:`repro.parallel.rr` shards RR-set generation (plain batches and the
  advertiser-tagged uniform sampler);
* :mod:`repro.parallel.mc` shards batched Monte-Carlo spread estimation.

Each shard draws from its own :func:`repro.utils.rng.spawn_rngs` substream
and results merge by shard position, so a fixed ``(seed, n_jobs)`` pair is
bit-reproducible — even across worker crashes and retries — and ``n_jobs=1``
falls back to the untouched in-process engines.  See the "Parallel execution
& RNG sharding" and "Fault tolerance & recovery" sections of
``docs/architecture.md``.
"""

from repro.parallel.executor import (
    MAX_JOBS_ENV,
    START_METHOD_ENV,
    PersistentPool,
    ShardedExecutor,
    current_worker_cache,
    resolve_n_jobs,
    shard_counts,
    validate_n_jobs,
    worker_process_cap,
)
from repro.parallel.failure import (
    DEFAULT_FAILURE_POLICY,
    FailurePolicy,
    RecoveryStats,
)
from repro.parallel.faults import FaultInjector

__all__ = [
    "DEFAULT_FAILURE_POLICY",
    "FailurePolicy",
    "FaultInjector",
    "MAX_JOBS_ENV",
    "PersistentPool",
    "RecoveryStats",
    "ShardedExecutor",
    "START_METHOD_ENV",
    "current_worker_cache",
    "resolve_n_jobs",
    "shard_counts",
    "validate_n_jobs",
    "worker_process_cap",
]
