"""Sharded multiprocess execution for the sampling pipeline.

One ``n_jobs`` knob fans the two embarrassingly parallel stages — RR-set
generation and Monte-Carlo spread estimation — out across a
:mod:`multiprocessing` worker pool:

* :class:`ShardedExecutor` owns the pool mechanics (fork-inherited /
  pickled-once payloads, shard-order result merge, the ``REPRO_MAX_JOBS``
  process cap);
* :mod:`repro.parallel.rr` shards RR-set generation (plain batches and the
  advertiser-tagged uniform sampler);
* :mod:`repro.parallel.mc` shards batched Monte-Carlo spread estimation.

Each shard draws from its own :func:`repro.utils.rng.spawn_rngs` substream
and shards merge in worker-index order, so a fixed ``(seed, n_jobs)`` pair is
bit-reproducible and ``n_jobs=1`` falls back to the untouched in-process
engines.  See the "Parallel execution & RNG sharding" section of
``docs/architecture.md``.
"""

from repro.parallel.executor import (
    MAX_JOBS_ENV,
    PersistentPool,
    ShardedExecutor,
    resolve_n_jobs,
    shard_counts,
    validate_n_jobs,
    worker_process_cap,
)

__all__ = [
    "MAX_JOBS_ENV",
    "PersistentPool",
    "ShardedExecutor",
    "resolve_n_jobs",
    "shard_counts",
    "validate_n_jobs",
    "worker_process_cap",
]
