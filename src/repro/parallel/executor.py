"""Sharded multiprocess execution.

:class:`ShardedExecutor` is the one place the library touches
:mod:`multiprocessing`.  It runs a picklable task function over a list of
*shards* — small per-worker argument tuples, typically ``(count, rng)`` —
against a *payload* shipped to every worker exactly once (the CSR graph and
edge probabilities).  On platforms with ``fork`` the payload is inherited
through the fork at no pickling cost; under ``spawn`` it is pickled once per
worker via the pool initializer.

Determinism contract
--------------------
The executor never influences results, only wall-clock:

* shard layout is a pure function of ``(total_work, n_jobs)``
  (:func:`shard_counts`), and each shard carries its own RNG substream
  derived with :func:`repro.utils.rng.spawn_rngs`, so which OS process runs
  which shard is irrelevant;
* results come back in shard order (``Pool.map`` preserves input order), so
  the parent's merge is deterministic;
* the ``REPRO_MAX_JOBS`` environment variable caps the number of *worker
  processes* (useful on small CI runners) without changing the shard layout,
  so a run with ``n_jobs=4`` produces bit-identical results whether the pool
  has 4 processes or 1.

``n_jobs`` semantics match the scikit-learn convention: ``None`` → 1
(serial, in-process, no pool), ``-1`` → ``os.cpu_count()``, any positive
integer → that many shards.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

#: Environment variable capping the number of concurrent worker processes
#: (shard layout — and therefore results — are unaffected).
MAX_JOBS_ENV = "REPRO_MAX_JOBS"

#: Environment variable overriding the multiprocessing start method
#: ("fork", "spawn" or "forkserver").
START_METHOD_ENV = "REPRO_MP_START_METHOD"


def validate_n_jobs(n_jobs: Optional[int], error_cls: type = ValueError) -> None:
    """Raise ``error_cls`` unless ``n_jobs`` is ``None``, ``-1`` or positive.

    The one place the ``n_jobs`` domain rule lives; parameter objects call
    this with their own error type so every knob rejects the same inputs.
    """
    if n_jobs is not None and n_jobs != -1 and int(n_jobs) <= 0:
        raise error_cls(f"n_jobs must be a positive int, -1 or None, got {n_jobs}")


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` knob to a positive shard count.

    ``None`` → 1, ``-1`` → ``os.cpu_count()``, positive ints pass through.
    ``0`` and other negatives are rejected.
    """
    validate_n_jobs(n_jobs)
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return os.cpu_count() or 1
    return n_jobs


def worker_process_cap() -> Optional[int]:
    """The ``REPRO_MAX_JOBS`` pool-size cap, or ``None`` when unset/invalid."""
    raw = os.environ.get(MAX_JOBS_ENV)
    if not raw:
        return None
    try:
        cap = int(raw)
    except ValueError:
        return None
    return cap if cap > 0 else None


def shard_counts(total: int, n_jobs: int) -> np.ndarray:
    """Split ``total`` work items into at most ``n_jobs`` contiguous shards.

    The first ``total % n_jobs`` shards receive one extra item; empty shards
    are dropped (when ``total < n_jobs``).  The layout depends only on
    ``(total, n_jobs)`` — this is what makes fixed-``(seed, n_jobs)`` runs
    reproducible regardless of scheduling.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if n_jobs <= 0:
        raise ValueError(f"n_jobs must be positive, got {n_jobs}")
    base, extra = divmod(total, n_jobs)
    counts = np.full(n_jobs, base, dtype=np.int64)
    counts[:extra] += 1
    return counts[counts > 0]


def _default_start_method() -> str:
    override = os.environ.get(START_METHOD_ENV)
    if override:
        return override
    # fork inherits the payload for free and is available on POSIX; macOS /
    # Windows default to spawn, where the payload is pickled once per worker.
    if sys.platform.startswith("linux"):
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)


_WORKER_PAYLOAD: Any = None


def _init_worker(payload: Any) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload
    # Under fork the worker inherits the parent's whole object heap; without
    # this, the first collector cycles inside the worker walk every inherited
    # object and copy-on-write-fault the shared pages — measured at >3x CPU
    # on the sharded MC estimator when the parent holds a large RR-set
    # collection.  Freezing moves the inherited heap into the permanent
    # generation so the worker's collector never touches it.
    import gc

    gc.freeze()


def _call_task(task_and_shard) -> Any:
    task, shard = task_and_shard
    return task(_WORKER_PAYLOAD, shard)


class ShardedExecutor:
    """Run a task over shards on a multiprocessing pool (or inline).

    Parameters
    ----------
    n_jobs:
        Target shard/worker count (``None`` → 1, ``-1`` → all cores).
    start_method:
        Multiprocessing start method; defaults to ``fork`` on Linux,
        overridable via ``REPRO_MP_START_METHOD``.
    """

    def __init__(self, n_jobs: Optional[int] = None, start_method: Optional[str] = None):
        self._n_jobs = resolve_n_jobs(n_jobs)
        self._start_method = start_method

    @property
    def n_jobs(self) -> int:
        """The resolved shard count (``-1`` already expanded)."""
        return self._n_jobs

    def run(
        self,
        task: Callable[[Any, Any], Any],
        payload: Any,
        shards: Sequence[Any],
    ) -> List[Any]:
        """Evaluate ``task(payload, shard)`` for every shard, in shard order.

        ``task`` must be a module-level (picklable) function.  With one shard
        or ``n_jobs=1`` the task runs inline in the parent — no pool, no
        pickling — which is the serial fall-back path.
        """
        shards = list(shards)
        if not shards:
            return []
        processes = min(self._n_jobs, len(shards))
        cap = worker_process_cap()
        if cap is not None:
            processes = min(processes, cap)
        if processes <= 1:
            return [task(payload, shard) for shard in shards]
        context = multiprocessing.get_context(self._start_method or _default_start_method())
        with context.Pool(
            processes, initializer=_init_worker, initargs=(payload,)
        ) as pool:
            return pool.map(_call_task, [(task, shard) for shard in shards])
