"""Sharded multiprocess execution with supervised fault tolerance.

:class:`ShardedExecutor` is the one place the library touches
:mod:`multiprocessing`.  It runs a picklable task function over a list of
*shards* — small per-worker argument tuples, typically ``(count, rng)`` —
against a *payload* shipped to every worker exactly once (the CSR graph and
edge probabilities).  On platforms with ``fork`` the payload is inherited
through the fork at no pickling cost; under ``spawn`` it is pickled once per
worker via the pool initializer.

Two pool lifetimes are supported.  The default is **ephemeral**: every
:meth:`ShardedExecutor.run` call spawns a pool and tears it down.  Passing a
:class:`PersistentPool` makes the workers **persistent** across calls —
payloads are broadcast once per distinct payload and addressed by token
afterwards — which is what :class:`repro.runtime.Runtime` uses to amortise
pool spawn (~30–60 ms/call) across RMA's doubling rounds.

Fault tolerance
---------------
Shards are submitted individually (``apply_async``) and watched by a
supervision loop instead of a blocking ``Pool.map``, so a worker death — OOM
kill, segfault in a C extension, operator ``kill -9`` — can no longer hang
the parent.  The loop detects dead workers through process sentinels
(exit-code checks against the spawn-time worker snapshot), stale payload
caches on auto-respawned workers, broken broadcast barriers, and per-shard
timeouts; what happens next is governed by the
:class:`~repro.parallel.failure.FailurePolicy` in force:

* ``on_pool_failure="degrade"`` (default): the pool is respawned, the
  payloads the pending call needs are re-broadcast, and exactly the
  unfinished shards are re-executed — up to ``max_retries`` times, after
  which the remaining shards run in-process serially.  Because shard layout
  and RNG substreams are pure functions of ``(seed, n_jobs)``, the recovered
  run is **bit-identical** to a failure-free one.
* ``on_pool_failure="raise"``: fail fast with
  :class:`~repro.exceptions.WorkerCrashError` /
  :class:`~repro.exceptions.ShardTimeoutError`.

Every recovery emits a :class:`RuntimeWarning` and increments the owning
pool/executor's :class:`~repro.parallel.failure.RecoveryStats`.  The
fault-injection hooks consulted by the worker-side wrappers live in
:mod:`repro.parallel.faults` and are armed only by tests.

Determinism contract
--------------------
The executor never influences results, only wall-clock:

* shard layout is a pure function of ``(total_work, n_jobs)``
  (:func:`shard_counts`), and each shard carries its own RNG substream
  derived with :func:`repro.utils.rng.spawn_rngs`, so which OS process runs
  which shard — or how often a shard had to be re-executed — is irrelevant;
* results are merged into a parent-side list indexed by shard position, so
  the merge is deterministic regardless of completion order;
* the ``REPRO_MAX_JOBS`` environment variable caps the number of *worker
  processes* (useful on small CI runners) without changing the shard layout,
  so a run with ``n_jobs=4`` produces bit-identical results whether the pool
  has 4 processes or 1.

``n_jobs`` semantics match the scikit-learn convention: ``None`` → 1
(serial, in-process, no pool), ``-1`` → ``os.cpu_count()``, any positive
integer → that many shards.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import sys
import time
import warnings
from threading import BrokenBarrierError, Event
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ExecutionError, ShardTimeoutError, WorkerCrashError
from repro.parallel import faults
from repro.parallel.failure import DEFAULT_FAILURE_POLICY, FailurePolicy, RecoveryStats

#: Environment variable capping the number of concurrent worker processes
#: (shard layout — and therefore results — are unaffected).
MAX_JOBS_ENV = "REPRO_MAX_JOBS"

#: Environment variable overriding the multiprocessing start method
#: ("fork", "spawn" or "forkserver").
START_METHOD_ENV = "REPRO_MP_START_METHOD"

#: Valid payload-transport modes.  ``"pickle"`` ships payloads through the
#: pool's pipes (the historical path); ``"shm"`` packs every ndarray /
#: :class:`~repro.graph.digraph.CSRDiGraph` in the payload into one
#: ``multiprocessing.shared_memory`` segment and ships only the segment name
#: + header; ``"auto"`` picks ``"shm"`` once the payload's array bytes reach
#: :data:`AUTO_SHM_MIN_BYTES`.  Transport never influences results — workers
#: rebuild bit-identical read-only views — so this knob lives outside
#: ``rng_compat``.
PAYLOAD_MODES = ("auto", "pickle", "shm")

#: ``payload="auto"`` switches to shared memory at this many payload array
#: bytes (4 MiB).  Below it, pickling through the pipe is already cheap and
#: not worth a ``/dev/shm`` segment's lifecycle.
AUTO_SHM_MIN_BYTES = 4 << 20


def validate_n_jobs(n_jobs: Optional[int], error_cls: type = ValueError) -> None:
    """Raise ``error_cls`` unless ``n_jobs`` is ``None``, ``-1`` or positive.

    The one place the ``n_jobs`` domain rule lives; parameter objects call
    this with their own error type so every knob rejects the same inputs.
    """
    if n_jobs is not None and n_jobs != -1 and int(n_jobs) <= 0:
        raise error_cls(f"n_jobs must be a positive int, -1 or None, got {n_jobs}")


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` knob to a positive shard count.

    ``None`` → 1, ``-1`` → ``os.cpu_count()``, positive ints pass through.
    ``0`` and other negatives are rejected.
    """
    validate_n_jobs(n_jobs)
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return os.cpu_count() or 1
    return n_jobs


def worker_process_cap() -> Optional[int]:
    """The ``REPRO_MAX_JOBS`` pool-size cap, or ``None`` when unset/invalid.

    Invalid or non-positive values are rejected with a :class:`RuntimeWarning`
    naming the offending value, so a misconfigured CI runner is visible
    instead of silently uncapped.
    """
    raw = os.environ.get(MAX_JOBS_ENV)
    if not raw:
        return None
    try:
        cap = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring {MAX_JOBS_ENV}={raw!r}: not an integer; the worker "
            "pool is uncapped",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    if cap <= 0:
        warnings.warn(
            f"ignoring {MAX_JOBS_ENV}={raw!r}: the cap must be a positive "
            "integer; the worker pool is uncapped",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return cap


def shard_counts(total: int, n_jobs: int) -> np.ndarray:
    """Split ``total`` work items into at most ``n_jobs`` contiguous shards.

    The first ``total % n_jobs`` shards receive one extra item; empty shards
    are dropped (when ``total < n_jobs``).  The layout depends only on
    ``(total, n_jobs)`` — this is what makes fixed-``(seed, n_jobs)`` runs
    reproducible regardless of scheduling.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if n_jobs <= 0:
        raise ValueError(f"n_jobs must be positive, got {n_jobs}")
    base, extra = divmod(total, n_jobs)
    counts = np.full(n_jobs, base, dtype=np.int64)
    counts[:extra] += 1
    return counts[counts > 0]


def _default_start_method() -> str:
    override = os.environ.get(START_METHOD_ENV)
    if override:
        valid = multiprocessing.get_all_start_methods()
        if override not in valid:
            raise ExecutionError(
                f"invalid {START_METHOD_ENV}={override!r}: choose one of "
                f"{', '.join(valid)}"
            )
        return override
    # fork inherits the payload for free and is available on POSIX; macOS /
    # Windows default to spawn, where the payload is pickled once per worker.
    if sys.platform.startswith("linux"):
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)


_WORKER_PAYLOAD: Any = None
_WORKER_PAYLOADS: dict = {}
#: Worker-side ``SharedMemory`` objects attached for decoded shm payloads,
#: keyed by segment name.  The attachment must stay referenced for as long
#: as any rebuilt array view is alive (closing it would invalidate the
#: views); entries are dropped in lockstep with ``_WORKER_PAYLOADS``.
_ATTACHED_SEGMENTS: dict = {}
#: Worker-side scratch caches, one dict per broadcast payload token.  Task
#: functions reach theirs through :func:`current_worker_cache` to keep
#: expensive payload-derived state (e.g. RR generators with their CSR scratch
#: buffers) alive across the many calls a persistent pool serves for the same
#: payload.  Evicted in lockstep with ``_WORKER_PAYLOADS``.
_WORKER_CACHES: dict = {}
_CURRENT_PAYLOAD_TOKEN: Any = None
_WORKER_BARRIER: Any = None

#: Seconds a worker waits for its siblings during a payload broadcast before
#: declaring the pool broken.  A worker-side backstop only: the parent's
#: supervision loop detects a dead sibling within ``_POLL_INTERVAL_S`` and
#: aborts the barrier long before this expires.
_BROADCAST_TIMEOUT_S = 600.0

#: Supervision-loop poll granularity: the latency bound on detecting a dead
#: worker, and the upper bound on per-call overhead of a failure-free run.
_POLL_INTERVAL_S = 0.05

#: Grace period for end-of-call shutdown of an ephemeral pool before falling
#: back to ``terminate()`` (lets worker-side atexit/coverage hooks run).
_EPHEMERAL_CLOSE_GRACE_S = 1.0


class _StalePayloadError(RuntimeError):
    """Worker-side: a token addressed a payload this worker never received.

    Happens when ``multiprocessing.Pool`` silently auto-respawns a crashed
    worker — the replacement runs the initializer but missed every earlier
    broadcast.  The supervision loop treats it as a pool failure (respawn +
    re-broadcast + re-execute), never as a task error.
    """


class _PoolBrokenError(RuntimeError):
    """Parent-side internal: the pool must be torn down and respawned."""


def _ensure_resource_tracker() -> None:
    """Start the parent's ``resource_tracker`` before any worker exists.

    ``spawn`` children always receive the parent tracker's fd, but ``fork``
    children inherit whatever state the parent had at fork time — if the
    tracker is not running yet, a worker that later attaches a shared
    segment lazily starts its *own* tracker, which unlinks the parent's
    live segment the moment that worker is terminated.  Starting the
    tracker parent-side first makes every child share it, where attach-side
    registrations are idempotent set inserts and the creator's ``unlink``
    is the single cleanup.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - platforms without a tracker
        pass


def _freeze_inherited_heap() -> None:
    # Under fork the worker inherits the parent's whole object heap; without
    # this, the first collector cycles inside the worker walk every inherited
    # object and copy-on-write-fault the shared pages — measured at >3x CPU
    # on the sharded MC estimator when the parent holds a large RR-set
    # collection.  Freezing moves the inherited heap into the permanent
    # generation so the worker's collector never touches it.
    import gc

    gc.freeze()


# ---------------------------------------------------------------------- #
# zero-copy payload transport (payload="shm")
# ---------------------------------------------------------------------- #
class _ArrayRef:
    """Skeleton placeholder for an ndarray packed into the shared segment."""

    __slots__ = ("key",)

    def __init__(self, key: str):
        self.key = key

    def __getstate__(self):
        return self.key

    def __setstate__(self, state):
        self.key = state


class _GraphRef:
    """Skeleton placeholder for a :class:`CSRDiGraph` packed into the segment."""

    __slots__ = ("num_nodes", "prefix")

    def __init__(self, num_nodes: int, prefix: str):
        self.num_nodes = num_nodes
        self.prefix = prefix

    def __getstate__(self):
        return (self.num_nodes, self.prefix)

    def __setstate__(self, state):
        self.num_nodes, self.prefix = state


class _ShmPayload:
    """Wire form of a shared-memory payload: segment name + header + skeleton.

    The *skeleton* is the payload with every ndarray / ``CSRDiGraph``
    replaced by a tiny ref object; everything else (classes, scalars, small
    leaves) still pickles through the pipe.  Workers attach the named
    segment and substitute read-only views back in — the arrays themselves
    never cross a pipe and exist physically once per host.
    """

    __slots__ = ("name", "header_bytes", "skeleton")

    def __init__(self, name: str, header_bytes: bytes, skeleton: Any):
        self.name = name
        self.header_bytes = header_bytes
        self.skeleton = skeleton

    def __getstate__(self):
        return (self.name, self.header_bytes, self.skeleton)

    def __setstate__(self, state):
        self.name, self.header_bytes, self.skeleton = state


def validate_payload_mode(mode: str, error_cls: type = ExecutionError) -> str:
    """Raise ``error_cls`` unless ``mode`` is one of :data:`PAYLOAD_MODES`."""
    if mode not in PAYLOAD_MODES:
        raise error_cls(
            f"payload mode must be one of {', '.join(PAYLOAD_MODES)}, "
            f"got {mode!r}"
        )
    return mode


def _payload_array_bytes(payload: Any) -> int:
    """Total ndarray/graph bytes in ``payload`` (the ``auto`` mode signal)."""
    from repro.graph.digraph import CSRDiGraph
    from repro.graph.storage import graph_arrays

    total = 0
    stack = [payload]
    while stack:
        obj = stack.pop()
        if isinstance(obj, CSRDiGraph):
            total += sum(arr.nbytes for arr in graph_arrays(obj).values())
        elif isinstance(obj, np.ndarray):
            if obj.dtype != object:
                total += obj.nbytes
        elif isinstance(obj, (tuple, list)):
            stack.extend(obj)
        elif isinstance(obj, dict):
            stack.extend(obj.values())
    return total


def _resolve_payload_transport(payload_mode: str, payload: Any) -> str:
    """Collapse ``auto`` to a concrete transport for this payload."""
    validate_payload_mode(payload_mode)
    if payload_mode != "auto":
        return payload_mode
    return "shm" if _payload_array_bytes(payload) >= AUTO_SHM_MIN_BYTES else "pickle"


def _encode_shm_payload(payload: Any):
    """Pack ``payload``'s arrays into one shared segment.

    Returns ``(SharedGraphSegment, _ShmPayload)`` — the caller owns the
    segment's lifecycle — or ``None`` when the payload holds no packable
    arrays (ship it pickled; a segment would carry nothing).
    """
    from repro.graph.digraph import CSRDiGraph
    from repro.graph import storage

    arrays: Dict[str, np.ndarray] = {}
    counter = [0]

    def walk(obj: Any) -> Any:
        if isinstance(obj, CSRDiGraph):
            prefix = f"g{counter[0]}"
            counter[0] += 1
            for name, arr in storage.graph_arrays(obj).items():
                arrays[f"{prefix}.{name}"] = arr
            return _GraphRef(obj.num_nodes, prefix)
        if isinstance(obj, np.ndarray) and obj.dtype != object:
            key = f"a{counter[0]}"
            counter[0] += 1
            arrays[key] = obj
            return _ArrayRef(key)
        if isinstance(obj, tuple):
            return tuple(walk(item) for item in obj)
        if isinstance(obj, list):
            return [walk(item) for item in obj]
        if isinstance(obj, dict):
            return {key: walk(value) for key, value in obj.items()}
        return obj

    skeleton = walk(payload)
    if not arrays:
        return None
    segment = storage.pack_to_shm(arrays)
    return segment, _ShmPayload(segment.name, segment.header_bytes, skeleton)


def _decode_shm_payload(wire: "_ShmPayload") -> Any:
    """Worker side: attach the segment and rebuild the payload, zero-copy."""
    from repro.graph import storage

    segment = _ATTACHED_SEGMENTS.get(wire.name)
    if segment is None:
        segment = storage.attach_segment(wire.name)
        _ATTACHED_SEGMENTS[wire.name] = segment
    views = storage.unpack_arrays(
        segment.buf, storage.header_from_bytes(wire.header_bytes)
    )

    def build(obj: Any) -> Any:
        if isinstance(obj, _ArrayRef):
            return views[obj.key]
        if isinstance(obj, _GraphRef):
            parts = {
                name: views[f"{obj.prefix}.{name}"]
                for name in storage.GRAPH_ARRAY_NAMES
            }
            return storage.graph_from_arrays(obj.num_nodes, parts)
        if isinstance(obj, tuple):
            return tuple(build(item) for item in obj)
        if isinstance(obj, list):
            return [build(item) for item in obj]
        if isinstance(obj, dict):
            return {key: build(value) for key, value in obj.items()}
        return obj

    return build(wire.skeleton)


#: Segments whose close() failed because some view still exports the buffer.
#: Kept referenced so their ``__del__`` never retries the close and sprays
#: "Exception ignored" noise at interpreter exit.
_ZOMBIE_SEGMENTS: list = []


def _close_attached_segments() -> None:
    """Drop worker-side segment attachments (with their payload views gone)."""
    if not _ATTACHED_SEGMENTS:
        return
    # The payload views over these segments were dropped just before this
    # call; collect them now — numpy views hold buffer exports, and a
    # mapping with live exports cannot close.
    import gc

    gc.collect()
    for segment in _ATTACHED_SEGMENTS.values():
        try:
            segment.close()
        except (BufferError, OSError):  # pragma: no cover - views still live
            _ZOMBIE_SEGMENTS.append(segment)
    _ATTACHED_SEGMENTS.clear()


def _release_worker_state() -> None:  # pragma: no cover - runs at worker exit
    """atexit hook: drop payload views, then close segment mappings.

    Without this, interpreter shutdown tears module globals down in
    arbitrary order and ``SharedMemory.__del__`` can run while numpy views
    in ``_WORKER_PAYLOADS`` still export the buffer, raising ignored
    ``BufferError`` tracebacks on the worker's stderr.
    """
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = None
    _WORKER_PAYLOADS.clear()
    _WORKER_CACHES.clear()
    _close_attached_segments()


def _init_worker(payload: Any, fault_specs: Any = None) -> None:
    global _WORKER_PAYLOAD
    atexit.register(_release_worker_state)
    if isinstance(payload, _ShmPayload):
        payload = _decode_shm_payload(payload)
    _WORKER_PAYLOAD = payload
    faults.arm(fault_specs)
    _freeze_inherited_heap()


def _call_task(task_shard_index) -> Any:
    task, shard, index = task_shard_index
    faults.on_shard_start(index)
    result = task(_WORKER_PAYLOAD, shard)
    faults.on_shard_end(index)
    return result


def _init_persistent_worker(barrier: Any, fault_specs: Any = None) -> None:
    global _WORKER_BARRIER
    atexit.register(_release_worker_state)
    _WORKER_BARRIER = barrier
    _WORKER_PAYLOADS.clear()
    _WORKER_CACHES.clear()
    _close_attached_segments()
    faults.arm(fault_specs)
    _freeze_inherited_heap()


def _drop_payloads(_arg) -> None:
    """Forget every broadcast payload (cache-eviction broadcast).

    Runs under the same barrier discipline as :func:`_store_payload`, so
    every worker in the pool drops its cache exactly once.
    """
    _WORKER_PAYLOADS.clear()
    _WORKER_CACHES.clear()
    _close_attached_segments()
    _WORKER_BARRIER.wait(timeout=_BROADCAST_TIMEOUT_S)


def _store_payload(token_and_payload) -> None:
    """Receive one broadcast payload and park on the barrier.

    The barrier guarantees exactly-once delivery per worker: a worker can
    only execute one task at a time, and the barrier releases only when
    every worker in the pool is simultaneously inside a store task — so no
    worker can grab a second copy while another has none.  Shared-memory
    wires are decoded here — attach + rebuild views, no array bytes on the
    pipe — so task code sees the same payload shape either way.
    """
    token, wire = token_and_payload
    faults.on_broadcast()
    if isinstance(wire, _ShmPayload):
        wire = _decode_shm_payload(wire)
    _WORKER_PAYLOADS[token] = wire
    _WORKER_BARRIER.wait(timeout=_BROADCAST_TIMEOUT_S)


_MISSING = object()


def current_worker_cache() -> Optional[dict]:
    """The scratch cache for the payload of the task currently executing.

    Inside a persistent-pool task this returns a per-``(worker, payload)``
    dict that survives across calls until the payload is evicted — task
    functions use it to memoise state that is expensive to rebuild from the
    payload every call (RR generators, scratch buffers).  Outside a pool
    task — the serial/inline path, or the ephemeral one-shot pool — it
    returns ``None`` and callers must rebuild, which keeps the serial path's
    behaviour (and memory profile) unchanged.

    Determinism contract: anything cached here must be a pure function of
    the payload, so a cache hit can never change what a shard computes.
    """
    if _CURRENT_PAYLOAD_TOKEN is None:
        return None
    return _WORKER_CACHES.setdefault(_CURRENT_PAYLOAD_TOKEN, {})


def _call_task_by_token(task_token_shard_index) -> Any:
    global _CURRENT_PAYLOAD_TOKEN
    task, token, shard, index = task_token_shard_index
    payload = _WORKER_PAYLOADS.get(token, _MISSING)
    if payload is _MISSING:
        raise _StalePayloadError(
            f"worker {os.getpid()} holds no payload for token {token} "
            "(auto-respawned after a sibling crash?)"
        )
    faults.on_shard_start(index)
    _CURRENT_PAYLOAD_TOKEN = token
    try:
        result = task(payload, shard)
    finally:
        _CURRENT_PAYLOAD_TOKEN = None
    faults.on_shard_end(index)
    return result


def _shutdown_pool(pool, procs: Sequence[Any], grace_s: float) -> None:
    """Close a pool, preferring graceful worker exit within ``grace_s``.

    ``grace_s > 0`` sends the close sentinel and waits for every worker in
    the spawn-time snapshot to exit on its own (running worker-side
    ``atexit``/coverage hooks); stragglers — and the ``grace_s <= 0`` fast
    path used for recovery respawns — are terminated.
    """
    if grace_s > 0:
        pool.close()
        deadline = time.monotonic() + grace_s
        while time.monotonic() < deadline:
            if all(proc.exitcode is not None for proc in procs):
                break
            time.sleep(0.005)
        if not all(proc.exitcode is not None for proc in procs):
            pool.terminate()
    else:
        pool.terminate()
    pool.join()


def _supervise(
    adapter,
    shards: List[Any],
    failure: FailurePolicy,
    stats: RecoveryStats,
    label: str,
) -> List[Any]:
    """Watch submitted shards to completion, recovering per ``failure``.

    ``adapter`` abstracts the pool flavour (ephemeral vs persistent) behind
    five methods: ``submit(index, shard, wakeup)`` → ``AsyncResult``,
    ``dead_workers()``, ``respawn()``, ``discard()`` and ``serial(shard)``.
    Results land in a list indexed by shard position, so the merge order —
    and therefore every downstream result — is independent of completion
    order, retries and degradation.
    """
    results: List[Any] = [None] * len(shards)
    attempts = [0] * len(shards)
    pending: Dict[int, Any] = {}
    deadlines: Dict[int, float] = {}
    # Completion callbacks set this so the loop wakes the moment any shard
    # finishes instead of at the next poll tick; dead workers produce no
    # callback, so the poll interval stays the detection latency for those.
    wakeup = Event()

    def submit(indices) -> None:
        now = time.monotonic()
        for index in indices:
            pending[index] = adapter.submit(index, shards[index], wakeup)
            if failure.shard_timeout_s is not None:
                deadlines[index] = now + failure.shard_timeout_s

    def run_serial(indices, reason: str) -> None:
        stats.serial_fallbacks += len(indices)
        warnings.warn(
            f"{label}: degrading shard(s) {list(indices)} to in-process serial "
            f"execution after {reason}; results stay bit-identical",
            RuntimeWarning,
            stacklevel=4,
        )
        for index in indices:
            results[index] = adapter.serial(shards[index])

    def recover(reason: str) -> None:
        # Pool state is suspect: every outstanding shard is treated as lost,
        # the pool is torn down, and the lost shards are re-executed — on a
        # fresh pool while they have retry budget, in-process serially after.
        lost = sorted(pending)
        pending.clear()
        deadlines.clear()
        retry: List[int] = []
        fallback: List[int] = []
        for index in lost:
            attempts[index] += 1
            (fallback if attempts[index] > failure.max_retries else retry).append(index)
        if fallback or not retry:
            adapter.discard()
        if fallback:
            run_serial(fallback, f"{reason} (retry budget exhausted)")
        if not retry:
            return
        stats.shards_rerun += len(retry)
        round_attempt = max(attempts[index] for index in retry)
        warnings.warn(
            f"{label}: {reason}; respawning workers and re-executing shard(s) "
            f"{retry} (attempt {round_attempt}/{failure.max_retries})",
            RuntimeWarning,
            stacklevel=4,
        )
        if failure.retry_backoff_s > 0:
            time.sleep(failure.retry_backoff_s * round_attempt)
        try:
            stats.pool_respawns += 1
            adapter.respawn()
            submit(retry)
        except Exception:
            # The pool cannot be rebuilt (respawn or re-broadcast keeps
            # failing) — last rung of the degradation ladder.
            run_serial(retry, "the worker pool could not be respawned")

    submit(range(len(shards)))
    while pending:
        wakeup.clear()
        broken_reason: Optional[str] = None
        for index in sorted(pending):
            result = pending[index]
            if not result.ready():
                continue
            try:
                value = result.get()
            except _StalePayloadError:
                broken_reason = "a respawned worker lost its payload cache"
                break
            # Any other exception is a genuine task error: deterministic,
            # so retrying cannot help — propagate to the caller.
            results[index] = value
            del pending[index]
            deadlines.pop(index, None)
        if not pending:
            break
        if broken_reason is None:
            dead = adapter.dead_workers()
            if dead:
                codes = sorted({proc.exitcode for proc in dead})
                broken_reason = (
                    f"{len(dead)} worker process(es) died (exit codes {codes})"
                )
        if broken_reason is not None:
            stats.worker_crashes += 1
            if failure.on_pool_failure == "raise":
                adapter.discard()
                raise WorkerCrashError(
                    f"{label}: {broken_reason} with shard(s) {sorted(pending)} "
                    f"outstanding [recovery: {stats.describe()}]"
                )
            recover(broken_reason)
            continue
        now = time.monotonic()
        expired = sorted(
            index for index, deadline in deadlines.items() if now > deadline
        )
        if expired:
            stats.shard_timeouts += len(expired)
            timeout_reason = (
                f"shard(s) {expired} exceeded "
                f"shard_timeout_s={failure.shard_timeout_s:g}"
            )
            if failure.on_pool_failure == "raise":
                adapter.discard()
                raise ShardTimeoutError(
                    f"{label}: {timeout_reason} [recovery: {stats.describe()}]"
                )
            recover(timeout_reason)
            continue
        wakeup.wait(_POLL_INTERVAL_S)
    return results


class _EphemeralAdapter:
    """Pool mechanics of one supervised ephemeral :meth:`ShardedExecutor.run`."""

    def __init__(
        self,
        start_method: Optional[str],
        task,
        payload,
        processes: int,
        payload_mode: str = "pickle",
    ):
        self._context = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._task = task
        self._payload = payload
        self._processes = processes
        self._segment = None
        self._wire = payload
        if _resolve_payload_transport(payload_mode, payload) == "shm":
            encoded = _encode_shm_payload(payload)
            if encoded is not None:
                self._segment, self._wire = encoded
        self._pool = None
        self._procs: List[Any] = []
        self._spawn()

    def _spawn(self) -> None:
        _ensure_resource_tracker()
        self._pool = self._context.Pool(
            self._processes,
            initializer=_init_worker,
            initargs=(self._wire, faults.active_faults()),
        )
        self._procs = list(self._pool._pool)

    def submit(self, index: int, shard: Any, wakeup: Event):
        notify = lambda _result: wakeup.set()  # noqa: E731
        return self._pool.apply_async(
            _call_task,
            ((self._task, shard, index),),
            callback=notify,
            error_callback=notify,
        )

    def dead_workers(self) -> List[Any]:
        return [proc for proc in self._procs if proc.exitcode is not None]

    def respawn(self) -> None:
        self.discard()
        self._spawn()

    def discard(self) -> None:
        pool, self._pool = self._pool, None
        self._procs = []
        if pool is not None:
            pool.terminate()
            pool.join()

    def serial(self, shard: Any) -> Any:
        return self._task(self._payload, shard)

    def finish(self) -> None:
        """End-of-call shutdown: graceful close, bounded, then terminate.

        Also the single unlink site for the call's shared segment — respawns
        during recovery reuse the live segment, so only end-of-call releases
        it.
        """
        pool, self._pool = self._pool, None
        procs, self._procs = self._procs, []
        if pool is not None:
            _shutdown_pool(pool, procs, _EPHEMERAL_CLOSE_GRACE_S)
        segment, self._segment = self._segment, None
        if segment is not None:
            segment.unlink()


class _PersistentAdapter:
    """Pool mechanics of one supervised :meth:`PersistentPool.run` call."""

    def __init__(self, owner: "PersistentPool", task, payload, processes: int,
                 failure: FailurePolicy):
        self._owner = owner
        self._task = task
        self._payload = payload
        self._processes = processes
        self._failure = failure
        self._token: Optional[int] = None

    def attach(self) -> None:
        """Bind the payload token, broadcasting to the live pool as needed."""
        self._token = self._owner._attach_payload(
            self._payload, self._processes, self._failure
        )

    def submit(self, index: int, shard: Any, wakeup: Event):
        notify = lambda _result: wakeup.set()  # noqa: E731
        return self._owner._pool.apply_async(
            _call_task_by_token,
            ((self._task, self._token, shard, index),),
            callback=notify,
            error_callback=notify,
        )

    def dead_workers(self) -> List[Any]:
        return self._owner._dead_workers()

    def respawn(self) -> None:
        # Keep the parent-side packed segments: the re-broadcast right after
        # the respawn reuses the live segment instead of re-packing.
        self._owner.close(timeout_s=0, release_payloads=False)
        self.attach()

    def discard(self) -> None:
        self._owner.close(timeout_s=0, release_payloads=False)

    def serial(self, shard: Any) -> Any:
        return self._task(self._payload, shard)


class PersistentPool:
    """A worker pool that outlives individual sharded calls.

    Ephemeral execution (:meth:`ShardedExecutor.run` without a pool) spawns
    a fresh ``multiprocessing.Pool`` per call — ~30–60 ms each, which RMA's
    doubling rounds pay over and over.  A ``PersistentPool`` spawns its
    workers once (lazily, on the first call that actually shards) and reuses
    them; :class:`repro.runtime.Runtime` owns one per context.

    Payloads are shipped to every worker **once per distinct payload** via a
    barrier-synchronised broadcast and addressed by token afterwards, so
    repeated calls against the same graph/probabilities (the RMA pattern)
    pickle the payload once per worker for the lifetime of the pool instead
    of once per call.  Payload identity is object identity of the payload's
    elements — the pool keeps a strong reference, so ``id`` reuse cannot
    alias two different payloads.

    Worker loss is survivable: calls run under the supervision loop
    (:func:`_supervise`), broadcasts are watched for dead workers and broken
    barriers, and recovery — respawn, re-broadcast of the payloads the
    pending call needs, deterministic re-execution of exactly the unfinished
    shards — is governed by the call's
    :class:`~repro.parallel.failure.FailurePolicy`.  :attr:`recovery_stats`
    counts those events, mirroring :attr:`spawn_count`.

    The pool never influences results: shard layout and RNG substreams are
    fixed by the caller, results merge by shard position, and pool size
    (capped by ``REPRO_MAX_JOBS``) only limits concurrency.
    """

    #: Distinct payloads kept broadcast in the workers before the cache is
    #: reset (bounds parent + worker memory when callers stream many
    #: one-off payloads through one long-lived pool).
    MAX_CACHED_PAYLOADS = 8

    #: Default grace period for :meth:`close` before falling back to
    #: ``terminate()`` (lets worker-side atexit/coverage hooks run).
    CLOSE_GRACE_S = 5.0

    def __init__(
        self,
        start_method: Optional[str] = None,
        payload_mode: str = "pickle",
    ):
        self._start_method = start_method
        self._payload_mode = validate_payload_mode(payload_mode)
        self._pool = None
        self._procs: List[Any] = []
        self._barrier = None
        self._processes = 0
        self._spawn_count = 0
        self._recovery = RecoveryStats()
        #: Broadcast state of the *live* pool: identity key → token the
        #: current workers hold.  Cleared on every close/respawn.
        self._tokens: dict = {}
        #: Parent-side packed payloads: identity key → ``(payload, wire,
        #: segment-or-None)``.  Outlives worker respawns — a re-broadcast
        #: after a crash ships the same live segment — and holds the strong
        #: payload references that make identity keys safe against ``id``
        #: reuse.  Released on user-facing :meth:`close` / eviction.
        self._packed: dict = {}
        self._next_token = 0

    @property
    def payload_mode(self) -> str:
        """The payload transport this pool broadcasts with."""
        return self._payload_mode

    @property
    def processes(self) -> int:
        """Worker count of the live pool (0 when no pool is up)."""
        return self._processes if self._pool is not None else 0

    @property
    def spawn_count(self) -> int:
        """How many times a worker pool has been spawned over this pool's life."""
        return self._spawn_count

    @property
    def recovery_stats(self) -> RecoveryStats:
        """Recovery counters accumulated over this pool's life (0s when clean)."""
        return self._recovery

    def _ensure(self, requested: int):
        """Return a pool with at least ``requested`` workers (or ``None`` serial).

        Growing an existing pool respawns it (and re-broadcasts payloads on
        demand); the common fixed-``n_jobs`` case spawns exactly once.
        """
        if requested <= 1:
            return None
        if self._pool is not None and self._processes >= requested:
            return self._pool
        self.close(release_payloads=False)
        context = multiprocessing.get_context(
            self._start_method or _default_start_method()
        )
        _ensure_resource_tracker()
        barrier = context.Barrier(requested)
        self._pool = context.Pool(
            requested,
            initializer=_init_persistent_worker,
            initargs=(barrier, faults.active_faults()),
        )
        self._procs = list(self._pool._pool)
        self._barrier = barrier
        self._processes = requested
        self._spawn_count += 1
        return self._pool

    def _dead_workers(self) -> List[Any]:
        return [proc for proc in self._procs if proc.exitcode is not None]

    def _broadcast(self, function, items) -> None:
        """Supervised barrier broadcast: raises :class:`_PoolBrokenError`.

        Watches the broadcast for dead workers (aborting the barrier so the
        survivors unblock instead of hanging until the worker-side timeout)
        and converts every failure shape — death, broken barrier, stall —
        into :class:`_PoolBrokenError` for the caller to recover from.
        """
        result = self._pool.map_async(function, items, chunksize=1)
        deadline = time.monotonic() + _BROADCAST_TIMEOUT_S
        while not result.ready():
            if self._dead_workers():
                self._barrier.abort()
                raise _PoolBrokenError("a worker died during a payload broadcast")
            if time.monotonic() > deadline:
                self._barrier.abort()
                raise _PoolBrokenError("a payload broadcast stalled")
            result.wait(_POLL_INTERVAL_S)
        try:
            result.get()
        except BrokenBarrierError as exc:
            raise _PoolBrokenError(
                "the payload-broadcast barrier broke"
            ) from exc

    @staticmethod
    def _payload_key(payload: Any) -> tuple:
        return (
            tuple(id(element) for element in payload)
            if isinstance(payload, tuple)
            else (id(payload),)
        )

    def _release_packed(self) -> None:
        """Unlink every parent-side shared segment and drop the pack cache."""
        packed, self._packed = self._packed, {}
        for _payload, _wire, segment in packed.values():
            if segment is not None:
                segment.unlink()

    def _wire_for(self, key: tuple, payload: Any) -> Any:
        """The broadcastable wire form of ``payload`` (packing on first use).

        Under ``"shm"``/large-``"auto"`` the arrays are packed into one
        shared segment the first time; re-broadcasts (respawn recovery, a
        re-grown pool) reuse the live segment.  The cache is pruned of
        entries no live token addresses once it reaches
        :attr:`MAX_CACHED_PAYLOADS`.
        """
        entry = self._packed.get(key)
        if entry is not None:
            return entry[1]
        if len(self._packed) >= self.MAX_CACHED_PAYLOADS:
            for stale in [k for k in self._packed if k not in self._tokens]:
                _payload, _wire, segment = self._packed.pop(stale)
                if segment is not None:
                    segment.unlink()
        segment = None
        wire = payload
        if _resolve_payload_transport(self._payload_mode, payload) == "shm":
            encoded = _encode_shm_payload(payload)
            if encoded is not None:
                segment, wire = encoded
        self._packed[key] = (payload, wire, segment)
        return wire

    def _payload_token(self, payload: Any) -> int:
        key = self._payload_key(payload)
        token = self._tokens.get(key)
        if token is None:
            if len(self._tokens) >= self.MAX_CACHED_PAYLOADS:
                self._broadcast(_drop_payloads, [None] * self._processes)
                self._tokens.clear()
                self._release_packed()
            wire = self._wire_for(key, payload)
            token = self._next_token
            self._next_token += 1
            self._broadcast(_store_payload, [(token, wire)] * self._processes)
            self._tokens[key] = token
        return token

    def _attach_payload(
        self, payload: Any, processes: int, failure: FailurePolicy
    ) -> int:
        """Token for ``payload`` on a live pool, recovering broken broadcasts.

        A failed broadcast (dead worker, broken barrier) tears the pool down
        and retries on a fresh one — re-broadcasting **only this payload**,
        the one the pending call needs — up to ``failure.max_retries`` times
        (no retries under ``"raise"``).  Raises :class:`_PoolBrokenError`
        when the budget is exhausted.
        """
        tries = 1 if failure.on_pool_failure == "raise" else failure.max_retries + 1
        last: Optional[Exception] = None
        for attempt in range(tries):
            self._ensure(processes)
            try:
                return self._payload_token(payload)
            except _PoolBrokenError as exc:
                last = exc
                self._recovery.worker_crashes += 1
                self.close(timeout_s=0, release_payloads=False)
                if attempt + 1 >= tries:
                    break
                self._recovery.pool_respawns += 1
                warnings.warn(
                    f"persistent pool: {exc}; respawning workers and "
                    "re-broadcasting the pending call's payload",
                    RuntimeWarning,
                    stacklevel=5,
                )
                if failure.retry_backoff_s > 0:
                    time.sleep(failure.retry_backoff_s * (attempt + 1))
        raise last

    def run(
        self,
        task: Callable[[Any, Any], Any],
        payload: Any,
        shards: Sequence[Any],
        processes: int,
        failure: Optional[FailurePolicy] = None,
    ) -> List[Any]:
        """Evaluate ``task(payload, shard)`` per shard on the persistent workers.

        ``processes`` is the concurrency the caller wants (already capped by
        ``REPRO_MAX_JOBS``); ``failure`` governs recovery (defaults to
        :data:`~repro.parallel.failure.DEFAULT_FAILURE_POLICY`).  Results are
        bit-identical to the ephemeral path — same tasks, same shard args,
        same merge order — whether or not recovery was needed.
        """
        failure = failure if failure is not None else DEFAULT_FAILURE_POLICY
        shards = list(shards)
        if self._ensure(processes) is None:
            return [task(payload, shard) for shard in shards]
        adapter = _PersistentAdapter(self, task, payload, processes, failure)
        try:
            adapter.attach()
        except _PoolBrokenError as exc:
            if failure.on_pool_failure == "raise":
                raise WorkerCrashError(
                    f"persistent pool: {exc} "
                    f"[recovery: {self._recovery.describe()}]"
                ) from exc
            self._recovery.serial_fallbacks += len(shards)
            warnings.warn(
                f"persistent pool: {exc} and the retry budget is exhausted; "
                f"degrading all {len(shards)} shard(s) to in-process serial "
                "execution (results stay bit-identical)",
                RuntimeWarning,
                stacklevel=3,
            )
            return [task(payload, shard) for shard in shards]
        return _supervise(adapter, shards, failure, self._recovery, "persistent pool")

    def broadcast(self, payload: Any, processes: int) -> bool:
        """Ship ``payload`` to ``processes`` workers now, under a fresh token.

        A diagnostics/benchmark entry point: unlike the token cache used by
        :meth:`run`, every call performs a real broadcast (the packed
        segment, if any, is reused — re-broadcasting under ``"shm"`` only
        ships the segment name + header).  Returns ``False`` when
        ``processes <= 1`` keeps the pool serial.  Call
        :meth:`forget_payloads` between repeated broadcasts of large
        payloads to keep worker memory bounded.
        """
        if self._ensure(processes) is None:
            return False
        key = self._payload_key(payload)
        try:
            wire = self._wire_for(key, payload)
            token = self._next_token
            self._next_token += 1
            self._broadcast(_store_payload, [(token, wire)] * self._processes)
        except _PoolBrokenError as exc:
            self.close(timeout_s=0, release_payloads=False)
            raise WorkerCrashError(f"persistent pool: {exc}") from exc
        self._tokens[key] = token
        return True

    def forget_payloads(self, release_segments: bool = True) -> None:
        """Make the live workers drop every broadcast payload.

        ``release_segments=False`` keeps the parent-side packed segments so
        the next broadcast of the same payload reuses them (what the
        broadcast benchmark wants); the default also unlinks them.
        """
        if self._pool is not None and self._tokens:
            try:
                self._broadcast(_drop_payloads, [None] * self._processes)
            except _PoolBrokenError:
                self.close(timeout_s=0, release_payloads=False)
        self._tokens.clear()
        if release_segments:
            self._release_packed()

    def close(
        self,
        timeout_s: Optional[float] = None,
        release_payloads: bool = True,
    ) -> None:
        """Shut the workers down and forget broadcast payloads.

        Workers are first asked to exit gracefully — so worker-side
        ``atexit``/coverage hooks run — and terminated only if still alive
        after ``timeout_s`` seconds (default :attr:`CLOSE_GRACE_S`; pass
        ``0`` to terminate immediately, e.g. when the pool is known broken).
        The pool object stays usable — the next sharded call respawns
        workers (incrementing :attr:`spawn_count`).

        ``release_payloads=False`` is the internal respawn flavour: the
        parent-side packed payloads (and their live shared-memory segments)
        survive so the post-respawn re-broadcast reuses them.  The default
        unlinks every segment this pool created — the single user-facing
        cleanup point the leak tests probe.
        """
        pool, self._pool = self._pool, None
        procs, self._procs = self._procs, []
        self._barrier = None
        if pool is not None:
            grace = self.CLOSE_GRACE_S if timeout_s is None else timeout_s
            _shutdown_pool(pool, procs, grace)
        self._processes = 0
        self._tokens.clear()
        if release_payloads:
            self._release_packed()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close(timeout_s=0)
        except Exception:
            pass


class ShardedExecutor:
    """Run a task over shards on a multiprocessing pool (or inline).

    Parameters
    ----------
    n_jobs:
        Target shard/worker count (``None`` → 1, ``-1`` → all cores).
    start_method:
        Multiprocessing start method; defaults to ``fork`` on Linux,
        overridable via ``REPRO_MP_START_METHOD``.
    pool:
        Optional :class:`PersistentPool` to run on.  Without one (the
        default) every :meth:`run` call spawns and tears down its own
        ``multiprocessing.Pool``; with one, workers are reused across calls
        — :class:`repro.runtime.Runtime` hands these out.  Results are
        bit-identical either way.
    failure:
        The :class:`~repro.parallel.failure.FailurePolicy` governing worker
        loss and shard timeouts (default: degrade-and-recover).  Never
        influences results, only whether/where lost shards are re-executed.
    payload_mode:
        Payload transport for the *ephemeral* path (one of
        :data:`PAYLOAD_MODES`; default ``"pickle"``).  A bound ``pool``
        broadcasts with its own mode instead.  Transport never influences
        results.
    """

    def __init__(
        self,
        n_jobs: Optional[int] = None,
        start_method: Optional[str] = None,
        pool: Optional[PersistentPool] = None,
        failure: Optional[FailurePolicy] = None,
        payload_mode: str = "pickle",
    ):
        self._n_jobs = resolve_n_jobs(n_jobs)
        self._start_method = start_method
        self._pool = pool
        self._failure = failure if failure is not None else DEFAULT_FAILURE_POLICY
        self._payload_mode = validate_payload_mode(payload_mode)
        self._recovery = RecoveryStats()

    @property
    def n_jobs(self) -> int:
        """The resolved shard count (``-1`` already expanded)."""
        return self._n_jobs

    @property
    def failure(self) -> FailurePolicy:
        """The failure policy supervised runs execute under."""
        return self._failure

    @property
    def recovery_stats(self) -> RecoveryStats:
        """Recovery counters: the bound pool's, or this executor's own."""
        return self._pool.recovery_stats if self._pool is not None else self._recovery

    def run(
        self,
        task: Callable[[Any, Any], Any],
        payload: Any,
        shards: Sequence[Any],
    ) -> List[Any]:
        """Evaluate ``task(payload, shard)`` for every shard, in shard order.

        ``task`` must be a module-level (picklable) function.  With one shard
        or ``n_jobs=1`` the task runs inline in the parent — no pool, no
        pickling — which is the serial fall-back path.
        """
        shards = list(shards)
        if not shards:
            return []
        processes = min(self._n_jobs, len(shards))
        cap = worker_process_cap()
        if cap is not None:
            processes = min(processes, cap)
        if processes <= 1:
            return [task(payload, shard) for shard in shards]
        if self._pool is not None:
            return self._pool.run(
                task, payload, shards, processes, failure=self._failure
            )
        adapter = _EphemeralAdapter(
            self._start_method, task, payload, processes, self._payload_mode
        )
        try:
            return _supervise(
                adapter, shards, self._failure, self._recovery, "ephemeral pool"
            )
        finally:
            adapter.finish()
