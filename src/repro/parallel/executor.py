"""Sharded multiprocess execution.

:class:`ShardedExecutor` is the one place the library touches
:mod:`multiprocessing`.  It runs a picklable task function over a list of
*shards* — small per-worker argument tuples, typically ``(count, rng)`` —
against a *payload* shipped to every worker exactly once (the CSR graph and
edge probabilities).  On platforms with ``fork`` the payload is inherited
through the fork at no pickling cost; under ``spawn`` it is pickled once per
worker via the pool initializer.

Two pool lifetimes are supported.  The default is **ephemeral**: every
:meth:`ShardedExecutor.run` call spawns a pool and tears it down.  Passing a
:class:`PersistentPool` makes the workers **persistent** across calls —
payloads are broadcast once per distinct payload and addressed by token
afterwards — which is what :class:`repro.runtime.Runtime` uses to amortise
pool spawn (~30–60 ms/call) across RMA's doubling rounds.

Determinism contract
--------------------
The executor never influences results, only wall-clock:

* shard layout is a pure function of ``(total_work, n_jobs)``
  (:func:`shard_counts`), and each shard carries its own RNG substream
  derived with :func:`repro.utils.rng.spawn_rngs`, so which OS process runs
  which shard is irrelevant;
* results come back in shard order (``Pool.map`` preserves input order), so
  the parent's merge is deterministic;
* the ``REPRO_MAX_JOBS`` environment variable caps the number of *worker
  processes* (useful on small CI runners) without changing the shard layout,
  so a run with ``n_jobs=4`` produces bit-identical results whether the pool
  has 4 processes or 1.

``n_jobs`` semantics match the scikit-learn convention: ``None`` → 1
(serial, in-process, no pool), ``-1`` → ``os.cpu_count()``, any positive
integer → that many shards.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

#: Environment variable capping the number of concurrent worker processes
#: (shard layout — and therefore results — are unaffected).
MAX_JOBS_ENV = "REPRO_MAX_JOBS"

#: Environment variable overriding the multiprocessing start method
#: ("fork", "spawn" or "forkserver").
START_METHOD_ENV = "REPRO_MP_START_METHOD"


def validate_n_jobs(n_jobs: Optional[int], error_cls: type = ValueError) -> None:
    """Raise ``error_cls`` unless ``n_jobs`` is ``None``, ``-1`` or positive.

    The one place the ``n_jobs`` domain rule lives; parameter objects call
    this with their own error type so every knob rejects the same inputs.
    """
    if n_jobs is not None and n_jobs != -1 and int(n_jobs) <= 0:
        raise error_cls(f"n_jobs must be a positive int, -1 or None, got {n_jobs}")


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` knob to a positive shard count.

    ``None`` → 1, ``-1`` → ``os.cpu_count()``, positive ints pass through.
    ``0`` and other negatives are rejected.
    """
    validate_n_jobs(n_jobs)
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return os.cpu_count() or 1
    return n_jobs


def worker_process_cap() -> Optional[int]:
    """The ``REPRO_MAX_JOBS`` pool-size cap, or ``None`` when unset/invalid."""
    raw = os.environ.get(MAX_JOBS_ENV)
    if not raw:
        return None
    try:
        cap = int(raw)
    except ValueError:
        return None
    return cap if cap > 0 else None


def shard_counts(total: int, n_jobs: int) -> np.ndarray:
    """Split ``total`` work items into at most ``n_jobs`` contiguous shards.

    The first ``total % n_jobs`` shards receive one extra item; empty shards
    are dropped (when ``total < n_jobs``).  The layout depends only on
    ``(total, n_jobs)`` — this is what makes fixed-``(seed, n_jobs)`` runs
    reproducible regardless of scheduling.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if n_jobs <= 0:
        raise ValueError(f"n_jobs must be positive, got {n_jobs}")
    base, extra = divmod(total, n_jobs)
    counts = np.full(n_jobs, base, dtype=np.int64)
    counts[:extra] += 1
    return counts[counts > 0]


def _default_start_method() -> str:
    override = os.environ.get(START_METHOD_ENV)
    if override:
        return override
    # fork inherits the payload for free and is available on POSIX; macOS /
    # Windows default to spawn, where the payload is pickled once per worker.
    if sys.platform.startswith("linux"):
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)


_WORKER_PAYLOAD: Any = None
_WORKER_PAYLOADS: dict = {}
_WORKER_BARRIER: Any = None

#: Seconds a worker waits for its siblings during a payload broadcast before
#: declaring the pool broken (guards against a crashed worker hanging the
#: parent forever).
_BROADCAST_TIMEOUT_S = 600.0


def _freeze_inherited_heap() -> None:
    # Under fork the worker inherits the parent's whole object heap; without
    # this, the first collector cycles inside the worker walk every inherited
    # object and copy-on-write-fault the shared pages — measured at >3x CPU
    # on the sharded MC estimator when the parent holds a large RR-set
    # collection.  Freezing moves the inherited heap into the permanent
    # generation so the worker's collector never touches it.
    import gc

    gc.freeze()


def _init_worker(payload: Any) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload
    _freeze_inherited_heap()


def _call_task(task_and_shard) -> Any:
    task, shard = task_and_shard
    return task(_WORKER_PAYLOAD, shard)


def _init_persistent_worker(barrier: Any) -> None:
    global _WORKER_BARRIER
    _WORKER_BARRIER = barrier
    _WORKER_PAYLOADS.clear()
    _freeze_inherited_heap()


def _drop_payloads(_arg) -> None:
    """Forget every broadcast payload (cache-eviction broadcast).

    Runs under the same barrier discipline as :func:`_store_payload`, so
    every worker in the pool drops its cache exactly once.
    """
    _WORKER_PAYLOADS.clear()
    _WORKER_BARRIER.wait(timeout=_BROADCAST_TIMEOUT_S)


def _store_payload(token_and_payload) -> None:
    """Receive one broadcast payload and park on the barrier.

    The barrier guarantees exactly-once delivery per worker: a worker can
    only execute one task at a time, and the barrier releases only when
    every worker in the pool is simultaneously inside a store task — so no
    worker can grab a second copy while another has none.
    """
    token, payload = token_and_payload
    _WORKER_PAYLOADS[token] = payload
    _WORKER_BARRIER.wait(timeout=_BROADCAST_TIMEOUT_S)


def _call_task_by_token(task_token_shard) -> Any:
    task, token, shard = task_token_shard
    return task(_WORKER_PAYLOADS[token], shard)


class PersistentPool:
    """A worker pool that outlives individual sharded calls.

    Ephemeral execution (:meth:`ShardedExecutor.run` without a pool) spawns
    a fresh ``multiprocessing.Pool`` per call — ~30–60 ms each, which RMA's
    doubling rounds pay over and over.  A ``PersistentPool`` spawns its
    workers once (lazily, on the first call that actually shards) and reuses
    them; :class:`repro.runtime.Runtime` owns one per context.

    Payloads are shipped to every worker **once per distinct payload** via a
    barrier-synchronised broadcast and addressed by token afterwards, so
    repeated calls against the same graph/probabilities (the RMA pattern)
    pickle the payload once per worker for the lifetime of the pool instead
    of once per call.  Payload identity is object identity of the payload's
    elements — the pool keeps a strong reference, so ``id`` reuse cannot
    alias two different payloads.

    The pool never influences results: shard layout and RNG substreams are
    fixed by the caller, ``Pool.map`` preserves order, and pool size (capped
    by ``REPRO_MAX_JOBS``) only limits concurrency.
    """

    #: Distinct payloads kept broadcast in the workers before the cache is
    #: reset (bounds parent + worker memory when callers stream many
    #: one-off payloads through one long-lived pool).
    MAX_CACHED_PAYLOADS = 8

    def __init__(self, start_method: Optional[str] = None):
        self._start_method = start_method
        self._pool = None
        self._processes = 0
        self._spawn_count = 0
        self._tokens: dict = {}
        self._payloads: dict = {}
        self._next_token = 0

    @property
    def processes(self) -> int:
        """Worker count of the live pool (0 when no pool is up)."""
        return self._processes if self._pool is not None else 0

    @property
    def spawn_count(self) -> int:
        """How many times a worker pool has been spawned over this pool's life."""
        return self._spawn_count

    def _ensure(self, requested: int):
        """Return a pool with at least ``requested`` workers (or ``None`` serial).

        Growing an existing pool respawns it (and re-broadcasts payloads on
        demand); the common fixed-``n_jobs`` case spawns exactly once.
        """
        if requested <= 1:
            return None
        if self._pool is not None and self._processes >= requested:
            return self._pool
        self.close()
        context = multiprocessing.get_context(
            self._start_method or _default_start_method()
        )
        barrier = context.Barrier(requested)
        self._pool = context.Pool(
            requested, initializer=_init_persistent_worker, initargs=(barrier,)
        )
        self._processes = requested
        self._spawn_count += 1
        return self._pool

    def _payload_token(self, payload: Any) -> int:
        key = (
            tuple(id(element) for element in payload)
            if isinstance(payload, tuple)
            else (id(payload),)
        )
        token = self._tokens.get(key)
        if token is None:
            if len(self._tokens) >= self.MAX_CACHED_PAYLOADS:
                self._pool.map(
                    _drop_payloads, [None] * self._processes, chunksize=1
                )
                self._tokens.clear()
                self._payloads.clear()
            token = self._next_token
            self._next_token += 1
            self._tokens[key] = token
            self._payloads[token] = payload
            self._pool.map(
                _store_payload, [(token, payload)] * self._processes, chunksize=1
            )
        return token

    def run(
        self,
        task: Callable[[Any, Any], Any],
        payload: Any,
        shards: Sequence[Any],
        processes: int,
    ) -> List[Any]:
        """Evaluate ``task(payload, shard)`` per shard on the persistent workers.

        ``processes`` is the concurrency the caller wants (already capped by
        ``REPRO_MAX_JOBS``); results are bit-identical to the ephemeral path
        — same tasks, same shard args, same merge order.
        """
        pool = self._ensure(processes)
        if pool is None:
            return [task(payload, shard) for shard in shards]
        token = self._payload_token(payload)
        return pool.map(_call_task_by_token, [(task, token, shard) for shard in shards])

    def close(self) -> None:
        """Shut the workers down and forget broadcast payloads.

        The pool object stays usable — the next sharded call respawns
        workers (incrementing :attr:`spawn_count`)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._processes = 0
        self._tokens.clear()
        self._payloads.clear()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass


class ShardedExecutor:
    """Run a task over shards on a multiprocessing pool (or inline).

    Parameters
    ----------
    n_jobs:
        Target shard/worker count (``None`` → 1, ``-1`` → all cores).
    start_method:
        Multiprocessing start method; defaults to ``fork`` on Linux,
        overridable via ``REPRO_MP_START_METHOD``.
    pool:
        Optional :class:`PersistentPool` to run on.  Without one (the
        default) every :meth:`run` call spawns and tears down its own
        ``multiprocessing.Pool``; with one, workers are reused across calls
        — :class:`repro.runtime.Runtime` hands these out.  Results are
        bit-identical either way.
    """

    def __init__(
        self,
        n_jobs: Optional[int] = None,
        start_method: Optional[str] = None,
        pool: Optional[PersistentPool] = None,
    ):
        self._n_jobs = resolve_n_jobs(n_jobs)
        self._start_method = start_method
        self._pool = pool

    @property
    def n_jobs(self) -> int:
        """The resolved shard count (``-1`` already expanded)."""
        return self._n_jobs

    def run(
        self,
        task: Callable[[Any, Any], Any],
        payload: Any,
        shards: Sequence[Any],
    ) -> List[Any]:
        """Evaluate ``task(payload, shard)`` for every shard, in shard order.

        ``task`` must be a module-level (picklable) function.  With one shard
        or ``n_jobs=1`` the task runs inline in the parent — no pool, no
        pickling — which is the serial fall-back path.
        """
        shards = list(shards)
        if not shards:
            return []
        processes = min(self._n_jobs, len(shards))
        cap = worker_process_cap()
        if cap is not None:
            processes = min(processes, cap)
        if processes <= 1:
            return [task(payload, shard) for shard in shards]
        if self._pool is not None:
            return self._pool.run(task, payload, shards, processes)
        context = multiprocessing.get_context(self._start_method or _default_start_method())
        with context.Pool(
            processes, initializer=_init_worker, initargs=(payload,)
        ) as pool:
            return pool.map(_call_task, [(task, shard) for shard in shards])
