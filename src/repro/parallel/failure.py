"""Fault-tolerance policy and recovery telemetry for sharded execution.

:class:`FailurePolicy` describes *what the executor should do when a worker
process dies or a shard hangs*; it never influences results.  The repo's
determinism contract — shard layout and RNG substreams are pure functions of
``(seed, n_jobs)``, independent of which OS process runs which shard — means
any lost shard can be re-executed bit-identically, so recovery costs nothing
in reproducibility.  The policy only chooses *where* the re-execution happens
(a respawned pool, then in-process serial) or whether to fail fast instead.

:class:`RecoveryStats` is the mutable counter object that
:class:`~repro.parallel.executor.PersistentPool` and
:class:`~repro.parallel.executor.ShardedExecutor` update as they recover;
the CLI surfaces it next to the effective-policy printout, mirroring
``spawn_count``.

This module sits below :mod:`repro.runtime.policy` (which embeds a
``FailurePolicy`` in every :class:`~repro.runtime.ExecutionPolicy`) and below
:mod:`repro.parallel.executor` (which enforces it), so it imports nothing but
the exception hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import PolicyError

#: Valid ``on_pool_failure`` modes.
ON_POOL_FAILURE_MODES = ("degrade", "raise")


@dataclass(frozen=True)
class FailurePolicy:
    """Immutable description of how sharded execution reacts to failures.

    Attributes
    ----------
    shard_timeout_s:
        Wall-clock budget per shard, measured from submission (queueing
        behind a ``REPRO_MAX_JOBS``-capped pool counts).  ``None`` (the
        default) disables timeouts — worker *death* is still detected via
        process sentinels, so a default-policy run can no longer hang on a
        dead worker; the timeout exists to additionally catch live-but-stuck
        shards.
    max_retries:
        How many times a lost or timed-out shard is re-executed on a
        respawned pool before the degradation ladder moves on (serial
        in-process execution under ``"degrade"``).  Retries re-use the
        shard's original arguments — same RNG substream, same shard layout —
        so a retried run is bit-identical to a failure-free one.
    retry_backoff_s:
        Base sleep before a pool respawn; the ``k``-th retry of a shard
        sleeps ``retry_backoff_s * k``.  Gives transient conditions (an OOM
        killer sweep, a busy machine) room to clear.
    on_pool_failure:
        ``"degrade"`` (the default): recover — respawn the pool, re-broadcast
        the payloads the pending call needs, re-execute exactly the
        unfinished shards, and fall back to in-process serial execution once
        ``max_retries`` is exhausted.  ``"raise"``: fail fast with
        :class:`~repro.exceptions.WorkerCrashError` /
        :class:`~repro.exceptions.ShardTimeoutError` instead of recovering.
    """

    shard_timeout_s: Optional[float] = None
    max_retries: int = 2
    retry_backoff_s: float = 0.1
    on_pool_failure: str = "degrade"

    def __post_init__(self) -> None:
        if self.shard_timeout_s is not None and not self.shard_timeout_s > 0:
            raise PolicyError(
                f"shard_timeout_s must be positive or None, got {self.shard_timeout_s}"
            )
        if int(self.max_retries) < 0:
            raise PolicyError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.retry_backoff_s < 0:
            raise PolicyError(
                f"retry_backoff_s must be non-negative, got {self.retry_backoff_s}"
            )
        if self.on_pool_failure not in ON_POOL_FAILURE_MODES:
            raise PolicyError(
                f"on_pool_failure must be one of {ON_POOL_FAILURE_MODES}, "
                f"got {self.on_pool_failure!r}"
            )

    @classmethod
    def fail_fast(cls, shard_timeout_s: Optional[float] = None) -> "FailurePolicy":
        """The ``"raise"`` preset: surface the first failure, never retry."""
        return cls(
            shard_timeout_s=shard_timeout_s, max_retries=0, on_pool_failure="raise"
        )

    def describe(self) -> str:
        """Compact human-readable form (the CLI's effective-policy line)."""
        timeout = (
            "none" if self.shard_timeout_s is None else f"{self.shard_timeout_s:g}s"
        )
        return (
            f"{self.on_pool_failure}(timeout={timeout}, "
            f"retries={self.max_retries}, backoff={self.retry_backoff_s:g}s)"
        )


#: The default policy (module-level so identity checks and docs agree).
DEFAULT_FAILURE_POLICY = FailurePolicy()


@dataclass
class RecoveryStats:
    """Mutable recovery counters, mirroring ``PersistentPool.spawn_count``.

    One instance lives on each :class:`~repro.parallel.executor.PersistentPool`
    (accumulated across every call that runs on it) and on each ephemeral
    :class:`~repro.parallel.executor.ShardedExecutor`.  A clean run leaves
    every counter at zero — the equivalence suites assert exactly that.
    """

    worker_crashes: int = 0  #: dead-worker / broken-broadcast events detected
    shard_timeouts: int = 0  #: shards that exceeded ``shard_timeout_s``
    pool_respawns: int = 0  #: pools torn down and respawned for recovery
    shards_rerun: int = 0  #: shards re-executed on a respawned pool
    serial_fallbacks: int = 0  #: shards degraded to in-process serial execution

    @property
    def events(self) -> int:
        """Total recovery events (0 on a failure-free run)."""
        return (
            self.worker_crashes
            + self.shard_timeouts
            + self.pool_respawns
            + self.shards_rerun
            + self.serial_fallbacks
        )

    def describe(self) -> str:
        """One-line summary for logs and the CLI recovery printout."""
        return (
            f"crashes={self.worker_crashes} timeouts={self.shard_timeouts} "
            f"respawns={self.pool_respawns} reruns={self.shards_rerun} "
            f"serial_fallbacks={self.serial_fallbacks}"
        )

    def as_dict(self) -> dict:
        """JSON-ready counter snapshot (the allocation server's reply field)."""
        return {
            "worker_crashes": self.worker_crashes,
            "shard_timeouts": self.shard_timeouts,
            "pool_respawns": self.pool_respawns,
            "shards_rerun": self.shards_rerun,
            "serial_fallbacks": self.serial_fallbacks,
        }
