"""Fault-injection harness for the sharded execution layer.

The supervised executor (:mod:`repro.parallel.executor`) promises bit-identical
results when worker processes die mid-call.  That promise is only worth
something if it is *proved*, and real worker deaths (OOM kills, segfaults in C
extensions, operator ``kill -9``) cannot be staged reliably in a test suite —
so this module provides deterministic, test-driven stand-ins:

* :meth:`FaultInjector.kill_worker` — the worker that picks up shard ``k``
  calls ``os._exit`` before (or after) computing it, exactly like a SIGKILL
  mid-shard;
* :meth:`FaultInjector.delay_shard` — the worker sleeps past the configured
  ``shard_timeout_s`` before computing shard ``k``, simulating a live-but-hung
  worker;
* :meth:`FaultInjector.poison_broadcast` — one worker dies *inside* the
  barrier-synchronised payload broadcast, leaving its siblings parked on the
  barrier — the exact deadlock shape the supervised broadcast must break.

Faults are **driven by tests, not environment variables**: a test builds an
injector, arms faults, and installs it for the duration of a ``with`` block::

    injector = FaultInjector()
    injector.kill_worker(shard=1, when="before")
    with injector:
        results = executor.run(task, payload, shards)   # recovers, bit-identical

Installation is process-wide but parent-side only: the executor snapshots the
armed faults when it spawns a pool and ships them to the workers through the
pool initializer (so they survive both ``fork`` and ``spawn`` payload
delivery).  Each fault carries a cross-process one-shot latch — a
``multiprocessing`` shared ``Value`` — so a fault fires exactly ``times``
times no matter how often the recovering executor respawns the pool and
re-arms the workers.  In-process serial execution (the last rung of the
degradation ladder) never consults the harness: faults simulate *worker*
failures, and the serial fallback is precisely the path that has no workers
left to lose.
"""

from __future__ import annotations

import os
import time
from typing import Any, List, Optional

#: Fault kinds (internal).
KILL_BEFORE_SHARD = "kill-before-shard"
KILL_AFTER_SHARD = "kill-after-shard"
DELAY_SHARD = "delay-shard"
KILL_IN_BROADCAST = "kill-in-broadcast"

#: Exit code used by injected kills — distinctive in worker exit-code lists.
FAULT_EXIT_CODE = 86


class FaultSpec:
    """One armed fault with a cross-process firing latch.

    ``times`` bounds how often the fault fires (``-1`` → every time a worker
    reaches the hook, which makes a shard permanently unrunnable on *any*
    pool and forces the serial degradation rung).
    """

    def __init__(self, kind: str, shard: Optional[int], seconds: float, times: int, latch: Any):
        self.kind = kind
        self.shard = shard
        self.seconds = seconds
        self.times = times
        self._latch = latch

    def fire(self) -> bool:
        """Atomically claim one firing; ``True`` at most ``times`` times."""
        with self._latch.get_lock():
            if self.times != -1 and self._latch.value >= self.times:
                return False
            self._latch.value += 1
            return True

    @property
    def fire_count(self) -> int:
        """How often the fault has fired so far (parent-readable)."""
        return int(self._latch.value)


class FaultInjector:
    """Builds, installs and tracks a set of injectable faults.

    Parameters
    ----------
    context:
        The :mod:`multiprocessing` context whose shared ``Value`` primitives
        back the firing latches; defaults to the executor's default start
        method so latches and pools always come from the same context.
    """

    def __init__(self, context: Any = None):
        if context is None:
            import multiprocessing

            from repro.parallel.executor import _default_start_method

            context = multiprocessing.get_context(_default_start_method())
        self._context = context
        self.faults: List[FaultSpec] = []

    def _add(self, kind: str, shard: Optional[int] = None, seconds: float = 0.0,
             times: int = 1) -> FaultSpec:
        spec = FaultSpec(kind, shard, seconds, times, self._context.Value("i", 0))
        self.faults.append(spec)
        return spec

    def kill_worker(
        self, shard: Optional[int], when: str = "before", times: int = 1
    ) -> FaultSpec:
        """Kill the worker that picks up ``shard`` (``os._exit``, no cleanup).

        ``when="before"`` dies before any shard work runs; ``when="after"``
        dies after computing the result but before returning it — either way
        the parent never receives the shard and must re-execute it.
        ``shard=None`` is a wildcard: the fault fires on whichever shard a
        worker reaches first (callers that cannot predict the shard layout —
        the allocation-server fault suite — target "any shard of the next
        sharded call").
        """
        if when not in ("before", "after"):
            raise ValueError(f"when must be 'before' or 'after', got {when!r}")
        kind = KILL_BEFORE_SHARD if when == "before" else KILL_AFTER_SHARD
        return self._add(kind, shard=shard, times=times)

    def delay_shard(
        self, shard: Optional[int], seconds: float, times: int = 1
    ) -> FaultSpec:
        """Sleep ``seconds`` before computing ``shard`` (to trip a timeout).

        ``shard=None`` delays whichever shard is reached first (wildcard).
        """
        return self._add(DELAY_SHARD, shard=shard, seconds=seconds, times=times)

    def poison_broadcast(self, times: int = 1) -> FaultSpec:
        """Kill one worker inside the payload-broadcast barrier."""
        return self._add(KILL_IN_BROADCAST, times=times)

    # ------------------------------------------------------------------ #
    # installation
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "FaultInjector":
        install(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        uninstall(self)


#: The parent-side installed injector (snapshotted at pool spawn).
_INSTALLED: Optional[FaultInjector] = None

#: The worker-side armed fault list (set by the pool initializers).
_ARMED: List[FaultSpec] = []


def install(injector: FaultInjector) -> None:
    """Make ``injector`` the process-wide fault source for new pools."""
    global _INSTALLED
    _INSTALLED = injector


def uninstall(injector: FaultInjector) -> None:
    """Remove ``injector`` if it is the installed one."""
    global _INSTALLED
    if _INSTALLED is injector:
        _INSTALLED = None


def active_faults() -> Optional[List[FaultSpec]]:
    """Snapshot of the installed faults (shipped through pool initializers)."""
    if _INSTALLED is None or not _INSTALLED.faults:
        return None
    return list(_INSTALLED.faults)


def arm(specs: Optional[List[FaultSpec]]) -> None:
    """Worker-side: adopt the fault list shipped by the pool initializer."""
    global _ARMED
    _ARMED = list(specs) if specs else []


# ---------------------------------------------------------------------- #
# worker-side hooks (called from the executor's task wrappers)
# ---------------------------------------------------------------------- #
def _targets(spec: FaultSpec, index: int) -> bool:
    """Whether ``spec`` applies to shard ``index`` (``None`` = any shard)."""
    return spec.shard is None or spec.shard == index


def on_shard_start(index: int) -> None:
    """Fire ``kill-before`` / ``delay`` faults targeting shard ``index``."""
    for spec in _ARMED:
        if not _targets(spec, index):
            continue
        if spec.kind == KILL_BEFORE_SHARD and spec.fire():
            os._exit(FAULT_EXIT_CODE)
        if spec.kind == DELAY_SHARD and spec.fire():
            time.sleep(spec.seconds)


def on_shard_end(index: int) -> None:
    """Fire ``kill-after`` faults targeting shard ``index``."""
    for spec in _ARMED:
        if spec.kind == KILL_AFTER_SHARD and _targets(spec, index) and spec.fire():
            os._exit(FAULT_EXIT_CODE)


def on_broadcast() -> None:
    """Fire broadcast-poisoning faults (called from ``_store_payload``)."""
    for spec in _ARMED:
        if spec.kind == KILL_IN_BROADCAST and spec.fire():
            os._exit(FAULT_EXIT_CODE)
