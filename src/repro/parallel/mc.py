"""Sharded Monte-Carlo spread estimation.

Worker tasks and merge helpers behind the ``n_jobs`` knob of
:func:`repro.diffusion.engine.monte_carlo_spread` and
:func:`repro.diffusion.engine.singleton_spreads_monte_carlo`.

Both estimators are embarrassingly parallel: cascades are independent draws
merged by a monotone sum/concat, so each worker runs the batched
level-synchronous engine on its own :func:`spawn_rngs` substream and the
parent folds the integer activation totals together in shard order (the
supervised executor merges by shard position, so crash-recovery retries
cannot reorder — or change — the sum).

* ``monte_carlo_spread`` shards the *simulation count* — worker ``k`` runs
  ``counts[k]`` cascades of the same seed set and returns the integer total
  of activated nodes (integer merge ⇒ no float-order sensitivity).
* ``singleton_spreads_monte_carlo`` shards the *node list* into round-robin
  stripes (``node_array[k::n_jobs]``) — striping balances the
  degree-correlated per-node cost that contiguous chunks would skew — and
  the parent scatters the per-node totals back into node order.

Unless the caller pins ``batch_size``, each worker's cascade batch is sized
by dividing the engine's activation-bitmap budget
(:func:`repro.diffusion.engine.default_batch_size`) by the worker count, so
the *aggregate* bitmap footprint of the pool matches the serial engine's —
concurrent workers at the serial default would thrash the shared cache and
burn multiples of the serial CPU.  The derived size is a pure function of
``(num_nodes, total_work, n_jobs)``, preserving fixed-``(seed, n_jobs)``
bit-reproducibility.

Shard results carry worker CPU seconds for the perf harness, like
:mod:`repro.parallel.rr`.
"""

from __future__ import annotations

import time
from typing import List, NamedTuple, Optional

import numpy as np

from repro.graph.digraph import CSRDiGraph
from repro.parallel.executor import ShardedExecutor, shard_counts
from repro.utils.rng import RandomSource, spawn_rngs


class SpreadShard(NamedTuple):
    """Result of one spread-estimation shard."""

    activation_total: int  #: activated-node count summed over the shard's cascades
    cpu_seconds: float


class SingletonShard(NamedTuple):
    """Result of one singleton-spread shard (a round-robin node stripe)."""

    totals: np.ndarray  #: per-node activation totals over all simulations
    cpu_seconds: float


def _pooled_batch_size(
    num_nodes: int, total_cascades: int, n_jobs: int, batch_size: Optional[int]
) -> int:
    """Per-worker batch size keeping the pool's aggregate bitmap in budget."""
    if batch_size is not None:
        return batch_size
    from repro.diffusion.engine import default_batch_size

    return max(1, default_batch_size(num_nodes, total_cascades) // max(1, n_jobs))


def _spread_shard(payload, shard) -> SpreadShard:
    from repro.diffusion.engine import monte_carlo_activation_total

    # Only the big, stable buffers travel as payload (broadcast once per
    # distinct (graph, probabilities) on persistent pools); the per-call
    # values — seed set, batch size — ride in the small shard tuple.
    graph, probabilities = payload
    count, rng, seeds, batch_size = shard
    started = time.process_time()
    total = monte_carlo_activation_total(
        graph, probabilities, seeds, count, rng=rng, batch_size=batch_size
    )
    return SpreadShard(total, time.process_time() - started)


def run_spread_shards(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seeds: np.ndarray,
    num_simulations: int,
    rng: RandomSource,
    executor: ShardedExecutor,
    batch_size: Optional[int] = None,
) -> List[SpreadShard]:
    """Run ``num_simulations`` cascades of ``seeds`` across shards."""
    counts = shard_counts(num_simulations, executor.n_jobs)
    rngs = spawn_rngs(rng, len(counts))
    batch_size = _pooled_batch_size(
        graph.num_nodes, num_simulations, executor.n_jobs, batch_size
    )
    payload = (graph, edge_probabilities)
    shards = [
        (count, shard_rng, seeds, batch_size)
        for count, shard_rng in zip(counts.tolist(), rngs)
    ]
    return executor.run(_spread_shard, payload, shards)


def sharded_spread(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    seeds: np.ndarray,
    num_simulations: int,
    rng: RandomSource,
    executor: ShardedExecutor,
    batch_size: Optional[int] = None,
) -> float:
    """Sharded expected-spread estimate (mean activated nodes per cascade)."""
    shards = run_spread_shards(
        graph, edge_probabilities, seeds, num_simulations, rng, executor, batch_size
    )
    return sum(shard.activation_total for shard in shards) / num_simulations


def _singleton_shard(payload, shard) -> SingletonShard:
    from repro.diffusion.engine import singleton_activation_totals

    graph, probabilities = payload
    nodes, rng, num_simulations, batch_size = shard
    started = time.process_time()
    totals = singleton_activation_totals(
        graph, probabilities, nodes, num_simulations, rng=rng, batch_size=batch_size
    )
    return SingletonShard(totals, time.process_time() - started)


def run_singleton_shards(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    node_array: np.ndarray,
    num_simulations: int,
    rng: RandomSource,
    executor: ShardedExecutor,
    batch_size: Optional[int] = None,
) -> List[SingletonShard]:
    """Estimate singleton spreads for round-robin stripes of ``node_array``."""
    stripes = singleton_stripes(node_array, executor.n_jobs)
    rngs = spawn_rngs(rng, len(stripes))
    batch_size = _pooled_batch_size(
        graph.num_nodes, node_array.size * num_simulations, executor.n_jobs, batch_size
    )
    payload = (graph, edge_probabilities)
    shards = [
        (stripe, stripe_rng, num_simulations, batch_size)
        for stripe, stripe_rng in zip(stripes, rngs)
    ]
    return executor.run(_singleton_shard, payload, shards)


def singleton_stripes(node_array: np.ndarray, n_jobs: int) -> List[np.ndarray]:
    """Round-robin node stripes (``node_array[k::n_jobs]``), empty ones dropped."""
    stripes = [node_array[k::n_jobs] for k in range(n_jobs)]
    return [stripe for stripe in stripes if stripe.size]


def sharded_singleton_spreads(
    graph: CSRDiGraph,
    edge_probabilities: np.ndarray,
    node_array: np.ndarray,
    num_simulations: int,
    rng: RandomSource,
    executor: ShardedExecutor,
    batch_size: Optional[int] = None,
) -> np.ndarray:
    """Sharded per-node singleton-spread estimates, in ``node_array`` order."""
    shards = run_singleton_shards(
        graph, edge_probabilities, node_array, num_simulations, rng, executor, batch_size
    )
    if not shards:
        return np.zeros(0, dtype=np.float64)
    totals = np.zeros(node_array.size, dtype=np.int64)
    for stripe_index, shard in enumerate(shards):
        totals[stripe_index:: len(shards)] = shard.totals
    return totals.astype(np.float64) / num_simulations
