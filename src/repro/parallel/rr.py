"""Sharded RR-set generation.

Worker tasks and merge helpers behind
:meth:`repro.rrsets.generator.RRSetGenerator.generate_batch_parallel` and
:meth:`repro.rrsets.uniform.UniformRRSampler.generate_collection`.

Each shard builds its generator(s) against the fork-inherited (or
pickled-once) CSR graph — memoised per payload in the persistent pool's
:func:`~repro.parallel.executor.current_worker_cache`, so RMA's doubling
rounds reuse one generator (and its scratch buffers) per worker instead of
rebuilding it every call — draws from its own :func:`spawn_rngs` substream
and returns its RR-sets as **flat arrays** — one concatenated member array
plus a size array (and, for the uniform sampler, a tag array) — so the
pickle back to the parent is two or three large buffers instead of
thousands of tiny ones.  The parent merges shards by shard position (the supervised executor
returns results indexed by shard, regardless of completion order or
crash-recovery retries), which is what makes a fixed ``(seed, n_jobs)``
pair bit-reproducible — even when a worker died mid-call and its shards
were re-executed.

Each shard result also carries the worker's CPU seconds
(:func:`time.process_time`), which the perf harness uses to report
critical-path scaling on hosts with fewer physical cores than workers.
"""

from __future__ import annotations

import time
from typing import List, NamedTuple, Optional, Sequence, Tuple, Type

import numpy as np

from repro.graph.digraph import CSRDiGraph
from repro.parallel.executor import (
    ShardedExecutor,
    current_worker_cache,
    shard_counts,
)
from repro.utils.rng import RandomSource, spawn_rngs

_EMPTY = np.empty(0, dtype=np.int64)


class GenerationShard(NamedTuple):
    """Flat result of one RR-generation shard."""

    members: np.ndarray  #: all RR-set members concatenated, shard-local order
    sizes: np.ndarray  #: per-RR-set cardinalities aligned with ``members``
    edges_examined: int  #: generator cost counter for this shard
    cpu_seconds: float  #: worker CPU time spent on the shard


class UniformShard(NamedTuple):
    """Flat result of one uniform-sampler shard (tagged RR-sets)."""

    members: np.ndarray
    sizes: np.ndarray
    tags: np.ndarray  #: advertiser tag per RR-set
    edges_examined: np.ndarray  #: per-advertiser cost counters
    cpu_seconds: float


class StoreShard(NamedTuple):
    """Flat result of one RR-store slot-drawing shard (see :mod:`repro.rrsets.store`)."""

    slots: np.ndarray  #: absolute slot indices this shard drew
    members: np.ndarray  #: all drawn members concatenated, slot order
    sizes: np.ndarray  #: per-slot cardinalities aligned with ``members``
    tags: np.ndarray  #: advertiser tag per slot
    roots: np.ndarray  #: recorded root per slot (provenance)
    cpu_seconds: float


def split_flat(members: np.ndarray, sizes: np.ndarray) -> List[np.ndarray]:
    """Views of ``members`` per RR-set (no copies; the CSR inverse of a shard)."""
    if sizes.size == 0:
        return []
    return np.split(members, np.cumsum(sizes[:-1]))


def _generate_shard(payload, shard) -> GenerationShard:
    generator_cls, graph, probabilities = payload
    count, rng = shard
    started = time.process_time()
    cache = current_worker_cache()
    if cache is None:
        generator = generator_cls(graph, probabilities)
    else:
        generator = cache.get("generator")
        if generator is None:
            generator = cache["generator"] = generator_cls(graph, probabilities)
    # A cached generator accumulates edges_examined across calls, so report
    # this shard's cost as a delta rather than the counter's absolute value.
    edges_before = generator.edges_examined
    rr_sets = generator.generate_batch(count, rng)
    sizes = np.fromiter((s.size for s in rr_sets), dtype=np.int64, count=len(rr_sets))
    members = np.concatenate(rr_sets) if rr_sets else _EMPTY
    return GenerationShard(
        members,
        sizes,
        generator.edges_examined - edges_before,
        time.process_time() - started,
    )


def run_generation_shards(
    generator_cls: Type,
    graph: CSRDiGraph,
    probabilities: np.ndarray,
    count: int,
    rng: RandomSource,
    executor: ShardedExecutor,
) -> List[GenerationShard]:
    """Generate ``count`` RR-sets across the executor's shards.

    One RNG substream is spawned per shard from ``rng``; shard sizes follow
    :func:`repro.parallel.executor.shard_counts`.  Returns the raw per-shard
    results in shard order (the perf harness consumes the timings; normal
    callers use :func:`generate_batch_sharded`).
    """
    counts = shard_counts(count, executor.n_jobs)
    rngs = spawn_rngs(rng, len(counts))
    payload = (generator_cls, graph, probabilities)
    return executor.run(_generate_shard, payload, list(zip(counts.tolist(), rngs)))


def generate_batch_sharded(
    generator,
    count: int,
    rng: RandomSource,
    executor: ShardedExecutor,
) -> List[np.ndarray]:
    """Sharded equivalent of ``generator.generate_batch(count, rng)``.

    Returns the merged per-RR-set arrays in shard order and folds the
    workers' ``edges_examined`` counters back into ``generator``.  The
    returned arrays are views into each shard's flat buffer.
    """
    shards = run_generation_shards(
        type(generator),
        generator.graph,
        generator.edge_probabilities,
        count,
        rng,
        executor,
    )
    rr_sets: List[np.ndarray] = []
    for shard in shards:
        rr_sets.extend(split_flat(shard.members, shard.sizes))
        generator.record_edges_examined(shard.edges_examined)
    return rr_sets


def _generate_uniform_shard(payload, shard) -> UniformShard:
    generator_cls, graph, probability_arrays, weights = payload
    count, rng = shard
    started = time.process_time()
    cache = current_worker_cache()
    if cache is None:
        generators = [generator_cls(graph, probs) for probs in probability_arrays]
    else:
        generators = cache.get("generators")
        if generators is None:
            generators = cache["generators"] = [
                generator_cls(graph, probs) for probs in probability_arrays
            ]
    h = len(generators)
    edges_before = np.fromiter(
        (generator.edges_examined for generator in generators), dtype=np.int64, count=h
    )
    choice = rng.choice
    tags = np.empty(count, dtype=np.int64)
    sizes = np.empty(count, dtype=np.int64)
    rr_sets: List[np.ndarray] = []
    for index in range(count):
        # Same interleaved draw pattern as UniformRRSampler.generate_one —
        # advertiser draw, then that advertiser's RR-set, on one stream.
        advertiser = int(choice(h, p=weights))
        rr_set = generators[advertiser].generate(rng)
        tags[index] = advertiser
        sizes[index] = rr_set.size
        rr_sets.append(rr_set)
    members = np.concatenate(rr_sets) if rr_sets else _EMPTY
    edges = (
        np.fromiter(
            (generator.edges_examined for generator in generators),
            dtype=np.int64,
            count=h,
        )
        - edges_before
    )
    return UniformShard(members, sizes, tags, edges, time.process_time() - started)


def _draw_store_shard(payload, shard) -> StoreShard:
    generator_cls, graph, probability_arrays, weights, entropy = payload
    slots = np.asarray(shard, dtype=np.int64)
    started = time.process_time()
    cache = current_worker_cache()
    if cache is None:
        generators = [generator_cls(graph, probs) for probs in probability_arrays]
    else:
        generators = cache.get("store_generators")
        if generators is None:
            generators = cache["store_generators"] = [
                generator_cls(graph, probs) for probs in probability_arrays
            ]
    from repro.rrsets.store import draw_slot

    tags = np.empty(slots.size, dtype=np.int64)
    roots = np.empty(slots.size, dtype=np.int64)
    sizes = np.empty(slots.size, dtype=np.int64)
    rr_sets: List[np.ndarray] = []
    for index, slot in enumerate(slots.tolist()):
        members, advertiser, root = draw_slot(generators, weights, entropy, slot)
        tags[index] = advertiser
        roots[index] = root
        sizes[index] = members.size
        rr_sets.append(members)
    members = np.concatenate(rr_sets) if rr_sets else _EMPTY
    return StoreShard(slots, members, sizes, tags, roots, time.process_time() - started)


def run_store_shards(
    generator_cls: Type,
    graph: CSRDiGraph,
    probability_arrays: Sequence[np.ndarray],
    weights: np.ndarray,
    entropy: int,
    slots: np.ndarray,
    executor: ShardedExecutor,
) -> List[StoreShard]:
    """Draw the given RR-store slots across the executor's shards.

    Each slot draws from its own ``SeedSequence(entropy, spawn_key=(slot,))``
    substream (:func:`repro.rrsets.store.draw_slot`), so the shard layout —
    and therefore ``n_jobs``, pool reuse, crash recovery — can never change
    the result: the merged slots are bit-identical to a serial draw.
    """
    counts = shard_counts(int(slots.size), executor.n_jobs)
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    shards = [slots[offsets[i]: offsets[i + 1]] for i in range(counts.size)]
    if not isinstance(probability_arrays, list):
        probability_arrays = list(probability_arrays)
    payload = (generator_cls, graph, probability_arrays, weights, entropy)
    return executor.run(_draw_store_shard, payload, shards)


def run_uniform_shards(
    generator_cls: Type,
    graph: CSRDiGraph,
    probability_arrays: Sequence[np.ndarray],
    weights: np.ndarray,
    count: int,
    rng: RandomSource,
    executor: ShardedExecutor,
) -> List[UniformShard]:
    """Generate ``count`` advertiser-tagged RR-sets across shards.

    Each shard samples advertisers from ``weights`` and generates against its
    own substream; shard results come back in shard order.
    """
    counts = shard_counts(count, executor.n_jobs)
    rngs = spawn_rngs(rng, len(counts))
    # Keep the caller's list object when possible: persistent pools cache
    # broadcast payloads by element identity, so rebuilding the list every
    # call would re-pickle the probability arrays to every worker each round.
    if not isinstance(probability_arrays, list):
        probability_arrays = list(probability_arrays)
    payload = (generator_cls, graph, probability_arrays, weights)
    return executor.run(_generate_uniform_shard, payload, list(zip(counts.tolist(), rngs)))
