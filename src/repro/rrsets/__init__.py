"""Reverse-reachable set machinery (Borgs et al. [12]) adapted to the RM problem.

RR engine architecture
----------------------
The engine is a four-layer pipeline, vectorized end to end over the graph's
CSR arrays:

1. **Generation** (:mod:`~repro.rrsets.generator`) — reverse traversal with
   an int64 visit-stamp array instead of a Python set, edge probabilities
   pre-gathered into in-CSR order, and per-frontier-node Bernoulli blocks
   (or SUBSIM geometric skips for nodes with uniform in-probabilities,
   detected in one ``np.ufunc.reduceat`` pass).  ``generate_batch`` reuses
   the traversal buffers across RR-sets.
2. **Storage** (:class:`~repro.rrsets.collection.RRCollection`) — an
   append-only API backed by a frozen CSR view (concatenated member array +
   offsets + tag array) built lazily on first query; the
   ``(advertiser, node) → RR-sets`` inverted index is one stable
   ``np.argsort`` over flattened keys, queried with ``np.searchsorted``.
3. **Coverage** (:class:`~repro.rrsets.collection.CoverageState`) — greedy
   max-coverage bookkeeping on an ``(h, n)`` int64 marginal matrix and a
   boolean covered mask: construction is a single ``np.bincount``,
   ``add_seed`` a handful of fancy-indexing scatter ops.
4. **Estimation** (:mod:`~repro.rrsets.estimators`,
   :class:`~repro.advertising.oracle.RRSetOracle`) — covered-index sets as
   sorted int64 arrays merged with ``np.union1d``.

The engine consumes randomness in exactly the same order as the seed
implementation (preserved in :mod:`~repro.rrsets.legacy`), so a fixed seed
yields bit-identical RR-sets — ``tests/test_rr_engine_equivalence.py`` pins
this and ``benchmarks/bench_rr_engine.py`` tracks the speedup.
"""

from repro.rrsets.generator import RRProvenance, RRSetGenerator, SubsimRRGenerator
from repro.rrsets.collection import RRCollection, CoverageState
from repro.rrsets.store import MaintenanceReport, RRStore, SlotProvenance
from repro.rrsets.uniform import UniformRRSampler, PerAdvertiserRRSampler
from repro.rrsets.estimators import (
    estimate_total_revenue,
    estimate_advertiser_revenue,
    estimate_spread,
)

__all__ = [
    "RRProvenance",
    "RRSetGenerator",
    "SubsimRRGenerator",
    "RRCollection",
    "CoverageState",
    "MaintenanceReport",
    "RRStore",
    "SlotProvenance",
    "UniformRRSampler",
    "PerAdvertiserRRSampler",
    "estimate_total_revenue",
    "estimate_advertiser_revenue",
    "estimate_spread",
]
