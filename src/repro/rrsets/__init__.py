"""Reverse-reachable set machinery (Borgs et al. [12]) adapted to the RM problem."""

from repro.rrsets.generator import RRSetGenerator, SubsimRRGenerator
from repro.rrsets.collection import RRCollection, CoverageState
from repro.rrsets.uniform import UniformRRSampler, PerAdvertiserRRSampler
from repro.rrsets.estimators import (
    estimate_total_revenue,
    estimate_advertiser_revenue,
    estimate_spread,
)

__all__ = [
    "RRSetGenerator",
    "SubsimRRGenerator",
    "RRCollection",
    "CoverageState",
    "UniformRRSampler",
    "PerAdvertiserRRSampler",
    "estimate_total_revenue",
    "estimate_advertiser_revenue",
    "estimate_spread",
]
