"""Collections of advertiser-tagged RR-sets and incremental coverage tracking.

The uniform sampling scheme of Section 4.2 tags every RR-set with the
advertiser it was generated for.  Revenue estimation and the greedy inner
loops of the solvers then reduce to weighted maximum coverage over the tagged
collection:

* ``π̃(S⃗, R) = nΓ · (#covered RR-sets) / |R|`` where an RR-set tagged ``j``
  is covered iff ``S_j`` intersects it (Lemma 4.1).
* The marginal gain of assigning node ``u`` to advertiser ``i`` is
  ``nΓ/|R|`` times the number of *uncovered* RR-sets tagged ``i`` that
  contain ``u``.

:class:`CoverageState` maintains those marginal counts incrementally so that
each greedy pass over the collection costs ``O(Σ |R_k|)`` amortised.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SamplingError


class RRCollection:
    """An append-only list of RR-sets, each tagged with an advertiser index.

    Parameters
    ----------
    num_nodes:
        Number of nodes in the underlying graph (for validation and the
        estimator scale factor).
    num_advertisers:
        Number of advertisers ``h``; tags must lie in ``[0, h)``.
    """

    def __init__(self, num_nodes: int, num_advertisers: int):
        if num_nodes <= 0:
            raise SamplingError("num_nodes must be positive")
        if num_advertisers <= 0:
            raise SamplingError("num_advertisers must be positive")
        self._num_nodes = num_nodes
        self._num_advertisers = num_advertisers
        self._sets: List[np.ndarray] = []
        self._tags: List[int] = []
        # (advertiser, node) -> list of RR-set indices containing node with that tag
        self._membership: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        self._total_size = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, rr_set: Sequence[int], advertiser: int) -> int:
        """Append one RR-set tagged with ``advertiser``; returns its index."""
        if not 0 <= advertiser < self._num_advertisers:
            raise SamplingError(f"advertiser tag {advertiser} out of range")
        members = np.unique(np.asarray(rr_set, dtype=np.int64))
        if members.size == 0:
            raise SamplingError("an RR-set always contains at least its root")
        if members.min() < 0 or members.max() >= self._num_nodes:
            raise SamplingError("RR-set contains invalid node ids")
        index = len(self._sets)
        self._sets.append(members)
        self._tags.append(int(advertiser))
        self._total_size += int(members.size)
        for node in members.tolist():
            self._membership[(int(advertiser), node)].append(index)
        return index

    def extend(self, rr_sets: Iterable[Tuple[Sequence[int], int]]) -> None:
        """Append many ``(rr_set, advertiser)`` pairs."""
        for rr_set, advertiser in rr_sets:
            self.add(rr_set, advertiser)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._sets)

    @property
    def num_nodes(self) -> int:
        """Number of graph nodes this collection refers to."""
        return self._num_nodes

    @property
    def num_advertisers(self) -> int:
        """Number of advertiser tags."""
        return self._num_advertisers

    @property
    def total_size(self) -> int:
        """Sum of RR-set cardinalities (memory/work proxy)."""
        return self._total_size

    def rr_set(self, index: int) -> np.ndarray:
        """The node members of RR-set ``index``."""
        return self._sets[index]

    def tag(self, index: int) -> int:
        """The advertiser tag of RR-set ``index``."""
        return self._tags[index]

    def tags(self) -> np.ndarray:
        """All advertiser tags as an array aligned with RR-set indices."""
        return np.asarray(self._tags, dtype=np.int64)

    def count_per_advertiser(self) -> np.ndarray:
        """Number of RR-sets tagged with each advertiser."""
        counts = np.zeros(self._num_advertisers, dtype=np.int64)
        for tag in self._tags:
            counts[tag] += 1
        return counts

    def sets_containing(self, advertiser: int, node: int) -> List[int]:
        """Indices of RR-sets tagged ``advertiser`` that contain ``node``."""
        return list(self._membership.get((advertiser, node), ()))

    def coverage_count(self, advertiser: int, nodes: Iterable[int]) -> int:
        """Number of RR-sets tagged ``advertiser`` intersecting ``nodes``."""
        covered: set[int] = set()
        for node in nodes:
            covered.update(self._membership.get((advertiser, int(node)), ()))
        return len(covered)

    def memory_proxy_bytes(self) -> int:
        """Approximate memory footprint of the stored RR-sets, in bytes."""
        return self._total_size * 8 + len(self._sets) * 64


class CoverageState:
    """Incremental coverage bookkeeping for greedy selection on a collection.

    The state tracks, for every ``(advertiser, node)`` pair, how many RR-sets
    tagged with that advertiser contain the node and are not yet covered by
    the current allocation.  Adding a node to an advertiser's seed set marks
    the relevant RR-sets covered and decrements the counts of every other
    node they contain — the textbook maximum-coverage update.
    """

    def __init__(self, collection: RRCollection):
        self._collection = collection
        self._covered = np.zeros(len(collection), dtype=bool)
        self._marginal: Dict[Tuple[int, int], int] = defaultdict(int)
        for index in range(len(collection)):
            tag = collection.tag(index)
            for node in collection.rr_set(index).tolist():
                self._marginal[(tag, node)] += 1
        self._covered_count = 0
        self._covered_per_advertiser = np.zeros(collection.num_advertisers, dtype=np.int64)

    @property
    def collection(self) -> RRCollection:
        """The underlying RR-set collection."""
        return self._collection

    @property
    def covered_count(self) -> int:
        """Total number of covered RR-sets."""
        return self._covered_count

    def covered_count_for(self, advertiser: int) -> int:
        """Number of covered RR-sets tagged ``advertiser``."""
        return int(self._covered_per_advertiser[advertiser])

    def marginal_coverage(self, advertiser: int, node: int) -> int:
        """Uncovered RR-sets tagged ``advertiser`` that contain ``node``."""
        return self._marginal.get((advertiser, int(node)), 0)

    def is_covered(self, index: int) -> bool:
        """Whether RR-set ``index`` is already covered."""
        return bool(self._covered[index])

    def add_seed(self, advertiser: int, node: int) -> int:
        """Assign ``node`` to ``advertiser`` and return the newly covered count."""
        newly_covered = 0
        for index in self._collection.sets_containing(advertiser, int(node)):
            if self._covered[index]:
                continue
            self._covered[index] = True
            newly_covered += 1
            tag = self._collection.tag(index)
            for member in self._collection.rr_set(index).tolist():
                key = (tag, member)
                current = self._marginal.get(key, 0)
                if current > 0:
                    self._marginal[key] = current - 1
        self._covered_count += newly_covered
        self._covered_per_advertiser[advertiser] += newly_covered
        return newly_covered

    def copy(self) -> "CoverageState":
        """Deep copy of the state (used when a solver explores alternatives)."""
        clone = CoverageState.__new__(CoverageState)
        clone._collection = self._collection
        clone._covered = self._covered.copy()
        clone._marginal = dict(self._marginal)
        # defaultdict semantics are not needed on the copy path; .get covers misses
        clone._covered_count = self._covered_count
        clone._covered_per_advertiser = self._covered_per_advertiser.copy()
        return clone
