"""Collections of advertiser-tagged RR-sets and incremental coverage tracking.

The uniform sampling scheme of Section 4.2 tags every RR-set with the
advertiser it was generated for.  Revenue estimation and the greedy inner
loops of the solvers then reduce to weighted maximum coverage over the tagged
collection:

* ``π̃(S⃗, R) = nΓ · (#covered RR-sets) / |R|`` where an RR-set tagged ``j``
  is covered iff ``S_j`` intersects it (Lemma 4.1).
* The marginal gain of assigning node ``u`` to advertiser ``i`` is
  ``nΓ/|R|`` times the number of *uncovered* RR-sets tagged ``i`` that
  contain ``u``.

Storage layout
--------------
:class:`RRCollection` keeps the append-only list API but backs all queries
with a frozen CSR view built lazily on first query and invalidated by
``add``:

* ``member_array`` / ``set_offsets`` — every RR-set's members concatenated,
  with CSR offsets (RR-set ``k`` is ``member_array[set_offsets[k]:set_offsets[k+1]]``);
* ``tag_array`` — the advertiser tag of every RR-set;
* an inverted index from ``(advertiser, node)`` to the RR-sets containing
  the node under that tag, built in **one** stable ``np.argsort`` over the
  flattened keys ``tag·n + node`` and queried with two ``np.searchsorted``
  calls — replacing the seed implementation's per-node dict appends.

:class:`CoverageState` maintains the greedy marginal counts on a flat
``(h·n,)`` int64 array (conceptually the ``(h, n)`` marginal matrix) plus a
boolean covered mask, so ``add_seed`` is a handful of fancy-indexing
operations and construction is a single ``np.bincount`` pass.

The flat layout is deliberate: entry ``advertiser·n + node`` of the raveled
marginal matrix is addressed by the same int64 key the batched lazy-greedy
engine (:mod:`repro.core.batched_greedy`) uses to encode greedy elements,
so re-evaluating a batch of CELF candidates is one fancy-index gather and
the seeding-cost lookup shares the key via the raveled ``(h, n)`` cost
matrix.  See ``docs/architecture.md`` for how the three flat-array engines
fit together.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SamplingError

_EMPTY_INDEX = np.empty(0, dtype=np.int64)


class RRCollection:
    """An append-only list of RR-sets, each tagged with an advertiser index.

    Parameters
    ----------
    num_nodes:
        Number of nodes in the underlying graph (for validation and the
        estimator scale factor).
    num_advertisers:
        Number of advertisers ``h``; tags must lie in ``[0, h)``.
    """

    def __init__(self, num_nodes: int, num_advertisers: int):
        if num_nodes <= 0:
            raise SamplingError("num_nodes must be positive")
        if num_advertisers <= 0:
            raise SamplingError("num_advertisers must be positive")
        self._num_nodes = num_nodes
        self._num_advertisers = num_advertisers
        self._sets: List[np.ndarray] = []
        self._tags: List[int] = []
        self._total_size = 0
        # Lazily built CSR view + inverted index (invalidated by add()).
        self._csr_size = -1  # number of sets the cached CSR covers; -1 = none
        self._member_array = _EMPTY_INDEX
        self._set_offsets = np.zeros(1, dtype=np.int64)
        self._tag_array = _EMPTY_INDEX
        self._inverted_sets = _EMPTY_INDEX
        self._key_offsets = np.zeros(1, dtype=np.int64)  # allocated in _ensure_csr
        self._membership_counts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, rr_set: Sequence[int], advertiser: int) -> int:
        """Append one RR-set tagged with ``advertiser``; returns its index."""
        if not 0 <= advertiser < self._num_advertisers:
            raise SamplingError(f"advertiser tag {advertiser} out of range")
        members = np.asarray(rr_set, dtype=np.int64)
        if members.ndim == 1 and members.size and np.all(members[1:] > members[:-1]):
            members = members.copy()  # detach from the caller's buffer
        else:
            members = np.unique(members)
        if members.size == 0:
            raise SamplingError("an RR-set always contains at least its root")
        if members[0] < 0 or members[-1] >= self._num_nodes:
            raise SamplingError("RR-set contains invalid node ids")
        index = len(self._sets)
        self._sets.append(members)
        self._tags.append(int(advertiser))
        self._total_size += int(members.size)
        return index

    def extend(self, rr_sets: Iterable[Tuple[Sequence[int], int]]) -> None:
        """Append many ``(rr_set, advertiser)`` pairs."""
        for rr_set, advertiser in rr_sets:
            self.add(rr_set, advertiser)

    @classmethod
    def from_shards(
        cls,
        num_nodes: int,
        num_advertisers: int,
        shards: Iterable[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> "RRCollection":
        """Build a collection directly from per-shard flat arrays.

        Each shard is a ``(members, sizes, tags)`` triple: all the shard's
        RR-set members concatenated, the per-set cardinalities and the per-set
        advertiser tags.  Shards are concatenated in the given order and the
        CSR view + inverted index are built straight from the flat arrays —
        no per-set ``add`` calls, no intermediate Python-list round-trip.
        This is the merge step of the sharded generation pipeline
        (:mod:`repro.parallel.rr`); every member array must already be sorted
        and duplicate-free, as the generators guarantee.
        """
        collection = cls(num_nodes, num_advertisers)
        collection.extend_from_shards(shards)
        return collection

    def extend_from_shards(
        self, shards: Iterable[Tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> None:
        """Append per-shard ``(members, sizes, tags)`` triples in shard order.

        Validation is vectorised over each shard (node-id range, tag range,
        non-empty sets, strictly increasing members within every set).  When
        the collection was empty the CSR view and inverted index are built
        eagerly from the concatenated shard arrays; when appending to a
        non-empty collection the cached view is invalidated and rebuilt
        lazily on the next query, like :meth:`add`.
        """
        was_empty = not self._sets
        flats: List[np.ndarray] = []
        size_parts: List[np.ndarray] = []
        tag_parts: List[np.ndarray] = []
        for members, sizes, tags in shards:
            members = np.ascontiguousarray(members, dtype=np.int64)
            sizes = np.asarray(sizes, dtype=np.int64)
            tags = np.asarray(tags, dtype=np.int64)
            if sizes.shape != tags.shape or sizes.ndim != 1:
                raise SamplingError("sizes and tags must be 1-D arrays of equal length")
            if int(sizes.sum()) != members.size:
                raise SamplingError("sizes must sum to the member-array length")
            if sizes.size == 0:
                continue
            if sizes.min() <= 0:
                raise SamplingError("an RR-set always contains at least its root")
            if tags.min() < 0 or tags.max() >= self._num_advertisers:
                raise SamplingError("advertiser tag out of range")
            if members.min() < 0 or members.max() >= self._num_nodes:
                raise SamplingError("RR-set contains invalid node ids")
            if members.size > 1:
                # Strictly increasing within each set: non-positive diffs are
                # only allowed at set boundaries.
                non_increasing = np.diff(members) <= 0
                boundaries = np.cumsum(sizes[:-1]) - 1
                non_increasing[boundaries] = False
                if non_increasing.any():
                    raise SamplingError("RR-set members must be sorted and unique")
            flats.append(members)
            size_parts.append(sizes)
            tag_parts.append(tags)
        if not flats:
            return
        # Fresh buffers in both branches (concatenate always copies) for the
        # arrays _build_csr freezes, so a caller's array never has its write
        # flag flipped.
        flat = flats[0].copy() if len(flats) == 1 else np.concatenate(flats)
        sizes = size_parts[0] if len(size_parts) == 1 else np.concatenate(size_parts)
        tags = tag_parts[0].copy() if len(tag_parts) == 1 else np.concatenate(tag_parts)
        # The list API (rr_set / add interleaving) stays available: per-set
        # views into the flat buffer, no per-element copies.  Freeze the
        # buffer first so the views are read-only — they share storage with
        # the CSR member array.
        flat.setflags(write=False)
        self._sets.extend(np.split(flat, np.cumsum(sizes[:-1])))
        self._tags.extend(tags.tolist())
        self._total_size += int(flat.size)
        if was_empty:
            self._build_csr(flat, sizes, tags)
        else:
            self._csr_size = -1

    def compact(
        self,
        replacements: Optional[Mapping[int, Tuple[Sequence[int], int]]] = None,
        drop: Iterable[int] = (),
    ) -> "RRCollection":
        """Tombstone-aware compaction: rebuild the collection on the flat layout.

        ``drop`` tombstones RR-set indices out of the result; ``replacements``
        maps indices to ``(members, advertiser)`` pairs substituted in place.
        Surviving sets keep their relative order (replaced sets keep their
        exact index when nothing is dropped), so an incremental store that
        replaces invalidated sets slot-for-slot stays index-aligned with a
        freshly generated collection.  The result is built through the
        :meth:`extend_from_shards` flat-array path — one concatenation, one
        eager CSR/inverted-index build, no per-set ``add`` calls.
        """
        count = len(self._sets)
        drop_set = {int(index) for index in drop}
        for index in drop_set:
            if not 0 <= index < count:
                raise SamplingError(f"drop index {index} out of range")
        normalized: dict = {}
        if replacements:
            for index, (members, advertiser) in replacements.items():
                index = int(index)
                if not 0 <= index < count:
                    raise SamplingError(f"replacement index {index} out of range")
                if index in drop_set:
                    raise SamplingError(
                        f"index {index} cannot be both dropped and replaced"
                    )
                normalized[index] = (
                    np.unique(np.asarray(members, dtype=np.int64)),
                    int(advertiser),
                )
        kept: List[np.ndarray] = []
        sizes: List[int] = []
        tags: List[int] = []
        for index in range(count):
            if index in drop_set:
                continue
            members, tag = normalized.get(index, (None, None))
            if members is None:
                members, tag = self._sets[index], self._tags[index]
            kept.append(members)
            sizes.append(int(members.size))
            tags.append(int(tag))
        compacted = RRCollection(self._num_nodes, self._num_advertisers)
        flat = np.concatenate(kept) if kept else _EMPTY_INDEX
        compacted.extend_from_shards(
            [(
                flat,
                np.asarray(sizes, dtype=np.int64),
                np.asarray(tags, dtype=np.int64),
            )]
        )
        return compacted

    def _ensure_csr(self) -> None:
        """(Re)build the frozen CSR view and inverted index if stale."""
        count = len(self._sets)
        if self._csr_size == count:
            return
        sizes = np.fromiter((s.size for s in self._sets), dtype=np.int64, count=count)
        flat = (
            np.concatenate(self._sets) if count else _EMPTY_INDEX
        ).astype(np.int64, copy=False)
        tags = np.asarray(self._tags, dtype=np.int64)
        self._build_csr(flat, sizes, tags)

    def _build_csr(self, flat: np.ndarray, sizes: np.ndarray, tags: np.ndarray) -> None:
        """Build the CSR view + inverted index from pre-flattened arrays."""
        count = int(sizes.size)
        offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        keys = np.repeat(tags, sizes) * self._num_nodes + flat
        # Stable sort keeps RR-set indices ascending within each key, matching
        # the append order of the seed implementation's per-node lists.
        order = np.argsort(keys, kind="stable")
        self._member_array = flat
        self._set_offsets = offsets
        self._tag_array = tags
        self._inverted_sets = np.repeat(np.arange(count, dtype=np.int64), sizes)[order]
        # Keys are dense ints in [0, h·n), so one bincount yields both the
        # membership-count matrix and the per-key slice offsets — queries
        # become plain indexing, no per-query searchsorted.
        counts = np.bincount(keys, minlength=self._num_advertisers * self._num_nodes)
        self._membership_counts = counts.reshape(self._num_advertisers, self._num_nodes)
        key_offsets = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=key_offsets[1:])
        self._key_offsets = key_offsets
        # The query API hands out views of these arrays; freeze them so an
        # in-place caller mutation cannot corrupt the shared index.
        for array in (self._member_array, self._set_offsets, self._tag_array,
                      self._inverted_sets, self._membership_counts):
            array.setflags(write=False)
        self._csr_size = count

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._sets)

    @property
    def num_nodes(self) -> int:
        """Number of graph nodes this collection refers to."""
        return self._num_nodes

    @property
    def num_advertisers(self) -> int:
        """Number of advertiser tags."""
        return self._num_advertisers

    @property
    def total_size(self) -> int:
        """Sum of RR-set cardinalities (memory/work proxy)."""
        return self._total_size

    def rr_set(self, index: int) -> np.ndarray:
        """The node members of RR-set ``index`` (sorted, unique)."""
        return self._sets[index]

    def tag(self, index: int) -> int:
        """The advertiser tag of RR-set ``index``."""
        return self._tags[index]

    def tags(self) -> np.ndarray:
        """All advertiser tags as an array aligned with RR-set indices."""
        return np.asarray(self._tags, dtype=np.int64)

    def count_per_advertiser(self) -> np.ndarray:
        """Number of RR-sets tagged with each advertiser."""
        return np.bincount(
            np.asarray(self._tags, dtype=np.int64), minlength=self._num_advertisers
        )

    # -- CSR view ------------------------------------------------------- #
    @property
    def member_array(self) -> np.ndarray:
        """All RR-set members concatenated (CSR values; triggers a lazy build)."""
        self._ensure_csr()
        return self._member_array

    @property
    def set_offsets(self) -> np.ndarray:
        """CSR offsets into :attr:`member_array`, length ``len(self) + 1``."""
        self._ensure_csr()
        return self._set_offsets

    @property
    def tag_array(self) -> np.ndarray:
        """Advertiser tag per RR-set as an int64 array (CSR view)."""
        self._ensure_csr()
        return self._tag_array

    def set_sizes(self) -> np.ndarray:
        """Cardinality of every RR-set."""
        return np.diff(self.set_offsets)

    def membership_counts(self) -> np.ndarray:
        """The ``(h, n)`` matrix counting RR-sets tagged ``i`` containing ``u``.

        Equals the initial marginal matrix of :class:`CoverageState`; computed
        by one ``np.bincount`` during the CSR build and cached until the next
        ``add``.
        """
        self._ensure_csr()
        return self._membership_counts

    def sets_containing_array(self, advertiser: int, node: int) -> np.ndarray:
        """Indices of RR-sets tagged ``advertiser`` containing ``node`` (sorted array).

        Returns a read-only slice of the inverted index — no copies on the
        greedy hot path.
        """
        if not (0 <= node < self._num_nodes and 0 <= advertiser < self._num_advertisers):
            return _EMPTY_INDEX
        if self._csr_size != len(self._sets):
            self._ensure_csr()
        key = advertiser * self._num_nodes + node
        offsets = self._key_offsets
        return self._inverted_sets[offsets[key]: offsets[key + 1]]

    def sets_containing(self, advertiser: int, node: int) -> List[int]:
        """Indices of RR-sets tagged ``advertiser`` that contain ``node``."""
        return self.sets_containing_array(advertiser, int(node)).tolist()

    def coverage_count(self, advertiser: int, nodes: Iterable[int]) -> int:
        """Number of RR-sets tagged ``advertiser`` intersecting ``nodes``."""
        slices = [
            self.sets_containing_array(advertiser, int(node)) for node in nodes
        ]
        slices = [s for s in slices if s.size]
        if not slices:
            return 0
        if len(slices) == 1:
            return int(slices[0].size)  # already unique per (tag, node)
        return int(np.unique(np.concatenate(slices)).size)

    def memory_proxy_bytes(self) -> int:
        """Approximate memory footprint of the stored RR-sets, in bytes."""
        return self._total_size * 8 + len(self._sets) * 64


class CoverageState:
    """Incremental coverage bookkeeping for greedy selection on a collection.

    The state tracks, for every ``(advertiser, node)`` pair, how many RR-sets
    tagged with that advertiser contain the node and are not yet covered by
    the current allocation.  Adding a node to an advertiser's seed set marks
    the relevant RR-sets covered and decrements the counts of every other
    node they contain — the textbook maximum-coverage update, done with
    ``np.subtract.at`` on the flat marginal matrix instead of per-int dict
    updates.
    """

    def __init__(self, collection: RRCollection):
        self._collection = collection
        self._num_nodes = collection.num_nodes
        self._covered = np.zeros(len(collection), dtype=bool)
        self._marginal = collection.membership_counts().ravel().astype(np.int64)
        self._covered_count = 0
        self._covered_per_advertiser = np.zeros(collection.num_advertisers, dtype=np.int64)

    @property
    def collection(self) -> RRCollection:
        """The underlying RR-set collection."""
        return self._collection

    @property
    def covered_count(self) -> int:
        """Total number of covered RR-sets."""
        return self._covered_count

    def covered_count_for(self, advertiser: int) -> int:
        """Number of covered RR-sets tagged ``advertiser``."""
        return int(self._covered_per_advertiser[advertiser])

    def marginal_coverage(self, advertiser: int, node: int) -> int:
        """Uncovered RR-sets tagged ``advertiser`` that contain ``node``."""
        return int(self._marginal[advertiser * self._num_nodes + int(node)])

    def marginal_matrix(self) -> np.ndarray:
        """The full ``(h, n)`` marginal-coverage matrix (read-only view)."""
        view = self._marginal.reshape(
            self._collection.num_advertisers, self._num_nodes
        ).view()
        view.setflags(write=False)
        return view

    def is_covered(self, index: int) -> bool:
        """Whether RR-set ``index`` is already covered."""
        return bool(self._covered[index])

    def add_seed(self, advertiser: int, node: int) -> int:
        """Assign ``node`` to ``advertiser`` and return the newly covered count."""
        collection = self._collection
        containing = collection.sets_containing_array(advertiser, int(node))
        if containing.size == 0:
            return 0
        fresh = containing[~self._covered[containing]]
        newly_covered = int(fresh.size)
        if newly_covered == 0:
            return 0
        self._covered[fresh] = True
        # Gather the members of every newly covered RR-set from the CSR view
        # and decrement their (tag, member) marginals in one scatter-add.
        offsets = collection.set_offsets
        sizes = offsets[fresh + 1] - offsets[fresh]
        total = int(sizes.sum())
        ends = np.cumsum(sizes)
        gather = np.repeat(offsets[fresh] - (ends - sizes), sizes) + np.arange(total)
        members = collection.member_array[gather]
        tags = np.repeat(collection.tag_array[fresh], sizes)
        np.subtract.at(self._marginal, tags * self._num_nodes + members, 1)
        self._covered_count += newly_covered
        self._covered_per_advertiser[advertiser] += newly_covered
        return newly_covered

    def copy(self) -> "CoverageState":
        """Deep copy of the state (used when a solver explores alternatives)."""
        clone = CoverageState.__new__(CoverageState)
        clone._collection = self._collection
        clone._num_nodes = self._num_nodes
        clone._covered = self._covered.copy()
        clone._marginal = self._marginal.copy()
        clone._covered_count = self._covered_count
        clone._covered_per_advertiser = self._covered_per_advertiser.copy()
        return clone
