"""Unbiased revenue and spread estimators built on tagged RR-set collections.

Lemma 4.1 of the paper: with RR-sets drawn by the uniform advertiser
sampler, ``π(S⃗) = nΓ · E[Λ(S⃗, R)]`` where ``Λ`` indicates that the RR-set's
tagged advertiser ``j`` has ``S_j ∩ R ≠ ∅``.  The empirical analogues below
are therefore unbiased estimates of total and per-advertiser revenue.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import SamplingError
from repro.rrsets.collection import RRCollection

Allocation = Mapping[int, Iterable[int]]


def _scale(collection: RRCollection, gamma: float) -> float:
    if len(collection) == 0:
        raise SamplingError("cannot estimate from an empty RR-set collection")
    if gamma <= 0:
        raise SamplingError("gamma must be positive")
    return collection.num_nodes * gamma / len(collection)


def estimate_total_revenue(
    collection: RRCollection, allocation: Allocation, gamma: float
) -> float:
    """Estimate ``π(S⃗)``: total expected revenue of an allocation.

    ``allocation`` maps advertiser index to an iterable of seed nodes.
    """
    covered = 0
    for advertiser, seeds in allocation.items():
        covered += collection.coverage_count(advertiser, seeds)
    return _scale(collection, gamma) * covered


def estimate_advertiser_revenue(
    collection: RRCollection, advertiser: int, seeds: Iterable[int], gamma: float
) -> float:
    """Estimate ``π_i(S_i)`` for one advertiser."""
    covered = collection.coverage_count(advertiser, seeds)
    return _scale(collection, gamma) * covered


def estimate_marginal_revenue(
    collection: RRCollection,
    advertiser: int,
    node: int,
    current_seeds: Iterable[int],
    gamma: float,
) -> float:
    """Estimate ``π_i(u | S_i)`` — marginal revenue of adding ``node``."""
    current = set(int(s) for s in current_seeds)
    already = set()
    for seed in current:
        already.update(collection.sets_containing(advertiser, seed))
    additional = [
        index
        for index in collection.sets_containing(advertiser, int(node))
        if index not in already
    ]
    return _scale(collection, gamma) * len(additional)


def estimate_spread(
    rr_sets: Sequence[np.ndarray], seeds: Iterable[int], num_nodes: int
) -> float:
    """Plain single-ad spread estimate ``σ(A) ≈ n · (#hit RR-sets)/|R|``.

    Used by the TIM-style baselines, which keep untagged per-advertiser pools.
    """
    if not rr_sets:
        raise SamplingError("cannot estimate from an empty RR-set list")
    if num_nodes <= 0:
        raise SamplingError("num_nodes must be positive")
    seed_set = set(int(s) for s in seeds)
    if not seed_set:
        return 0.0
    hits = 0
    for rr_set in rr_sets:
        members = rr_set.tolist() if isinstance(rr_set, np.ndarray) else rr_set
        if any(member in seed_set for member in members):
            hits += 1
    return num_nodes * hits / len(rr_sets)


def coverage_counts_by_node(
    rr_sets: Sequence[np.ndarray], num_nodes: int
) -> np.ndarray:
    """Number of RR-sets containing each node (singleton coverage counts)."""
    counts = np.zeros(num_nodes, dtype=np.int64)
    for rr_set in rr_sets:
        members = np.asarray(rr_set, dtype=np.int64)
        counts[members] += 1
    return counts


def empirical_coverage_fraction(
    collection: RRCollection, allocation: Allocation
) -> float:
    """Fraction of RR-sets covered by an allocation (the raw ``Λ`` mean)."""
    if len(collection) == 0:
        raise SamplingError("cannot estimate from an empty RR-set collection")
    covered = 0
    for advertiser, seeds in allocation.items():
        covered += collection.coverage_count(advertiser, seeds)
    return covered / len(collection)


def per_advertiser_estimates(
    collection: RRCollection, allocation: Allocation, gamma: float
) -> Dict[int, float]:
    """Per-advertiser revenue estimates for every advertiser in ``allocation``."""
    return {
        advertiser: estimate_advertiser_revenue(collection, advertiser, seeds, gamma)
        for advertiser, seeds in allocation.items()
    }
