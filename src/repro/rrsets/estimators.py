"""Unbiased revenue and spread estimators built on tagged RR-set collections.

Lemma 4.1 of the paper: with RR-sets drawn by the uniform advertiser
sampler, ``π(S⃗) = nΓ · E[Λ(S⃗, R)]`` where ``Λ`` indicates that the RR-set's
tagged advertiser ``j`` has ``S_j ∩ R ≠ ∅``.  The empirical analogues below
are therefore unbiased estimates of total and per-advertiser revenue.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import SamplingError
from repro.rrsets.collection import RRCollection

Allocation = Mapping[int, Iterable[int]]


def _scale(collection: RRCollection, gamma: float) -> float:
    if len(collection) == 0:
        raise SamplingError("cannot estimate from an empty RR-set collection")
    if gamma <= 0:
        raise SamplingError("gamma must be positive")
    return collection.num_nodes * gamma / len(collection)


def estimate_total_revenue(
    collection: RRCollection, allocation: Allocation, gamma: float
) -> float:
    """Estimate ``π(S⃗)``: total expected revenue of an allocation.

    ``allocation`` maps advertiser index to an iterable of seed nodes.
    """
    covered = 0
    for advertiser, seeds in allocation.items():
        covered += collection.coverage_count(advertiser, seeds)
    return _scale(collection, gamma) * covered


def estimate_advertiser_revenue(
    collection: RRCollection, advertiser: int, seeds: Iterable[int], gamma: float
) -> float:
    """Estimate ``π_i(S_i)`` for one advertiser."""
    covered = collection.coverage_count(advertiser, seeds)
    return _scale(collection, gamma) * covered


def estimate_marginal_revenue(
    collection: RRCollection,
    advertiser: int,
    node: int,
    current_seeds: Iterable[int],
    gamma: float,
) -> float:
    """Estimate ``π_i(u | S_i)`` — marginal revenue of adding ``node``."""
    current = set(int(s) for s in current_seeds)
    containing = collection.sets_containing_array(advertiser, int(node))
    if current and containing.size:
        already = np.concatenate(
            [collection.sets_containing_array(advertiser, seed) for seed in current]
        )
        additional = np.count_nonzero(~np.isin(containing, already))
    else:
        additional = containing.size
    return _scale(collection, gamma) * additional


def estimate_spread(
    rr_sets: Sequence[np.ndarray], seeds: Iterable[int], num_nodes: int
) -> float:
    """Plain single-ad spread estimate ``σ(A) ≈ n · (#hit RR-sets)/|R|``.

    Used by the TIM-style baselines, which keep untagged per-advertiser pools.
    """
    if not rr_sets:
        raise SamplingError("cannot estimate from an empty RR-set list")
    if num_nodes <= 0:
        raise SamplingError("num_nodes must be positive")
    seed_set = set(int(s) for s in seeds)
    if not seed_set:
        return 0.0
    in_range = [seed for seed in seed_set if 0 <= seed < num_nodes]
    if not in_range:
        return 0.0
    is_seed = np.zeros(num_nodes, dtype=bool)
    is_seed[in_range] = True
    hits = sum(
        1
        for rr_set in rr_sets
        if is_seed[np.asarray(rr_set, dtype=np.int64)].any()
    )
    return num_nodes * hits / len(rr_sets)


def coverage_counts_by_node(
    rr_sets: Sequence[np.ndarray], num_nodes: int
) -> np.ndarray:
    """Number of RR-sets containing each node (singleton coverage counts)."""
    if not rr_sets:
        return np.zeros(num_nodes, dtype=np.int64)
    # np.unique per set keeps the "once per RR-set" semantics for callers
    # passing member lists with duplicates.
    flat = np.concatenate([np.unique(np.asarray(rr_set, dtype=np.int64)) for rr_set in rr_sets])
    return np.bincount(flat, minlength=num_nodes)


def empirical_coverage_fraction(
    collection: RRCollection, allocation: Allocation
) -> float:
    """Fraction of RR-sets covered by an allocation (the raw ``Λ`` mean)."""
    if len(collection) == 0:
        raise SamplingError("cannot estimate from an empty RR-set collection")
    covered = 0
    for advertiser, seeds in allocation.items():
        covered += collection.coverage_count(advertiser, seeds)
    return covered / len(collection)


def per_advertiser_estimates(
    collection: RRCollection, allocation: Allocation, gamma: float
) -> Dict[int, float]:
    """Per-advertiser revenue estimates for every advertiser in ``allocation``."""
    return {
        advertiser: estimate_advertiser_revenue(collection, advertiser, seeds, gamma)
        for advertiser, seeds in allocation.items()
    }
