"""Random reverse-reachable (RR) set generation — vectorized CSR engine.

A random RR-set for edge probabilities ``p`` is obtained by sampling a root
node uniformly at random and collecting every node that can reach the root in
a random graph where each edge ``(u, v)`` is kept independently with
probability ``p_(u,v)`` (Borgs et al. [12]).  The expected spread of a seed
set ``A`` equals ``n · Pr[A ∩ R ≠ ∅]``.

Two generators are provided:

* :class:`RRSetGenerator` — reverse BFS, one block of Bernoulli draws per
  frontier node.
* :class:`SubsimRRGenerator` — SUBSIM-style acceleration (Guo et al. [34]):
  when all in-edges of a node share the same probability (e.g. the
  Weighted-Cascade model), successful in-neighbours are located by geometric
  skipping, which touches only the successful edges instead of all of them.
  For heterogeneous probabilities it falls back to vectorised Bernoulli draws.

Implementation notes (the vectorized engine)
--------------------------------------------
The traversal keeps every per-element data structure in flat numpy arrays:

* the edge probabilities are gathered **once** into in-CSR order
  (``probabilities[graph.in_edge_id_array]``), so the per-node Bernoulli mask
  is a single contiguous slice comparison with no per-call gather;
* the visited set is an int64 *visit-stamp* array — one token per RR-set, no
  clearing between sets, no Python ``set`` churn;
* the DFS stack and the member accumulator are preallocated int64 arrays
  reused across RR-sets, which is what ``generate_batch`` amortises.

The engine draws randomness in exactly the same order as the reference
implementation preserved in :mod:`repro.rrsets.legacy` (one root draw, then
one block of ``degree`` uniforms per popped node, LIFO pop order), so a fixed
seed produces **bit-identical** RR-sets — the equivalence tests pin this.
``docs/architecture.md`` documents the convention (engine vs. legacy, the
RNG seed-stream-compatibility policy) and how this module's in-CSR gather
order feeds the tagged collections and the ``(h, n)`` coverage marginal
matrix downstream.
"""

from __future__ import annotations

import math
from typing import List, NamedTuple, Optional, TYPE_CHECKING

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.digraph import CSRDiGraph
from repro.utils.rng import RandomSource, as_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import Runtime


class RRProvenance(NamedTuple):
    """Per-RR-set generation provenance (optional :meth:`generate_batch` capture).

    ``root`` plus the returned member array are the full traversal signature:
    reverse traversal examines exactly the in-neighbourhoods of the members,
    so consumers like :class:`repro.rrsets.store.RRStore` can test staleness
    against a dirty region without re-running the traversal.
    ``edges_examined`` is the per-set slice of the generator's cost counter.
    """

    root: int
    edges_examined: int


class RRSetGenerator:
    """Standard reverse-BFS RR-set generator.

    Parameters
    ----------
    graph:
        The social graph.
    edge_probabilities:
        Activation probability of every edge in canonical order.  For the RM
        problem these are the probabilities of one specific advertiser.
    """

    def __init__(self, graph: CSRDiGraph, edge_probabilities: np.ndarray):
        probabilities = np.asarray(edge_probabilities, dtype=np.float64)
        if probabilities.shape != (graph.num_edges,):
            raise SamplingError("edge_probabilities must have one entry per edge")
        if probabilities.size and (probabilities.min() < 0 or probabilities.max() > 1):
            raise SamplingError("edge probabilities must lie in [0, 1]")
        self._graph = graph
        self._probabilities = probabilities
        self._edges_examined = 0
        in_offsets, in_sources, in_edge_ids = graph.in_csr()
        self._in_offsets = in_offsets
        self._in_sources = in_sources
        # Probabilities gathered into in-CSR order: one gather at construction
        # instead of one per visited node during traversal.
        self._in_probs = probabilities[in_edge_ids] if probabilities.size else probabilities
        # CSR offsets as a plain list: Python-int indexing in the traversal
        # loop is several times faster than numpy scalar indexing.
        self._in_offsets_list = in_offsets.tolist()
        n = graph.num_nodes
        self._stamp = np.zeros(n, dtype=np.int64)
        self._token = 0
        self._members = np.empty(n, dtype=np.int64)

    @property
    def graph(self) -> CSRDiGraph:
        """The graph RR-sets are generated on."""
        return self._graph

    @property
    def edge_probabilities(self) -> np.ndarray:
        """The per-edge probabilities in use."""
        return self._probabilities

    @property
    def edges_examined(self) -> int:
        """Total number of in-edges examined so far (cost counter)."""
        return self._edges_examined

    def record_edges_examined(self, count: int) -> None:
        """Fold in edges examined by an external run (e.g. a sharded worker)."""
        self._edges_examined += int(count)

    def generate(self, rng: RandomSource = None, root: Optional[int] = None) -> np.ndarray:
        """Generate one RR-set; returns sorted member node ids as an int64 array.

        ``root`` fixes the RR-set's root instead of sampling it uniformly,
        which is useful in tests.
        """
        generator = as_rng(rng)
        if self._graph.num_nodes == 0:
            raise SamplingError("cannot generate RR-sets on an empty graph")
        if root is None:
            root = int(generator.integers(0, self._graph.num_nodes))
        elif not 0 <= root < self._graph.num_nodes:
            raise SamplingError(f"root {root} out of range")
        return self._reverse_traverse(root, generator)

    def generate_many(self, count: int, rng: RandomSource = None) -> List[np.ndarray]:
        """Generate ``count`` independent RR-sets."""
        return self.generate_batch(count, rng)

    def generate_batch(
        self,
        count: int,
        rng: RandomSource = None,
        provenance: Optional[List[RRProvenance]] = None,
    ) -> List[np.ndarray]:
        """Generate ``count`` RR-sets, amortising buffer setup across the batch.

        Equivalent to ``count`` calls to :meth:`generate` on the same RNG
        stream (and bit-identical to them), but resolves the RNG and hot
        array references once for the whole batch.  Passing a list as
        ``provenance`` appends one :class:`RRProvenance` record per generated
        set (root, edges examined) without touching the draw order.
        """
        if count < 0:
            raise SamplingError("count must be non-negative")
        generator = as_rng(rng)
        n = self._graph.num_nodes
        if n == 0:
            if count == 0:
                return []
            raise SamplingError("cannot generate RR-sets on an empty graph")
        traverse = self._reverse_traverse
        integers = generator.integers
        if provenance is None:
            return [traverse(int(integers(0, n)), generator) for _ in range(count)]
        rr_sets: List[np.ndarray] = []
        for _ in range(count):
            root = int(integers(0, n))
            edges_before = self._edges_examined
            rr_sets.append(traverse(root, generator))
            provenance.append(
                RRProvenance(root=root, edges_examined=self._edges_examined - edges_before)
            )
        return rr_sets

    def generate_batch_parallel(
        self,
        count: int,
        rng: RandomSource = None,
        n_jobs: Optional[int] = None,
        runtime: Optional["Runtime"] = None,
    ) -> List[np.ndarray]:
        """Generate ``count`` RR-sets sharded across ``n_jobs`` worker processes.

        Each worker rebuilds this generator against the (fork-inherited or
        pickled-once) graph, draws from its own ``SeedSequence.spawn()``
        substream and returns its shard as flat arrays; shards are merged in
        worker-index order, so a fixed ``(seed, n_jobs)`` pair is
        bit-reproducible.  ``n_jobs=1`` (or ``None``) falls back to
        :meth:`generate_batch` untouched — bit-identical to the serial
        engine.  ``n_jobs>1`` uses different substreams than the serial
        stream (statistically equivalent RR-sets, not bit-identical to
        ``n_jobs=1``).  The workers' ``edges_examined`` counters are folded
        back into this generator.

        ``runtime`` (or the ambient :func:`repro.runtime.current_runtime`)
        supplies a persistent worker pool reused across calls; results are
        bit-identical with or without one.
        """
        if count < 0:
            raise SamplingError("count must be non-negative")
        from repro.parallel.rr import generate_batch_sharded
        from repro.runtime import acquire_executor

        executor = acquire_executor(n_jobs, runtime)
        if executor.n_jobs <= 1 or count <= 1:
            return self.generate_batch(count, rng)
        return generate_batch_sharded(self, count, rng, executor)

    # ------------------------------------------------------------------ #
    def _next_token(self) -> int:
        """Advance the visit stamp; recycles the stamp array on wraparound."""
        self._token += 1
        if self._token == np.iinfo(np.int64).max:  # pragma: no cover - 2^63 sets
            self._stamp.fill(0)
            self._token = 1
        return self._token

    def _reverse_traverse(self, root: int, rng: np.random.Generator) -> np.ndarray:
        """Reverse BFS from ``root``; returns the sorted member array."""
        offsets = self._in_offsets_list
        sources = self._in_sources
        probs = self._in_probs
        stamp = self._stamp
        members = self._members
        token = self._next_token()
        random = rng.random

        stamp[root] = token
        stack = [root]
        pop = stack.pop
        extend = stack.extend
        members[0] = root
        size = 1
        edges = 0
        while stack:
            node = pop()
            start = offsets[node]
            end = offsets[node + 1]
            degree = end - start
            if degree == 0:
                continue
            edges += degree
            hits = sources[start:end][random(degree) < probs[start:end]]
            if hits.size == 0:
                continue
            fresh = hits[stamp[hits] != token]
            k = fresh.size
            if k:
                stamp[fresh] = token
                extend(fresh.tolist())
                members[size: size + k] = fresh
                size += k
        self._edges_examined += edges
        out = members[:size].copy()
        out.sort()
        return out


class SubsimRRGenerator(RRSetGenerator):
    """RR-set generator with SUBSIM-style geometric skipping.

    For a node whose in-edges all carry the same probability ``p`` the number
    of edges skipped before the next success is geometric with parameter
    ``p``; sampling those skips directly touches only successful edges.  When
    the in-edge probabilities of a node differ, the generator falls back to a
    vectorised Bernoulli draw over that node's in-edges (still correct, just
    without the skipping gain).

    The ``edges_examined`` counter reports the edges actually touched: on the
    geometric path that is the number of *successful* edges — the final
    overshooting skip leaves the in-neighbourhood without examining an edge
    and is not counted.
    """

    def __init__(self, graph: CSRDiGraph, edge_probabilities: np.ndarray):
        super().__init__(graph, edge_probabilities)
        self._uniform_probability = self._detect_uniform_per_node()
        # Per-node log(1-p) for the geometric-skip path, plus plain-list
        # copies of both arrays for fast Python-int indexing in the loop.
        with np.errstate(divide="ignore", invalid="ignore"):
            log_q = np.log1p(-self._uniform_probability)
        self._uniform_list = self._uniform_probability.tolist()
        self._log_q_list = log_q.tolist()
        # Plain-list in-sources for the few-success scalar path below.
        self._in_sources_list = self._in_sources.tolist()

    def _detect_uniform_per_node(self) -> np.ndarray:
        """Per-node common in-edge probability, or NaN when heterogeneous.

        Vectorized: per-node min/max of the in-CSR probability array via
        ``np.ufunc.reduceat`` over the CSR offsets, then the same
        ``np.allclose``-style tolerance test as the reference implementation
        (``|p - p₀| ≤ atol + rtol·|p₀|`` against the node's first in-edge).
        """
        n = self._graph.num_nodes
        uniform = np.full(n, np.nan, dtype=np.float64)
        probs = self._in_probs
        if probs.size == 0 or n == 0:
            return uniform
        offsets = self._in_offsets
        degrees = np.diff(offsets)
        nonempty = degrees > 0
        starts = offsets[:-1][nonempty]
        mins = np.minimum.reduceat(probs, starts)
        maxs = np.maximum.reduceat(probs, starts)
        first = probs[starts]
        # np.allclose(probs, first) <=> max deviation from first within tol.
        rtol, atol = 1.0e-5, 1.0e-8
        deviation = np.maximum(maxs - first, first - mins)
        close = deviation <= atol + rtol * np.abs(first)
        uniform[np.flatnonzero(nonempty)[close]] = first[close]
        return uniform

    def _reverse_traverse(self, root: int, rng: np.random.Generator) -> np.ndarray:
        offsets = self._in_offsets_list
        sources = self._in_sources
        sources_list = self._in_sources_list
        probs = self._in_probs
        uniform = self._uniform_list
        log_qs = self._log_q_list
        stamp = self._stamp
        members = self._members
        token = self._next_token()
        random = rng.random
        log = math.log

        stamp[root] = token
        stack = [root]
        pop = stack.pop
        extend = stack.extend
        append_stack = stack.append
        members[0] = root
        size = 1
        edges = 0
        while stack:
            node = pop()
            start = offsets[node]
            end = offsets[node + 1]
            degree = end - start
            if degree == 0:
                continue
            common = uniform[node]
            if common != common:  # NaN: heterogeneous, vectorised Bernoulli
                edges += degree
                hits = sources[start:end][random(degree) < probs[start:end]]
            elif common <= 0.0:
                continue
            elif common >= 1.0:
                edges += degree
                hits = sources[start:end]
            else:
                # Geometric skipping: next success index advances by Geom(p).
                # ``int(log(u)/log_q)`` equals the reference engine's
                # ``int(np.floor(np.log(u)/log_q))``: the quotient is
                # non-negative, and a sub-ulp libm/numpy difference only
                # matters if it crosses an integer boundary (probability
                # ~1e-13 per draw; 0 hits in an 18M-draw sweep).
                positions: list[int] = []
                append = positions.append
                position = -1
                log_q = log_qs[node]
                while True:
                    position += int(log(max(random(), 1e-300)) / log_q) + 1
                    if position >= degree:
                        break
                    append(position)
                edges += len(positions)
                if not positions:
                    continue
                if len(positions) <= 8:
                    # Few successes (the typical SUBSIM case): scalar stamp
                    # checks beat constructing small numpy arrays.
                    for position in positions:
                        hit = sources_list[start + position]
                        if stamp[hit] != token:
                            stamp[hit] = token
                            append_stack(hit)
                            members[size] = hit
                            size += 1
                    continue
                hits = sources[start + np.asarray(positions, dtype=np.int64)]
            if hits.size == 0:
                continue
            fresh = hits[stamp[hits] != token]
            k = fresh.size
            if k:
                stamp[fresh] = token
                extend(fresh.tolist())
                members[size: size + k] = fresh
                size += k
        self._edges_examined += edges
        out = members[:size].copy()
        out.sort()
        return out
