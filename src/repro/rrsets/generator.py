"""Random reverse-reachable (RR) set generation.

A random RR-set for edge probabilities ``p`` is obtained by sampling a root
node uniformly at random and collecting every node that can reach the root in
a random graph where each edge ``(u, v)`` is kept independently with
probability ``p_(u,v)`` (Borgs et al. [12]).  The expected spread of a seed
set ``A`` equals ``n · Pr[A ∩ R ≠ ∅]``.

Two generators are provided:

* :class:`RRSetGenerator` — the textbook reverse BFS, one Bernoulli draw per
  examined in-edge.
* :class:`SubsimRRGenerator` — SUBSIM-style acceleration (Guo et al. [34]):
  when all in-edges of a node share the same probability (e.g. the
  Weighted-Cascade model), successful in-neighbours are located by geometric
  skipping, which touches only the successful edges instead of all of them.
  For heterogeneous probabilities it falls back to vectorised Bernoulli draws.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.digraph import CSRDiGraph
from repro.utils.rng import RandomSource, as_rng


class RRSetGenerator:
    """Standard reverse-BFS RR-set generator.

    Parameters
    ----------
    graph:
        The social graph.
    edge_probabilities:
        Activation probability of every edge in canonical order.  For the RM
        problem these are the probabilities of one specific advertiser.
    """

    def __init__(self, graph: CSRDiGraph, edge_probabilities: np.ndarray):
        probabilities = np.asarray(edge_probabilities, dtype=np.float64)
        if probabilities.shape != (graph.num_edges,):
            raise SamplingError("edge_probabilities must have one entry per edge")
        if probabilities.size and (probabilities.min() < 0 or probabilities.max() > 1):
            raise SamplingError("edge probabilities must lie in [0, 1]")
        self._graph = graph
        self._probabilities = probabilities
        self._edges_examined = 0

    @property
    def graph(self) -> CSRDiGraph:
        """The graph RR-sets are generated on."""
        return self._graph

    @property
    def edge_probabilities(self) -> np.ndarray:
        """The per-edge probabilities in use."""
        return self._probabilities

    @property
    def edges_examined(self) -> int:
        """Total number of in-edges examined so far (cost counter)."""
        return self._edges_examined

    def generate(self, rng: RandomSource = None, root: Optional[int] = None) -> np.ndarray:
        """Generate one RR-set; returns the member node ids as an int64 array.

        ``root`` fixes the RR-set's root instead of sampling it uniformly,
        which is useful in tests.
        """
        generator = as_rng(rng)
        graph = self._graph
        if graph.num_nodes == 0:
            raise SamplingError("cannot generate RR-sets on an empty graph")
        if root is None:
            root = int(generator.integers(0, graph.num_nodes))
        elif not 0 <= root < graph.num_nodes:
            raise SamplingError(f"root {root} out of range")
        visited = {root}
        frontier = [root]
        while frontier:
            node = frontier.pop()
            in_neighbors, in_edges = self._sample_incoming(node, generator)
            for neighbor, _ in zip(in_neighbors, in_edges):
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        return np.fromiter(visited, dtype=np.int64, count=len(visited))

    def generate_many(self, count: int, rng: RandomSource = None) -> List[np.ndarray]:
        """Generate ``count`` independent RR-sets."""
        if count < 0:
            raise SamplingError("count must be non-negative")
        generator = as_rng(rng)
        return [self.generate(generator) for _ in range(count)]

    # ------------------------------------------------------------------ #
    def _sample_incoming(self, node: int, rng: np.random.Generator):
        """Return the (neighbours, edge ids) of successful incoming edges of ``node``."""
        graph = self._graph
        offsets = graph.in_offsets
        start, end = int(offsets[node]), int(offsets[node + 1])
        degree = end - start
        if degree == 0:
            return [], []
        self._edges_examined += degree
        sources = graph.in_sources[start:end]
        edge_ids = graph.in_edge_id_array[start:end]
        draws = rng.random(degree)
        mask = draws < self._probabilities[edge_ids]
        return sources[mask].tolist(), edge_ids[mask].tolist()


class SubsimRRGenerator(RRSetGenerator):
    """RR-set generator with SUBSIM-style geometric skipping.

    For a node whose in-edges all carry the same probability ``p`` the number
    of edges skipped before the next success is geometric with parameter
    ``p``; sampling those skips directly touches only successful edges.  When
    the in-edge probabilities of a node differ, the generator falls back to a
    vectorised Bernoulli draw over that node's in-edges (still correct, just
    without the skipping gain).
    """

    def __init__(self, graph: CSRDiGraph, edge_probabilities: np.ndarray):
        super().__init__(graph, edge_probabilities)
        self._uniform_probability = self._detect_uniform_per_node()

    def _detect_uniform_per_node(self) -> np.ndarray:
        """Per-node common in-edge probability, or NaN when heterogeneous."""
        graph = self._graph
        uniform = np.full(graph.num_nodes, np.nan, dtype=np.float64)
        offsets = graph.in_offsets
        for node in range(graph.num_nodes):
            start, end = int(offsets[node]), int(offsets[node + 1])
            if start == end:
                continue
            edge_ids = graph.in_edge_id_array[start:end]
            probs = self._probabilities[edge_ids]
            if np.allclose(probs, probs[0]):
                uniform[node] = probs[0]
        return uniform

    def _sample_incoming(self, node: int, rng: np.random.Generator):
        graph = self._graph
        offsets = graph.in_offsets
        start, end = int(offsets[node]), int(offsets[node + 1])
        degree = end - start
        if degree == 0:
            return [], []
        common = self._uniform_probability[node]
        if np.isnan(common):
            return super()._sample_incoming(node, rng)
        if common <= 0.0:
            return [], []
        sources = graph.in_sources[start:end]
        edge_ids = graph.in_edge_id_array[start:end]
        if common >= 1.0:
            self._edges_examined += degree
            return sources.tolist(), edge_ids.tolist()
        # Geometric skipping: index of next success advances by Geom(common).
        chosen_positions: list[int] = []
        position = -1
        log_q = np.log1p(-common)
        while True:
            skip = int(np.floor(np.log(max(rng.random(), 1e-300)) / log_q))
            position += skip + 1
            if position >= degree:
                break
            chosen_positions.append(position)
        self._edges_examined += len(chosen_positions) + 1
        if not chosen_positions:
            return [], []
        picked = np.asarray(chosen_positions, dtype=np.int64)
        return sources[picked].tolist(), edge_ids[picked].tolist()
