"""Reference (pre-vectorization) RR-set engine, kept for equivalence proofs.

This module preserves the original pure-Python implementations of the RR-set
generator, the SUBSIM generator, the tagged collection and the coverage state
exactly as they shipped in the seed tree.  They are the *specification* the
vectorized engine in :mod:`repro.rrsets.generator` / :mod:`~repro.rrsets.collection`
must match bit-for-bit under a fixed seed:

* ``tests/test_rr_engine_equivalence.py`` drives both engines from the same
  RNG seed and asserts identical RR-set membership, tags, revenue estimates
  and coverage marginals.
* ``benchmarks/bench_rr_engine.py`` times this module as the "before" side of
  the perf-regression harness.

Nothing in the library imports this module on a hot path; do not "optimize"
it — its only value is being a faithful copy of the seed semantics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.digraph import CSRDiGraph
from repro.utils.rng import RandomSource, as_rng


class LegacyRRSetGenerator:
    """The seed tree's reverse-BFS RR-set generator (per-element Python loops)."""

    def __init__(self, graph: CSRDiGraph, edge_probabilities: np.ndarray):
        probabilities = np.asarray(edge_probabilities, dtype=np.float64)
        if probabilities.shape != (graph.num_edges,):
            raise SamplingError("edge_probabilities must have one entry per edge")
        if probabilities.size and (probabilities.min() < 0 or probabilities.max() > 1):
            raise SamplingError("edge probabilities must lie in [0, 1]")
        self._graph = graph
        self._probabilities = probabilities
        self._edges_examined = 0

    @property
    def graph(self) -> CSRDiGraph:
        return self._graph

    @property
    def edge_probabilities(self) -> np.ndarray:
        return self._probabilities

    @property
    def edges_examined(self) -> int:
        return self._edges_examined

    def generate(self, rng: RandomSource = None, root: Optional[int] = None) -> np.ndarray:
        generator = as_rng(rng)
        graph = self._graph
        if graph.num_nodes == 0:
            raise SamplingError("cannot generate RR-sets on an empty graph")
        if root is None:
            root = int(generator.integers(0, graph.num_nodes))
        elif not 0 <= root < graph.num_nodes:
            raise SamplingError(f"root {root} out of range")
        visited = {root}
        frontier = [root]
        while frontier:
            node = frontier.pop()
            in_neighbors, in_edges = self._sample_incoming(node, generator)
            for neighbor, _ in zip(in_neighbors, in_edges):
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        return np.fromiter(visited, dtype=np.int64, count=len(visited))

    def generate_many(self, count: int, rng: RandomSource = None) -> List[np.ndarray]:
        if count < 0:
            raise SamplingError("count must be non-negative")
        generator = as_rng(rng)
        return [self.generate(generator) for _ in range(count)]

    # ------------------------------------------------------------------ #
    def _sample_incoming(self, node: int, rng: np.random.Generator):
        graph = self._graph
        offsets = graph.in_offsets
        start, end = int(offsets[node]), int(offsets[node + 1])
        degree = end - start
        if degree == 0:
            return [], []
        self._edges_examined += degree
        sources = graph.in_sources[start:end]
        edge_ids = graph.in_edge_id_array[start:end]
        draws = rng.random(degree)
        mask = draws < self._probabilities[edge_ids]
        return sources[mask].tolist(), edge_ids[mask].tolist()


class LegacySubsimRRGenerator(LegacyRRSetGenerator):
    """The seed tree's SUBSIM generator, including its per-skip Python loop.

    Note: it counts ``len(chosen_positions) + 1`` edges on the geometric path,
    i.e. it also counts the final overshooting skip — the accounting quirk the
    vectorized engine fixes.
    """

    def __init__(self, graph: CSRDiGraph, edge_probabilities: np.ndarray):
        super().__init__(graph, edge_probabilities)
        self._uniform_probability = self._detect_uniform_per_node()

    def _detect_uniform_per_node(self) -> np.ndarray:
        graph = self._graph
        uniform = np.full(graph.num_nodes, np.nan, dtype=np.float64)
        offsets = graph.in_offsets
        for node in range(graph.num_nodes):
            start, end = int(offsets[node]), int(offsets[node + 1])
            if start == end:
                continue
            edge_ids = graph.in_edge_id_array[start:end]
            probs = self._probabilities[edge_ids]
            if np.allclose(probs, probs[0]):
                uniform[node] = probs[0]
        return uniform

    def _sample_incoming(self, node: int, rng: np.random.Generator):
        graph = self._graph
        offsets = graph.in_offsets
        start, end = int(offsets[node]), int(offsets[node + 1])
        degree = end - start
        if degree == 0:
            return [], []
        common = self._uniform_probability[node]
        if np.isnan(common):
            return super()._sample_incoming(node, rng)
        if common <= 0.0:
            return [], []
        sources = graph.in_sources[start:end]
        edge_ids = graph.in_edge_id_array[start:end]
        if common >= 1.0:
            self._edges_examined += degree
            return sources.tolist(), edge_ids.tolist()
        chosen_positions: list[int] = []
        position = -1
        log_q = np.log1p(-common)
        while True:
            skip = int(np.floor(np.log(max(rng.random(), 1e-300)) / log_q))
            position += skip + 1
            if position >= degree:
                break
            chosen_positions.append(position)
        self._edges_examined += len(chosen_positions) + 1
        if not chosen_positions:
            return [], []
        picked = np.asarray(chosen_positions, dtype=np.int64)
        return sources[picked].tolist(), edge_ids[picked].tolist()


class LegacyRRCollection:
    """The seed tree's dict-of-lists tagged RR-set collection."""

    def __init__(self, num_nodes: int, num_advertisers: int):
        if num_nodes <= 0:
            raise SamplingError("num_nodes must be positive")
        if num_advertisers <= 0:
            raise SamplingError("num_advertisers must be positive")
        self._num_nodes = num_nodes
        self._num_advertisers = num_advertisers
        self._sets: List[np.ndarray] = []
        self._tags: List[int] = []
        self._membership: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        self._total_size = 0

    def add(self, rr_set: Sequence[int], advertiser: int) -> int:
        if not 0 <= advertiser < self._num_advertisers:
            raise SamplingError(f"advertiser tag {advertiser} out of range")
        members = np.unique(np.asarray(rr_set, dtype=np.int64))
        if members.size == 0:
            raise SamplingError("an RR-set always contains at least its root")
        if members.min() < 0 or members.max() >= self._num_nodes:
            raise SamplingError("RR-set contains invalid node ids")
        index = len(self._sets)
        self._sets.append(members)
        self._tags.append(int(advertiser))
        self._total_size += int(members.size)
        for node in members.tolist():
            self._membership[(int(advertiser), node)].append(index)
        return index

    def __len__(self) -> int:
        return len(self._sets)

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_advertisers(self) -> int:
        return self._num_advertisers

    def rr_set(self, index: int) -> np.ndarray:
        return self._sets[index]

    def tag(self, index: int) -> int:
        return self._tags[index]

    def tags(self) -> np.ndarray:
        return np.asarray(self._tags, dtype=np.int64)

    def count_per_advertiser(self) -> np.ndarray:
        counts = np.zeros(self._num_advertisers, dtype=np.int64)
        for tag in self._tags:
            counts[tag] += 1
        return counts

    def sets_containing(self, advertiser: int, node: int) -> List[int]:
        return list(self._membership.get((advertiser, node), ()))

    def coverage_count(self, advertiser: int, nodes: Iterable[int]) -> int:
        covered: set[int] = set()
        for node in nodes:
            covered.update(self._membership.get((advertiser, int(node)), ()))
        return len(covered)


class LegacyCoverageState:
    """The seed tree's dict-backed incremental coverage bookkeeping."""

    def __init__(self, collection):
        self._collection = collection
        self._covered = np.zeros(len(collection), dtype=bool)
        self._marginal: Dict[Tuple[int, int], int] = defaultdict(int)
        for index in range(len(collection)):
            tag = collection.tag(index)
            for node in collection.rr_set(index).tolist():
                self._marginal[(tag, node)] += 1
        self._covered_count = 0
        self._covered_per_advertiser = np.zeros(collection.num_advertisers, dtype=np.int64)

    @property
    def covered_count(self) -> int:
        return self._covered_count

    def covered_count_for(self, advertiser: int) -> int:
        return int(self._covered_per_advertiser[advertiser])

    def marginal_coverage(self, advertiser: int, node: int) -> int:
        return self._marginal.get((advertiser, int(node)), 0)

    def is_covered(self, index: int) -> bool:
        return bool(self._covered[index])

    def add_seed(self, advertiser: int, node: int) -> int:
        newly_covered = 0
        for index in self._collection.sets_containing(advertiser, int(node)):
            if self._covered[index]:
                continue
            self._covered[index] = True
            newly_covered += 1
            tag = self._collection.tag(index)
            for member in self._collection.rr_set(index).tolist():
                key = (tag, member)
                current = self._marginal.get(key, 0)
                if current > 0:
                    self._marginal[key] = current - 1
        self._covered_count += newly_covered
        self._covered_per_advertiser[advertiser] += newly_covered
        return newly_covered
