"""Incrementally maintained RR-set store over a streaming graph.

:class:`RRStore` is the enabler for allocation-as-a-service: a long-lived,
advertiser-tagged RR-set collection that absorbs streaming graph deltas
(:mod:`repro.graph.deltas`) by invalidating and redrawing **only** the
RR-sets whose traversal touched the dirty region, instead of regenerating
the whole collection.

Determinism contract (the bit-identity invariant)
-------------------------------------------------
Every RR-set slot ``i`` is drawn from its **own seed substream**
``SeedSequence(seed, spawn_key=(i,))``, consuming draws in a fixed order:
one advertiser draw (cpe-weighted, as in
:class:`~repro.rrsets.uniform.UniformRRSampler`), one root draw
(``integers(0, num_nodes)``), then the traversal's Bernoulli blocks.  A
slot's content is therefore a pure function of
``(seed, slot, graph, probabilities, weights, rr_engine)`` — independent of
every other slot, of ``n_jobs``, and of whether the slot was drawn at
generation time or redrawn during maintenance.

That purity is what makes the equivalence exact: a store that has absorbed
delta batches ``D`` is **bit-identical** (members, tags, roots, coverage
state) to a store generated fresh on ``graph + D`` under the same
``(seed, policy)``, because

* a slot whose member signature does not intersect the dirty region replays
  identically on the new graph — reverse traversal only examines the
  in-neighbourhoods of its members, and those blocks are unchanged;
* a stale slot is redrawn from the *same* substream the fresh store would
  use for that slot.

The invalidation rule — stale iff ``members ∩ dirty ≠ ∅`` (globally, or for
the slot's advertiser under per-advertiser probability dirt), or the node id
space changed — is conservative but sound; the delta-fuzzing suite
(``tests/test_rr_store_incremental.py``) pins the equivalence over random
delta scripts and the redraw counter proves locality.

Maintenance execution is governed by ``ExecutionPolicy.maintenance``:
``"pool"`` (the default) shards redraws across the persistent worker pool of
the ambient/passed :class:`~repro.runtime.Runtime` when ``n_jobs`` allows,
``"inline"`` forces in-process redraws — bit-identical either way, exactly
because slots own their substreams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.deltas import DeltaEffect, GraphDelta, MutableGraphView
from repro.rrsets.collection import RRCollection
from repro.rrsets.estimators import estimate_total_revenue
from repro.rrsets.generator import RRSetGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import ExecutionPolicy, Runtime

_EMPTY = np.empty(0, dtype=np.int64)


class SlotProvenance(NamedTuple):
    """Per-slot generation provenance recorded by the store.

    The traversal signature itself is the slot's member array (every member's
    in-neighbourhood was examined — that *is* the touched-edge region), so it
    lives in the collection; this tuple carries the remaining replay inputs.
    """

    slot: int  #: substream index (``spawn_key``) the slot draws from
    root: int  #: root node of the recorded traversal
    tag: int  #: advertiser the slot was drawn for


@dataclass(frozen=True)
class MaintenanceReport:
    """Outcome of one :meth:`RRStore.apply_deltas` call."""

    epoch: int  #: view epoch after the batch
    total: int  #: RR-set slots in the store
    invalidated: int  #: slots whose signature intersected the dirty region
    redrawn: int  #: slots redrawn (== invalidated; the store keeps |R| fixed)
    reason: str  #: "clean" | "localized" | "node-space-changed"

    @property
    def kept(self) -> int:
        """Slots that survived the batch untouched."""
        return self.total - self.redrawn


def _slot_rng(entropy: int, slot: int) -> np.random.Generator:
    """The dedicated RNG substream of slot ``slot``."""
    return np.random.default_rng(np.random.SeedSequence(entropy, spawn_key=(int(slot),)))


def draw_slot(
    generators: Sequence[RRSetGenerator],
    weights: np.ndarray,
    entropy: int,
    slot: int,
) -> Tuple[np.ndarray, int, int]:
    """Draw one store slot: ``(members, advertiser, root)``.

    The single definition of the per-slot draw order — the serial path, the
    pool workers (:func:`repro.parallel.rr.run_store_shards`) and any fresh
    regeneration all call this, which is what makes them bit-identical.
    """
    rng = _slot_rng(entropy, slot)
    advertiser = int(rng.choice(len(generators), p=weights))
    generator = generators[advertiser]
    root = int(rng.integers(0, generator.graph.num_nodes))
    members = generator.generate(rng, root=root)
    return members, advertiser, root


class RRStore:
    """A delta-maintained, advertiser-tagged RR-set collection.

    Parameters
    ----------
    view:
        The :class:`~repro.graph.deltas.MutableGraphView` this store follows.
        All deltas must flow through :meth:`apply_deltas` — the store detects
        out-of-band ``view.apply`` calls and refuses to serve a stale
        collection.
    cpes:
        Cost-per-engagement per advertiser; advertiser draws are
        cpe-weighted exactly like :class:`~repro.rrsets.uniform.UniformRRSampler`.
    seed:
        Base entropy of the per-slot substreams.  ``None`` draws fresh
        entropy once; read it back via :attr:`seed` to reproduce the store.
    policy:
        :class:`~repro.runtime.ExecutionPolicy` supplying the RR engine
        (``rr_engine``), the ``n_jobs`` shard count and the ``maintenance``
        execution mode.  ``None`` resolves to ``ExecutionPolicy.fast()``.
    runtime:
        Optional :class:`~repro.runtime.Runtime` whose persistent pool the
        sharded generation/maintenance paths run on (falls back to the
        ambient runtime, then per-call pools; results identical either way).
    """

    def __init__(
        self,
        view: MutableGraphView,
        cpes: Sequence[float],
        seed: Optional[int] = None,
        policy: Optional["ExecutionPolicy"] = None,
        runtime: Optional["Runtime"] = None,
    ):
        from repro.runtime import resolve_policy

        if len(cpes) != view.num_advertisers:
            raise SamplingError("one cpe per advertiser is required")
        cpe_array = np.asarray(cpes, dtype=np.float64)
        if cpe_array.size == 0 or np.any(cpe_array <= 0):
            raise SamplingError("cpe values must be positive")
        self._view = view
        self._policy = resolve_policy(policy)
        self._runtime = runtime
        self._cpes = cpe_array
        self._gamma = float(cpe_array.sum())
        self._weights = cpe_array / self._gamma
        if seed is None:
            seed = int(np.random.SeedSequence().entropy)
        self._entropy = int(seed)
        if self._policy.rr_engine == "subsim":
            from repro.rrsets.generator import SubsimRRGenerator

            self._generator_cls = SubsimRRGenerator
        else:
            self._generator_cls = RRSetGenerator
        self._members: List[np.ndarray] = []
        self._tags: List[int] = []
        self._roots: List[int] = []
        self._collection: Optional[RRCollection] = None
        self._generators: Optional[List[RRSetGenerator]] = None
        self._payload_probabilities: Optional[List[np.ndarray]] = None
        self._synced_epoch = view.epoch
        self._redraws_total = 0
        self._epochs_absorbed = 0
        #: Interrupted maintenance state: ``(target_epoch, effect, stale,
        #: reason)`` when a redraw failed mid-batch — see :meth:`retry_maintenance`.
        self._pending_maintenance: Optional[Tuple[int, DeltaEffect, np.ndarray, str]] = None

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._members)

    @property
    def view(self) -> MutableGraphView:
        """The graph view this store follows."""
        return self._view

    @property
    def seed(self) -> int:
        """Base entropy of the per-slot substreams (reproduces the store)."""
        return self._entropy

    @property
    def cpes(self) -> np.ndarray:
        """Per-advertiser cpe values (a copy; the store's weights are fixed)."""
        return self._cpes.copy()

    @property
    def gamma(self) -> float:
        """``Γ = Σ_i cpe(i)`` — the estimator scale factor numerator."""
        return self._gamma

    @property
    def policy(self) -> "ExecutionPolicy":
        """The resolved execution policy."""
        return self._policy

    @property
    def epoch(self) -> int:
        """The view epoch the store is synchronized with."""
        return self._synced_epoch

    @property
    def redraws_total(self) -> int:
        """RR-sets redrawn by maintenance over the store's lifetime."""
        return self._redraws_total

    @property
    def collection(self) -> RRCollection:
        """The current tagged collection (rebuilt lazily after maintenance)."""
        self._check_sync()
        if self._collection is None:
            count = len(self._members)
            sizes = np.fromiter(
                (m.size for m in self._members), dtype=np.int64, count=count
            )
            flat = np.concatenate(self._members) if count else _EMPTY
            tags = np.asarray(self._tags, dtype=np.int64)
            self._collection = RRCollection.from_shards(
                self._view.num_nodes,
                self._view.num_advertisers,
                [(flat, sizes, tags)],
            )
        return self._collection

    def provenance(self, index: int) -> SlotProvenance:
        """Replay provenance of RR-set slot ``index``."""
        return SlotProvenance(
            slot=index, root=self._roots[index], tag=self._tags[index]
        )

    def roots(self) -> np.ndarray:
        """Recorded root node per slot."""
        return np.asarray(self._roots, dtype=np.int64)

    def estimate_total_revenue(self, allocation) -> float:
        """Estimate ``π(S⃗)`` on the current collection (Lemma 4.1 estimator)."""
        return estimate_total_revenue(self.collection, allocation, self._gamma)

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    def generate(self, count: int) -> None:
        """Draw ``count`` additional RR-set slots (substreams keyed by index).

        Slot substreams are keyed by absolute slot index, so a store filled
        by several ``generate`` calls is bit-identical to one filled by a
        single call for the total count.
        """
        if count < 0:
            raise SamplingError("count must be non-negative")
        self._check_sync()
        if count == 0:
            return
        if self._view.num_nodes == 0:
            raise SamplingError("cannot generate RR-sets on an empty graph")
        start = len(self._members)
        slots = np.arange(start, start + count, dtype=np.int64)
        drawn = self._draw_slots(slots)
        for members, tag, root in drawn:
            self._members.append(members)
            self._tags.append(tag)
            self._roots.append(root)
        self._collection = None

    def _ensure_generators(self) -> List[RRSetGenerator]:
        if self._generators is None:
            graph = self._view.graph
            self._payload_probabilities = self._view.advertiser_edge_probabilities
            self._generators = [
                self._generator_cls(graph, probabilities)
                for probabilities in self._payload_probabilities
            ]
        return self._generators

    def _draw_slots(self, slots: np.ndarray) -> List[Tuple[np.ndarray, int, int]]:
        """Draw the given slots, sharding across the pool when allowed."""
        from repro.parallel import resolve_n_jobs
        from repro.runtime import acquire_executor

        n_jobs = resolve_n_jobs(self._policy.n_jobs)
        if (
            self._policy.maintenance == "pool"
            and n_jobs > 1
            and slots.size > 1
        ):
            from repro.parallel.rr import run_store_shards

            self._ensure_generators()
            executor = acquire_executor(self._policy.n_jobs, self._runtime)
            shards = run_store_shards(
                self._generator_cls,
                self._view.graph,
                self._payload_probabilities,
                self._weights,
                self._entropy,
                slots,
                executor,
            )
            drawn: List[Tuple[np.ndarray, int, int]] = []
            for shard in shards:
                offsets = np.cumsum(shard.sizes[:-1])
                for members, tag, root in zip(
                    np.split(shard.members, offsets) if shard.sizes.size else [],
                    shard.tags.tolist(),
                    shard.roots.tolist(),
                ):
                    # Detach from the shard buffer: collection compaction
                    # assumes per-set arrays it can hold onto.
                    drawn.append((np.ascontiguousarray(members), int(tag), int(root)))
            return drawn
        generators = self._ensure_generators()
        return [
            draw_slot(generators, self._weights, self._entropy, int(slot))
            for slot in slots
        ]

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def apply_deltas(self, deltas: Iterable[GraphDelta]) -> MaintenanceReport:
        """Absorb one delta batch: invalidate intersecting slots, redraw them.

        Applies the batch to the underlying view, computes the stale slot
        set — slots whose member signature intersects the batch's dirty
        region (globally, or for the slot's advertiser under per-advertiser
        probability updates) — and redraws exactly those slots from their
        own substreams against the post-delta snapshot.  The resulting store
        is bit-identical to full regeneration on the new graph.

        Redraw failures are recoverable: nothing store-side is mutated until
        every stale slot has been drawn, so an exception out of the sharded
        redraw (a raise-mode :class:`~repro.exceptions.WorkerCrashError` /
        :class:`~repro.exceptions.ShardTimeoutError`) leaves the store in a
        *pending* state — serving is refused, but :meth:`retry_maintenance`
        re-draws the same slots from the same substreams and commits,
        bit-identically to an uninterrupted call.
        """
        self._check_sync()
        effect = self._view.apply(deltas)
        self._generators = None  # graph snapshot changed
        self._payload_probabilities = None
        total = len(self._members)
        stale, reason = (
            self._stale_slots(effect) if total else (_EMPTY, "clean")
        )
        if stale.size == 0:
            self._synced_epoch = self._view.epoch
            self._epochs_absorbed += 1
            return MaintenanceReport(
                epoch=effect.epoch,
                total=total,
                invalidated=0,
                redrawn=0,
                reason="clean",
            )
        self._pending_maintenance = (self._view.epoch, effect, stale, reason)
        return self._complete_maintenance()

    @property
    def maintenance_pending(self) -> bool:
        """Whether an interrupted :meth:`apply_deltas` awaits :meth:`retry_maintenance`."""
        return self._pending_maintenance is not None

    def retry_maintenance(self) -> MaintenanceReport:
        """Re-run the redraw of an interrupted :meth:`apply_deltas` and commit.

        Slot draws are pure functions of ``(seed, slot, graph)``, so however
        many times the redraw is retried — and wherever it runs — the
        committed store is bit-identical to one whose maintenance never
        failed.
        """
        if self._pending_maintenance is None:
            raise SamplingError("no interrupted maintenance to retry")
        return self._complete_maintenance()

    def _complete_maintenance(self) -> MaintenanceReport:
        """Draw the pending stale slots and commit; store untouched on failure."""
        target_epoch, effect, stale, reason = self._pending_maintenance
        if self._view.epoch != target_epoch:
            raise SamplingError(
                "the graph view advanced out-of-band while maintenance was "
                f"pending (view.epoch={self._view.epoch}, expected "
                f"{target_epoch}); the store cannot recover"
            )
        drawn = self._draw_slots(stale)
        total = len(self._members)
        replacements: Dict[int, Tuple[np.ndarray, int]] = {}
        for slot, (members, tag, root) in zip(stale.tolist(), drawn):
            self._members[slot] = members
            self._tags[slot] = tag
            self._roots[slot] = root
            replacements[slot] = (members, tag)
        if effect.num_nodes_changed or self._collection is None:
            # Node-space changes alter the collection's (h, n) shape — the
            # cached view cannot be compacted in place.
            self._collection = None
        else:
            self._collection = self._collection.compact(replacements=replacements)
        self._redraws_total += int(stale.size)
        self._synced_epoch = target_epoch
        self._epochs_absorbed += 1
        self._pending_maintenance = None
        return MaintenanceReport(
            epoch=effect.epoch,
            total=total,
            invalidated=int(stale.size),
            redrawn=int(stale.size),
            reason=reason,
        )

    def _stale_slots(self, effect: DeltaEffect) -> Tuple[np.ndarray, str]:
        """Slot indices invalidated by ``effect`` and the reason label."""
        total = len(self._members)
        if effect.num_nodes_changed:
            # The root draw domain (integers(0, n)) changed: every slot's
            # replay differs, so the whole store is invalidated.
            return np.arange(total, dtype=np.int64), "node-space-changed"
        if (
            effect.dirty_nodes.size == 0
            and not effect.dirty_nodes_by_advertiser
        ):
            return _EMPTY, "clean"
        # Signature intersection, vectorized over the flat member layout.
        sizes = np.fromiter((m.size for m in self._members), dtype=np.int64, count=total)
        flat = np.concatenate(self._members)
        starts = np.zeros(total, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        n = self._view.num_nodes
        tags = np.asarray(self._tags, dtype=np.int64)
        stale_mask = np.zeros(total, dtype=bool)
        if effect.dirty_nodes.size:
            mask = np.zeros(n, dtype=bool)
            mask[effect.dirty_nodes] = True
            stale_mask |= np.bitwise_or.reduceat(mask[flat], starts)
        for advertiser, nodes in effect.dirty_nodes_by_advertiser.items():
            if nodes.size == 0:
                continue
            mask = np.zeros(n, dtype=bool)
            mask[nodes] = True
            stale_mask |= np.bitwise_or.reduceat(mask[flat], starts) & (
                tags == advertiser
            )
        return np.flatnonzero(stale_mask).astype(np.int64), "localized"

    # ------------------------------------------------------------------ #
    # checkpoint support
    # ------------------------------------------------------------------ #
    def export_slots(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat ``(members, sizes, tags, roots)`` arrays of the current slots.

        The checkpoint payload of the allocation server
        (:mod:`repro.serve.checkpoint`): together with :attr:`seed` and the
        view's graph snapshot these arrays reconstruct the store
        bit-identically via :meth:`from_slots`.
        """
        self._check_sync()
        count = len(self._members)
        sizes = np.fromiter(
            (m.size for m in self._members), dtype=np.int64, count=count
        )
        flat = np.concatenate(self._members) if count else _EMPTY.copy()
        tags = np.asarray(self._tags, dtype=np.int64)
        roots = np.asarray(self._roots, dtype=np.int64)
        return flat, sizes, tags, roots

    @classmethod
    def from_slots(
        cls,
        view: MutableGraphView,
        cpes: Sequence[float],
        seed: int,
        members: np.ndarray,
        sizes: np.ndarray,
        tags: np.ndarray,
        roots: np.ndarray,
        policy: Optional["ExecutionPolicy"] = None,
        runtime: Optional["Runtime"] = None,
    ) -> "RRStore":
        """Rebuild a store from :meth:`export_slots` output (checkpoint restore).

        The slot arrays are adopted verbatim — no redraw happens — so the
        restored store is bit-identical to the one that exported them,
        provided ``view`` holds the same graph snapshot.  Structural
        inconsistencies (size/tag/member ranges) raise
        :class:`~repro.exceptions.SamplingError`.
        """
        members = np.ascontiguousarray(np.asarray(members, dtype=np.int64))
        sizes = np.asarray(sizes, dtype=np.int64)
        tags = np.asarray(tags, dtype=np.int64)
        roots = np.asarray(roots, dtype=np.int64)
        if not (sizes.shape == tags.shape == roots.shape):
            raise SamplingError("sizes, tags and roots must have equal length")
        if sizes.size and sizes.min() < 0:
            raise SamplingError("slot sizes must be non-negative")
        if int(sizes.sum()) != members.size:
            raise SamplingError(
                f"member array length {members.size} does not match "
                f"sum(sizes)={int(sizes.sum())}"
            )
        if tags.size and (
            tags.min() < 0 or tags.max() >= view.num_advertisers
        ):
            raise SamplingError("slot tags must be valid advertiser indices")
        if members.size and (
            members.min() < 0 or members.max() >= view.num_nodes
        ):
            raise SamplingError("slot members must be valid node ids")
        if roots.size and (roots.min() < 0 or roots.max() >= view.num_nodes):
            raise SamplingError("slot roots must be valid node ids")
        store = cls(view, cpes, seed=seed, policy=policy, runtime=runtime)
        offsets = np.cumsum(sizes[:-1]) if sizes.size else sizes
        store._members = [
            np.ascontiguousarray(chunk)
            for chunk in (np.split(members, offsets) if sizes.size else [])
        ]
        store._tags = [int(tag) for tag in tags]
        store._roots = [int(root) for root in roots]
        return store

    # ------------------------------------------------------------------ #
    def _check_sync(self) -> None:
        if self._pending_maintenance is not None:
            raise SamplingError(
                "RR-store maintenance was interrupted mid-redraw (epoch "
                f"{self._pending_maintenance[0]}); call retry_maintenance() "
                "to re-draw the invalidated slots before serving"
            )
        if self._synced_epoch != self._view.epoch:
            raise SamplingError(
                "the graph view advanced out-of-band (view.epoch="
                f"{self._view.epoch}, store epoch={self._synced_epoch}); "
                "apply deltas through RRStore.apply_deltas so the store can "
                "invalidate affected RR-sets"
            )

    def __repr__(self) -> str:
        return (
            f"RRStore(slots={len(self._members)}, epoch={self._synced_epoch}, "
            f"redraws_total={self._redraws_total}, seed={self._entropy})"
        )
