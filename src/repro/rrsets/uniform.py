"""Advertiser-aware RR-set samplers.

The key sampling idea of Section 4.2: instead of keeping ``h`` equally sized
per-advertiser pools, draw the advertiser of every RR-set at random with
probability proportional to its cpe, then generate the RR-set under that
advertiser's edge probabilities.  The resulting indicator variables are
identically distributed, which lets the solver use sharper concentration
bounds (Lemma 4.1).

:class:`PerAdvertiserRRSampler` implements the naive equal-pool strategy the
paper argues against; it backs both the TI-CARM/TI-CSRM baselines and the
sampling-strategy ablation benchmark.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Type, TYPE_CHECKING

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.digraph import CSRDiGraph
from repro.rrsets.collection import RRCollection
from repro.rrsets.generator import RRSetGenerator
from repro.utils.rng import RandomSource, as_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import ExecutionPolicy, Runtime


class UniformRRSampler:
    """Uniform sampling of RR-sets across advertisers (Section 4.2).

    Parameters
    ----------
    graph:
        The social graph.
    advertiser_edge_probabilities:
        One probability array per advertiser (length ``num_edges`` each).
    cpes:
        Cost-per-engagement values; the advertiser of each RR-set is drawn
        with probability ``cpe(i) / Γ``.
    generator_cls:
        RR-set generator class (:class:`RRSetGenerator` or
        :class:`SubsimRRGenerator`).  ``None`` (the default) resolves from
        ``policy`` — SUBSIM when ``policy.rr_engine == "subsim"`` (the
        ``fast`` default), the legacy reverse BFS otherwise.
    n_jobs:
        Shard :meth:`generate_collection` across this many worker processes
        (``None``/1 → serial, untouched seed-compatible path; ``-1`` → all
        cores).  Each shard samples advertisers and generates RR-sets on its
        own ``SeedSequence.spawn()`` substream and shards merge in
        worker-index order, so a fixed ``(seed, n_jobs)`` pair is
        bit-reproducible; ``n_jobs>1`` draws different substreams than the
        serial stream (statistically equivalent collections).  Defaults to
        ``policy.n_jobs`` when a policy is given.
    policy:
        :class:`repro.runtime.ExecutionPolicy` supplying the generator class
        and ``n_jobs`` defaults; explicit arguments win over it.  ``None``
        resolves to :meth:`ExecutionPolicy.fast`.
    runtime:
        :class:`repro.runtime.Runtime` whose persistent worker pool the
        sharded path runs on (falls back to the ambient runtime, then to a
        per-call pool; results are bit-identical either way).
    """

    def __init__(
        self,
        graph: CSRDiGraph,
        advertiser_edge_probabilities: Sequence[np.ndarray],
        cpes: Sequence[float],
        generator_cls: Optional[Type[RRSetGenerator]] = None,
        seed: RandomSource = None,
        n_jobs: Optional[int] = None,
        policy: Optional["ExecutionPolicy"] = None,
        runtime: Optional["Runtime"] = None,
    ):
        if len(advertiser_edge_probabilities) != len(cpes):
            raise SamplingError("one edge-probability array per advertiser is required")
        if len(cpes) == 0:
            raise SamplingError("at least one advertiser is required")
        cpe_array = np.asarray(cpes, dtype=np.float64)
        if np.any(cpe_array <= 0):
            raise SamplingError("cpe values must be positive")
        from repro.runtime import resolve_policy

        policy = resolve_policy(policy)
        if generator_cls is None:
            if policy.rr_engine == "subsim":
                from repro.rrsets.generator import SubsimRRGenerator

                generator_cls = SubsimRRGenerator
            else:
                generator_cls = RRSetGenerator
        if n_jobs is None:
            n_jobs = policy.n_jobs
        self._runtime = runtime
        self._graph = graph
        self._cpes = cpe_array
        self._gamma = float(cpe_array.sum())
        self._weights = cpe_array / self._gamma
        self._rng = as_rng(seed)
        self._generator_cls = generator_cls
        self._probability_arrays = list(advertiser_edge_probabilities)
        self._generators: List[RRSetGenerator] = [
            generator_cls(graph, probabilities)
            for probabilities in advertiser_edge_probabilities
        ]
        from repro.parallel import resolve_n_jobs

        self._n_jobs = resolve_n_jobs(n_jobs)

    @property
    def num_advertisers(self) -> int:
        """Number of advertisers ``h``."""
        return len(self._generators)

    @property
    def gamma(self) -> float:
        """``Γ = Σ_i cpe(i)`` — the estimator scale factor numerator."""
        return self._gamma

    @property
    def graph(self) -> CSRDiGraph:
        """The underlying graph."""
        return self._graph

    def edges_examined(self) -> int:
        """Total in-edges examined by all per-advertiser generators."""
        return sum(generator.edges_examined for generator in self._generators)

    def sample_advertiser(self) -> int:
        """Draw an advertiser index with probability proportional to cpe."""
        return int(self._rng.choice(self.num_advertisers, p=self._weights))

    def generate_one(self) -> tuple[np.ndarray, int]:
        """Generate a single ``(rr_set, advertiser)`` pair."""
        advertiser = self.sample_advertiser()
        rr_set = self._generators[advertiser].generate(self._rng)
        return rr_set, advertiser

    def generate_collection(self, count: int, into: Optional[RRCollection] = None) -> RRCollection:
        """Generate ``count`` RR-sets, optionally appending to an existing collection.

        The advertiser draw and the RR-set draw stay interleaved per set (the
        estimator's distribution requires it and it keeps the RNG stream
        bit-compatible with the reference engine); the per-set setup cost is
        amortised by resolving the hot references once for the whole batch.
        """
        if count < 0:
            raise SamplingError("count must be non-negative")
        if self._n_jobs > 1 and count > 1:
            return self._generate_collection_sharded(count, into)
        collection = into if into is not None else RRCollection(
            self._graph.num_nodes, self.num_advertisers
        )
        generate_one = self.generate_one
        add = collection.add
        for _ in range(count):
            rr_set, advertiser = generate_one()
            add(rr_set, advertiser)
        return collection

    def _generate_collection_sharded(
        self, count: int, into: Optional[RRCollection]
    ) -> RRCollection:
        """Sharded collection generation (the ``n_jobs>1`` path).

        Worker substreams are spawned from this sampler's RNG (advancing it,
        so successive calls generate fresh sets) and the tagged shards are
        merged through :meth:`RRCollection.from_shards` /
        :meth:`RRCollection.extend_from_shards` without a per-set round-trip.
        The executor comes from the sampler's :class:`~repro.runtime.Runtime`
        (or the ambient one), so repeated calls — RMA's doubling rounds —
        reuse one persistent worker pool instead of spawning per call.
        """
        from repro.parallel.rr import run_uniform_shards
        from repro.runtime import acquire_executor

        executor = acquire_executor(self._n_jobs, self._runtime)
        shards = run_uniform_shards(
            self._generator_cls,
            self._graph,
            self._probability_arrays,
            self._weights,
            count,
            self._rng,
            executor,
        )
        for shard in shards:
            for advertiser, edges in enumerate(shard.edges_examined.tolist()):
                self._generators[advertiser].record_edges_examined(edges)
        triples = [(shard.members, shard.sizes, shard.tags) for shard in shards]
        if into is None:
            return RRCollection.from_shards(
                self._graph.num_nodes, self.num_advertisers, triples
            )
        into.extend_from_shards(triples)
        return into


class PerAdvertiserRRSampler:
    """Equal-sized per-advertiser RR-set pools (the strategy the paper improves on).

    Generates ``count`` RR-sets for *each* advertiser.  Used by the TI-CARM /
    TI-CSRM baselines (which extend TIM and keep one sample per ad) and by the
    sampling ablation.
    """

    def __init__(
        self,
        graph: CSRDiGraph,
        advertiser_edge_probabilities: Sequence[np.ndarray],
        generator_cls: Type[RRSetGenerator] = RRSetGenerator,
        seed: RandomSource = None,
    ):
        if len(advertiser_edge_probabilities) == 0:
            raise SamplingError("at least one advertiser is required")
        self._graph = graph
        self._rng = as_rng(seed)
        self._generators: List[RRSetGenerator] = [
            generator_cls(graph, probabilities)
            for probabilities in advertiser_edge_probabilities
        ]

    @property
    def num_advertisers(self) -> int:
        """Number of advertisers ``h``."""
        return len(self._generators)

    def edges_examined(self) -> int:
        """Total in-edges examined by all per-advertiser generators."""
        return sum(generator.edges_examined for generator in self._generators)

    def generate_pool(self, advertiser: int, count: int) -> List[np.ndarray]:
        """Generate ``count`` RR-sets for a single advertiser."""
        if not 0 <= advertiser < self.num_advertisers:
            raise SamplingError("advertiser index out of range")
        if count < 0:
            raise SamplingError("count must be non-negative")
        return self._generators[advertiser].generate_many(count, self._rng)

    def generate_collection(self, count_per_advertiser: int) -> RRCollection:
        """Generate equally sized pools for every advertiser in one tagged collection."""
        collection = RRCollection(self._graph.num_nodes, self.num_advertisers)
        for advertiser in range(self.num_advertisers):
            for rr_set in self.generate_pool(advertiser, count_per_advertiser):
                collection.add(rr_set, advertiser)
        return collection
