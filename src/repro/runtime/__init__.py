"""Execution policy & runtime — one configuration object, one worker pool.

This package is the single source of truth for *how* the library executes:

* :class:`ExecutionPolicy` — a frozen dataclass selecting the RR / MC /
  greedy engines, the ``n_jobs`` sharding knob and the MC batch size, with
  named presets (:meth:`ExecutionPolicy.seed`, :meth:`ExecutionPolicy.fast`)
  and a :meth:`ExecutionPolicy.from_flags` adapter for the legacy keyword
  sprawl (``use_subsim`` / ``use_batched_mc`` / ``use_batched_greedy`` /
  ``n_jobs`` / ``fast``);
* :class:`FailurePolicy` — the fault-tolerance leg of the policy: shard
  timeouts, deterministic retry budgets and the degrade-vs-raise switch for
  the sharded stages (re-exported from :mod:`repro.parallel.failure`);
* :class:`Runtime` — a context manager owning a persistent worker pool
  (:class:`~repro.parallel.executor.PersistentPool`) reused across RMA's
  doubling rounds, OneBatch, TI pool fills and MC oracle queries;
* :func:`current_runtime` / :func:`acquire_executor` — how the lower layers
  find the ambient pool without every call site threading it by hand.

Every solver, baseline, sampler and oracle accepts ``policy=`` /
``runtime=``; the old per-call flags keep working through thin deprecation
shims (see :func:`repro.runtime.policy.coerce_policy`).
"""

from repro.parallel.failure import FailurePolicy, RecoveryStats
from repro.runtime.policy import (
    ExecutionPolicy,
    POLICY_PRESETS,
    coerce_policy,
    resolve_params_policy,
)
from repro.runtime.runtime import Runtime, acquire_executor, current_runtime

__all__ = [
    "ExecutionPolicy",
    "FailurePolicy",
    "POLICY_PRESETS",
    "RecoveryStats",
    "Runtime",
    "acquire_executor",
    "coerce_policy",
    "current_runtime",
    "resolve_params_policy",
]
