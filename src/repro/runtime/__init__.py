"""Execution policy & runtime — one configuration object, one worker pool.

This package is the single source of truth for *how* the library executes:

* :class:`ExecutionPolicy` — a frozen dataclass selecting the RR / MC /
  greedy engines, the ``n_jobs`` sharding knob and the MC batch size, with
  named presets: :meth:`ExecutionPolicy.fast` (the default every entry point
  resolves when no policy is given) and :meth:`ExecutionPolicy.seed` (the
  bit-reproducible escape hatch);
* :class:`FailurePolicy` — the fault-tolerance leg of the policy: shard
  timeouts, deterministic retry budgets and the degrade-vs-raise switch for
  the sharded stages (re-exported from :mod:`repro.parallel.failure`);
* :class:`Runtime` — a context manager owning a persistent worker pool
  (:class:`~repro.parallel.executor.PersistentPool`) reused across RMA's
  doubling rounds, OneBatch, TI pool fills, MC oracle queries and the
  independent evaluator;
* :func:`current_runtime` / :func:`acquire_executor` — how the lower layers
  find the ambient pool without every call site threading it by hand.

Every solver, baseline, sampler and oracle accepts ``policy=`` /
``runtime=`` — the only configuration channel; a missing ``policy=``
resolves to :meth:`ExecutionPolicy.fast` via :func:`resolve_policy`.
"""

from repro.parallel.failure import FailurePolicy, RecoveryStats
from repro.runtime.policy import (
    ExecutionPolicy,
    MAINTENANCE_MODES,
    PAYLOAD_MODES,
    POLICY_PRESETS,
    resolve_policy,
)
from repro.runtime.runtime import Runtime, acquire_executor, current_runtime

__all__ = [
    "ExecutionPolicy",
    "FailurePolicy",
    "MAINTENANCE_MODES",
    "PAYLOAD_MODES",
    "POLICY_PRESETS",
    "RecoveryStats",
    "Runtime",
    "acquire_executor",
    "current_runtime",
    "resolve_policy",
]
