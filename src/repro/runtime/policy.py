"""The :class:`ExecutionPolicy` — one object for every engine knob.

Four engine generations (vectorized RR, batched MC, batched greedy, sharded
parallel) each started life behind an opt-in flag; the policy object is the
single source of truth that replaced that sprawl:

* **engine selection** — ``rr_engine`` (``"legacy"`` | ``"subsim"``),
  ``mc_engine`` (``"legacy"`` | ``"batched"``), ``greedy_engine``
  (``"scalar"`` | ``"batched"``);
* **parallelism** — ``n_jobs`` (scikit-learn convention: ``None`` → serial,
  ``-1`` → all cores) and ``mc_batch_size`` (cascades per batch of the
  batched MC engine; ``None`` → bitmap-budget sizing);
* **RNG contract** — ``rng_compat`` declares whether the policy reproduces
  the seed tree's RNG streams bit for bit.  It is derived automatically
  (legacy RR + legacy MC + serial execution ⇒ compatible; the batched greedy
  engine is bit-identical by construction, so it never breaks compatibility)
  and validated when set explicitly, so a policy can never silently claim a
  guarantee it does not have.

Named presets cover the two interesting points of the space:
:meth:`ExecutionPolicy.fast` (every fast engine + all cores — **the
default** every entry point resolves when no policy is given) and
:meth:`ExecutionPolicy.seed` (the bit-reproducible escape hatch that
replays the original seed tree's RNG streams exactly).  ``policy=`` /
``runtime=`` are the only configuration channel; the historical per-call
boolean flags are gone, and passing them raises ``TypeError`` like any
other unknown keyword.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Optional

from repro.exceptions import PolicyError
from repro.parallel.executor import PAYLOAD_MODES, validate_n_jobs
from repro.parallel.failure import DEFAULT_FAILURE_POLICY, FailurePolicy

#: Valid engine names per stage.
RR_ENGINES = ("legacy", "subsim")
MC_ENGINES = ("legacy", "batched")
GREEDY_ENGINES = ("scalar", "batched")

#: Execution modes for incremental RR-store maintenance
#: (:meth:`repro.rrsets.store.RRStore.apply_deltas`): ``"pool"`` shards
#: invalidation re-draws across the persistent worker pool whenever
#: ``n_jobs`` allows, ``"inline"`` keeps them in-process.  Never influences
#: results — store slots draw from their own seed substreams, so both modes
#: are bit-identical (and neither participates in ``rng_compat``).
MAINTENANCE_MODES = ("pool", "inline")

#: Sentinel distinguishing "not passed" from an explicit value in
#: :meth:`ExecutionPolicy.evolve`.
_UNSET = object()


@dataclass(frozen=True)
class ExecutionPolicy:
    """Immutable description of which engines run and how they are sharded.

    Attributes
    ----------
    rr_engine:
        RR-set generator: ``"legacy"`` (seed-stream compatible reverse BFS)
        or ``"subsim"`` (geometric-skipping SUBSIM generator, ~9× on
        WC-style instances, different draw order).
    mc_engine:
        Monte-Carlo cascade engine: ``"legacy"`` (sequential per-cascade
        BFS, seed-stream compatible) or ``"batched"`` (level-synchronous
        batched engine, ~an order of magnitude faster, statistically
        equivalent).
    greedy_engine:
        Greedy inner loops: ``"scalar"`` (per-element oracle callbacks) or
        ``"batched"`` (vectorized CELF refreshes; **bit-identical
        allocations**, it replays the scalar heap's refresh schedule and
        tie-breaking exactly).
    n_jobs:
        Worker-process count for the sharded stages (``None`` → serial,
        ``-1`` → all cores, positive int → that many shards).  Fixed
        ``(seed, n_jobs)`` runs are bit-reproducible; ``n_jobs>1`` draws
        different RNG substreams than the serial run.
    mc_batch_size:
        Cascades per batch of the batched MC engine; ``None`` sizes batches
        by the activation-bitmap budget
        (:func:`repro.diffusion.engine.default_batch_size`).
    rng_compat:
        Whether the policy reproduces the seed tree's RNG streams bit for
        bit.  ``None`` (the default) derives the value; an explicit ``True``
        on a policy that cannot honour it raises :class:`PolicyError`.
    failure:
        The :class:`~repro.parallel.failure.FailurePolicy` governing how the
        sharded stages react to worker loss and hung shards (the default
        degrades gracefully: deterministic shard retry on a respawned pool,
        then in-process serial execution).  Never influences results — the
        determinism contract makes recovered runs bit-identical — so it does
        not participate in ``rng_compat``.
    maintenance:
        How :class:`~repro.rrsets.store.RRStore` executes invalidation
        re-draws when absorbing graph deltas: ``"pool"`` (default) shards
        them across the persistent worker pool when ``n_jobs`` allows,
        ``"inline"`` keeps them in-process.  Bit-identical either way —
        store slots own their seed substreams — so it never participates in
        ``rng_compat``.
    payload:
        How worker broadcasts transport the payload (graph + probability
        arrays): ``"auto"`` (default — one ``multiprocessing.shared_memory``
        segment once the payload's array bytes reach
        :data:`~repro.parallel.executor.AUTO_SHM_MIN_BYTES`, pickling below
        that), ``"pickle"`` (always through the pool's pipes), ``"shm"``
        (always shared memory).  Bit-identical by construction — only the
        transport changes, workers rebuild read-only views over the same
        bytes — so it never participates in ``rng_compat``.
    """

    rr_engine: str = "legacy"
    mc_engine: str = "legacy"
    greedy_engine: str = "scalar"
    n_jobs: Optional[int] = None
    mc_batch_size: Optional[int] = None
    rng_compat: Optional[bool] = None
    failure: FailurePolicy = DEFAULT_FAILURE_POLICY
    maintenance: str = "pool"
    payload: str = "auto"

    def __post_init__(self) -> None:
        if self.rr_engine not in RR_ENGINES:
            raise PolicyError(
                f"rr_engine must be one of {RR_ENGINES}, got {self.rr_engine!r}"
            )
        if self.mc_engine not in MC_ENGINES:
            raise PolicyError(
                f"mc_engine must be one of {MC_ENGINES}, got {self.mc_engine!r}"
            )
        if self.greedy_engine not in GREEDY_ENGINES:
            raise PolicyError(
                f"greedy_engine must be one of {GREEDY_ENGINES}, got {self.greedy_engine!r}"
            )
        validate_n_jobs(self.n_jobs, PolicyError)
        if self.mc_batch_size is not None and int(self.mc_batch_size) <= 0:
            raise PolicyError(
                f"mc_batch_size must be positive, got {self.mc_batch_size}"
            )
        if not isinstance(self.failure, FailurePolicy):
            raise PolicyError(
                f"failure must be a FailurePolicy, got {type(self.failure).__name__}"
            )
        if self.maintenance not in MAINTENANCE_MODES:
            raise PolicyError(
                f"maintenance must be one of {MAINTENANCE_MODES}, "
                f"got {self.maintenance!r}"
            )
        if self.payload not in PAYLOAD_MODES:
            raise PolicyError(
                f"payload must be one of {PAYLOAD_MODES}, got {self.payload!r}"
            )
        derived = self._derive_rng_compat()
        if self.rng_compat is None:
            object.__setattr__(self, "rng_compat", derived)
        elif self.rng_compat and not derived:
            raise PolicyError(
                "rng_compat=True is impossible for this policy: the seed RNG "
                "streams require rr_engine='legacy', mc_engine='legacy' and "
                f"serial execution (got rr_engine={self.rr_engine!r}, "
                f"mc_engine={self.mc_engine!r}, n_jobs={self.n_jobs!r})"
            )

    def _derive_rng_compat(self) -> bool:
        serial = self.n_jobs is None or int(self.n_jobs) == 1
        return self.rr_engine == "legacy" and self.mc_engine == "legacy" and serial

    # ------------------------------------------------------------------ #
    # presets
    # ------------------------------------------------------------------ #
    @classmethod
    def seed(
        cls,
        n_jobs: Optional[int] = None,
        failure: Optional[FailurePolicy] = None,
    ) -> "ExecutionPolicy":
        """The reproducibility escape hatch: every seed-compatible engine.

        With ``n_jobs`` in ``(None, 1)`` the run is bit-identical to the
        seed tree; a larger ``n_jobs`` keeps the legacy engines but shards
        them (bit-reproducible for fixed ``(seed, n_jobs)``).  ``failure``
        overrides the fault-tolerance behaviour of the sharded stages.
        """
        return cls(
            n_jobs=n_jobs,
            failure=failure if failure is not None else DEFAULT_FAILURE_POLICY,
        )

    @classmethod
    def fast(
        cls,
        n_jobs: Optional[int] = -1,
        failure: Optional[FailurePolicy] = None,
    ) -> "ExecutionPolicy":
        """The default policy: every fast engine — SUBSIM RR, batched MC,
        batched greedy — plus all cores (override with ``n_jobs``).
        Statistically equivalent to :meth:`seed`, not bit-identical (see the
        RNG policy in ``docs/architecture.md``).  ``failure`` overrides the
        fault-tolerance behaviour of the sharded stages."""
        return cls(
            rr_engine="subsim",
            mc_engine="batched",
            greedy_engine="batched",
            n_jobs=n_jobs,
            failure=failure if failure is not None else DEFAULT_FAILURE_POLICY,
        )

    @classmethod
    def preset(cls, name: str, n_jobs: Optional[int] = _UNSET) -> "ExecutionPolicy":
        """Look up a named preset (``"fast"``, the default, or ``"seed"``)."""
        try:
            factory = {"seed": cls.seed, "fast": cls.fast}[name]
        except KeyError:
            raise PolicyError(
                f"unknown policy preset {name!r}; expected 'seed' or 'fast'"
            ) from None
        return factory() if n_jobs is _UNSET else factory(n_jobs=n_jobs)

    # ------------------------------------------------------------------ #
    # derivation helpers
    # ------------------------------------------------------------------ #
    def evolve(self, **changes: Any) -> "ExecutionPolicy":
        """``dataclasses.replace`` that re-derives ``rng_compat``.

        A plain ``replace(policy, rr_engine="subsim")`` would carry a stale
        ``rng_compat=True`` into the new policy and fail validation; this
        helper resets the field unless the caller pins it explicitly.
        """
        changes.setdefault("rng_compat", None)
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary (the CLI's effective-policy line)."""
        jobs = "serial" if self.n_jobs in (None, 1) else str(self.n_jobs)
        name = ""
        if self == ExecutionPolicy.seed(n_jobs=self.n_jobs, failure=self.failure):
            name = "seed: "
        elif self == ExecutionPolicy.fast(n_jobs=self.n_jobs, failure=self.failure):
            name = "fast: "
        batch = "" if self.mc_batch_size is None else f" mc_batch_size={self.mc_batch_size}"
        fail = (
            ""
            if self.failure == DEFAULT_FAILURE_POLICY
            else f" failure={self.failure.describe()}"
        )
        upkeep = "" if self.maintenance == "pool" else f" maintenance={self.maintenance}"
        transport = "" if self.payload == "auto" else f" payload={self.payload}"
        return (
            f"{name}rr={self.rr_engine} mc={self.mc_engine} "
            f"greedy={self.greedy_engine} n_jobs={jobs}{batch} "
            f"rng_compat={'yes' if self.rng_compat else 'no'}{fail}{upkeep}"
            f"{transport}"
        )


#: Preset registry (CLI ``--policy`` choices).
POLICY_PRESETS = ("seed", "fast")


def resolve_policy(policy: Optional[ExecutionPolicy]) -> ExecutionPolicy:
    """``policy``, or the library default :meth:`ExecutionPolicy.fast`.

    The one place the default is defined: every entry point — solvers,
    baselines, samplers, oracles, diffusion dispatch, CLI — resolves a
    missing ``policy=`` through this helper, so they all agree that "no
    policy" means the fast engines on all cores.  Pass
    :meth:`ExecutionPolicy.seed` explicitly to reproduce the original
    seed-tree RNG streams bit for bit.
    """
    return policy if policy is not None else ExecutionPolicy.fast()


def policy_fields() -> tuple:
    """Field names of :class:`ExecutionPolicy` (used by docs tests)."""
    return tuple(f.name for f in fields(ExecutionPolicy))
