"""The :class:`Runtime` — a context that owns a persistent worker pool.

Without a runtime every sharded call (``generate_collection``, sharded MC
spread, TI pool fills) spawns its own ``multiprocessing`` pool — ~30–60 ms
each, paid repeatedly across RMA's doubling rounds.  A ``Runtime`` owns one
:class:`~repro.parallel.executor.PersistentPool` and hands out
:class:`~repro.parallel.executor.ShardedExecutor` views bound to it, so the
pool is spawned at most once per context no matter how many rounds run::

    from repro.runtime import ExecutionPolicy, Runtime

    with Runtime(ExecutionPolicy.fast(n_jobs=4)) as rt:
        result = rm_without_oracle(instance, params, runtime=rt)

Entering a runtime also makes it the *ambient* runtime
(:func:`current_runtime`), so layers that were not handed the object
explicitly — the independent evaluator, nested oracle queries — still reuse
the pool through :func:`acquire_executor`.

Determinism contract: a runtime never influences results.  Shard layout and
RNG substreams are fixed by each call's ``n_jobs``; the pool only recycles
OS processes, so a run inside a ``Runtime`` block is bit-identical to the
same run with per-call pools.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.parallel.executor import PersistentPool, ShardedExecutor
from repro.parallel.failure import FailurePolicy
from repro.runtime.policy import ExecutionPolicy, resolve_policy

#: Stack of entered runtimes; the innermost ``with`` block wins.
_ACTIVE: List["Runtime"] = []


class Runtime:
    """Owns an :class:`ExecutionPolicy` and a persistent worker pool.

    Parameters
    ----------
    policy:
        The execution policy this runtime represents; defaults to
        :meth:`ExecutionPolicy.fast`, like every other entry point.  Purely
        descriptive — it never leaks into :meth:`sharded_executor`, whose
        ``n_jobs`` (and therefore the results) always comes from the caller.
    start_method:
        Multiprocessing start method for the pool (default: ``fork`` on
        Linux, overridable via ``REPRO_MP_START_METHOD``).
    """

    def __init__(
        self,
        policy: Optional[ExecutionPolicy] = None,
        start_method: Optional[str] = None,
    ):
        self._policy = resolve_policy(policy)
        self._pool = PersistentPool(
            start_method=start_method, payload_mode=self._policy.payload
        )
        self._failure_override: Optional[FailurePolicy] = None

    @property
    def policy(self) -> ExecutionPolicy:
        """The policy this runtime was built for."""
        return self._policy

    @property
    def pool(self) -> PersistentPool:
        """The persistent pool (lazily spawned on the first sharded call)."""
        return self._pool

    @property
    def pool_spawn_count(self) -> int:
        """How many times worker processes have been spawned in this runtime.

        The acceptance metric of the pool-reuse contract: one RMA run inside
        a ``Runtime`` block must report at most 1 here, however many
        doubling rounds it took.  Recovery respawns after a worker crash
        also increment it (see :attr:`recovery_stats`).
        """
        return self._pool.spawn_count

    @property
    def recovery_stats(self):
        """The pool's :class:`~repro.parallel.failure.RecoveryStats`.

        All zeros on a failure-free run; the CLI prints it next to the
        effective-policy line when any recovery happened.
        """
        return self._pool.recovery_stats

    def sharded_executor(
        self,
        n_jobs: Optional[int] = None,
        failure: Optional[FailurePolicy] = None,
    ) -> ShardedExecutor:
        """An executor bound to this runtime's pool.

        ``n_jobs`` fixes the shard layout (and therefore the results) and is
        taken verbatim — ``None`` stays serial exactly as it would without a
        runtime, so entering a ``Runtime`` block can never change what a
        call computes (e.g. ``MonteCarloOracle`` passing ``n_jobs=None`` to
        keep small queries serial).  Pool size only caps concurrency, so
        executors with different ``n_jobs`` share the pool without
        affecting each other's outputs.  The executor inherits the policy's
        :class:`~repro.parallel.failure.FailurePolicy` — or an explicit
        ``failure``, or the ambient :meth:`overriding_failure` policy —
        which governs recovery but never results.
        """
        if failure is None:
            failure = (
                self._failure_override
                if self._failure_override is not None
                else self._policy.failure
            )
        return ShardedExecutor(n_jobs, pool=self._pool, failure=failure)

    @contextmanager
    def overriding_failure(self, failure: FailurePolicy) -> Iterator["Runtime"]:
        """Temporarily hand out executors under a different failure policy.

        The allocation server uses this to enforce *per-request deadlines*
        through the supervision machinery: the dispatch loop wraps each
        request's engine work in ``overriding_failure(FailurePolicy.fail_fast(
        shard_timeout_s=remaining))`` so every sharded stage reached inside —
        however deep in the call tree — raises
        :class:`~repro.exceptions.ShardTimeoutError` /
        :class:`~repro.exceptions.WorkerCrashError` promptly instead of
        retrying past the deadline.  Failure policies never influence
        results, so an override cannot either.  Not safe for concurrent use
        from multiple threads (the server's dispatch loop is single-threaded
        by design); overrides nest, restoring the previous one on exit.
        """
        previous = self._failure_override
        self._failure_override = failure
        try:
            yield self
        finally:
            self._failure_override = previous

    def close(self) -> None:
        """Release the worker processes (the runtime stays reusable)."""
        self._pool.close()

    def __enter__(self) -> "Runtime":
        _ACTIVE.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for index in range(len(_ACTIVE) - 1, -1, -1):
            if _ACTIVE[index] is self:
                del _ACTIVE[index]
                break
        if self not in _ACTIVE:
            self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass


def current_runtime() -> Optional[Runtime]:
    """The innermost entered :class:`Runtime`, or ``None`` outside any."""
    return _ACTIVE[-1] if _ACTIVE else None


def acquire_executor(
    n_jobs: Optional[int] = None, runtime: Optional[Runtime] = None
) -> ShardedExecutor:
    """Resolve the executor a sharded call should run on.

    Preference order: the explicitly passed ``runtime``, then the ambient
    :func:`current_runtime`, then a fresh ephemeral
    :class:`~repro.parallel.executor.ShardedExecutor`.  ``n_jobs`` always
    comes from the caller — the runtime contributes only the pool, so
    results do not depend on which branch was taken.
    """
    active = runtime if runtime is not None else current_runtime()
    if active is not None:
        return active.sharded_executor(n_jobs)
    return ShardedExecutor(n_jobs)
