"""Allocation-as-a-service: a long-lived server over a warm RR-store.

The paper's motivating deployment is an ad platform answering allocation
queries continuously while the social graph streams deltas underneath.
This package is that deployment shape: ``repro serve`` holds one
:class:`~repro.runtime.Runtime` (persistent worker pool) and one
:class:`~repro.rrsets.store.RRStore` and answers line-delimited JSON
requests over stdio, TCP or a Unix socket — with bounded admission,
per-request deadlines, graceful drain and ``kill -9``-proof checkpointed
durability.  See ``docs/architecture.md`` ("Allocation service") for the
protocol and recovery semantics.
"""

from repro.serve.checkpoint import CheckpointManager, DeltaJournal, RestoredState
from repro.serve.lifecycle import (
    DRAINING,
    SERVING,
    STARTING,
    STOPPED,
    ServerStats,
    ServicePolicy,
    Ticket,
)
from repro.serve.server import AllocationServer
from repro.serve.transport import SocketListener, request_over_socket, serve_stdio

__all__ = [
    "AllocationServer",
    "CheckpointManager",
    "DeltaJournal",
    "RestoredState",
    "ServerStats",
    "ServicePolicy",
    "SocketListener",
    "Ticket",
    "request_over_socket",
    "serve_stdio",
    "STARTING",
    "SERVING",
    "DRAINING",
    "STOPPED",
]
