"""Crash-recoverable persistence for the allocation server's RR-store.

Two artifacts, one invariant:

* **Checkpoint** (``store.ckpt``) — a full snapshot of the server's durable
  state: the graph (edge lists + per-advertiser probabilities), the store's
  slot arrays (``export_slots``), its seed entropy, the cpe vector and the
  absolute delta epoch.  Written atomically (tmp + ``os.replace`` via
  :mod:`repro.utils.atomic`) with a SHA-256 over the payload, so a reader
  sees either the previous complete checkpoint or the new complete one —
  never a torn file.
* **Delta journal** (``deltas.wal``) — an append-only NDJSON write-ahead log
  of accepted delta batches, one CRC-guarded line per batch, fsynced
  *before* the batch is applied to the store.

The invariant: **a batch is acknowledged only after its journal line is
durable**.  Recovery therefore reloads the checkpoint, replays every journal
entry newer than the checkpoint's epoch through
:meth:`~repro.rrsets.store.RRStore.apply_deltas`, and — because slot redraws
are pure functions of ``(seed, slot, graph)`` — lands on a store
bit-identical to one that never crashed.  A ``kill -9`` can leave at most
one torn trailing journal line; that batch was never acknowledged, and
replay stops cleanly in front of it.  A bad CRC anywhere *before* the tail
is real corruption and raises :class:`~repro.exceptions.CheckpointError`.
"""

from __future__ import annotations

import io
import hashlib
import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.exceptions import CheckpointError
from repro.graph.deltas import GraphDelta, MutableGraphView
from repro.graph.digraph import CSRDiGraph
from repro.serve.protocol import delta_from_json, delta_to_json
from repro.utils.atomic import atomic_write_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rrsets.store import RRStore
    from repro.runtime import ExecutionPolicy, Runtime

#: First bytes of every checkpoint file; bumped on format changes.
MAGIC = b"REPRO-CKPT v1\n"

CHECKPOINT_NAME = "store.ckpt"
JOURNAL_NAME = "deltas.wal"


@dataclass(frozen=True)
class Checkpoint:
    """A decoded checkpoint: everything needed to rebuild view + store."""

    epoch: int  #: absolute delta epoch at snapshot time
    entropy: int  #: RR-store seed (per-slot substream base)
    num_nodes: int  #: node count (edge lists alone miss isolated nodes)
    cpes: np.ndarray  #: (h,) cost-per-engagement vector
    sources: np.ndarray  #: (E,) edge source ids, canonical order
    targets: np.ndarray  #: (E,) edge target ids, canonical order
    probabilities: np.ndarray  #: (h, E) per-advertiser edge probabilities
    members: np.ndarray  #: flat slot member array (export_slots layout)
    sizes: np.ndarray  #: (|R|,) per-slot member counts
    tags: np.ndarray  #: (|R|,) per-slot advertiser tags
    roots: np.ndarray  #: (|R|,) per-slot traversal roots


@dataclass(frozen=True)
class RestoredState:
    """Outcome of :meth:`CheckpointManager.restore`."""

    view: MutableGraphView  #: rebuilt graph view (epoch counts replayed batches)
    store: "RRStore"  #: rebuilt store, synchronized with ``view``
    base_epoch: int  #: absolute epoch of the checkpoint itself
    replayed_batches: int  #: journal entries replayed on top of it
    dropped_torn_tail: bool  #: whether a torn trailing journal line was skipped


class DeltaJournal:
    """CRC-guarded, fsynced NDJSON write-ahead log of delta batches.

    Line format: ``<crc32 hex8> <json>\\n`` where the JSON object is
    ``{"epoch": <absolute>, "deltas": [<tagged delta>, ...]}`` with sorted
    keys.  Appends are flushed and fsynced before returning — the server
    acknowledges a batch only after :meth:`append` comes back.
    """

    def __init__(self, path: Path):
        self._path = Path(path)
        self._handle: Optional[IO[bytes]] = None

    @property
    def path(self) -> Path:
        return self._path

    def append(self, epoch: int, deltas: List[GraphDelta]) -> None:
        """Durably record one accepted batch (fsync before return)."""
        record = {
            "epoch": int(epoch),
            "deltas": [delta_to_json(delta) for delta in deltas],
        }
        body = json.dumps(record, sort_keys=True, separators=(",", ":"))
        line = f"{zlib.crc32(body.encode('utf-8')):08x} {body}\n".encode("utf-8")
        if self._handle is None:
            self._handle = open(self._path, "ab")
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def entries(self) -> Tuple[List[Tuple[int, List[GraphDelta]]], bool]:
        """Decode the journal: ``(entries, dropped_torn_tail)``.

        A damaged **final** line (no newline, truncated JSON, CRC mismatch)
        is the expected signature of a crash mid-append — the batch was
        never acknowledged, so it is silently dropped and the flag is set.
        Damage anywhere earlier means the log itself is corrupt and raises
        :class:`~repro.exceptions.CheckpointError`.
        """
        if not self._path.exists():
            return [], False
        raw = self._path.read_bytes()
        if not raw:
            return [], False
        lines = raw.split(b"\n")
        # A well-formed log ends with a newline, leaving one empty tail item.
        torn = lines[-1] != b""
        complete = lines[:-1]
        tail = lines[-1] if torn else None
        entries: List[Tuple[int, List[GraphDelta]]] = []
        for index, line in enumerate(complete):
            try:
                entries.append(self._decode_line(line))
            except CheckpointError:
                if index == len(complete) - 1 and tail is None:
                    # Torn *content* on the final newline-terminated line —
                    # possible when the newline of a partial write survived.
                    torn = True
                    break
                raise CheckpointError(
                    f"delta journal {self._path} is corrupt at line "
                    f"{index + 1} of {len(complete)}"
                )
        if tail is not None:
            try:
                entries.append(self._decode_line(tail))
                torn = False  # tail parsed fine; it merely lacked a newline
            except CheckpointError:
                pass  # torn trailing write from a crash mid-append: drop it
        return entries, torn

    @staticmethod
    def _decode_line(line: bytes) -> Tuple[int, List[GraphDelta]]:
        try:
            text = line.decode("utf-8")
            crc_hex, body = text.split(" ", 1)
            if int(crc_hex, 16) != zlib.crc32(body.encode("utf-8")):
                raise CheckpointError("journal line CRC mismatch")
            record = json.loads(body)
            epoch = int(record["epoch"])
            deltas = [delta_from_json(obj) for obj in record["deltas"]]
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(f"undecodable journal line: {exc}") from exc
        return epoch, deltas

    def reset(self) -> None:
        """Truncate the journal (after a successful checkpoint rotation)."""
        self.close()
        atomic_write_bytes(self._path, b"")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CheckpointManager:
    """Owns the checkpoint file and delta journal of one server directory."""

    def __init__(self, directory: Path):
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._checkpoint_path = self._directory / CHECKPOINT_NAME
        self.journal = DeltaJournal(self._directory / JOURNAL_NAME)

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def checkpoint_path(self) -> Path:
        return self._checkpoint_path

    def has_checkpoint(self) -> bool:
        return self._checkpoint_path.exists()

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def save_state(
        self, view: MutableGraphView, store: "RRStore", epoch: int
    ) -> Path:
        """Snapshot ``(view, store)`` at absolute ``epoch`` and rotate the journal.

        The checkpoint lands atomically first; only then is the journal
        truncated — a crash between the two leaves stale journal entries
        whose epochs the replay filter (``> base_epoch``) discards.
        """
        graph = view.graph
        members, sizes, tags, roots = store.export_slots()
        payload = io.BytesIO()
        np.savez_compressed(
            payload,
            cpes=store.cpes,
            sources=np.asarray(graph.sources, dtype=np.int64),
            targets=np.asarray(graph.targets, dtype=np.int64),
            probabilities=np.vstack(view.advertiser_edge_probabilities)
            if view.num_advertisers
            else np.empty((0, 0)),
            members=members,
            sizes=sizes,
            tags=tags,
            roots=roots,
        )
        blob = payload.getvalue()
        header = {
            "epoch": int(epoch),
            "entropy": int(store.seed),
            "num_nodes": int(view.num_nodes),
            "payload_sha256": hashlib.sha256(blob).hexdigest(),
            "payload_bytes": len(blob),
        }
        data = (
            MAGIC
            + json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
            + b"\n"
            + blob
        )
        atomic_write_bytes(self._checkpoint_path, data)
        self.journal.reset()
        return self._checkpoint_path

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def load(self) -> Checkpoint:
        """Decode and verify the checkpoint file."""
        if not self.has_checkpoint():
            raise CheckpointError(f"no checkpoint at {self._checkpoint_path}")
        raw = self._checkpoint_path.read_bytes()
        if not raw.startswith(MAGIC):
            raise CheckpointError(
                f"{self._checkpoint_path} is not a repro checkpoint "
                f"(bad magic)"
            )
        rest = raw[len(MAGIC):]
        newline = rest.find(b"\n")
        if newline < 0:
            raise CheckpointError(f"{self._checkpoint_path} is truncated (no header)")
        try:
            header = json.loads(rest[:newline].decode("utf-8"))
        except Exception as exc:
            raise CheckpointError(
                f"{self._checkpoint_path} has an undecodable header: {exc}"
            ) from exc
        blob = rest[newline + 1:]
        if len(blob) != int(header.get("payload_bytes", -1)):
            raise CheckpointError(
                f"{self._checkpoint_path} payload is truncated "
                f"({len(blob)} bytes, header says {header.get('payload_bytes')})"
            )
        digest = hashlib.sha256(blob).hexdigest()
        if digest != header.get("payload_sha256"):
            raise CheckpointError(
                f"{self._checkpoint_path} payload checksum mismatch"
            )
        with np.load(io.BytesIO(blob)) as payload:
            return Checkpoint(
                epoch=int(header["epoch"]),
                entropy=int(header["entropy"]),
                num_nodes=int(header["num_nodes"]),
                cpes=payload["cpes"],
                sources=payload["sources"],
                targets=payload["targets"],
                probabilities=payload["probabilities"],
                members=payload["members"],
                sizes=payload["sizes"],
                tags=payload["tags"],
                roots=payload["roots"],
            )

    def restore(
        self,
        policy: Optional["ExecutionPolicy"] = None,
        runtime: Optional["Runtime"] = None,
    ) -> RestoredState:
        """Rebuild view + store from the checkpoint and replay the journal.

        The rebuilt store adopts the checkpointed slots verbatim and then
        absorbs every journaled batch newer than the checkpoint through the
        ordinary maintenance path — bit-identical to the pre-crash store by
        the slot-purity contract.  Journal epochs must continue the
        checkpoint contiguously; a gap means lost acknowledged batches and
        raises :class:`~repro.exceptions.CheckpointError`.
        """
        from repro.rrsets.store import RRStore

        snapshot = self.load()
        graph = CSRDiGraph(
            snapshot.num_nodes, snapshot.sources, snapshot.targets
        )
        probabilities = [
            np.asarray(row, dtype=np.float64) for row in snapshot.probabilities
        ]
        view = MutableGraphView(graph, probabilities)
        store = RRStore.from_slots(
            view,
            snapshot.cpes,
            snapshot.entropy,
            snapshot.members,
            snapshot.sizes,
            snapshot.tags,
            snapshot.roots,
            policy=policy,
            runtime=runtime,
        )
        entries, torn = self.journal.entries()
        replayed = 0
        expected = snapshot.epoch + 1
        for epoch, deltas in entries:
            if epoch <= snapshot.epoch:
                # Stale entry from a crash between checkpoint replace and
                # journal truncation — already folded into the snapshot.
                continue
            if epoch != expected:
                raise CheckpointError(
                    f"delta journal skips from epoch {expected - 1} to "
                    f"{epoch}; acknowledged batches are missing"
                )
            store.apply_deltas(deltas)
            expected += 1
            replayed += 1
        return RestoredState(
            view=view,
            store=store,
            base_epoch=snapshot.epoch,
            replayed_batches=replayed,
            dropped_torn_tail=torn,
        )
