"""Service policy and request lifecycle primitives of the allocation server.

The server composes **two** frozen policies: the
:class:`~repro.runtime.ExecutionPolicy` it was built with (engines, shard
counts, failure handling — *how* requests compute) and the
:class:`ServicePolicy` defined here (*how the server behaves under load*:
per-request deadlines, bounded admission, drain grace).  Keeping them
separate mirrors the ``ExecutionPolicy`` / ``FailurePolicy`` split of the
execution layer — service knobs never influence results, only latency and
shedding behaviour.

Lifecycle states form a one-way ladder::

    starting ──start()──▶ serving ──drain──▶ draining ──queue empty──▶ stopped

``draining`` rejects new admissions with a structured ``draining`` error but
finishes every request already admitted (bounded by ``drain_grace_s``);
``stopped`` is terminal.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.exceptions import PolicyError, ServiceError

#: Lifecycle states (one-way ladder; see module docstring).
STARTING = "starting"
SERVING = "serving"
DRAINING = "draining"
STOPPED = "stopped"

STATES = (STARTING, SERVING, DRAINING, STOPPED)


class DeadlineExceeded(ServiceError):
    """Cooperative deadline signal raised by deadline-aware handlers.

    Sharded engine work trips deadlines through the supervision machinery
    (:class:`~repro.exceptions.ShardTimeoutError` under a per-request
    ``FailurePolicy.fail_fast`` override); purely in-process handlers that
    poll the deadline themselves raise this instead.  Both are translated to
    the same structured ``deadline-exceeded`` reply.
    """


@dataclass(frozen=True)
class ServicePolicy:
    """Frozen admission/deadline/drain configuration of the server.

    Parameters
    ----------
    deadline_s:
        Default per-request deadline in seconds, measured from *admission*
        (so queueing time counts against it).  ``None`` disables deadlines;
        a request may override with its own ``deadline_s`` field.
    queue_depth:
        Bound of the admission queue.  A request arriving while the queue
        holds this many tickets is shed immediately with a structured
        ``overloaded`` error — admission never allocates unboundedly.
    max_inflight:
        Upper bound on how many queued requests one dispatch batch pops (and
        therefore how many get coalesced/answered per engine pass).
    drain_grace_s:
        Wall-clock budget for finishing already-admitted requests after a
        drain begins; requests still queued when it expires get ``draining``
        errors instead of hanging shutdown forever.
    request_retries:
        Server-level re-execution budget when a *deadline-bearing* request
        dies to a worker crash (deadlines run under ``fail_fast``, which
        raises instead of degrading).  Determinism makes every retry
        bit-identical, so retrying is invisible to the client.
    checkpoint_every:
        Write an RR-store checkpoint (and rotate the delta journal) every N
        accepted delta batches; ``0`` checkpoints only at startup, on drain
        and on explicit ``checkpoint`` requests.
    """

    deadline_s: Optional[float] = None
    queue_depth: int = 64
    max_inflight: int = 4
    drain_grace_s: float = 10.0
    request_retries: int = 2
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        if self.deadline_s is not None and (
            not math.isfinite(self.deadline_s) or self.deadline_s <= 0
        ):
            raise PolicyError(
                f"deadline_s must be a positive number or None, got {self.deadline_s!r}"
            )
        if self.queue_depth < 1:
            raise PolicyError(f"queue_depth must be >= 1, got {self.queue_depth!r}")
        if self.max_inflight < 1:
            raise PolicyError(f"max_inflight must be >= 1, got {self.max_inflight!r}")
        if not math.isfinite(self.drain_grace_s) or self.drain_grace_s <= 0:
            raise PolicyError(
                f"drain_grace_s must be a positive number, got {self.drain_grace_s!r}"
            )
        if self.request_retries < 0:
            raise PolicyError(
                f"request_retries must be >= 0, got {self.request_retries!r}"
            )
        if self.checkpoint_every < 0:
            raise PolicyError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every!r}"
            )

    def describe(self) -> str:
        """One-line summary (printed in the server's startup banner)."""
        deadline = "none" if self.deadline_s is None else f"{self.deadline_s:g}s"
        return (
            f"deadline={deadline} queue_depth={self.queue_depth} "
            f"max_inflight={self.max_inflight} drain_grace={self.drain_grace_s:g}s "
            f"request_retries={self.request_retries} "
            f"checkpoint_every={self.checkpoint_every}"
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (embedded in ``stats`` replies)."""
        return {
            "deadline_s": self.deadline_s,
            "queue_depth": self.queue_depth,
            "max_inflight": self.max_inflight,
            "drain_grace_s": self.drain_grace_s,
            "request_retries": self.request_retries,
            "checkpoint_every": self.checkpoint_every,
        }


class Ticket:
    """One admitted (or immediately rejected) request and its future reply.

    Transports attach an ``on_done`` callback to stream the reply back over
    their connection; in-process callers block on :meth:`wait`.  A ticket
    resolves exactly once.
    """

    def __init__(
        self,
        request: Dict[str, Any],
        arrival: Optional[float] = None,
        on_done: Optional[Callable[["Ticket"], None]] = None,
    ):
        self.request = request
        self.arrival = time.monotonic() if arrival is None else arrival
        self.reply: Optional[Dict[str, Any]] = None
        self.done = threading.Event()
        self._on_done = on_done

    def resolve(self, reply: Dict[str, Any]) -> None:
        """Deliver the reply (idempotent against double resolution)."""
        if self.done.is_set():  # pragma: no cover - defensive
            return
        self.reply = reply
        self.done.set()
        if self._on_done is not None:
            self._on_done(self)

    def wait(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the reply is available and return it."""
        if not self.done.wait(timeout):
            raise ServiceError(
                f"no reply within {timeout}s for request "
                f"{self.request.get('op', '?')!r}"
            )
        assert self.reply is not None
        return self.reply


@dataclass
class ServerStats:
    """Mutable request counters (reported by the ``stats`` op)."""

    accepted: int = 0  #: tickets admitted to the queue
    completed: int = 0  #: tickets answered with ``ok: true``
    failed: int = 0  #: tickets answered with a structured error
    shed: int = 0  #: tickets rejected with ``overloaded`` (queue full)
    rejected: int = 0  #: tickets rejected before admission (bad request / draining)
    coalesced: int = 0  #: tickets answered by another identical ticket's pass
    deadline_timeouts: int = 0  #: deadline-exceeded replies
    request_retries: int = 0  #: server-level re-executions after worker crashes
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def bump(self, counter: str, by: int = 1) -> None:
        """Thread-safe increment (admission and dispatch touch these)."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "accepted": self.accepted,
                "completed": self.completed,
                "failed": self.failed,
                "shed": self.shed,
                "rejected": self.rejected,
                "coalesced": self.coalesced,
                "deadline_timeouts": self.deadline_timeouts,
                "request_retries": self.request_retries,
            }
