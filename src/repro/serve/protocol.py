"""Line-delimited JSON protocol of the allocation server.

One request per line in, one reply per line out — transport-agnostic, so the
same parser backs stdio, TCP and Unix-socket listeners.  A request is a JSON
object::

    {"id": 7, "op": "allocate", "tau": 0.1, "deadline_s": 2.0}

``op`` is mandatory; ``id`` is an optional client correlation token echoed
verbatim; ``deadline_s`` overrides the service-level default deadline for
this request.  Every reply is a JSON object carrying the full envelope::

    {"id": 7, "ok": true,  "epoch": 3, "state": "serving",
     "recovery": {...}, "result": {...}}
    {"id": 7, "ok": false, "epoch": 3, "state": "serving",
     "recovery": {...}, "error": {"code": "deadline-exceeded", "message": "..."}}

``epoch`` is the server's absolute delta epoch (checkpoint base + batches
absorbed since), ``recovery`` the runtime's cumulative
:meth:`~repro.parallel.failure.RecoveryStats.as_dict` — so every reply
doubles as a health probe.  Error codes are machine-readable and closed
(:data:`ERROR_CODES`); messages are for humans.

Graph deltas travel as tagged objects mirroring :mod:`repro.graph.deltas`::

    {"kind": "add_edge", "source": 3, "target": 9, "probabilities": [0.1, 0.2]}
    {"kind": "remove_edge", "source": 3, "target": 9}
    {"kind": "update_probability", "source": 3, "target": 9,
     "probability": 0.05, "advertiser": 1}
    {"kind": "add_node", "count": 2}
    {"kind": "remove_node", "node": 4}
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Optional

from repro.exceptions import ProtocolError
from repro.graph.deltas import (
    AddEdge,
    AddNode,
    GraphDelta,
    RemoveEdge,
    RemoveNode,
    UpdateProbability,
)

#: Supported operations.
OPS = (
    "ping",
    "stats",
    "spread",
    "allocate",
    "refresh",
    "checkpoint",
    "burn",
    "shutdown",
)

#: Closed set of machine-readable error codes.
BAD_REQUEST = "bad-request"
OVERLOADED = "overloaded"
DEADLINE_EXCEEDED = "deadline-exceeded"
DRAINING_REJECTED = "draining"
INTERNAL = "internal"

ERROR_CODES = (
    BAD_REQUEST,
    OVERLOADED,
    DEADLINE_EXCEEDED,
    DRAINING_REJECTED,
    INTERNAL,
)


def parse_request(line: str) -> Dict[str, Any]:
    """Parse one protocol line into a raw request object.

    Raises :class:`~repro.exceptions.ProtocolError` (code ``bad-request``)
    on malformed JSON or a non-object payload; field-level validation is
    :func:`validate_request`'s job.
    """
    try:
        request = json.loads(line)
    except (json.JSONDecodeError, ValueError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(request).__name__}"
        )
    return request


def request_id(candidate: Any) -> Optional[Any]:
    """Best-effort extraction of a correlation id from a raw line/object.

    Used when a request is rejected before validation so the error reply can
    still be correlated.  Only JSON scalars are echoed; anything else maps
    to ``None``.
    """
    if isinstance(candidate, str):
        try:
            candidate = json.loads(candidate)
        except (json.JSONDecodeError, ValueError):
            return None
    if not isinstance(candidate, dict):
        return None
    value = candidate.get("id")
    return value if isinstance(value, (str, int, float, bool)) or value is None else None


def validate_request(request: Any) -> Dict[str, Any]:
    """Validate the envelope-level fields of a parsed request.

    Returns the request itself (ops validate their own parameters at
    execution time, so a malformed ``spread`` does not block the queue at
    admission).  Raises :class:`~repro.exceptions.ProtocolError` on a
    missing/unknown ``op``, a non-scalar ``id`` or an invalid ``deadline_s``.
    """
    if not isinstance(request, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(request).__name__}"
        )
    op = request.get("op")
    if op is None:
        raise ProtocolError("request is missing the 'op' field")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; supported ops: {', '.join(OPS)}"
        )
    identifier = request.get("id")
    if identifier is not None and not isinstance(identifier, (str, int, float, bool)):
        raise ProtocolError("'id' must be a JSON scalar")
    deadline = request.get("deadline_s")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or isinstance(deadline, bool):
            raise ProtocolError("'deadline_s' must be a number")
        if not math.isfinite(deadline) or deadline <= 0:
            raise ProtocolError(
                f"'deadline_s' must be positive and finite, got {deadline!r}"
            )
    return request


def encode_reply(reply: Dict[str, Any]) -> str:
    """Serialize a reply envelope to one protocol line (newline included).

    ``sort_keys`` plus compact separators make the encoding canonical — the
    bit-identity acceptance tests compare these lines byte-for-byte.
    """
    return json.dumps(reply, sort_keys=True, separators=(",", ":")) + "\n"


# ---------------------------------------------------------------------- #
# delta (de)serialization
# ---------------------------------------------------------------------- #
def _require(obj: Dict[str, Any], key: str, kind: str) -> Any:
    if key not in obj:
        raise ProtocolError(f"{kind} delta is missing the {key!r} field")
    return obj[key]


def delta_from_json(obj: Any) -> GraphDelta:
    """Decode one tagged delta object (see module docstring for the shapes)."""
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"each delta must be a JSON object, got {type(obj).__name__}"
        )
    kind = obj.get("kind")
    try:
        if kind == "add_edge":
            return AddEdge(
                source=int(_require(obj, "source", kind)),
                target=int(_require(obj, "target", kind)),
                probabilities=tuple(
                    float(p) for p in _require(obj, "probabilities", kind)
                ),
            )
        if kind == "remove_edge":
            return RemoveEdge(
                source=int(_require(obj, "source", kind)),
                target=int(_require(obj, "target", kind)),
            )
        if kind == "update_probability":
            advertiser = obj.get("advertiser")
            return UpdateProbability(
                source=int(_require(obj, "source", kind)),
                target=int(_require(obj, "target", kind)),
                probability=float(_require(obj, "probability", kind)),
                advertiser=None if advertiser is None else int(advertiser),
            )
        if kind == "add_node":
            return AddNode(count=int(obj.get("count", 1)))
        if kind == "remove_node":
            return RemoveNode(node=int(_require(obj, "node", kind)))
    except ProtocolError:
        raise
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid {kind} delta: {exc}") from exc
    raise ProtocolError(
        f"unknown delta kind {kind!r}; expected add_edge, remove_edge, "
        "update_probability, add_node or remove_node"
    )


def delta_to_json(delta: GraphDelta) -> Dict[str, Any]:
    """Encode one delta to its tagged-object form (journal + wire format)."""
    if isinstance(delta, AddEdge):
        return {
            "kind": "add_edge",
            "source": int(delta.source),
            "target": int(delta.target),
            "probabilities": [float(p) for p in delta.probabilities],
        }
    if isinstance(delta, RemoveEdge):
        return {
            "kind": "remove_edge",
            "source": int(delta.source),
            "target": int(delta.target),
        }
    if isinstance(delta, UpdateProbability):
        encoded: Dict[str, Any] = {
            "kind": "update_probability",
            "source": int(delta.source),
            "target": int(delta.target),
            "probability": float(delta.probability),
        }
        if delta.advertiser is not None:
            encoded["advertiser"] = int(delta.advertiser)
        return encoded
    if isinstance(delta, AddNode):
        return {"kind": "add_node", "count": int(delta.count)}
    if isinstance(delta, RemoveNode):
        return {"kind": "remove_node", "node": int(delta.node)}
    raise ProtocolError(f"cannot encode delta of type {type(delta).__name__}")
