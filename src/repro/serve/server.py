"""The long-lived allocation server.

:class:`AllocationServer` holds a warm :class:`~repro.runtime.Runtime` (one
persistent worker pool) and a delta-maintained
:class:`~repro.rrsets.store.RRStore`, and answers line-delimited JSON
requests — ``allocate`` / ``spread`` / ``refresh`` / ``stats`` / ... — over
whatever transport feeds it (:mod:`repro.serve.transport`).

Architecture
------------
* **Admission** (any thread): :meth:`submit` validates the envelope and
  offers the ticket to a bounded queue.  A full queue sheds the request
  immediately with a structured ``overloaded`` error — memory stays bounded
  no matter how fast clients push.
* **Dispatch** (one thread): pops up to ``max_inflight`` tickets, coalesces
  identical read-only requests into one engine pass, and executes each
  group against the store.  Single-threaded dispatch is what makes the
  store's epoch bookkeeping and the per-request failure-policy override
  race-free by construction.
* **Deadlines** ride the PR-6 supervision machinery: a deadline-bearing
  request runs under ``Runtime.overriding_failure(FailurePolicy.fail_fast(
  shard_timeout_s=remaining))``, so any sharded stage reached inside raises
  :class:`~repro.exceptions.ShardTimeoutError` promptly → structured
  ``deadline-exceeded`` reply; worker crashes under that override are
  re-executed server-side (bit-identical by the determinism contract) up to
  ``request_retries`` times.  Requests without deadlines keep the default
  degrade-mode recovery, which already guarantees bit-identical results.
* **Durability**: with a checkpoint directory configured, every accepted
  ``refresh`` batch is journaled (fsync) *before* it is applied, and
  checkpoints rotate the journal.  ``kill -9`` at any point restarts
  bit-identical to replaying the acknowledged batches on a fresh store
  (:mod:`repro.serve.checkpoint`).
* **Drain**: ``shutdown`` requests, transport EOF and SIGTERM/SIGINT all
  funnel into :meth:`initiate_drain` — new admissions are rejected with
  ``draining``, in-flight tickets finish (bounded by ``drain_grace_s``), a
  final checkpoint lands, and the pool is released.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RRSetOracle
from repro.core.oracle_solver import rm_with_oracle
from repro.exceptions import (
    ProtocolError,
    ReproError,
    ServiceError,
    ShardTimeoutError,
    WorkerCrashError,
)
from repro.graph.deltas import MutableGraphView
from repro.parallel.failure import FailurePolicy
from repro.rrsets.estimators import estimate_advertiser_revenue
from repro.rrsets.store import RRStore
from repro.runtime import ExecutionPolicy, Runtime, resolve_policy
from repro.serve import protocol
from repro.serve.checkpoint import CheckpointManager
from repro.serve.lifecycle import (
    DRAINING,
    DeadlineExceeded,
    STARTING,
    SERVING,
    STOPPED,
    ServerStats,
    ServicePolicy,
    Ticket,
)

#: Ops whose identical concurrent requests may share one engine pass.
_COALESCABLE = frozenset({"ping", "stats", "spread", "allocate"})


class AllocationServer:
    """A warm runtime + RR-store behind a bounded request queue.

    Parameters
    ----------
    instance:
        The RM problem instance served (budgets/costs/cpes for ``allocate``;
        its graph seeds the store when no checkpoint exists).
    policy:
        :class:`~repro.runtime.ExecutionPolicy` for every engine pass;
        ``None`` resolves to the ``fast`` preset.
    service:
        :class:`~repro.serve.lifecycle.ServicePolicy`; defaults apply.
    rr_sets:
        Slots to generate when bootstrapping a fresh store (ignored on
        checkpoint restore — the snapshot fixes the slot count).
    seed:
        Store entropy for a fresh bootstrap (ignored on restore).
    checkpoint_dir:
        Directory for the checkpoint + delta journal; ``None`` disables
        durability (a restart regenerates from ``instance``).
    runtime:
        Optional externally-owned :class:`~repro.runtime.Runtime`; when
        ``None`` the server creates and owns one (closed on
        :meth:`close`).
    """

    def __init__(
        self,
        instance: RMInstance,
        policy: Optional[ExecutionPolicy] = None,
        service: Optional[ServicePolicy] = None,
        rr_sets: int = 2000,
        seed: int = 7,
        checkpoint_dir: Optional[Path] = None,
        runtime: Optional[Runtime] = None,
        start_method: Optional[str] = None,
    ):
        if rr_sets <= 0:
            raise ServiceError(f"rr_sets must be positive, got {rr_sets}")
        self._instance = instance
        self._policy = resolve_policy(policy)
        self._service = service if service is not None else ServicePolicy()
        self._rr_sets = int(rr_sets)
        self._seed = int(seed)
        self._owns_runtime = runtime is None
        self._runtime = (
            runtime
            if runtime is not None
            else Runtime(self._policy, start_method=start_method)
        )
        self._checkpoints = (
            CheckpointManager(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._view: Optional[MutableGraphView] = None
        self._store: Optional[RRStore] = None
        self._epoch_offset = 0
        self._restored = False
        self._replayed_batches = 0
        self._batches_since_checkpoint = 0
        self._queue: "queue.Queue[Ticket]" = queue.Queue(
            maxsize=self._service.queue_depth
        )
        self._stats = ServerStats()
        self._state = STARTING
        self._state_lock = threading.Lock()
        self._drain_event = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_requested = False
        #: Dispatch-thread-only flag: the in-progress request was interrupted
        #: by a worker crash after its batch was applied (resume, don't redo).
        self._resume_pending = False
        self._thread: Optional[threading.Thread] = None
        self._handlers: Dict[str, Callable[[Dict[str, Any], Optional[float]], Dict[str, Any]]] = {
            "ping": self._op_ping,
            "stats": self._op_stats,
            "spread": self._op_spread,
            "allocate": self._op_allocate,
            "refresh": self._op_refresh,
            "checkpoint": self._op_checkpoint,
            "burn": self._op_burn,
            "shutdown": self._op_shutdown,
        }

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        """Current lifecycle state (``starting``/``serving``/``draining``/``stopped``)."""
        return self._state

    @property
    def epoch(self) -> int:
        """Absolute delta epoch: checkpoint base + batches absorbed since."""
        view_epoch = self._view.epoch if self._view is not None else 0
        return self._epoch_offset + view_epoch

    @property
    def store(self) -> Optional[RRStore]:
        """The served RR-store (``None`` before :meth:`start`)."""
        return self._store

    @property
    def runtime(self) -> Runtime:
        """The warm runtime whose pool every engine pass reuses."""
        return self._runtime

    @property
    def stats(self) -> ServerStats:
        """Mutable request counters."""
        return self._stats

    @property
    def service(self) -> ServicePolicy:
        """The frozen service policy."""
        return self._service

    @property
    def restored(self) -> bool:
        """Whether the store came from a checkpoint (vs fresh generation)."""
        return self._restored

    @property
    def replayed_batches(self) -> int:
        """Journal entries replayed during checkpoint restore."""
        return self._replayed_batches

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "AllocationServer":
        """Bootstrap (or recover) the store and start the dispatch thread."""
        if self._state == STOPPED:
            raise ServiceError("server already stopped; build a new one")
        if self._thread is not None:
            raise ServiceError("server already started")
        self._bootstrap()
        with self._state_lock:
            self._state = SERVING
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._thread.start()
        return self

    def _bootstrap(self) -> None:
        if self._checkpoints is not None and self._checkpoints.has_checkpoint():
            restored = self._checkpoints.restore(
                policy=self._policy, runtime=self._runtime
            )
            self._view = restored.view
            self._store = restored.store
            # Replayed batches advanced view.epoch past 0; the offset keeps
            # absolute epochs continuous across the restart.
            self._epoch_offset = restored.base_epoch
            self._restored = True
            self._replayed_batches = restored.replayed_batches
        else:
            self._view = MutableGraphView(
                self._instance.graph, self._instance.all_edge_probabilities()
            )
            self._store = RRStore(
                self._view,
                self._instance.cpes(),
                seed=self._seed,
                policy=self._policy,
                runtime=self._runtime,
            )
            self._store.generate(self._rr_sets)
            if self._checkpoints is not None:
                # An initial checkpoint means recovery never has to redo the
                # (expensive) initial generation.
                self._save_checkpoint()

    def initiate_drain(self) -> None:
        """Begin draining: reject new admissions, finish in-flight tickets.

        Idempotent and callable from any thread (signal handlers, transport
        EOF, the ``shutdown`` op).  The dispatch thread completes the drain
        and flips the server to ``stopped``.
        """
        with self._state_lock:
            if self._state in (DRAINING, STOPPED):
                self._drain_event.set()
                return
            self._state = DRAINING
        self._drain_event.set()

    def wait_stopped(self, timeout: Optional[float] = None) -> bool:
        """Block until the dispatch loop has fully stopped."""
        return self._stopped.wait(timeout)

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain, stop the dispatch thread and release owned resources."""
        if self._thread is None:
            with self._state_lock:
                self._state = STOPPED
            self._stopped.set()
        else:
            self.initiate_drain()
            join_timeout = (
                timeout
                if timeout is not None
                else self._service.drain_grace_s + 30.0
            )
            self._thread.join(join_timeout)
        if self._checkpoints is not None:
            self._checkpoints.journal.close()
        if self._owns_runtime:
            self._runtime.close()

    def __enter__(self) -> "AllocationServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        request: Any,
        on_done: Optional[Callable[[Ticket], None]] = None,
    ) -> Ticket:
        """Admit one parsed request; always returns a ticket that will resolve.

        Rejections (malformed envelope, draining, queue full) resolve the
        ticket immediately on the calling thread with a structured error;
        accepted tickets resolve from the dispatch thread.
        """
        ticket = Ticket(
            request if isinstance(request, dict) else {}, on_done=on_done
        )
        try:
            ticket.request = protocol.validate_request(request)
        except ProtocolError as exc:
            self._stats.bump("rejected")
            self._reject(ticket, exc.code, str(exc), raw_id=protocol.request_id(request))
            return ticket
        if self._state != SERVING:
            self._stats.bump("rejected")
            self._reject(
                ticket,
                protocol.DRAINING_REJECTED,
                f"server is {self._state}; not accepting new requests",
            )
            return ticket
        try:
            self._queue.put_nowait(ticket)
            self._stats.bump("accepted")
        except queue.Full:
            self._stats.bump("shed")
            self._reject(
                ticket,
                protocol.OVERLOADED,
                f"admission queue is full (queue_depth="
                f"{self._service.queue_depth}); retry later",
            )
        return ticket

    def submit_text(
        self,
        line: str,
        on_done: Optional[Callable[[Ticket], None]] = None,
    ) -> Ticket:
        """Admit one raw protocol line (transport entry point)."""
        try:
            request = protocol.parse_request(line)
        except ProtocolError as exc:
            ticket = Ticket({}, on_done=on_done)
            self._stats.bump("rejected")
            self._reject(ticket, exc.code, str(exc), raw_id=protocol.request_id(line))
            return ticket
        return self.submit(request, on_done=on_done)

    def request(self, request: Dict[str, Any], timeout: float = 120.0) -> Dict[str, Any]:
        """Submit and block for the reply (in-process convenience)."""
        return self.submit(request).wait(timeout)

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        drain_deadline: Optional[float] = None
        while True:
            if self._drain_event.is_set() and drain_deadline is None:
                drain_deadline = time.monotonic() + self._service.drain_grace_s
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._drain_event.is_set():
                    break
                continue
            batch = [first]
            while len(batch) < self._service.max_inflight:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            self._process_batch(batch, drain_deadline)
            if self._shutdown_requested and not self._drain_event.is_set():
                self.initiate_drain()
        self._finalize(drain_deadline)

    def _finalize(self, drain_deadline: Optional[float]) -> None:
        # Reject stragglers that raced admission against the drain flip.
        while True:
            try:
                ticket = self._queue.get_nowait()
            except queue.Empty:
                break
            self._stats.bump("rejected")
            self._reject(
                ticket, protocol.DRAINING_REJECTED, "server drained before dispatch"
            )
        if self._checkpoints is not None and self._store is not None:
            try:
                self._repair_store()
                self._save_checkpoint()
            except ReproError:  # pragma: no cover - best-effort final snapshot
                pass
        with self._state_lock:
            self._state = STOPPED
        self._stopped.set()

    def _process_batch(
        self, batch: List[Ticket], drain_deadline: Optional[float]
    ) -> None:
        # Coalesce identical read-only requests into one engine pass; every
        # mutating/diagnostic op keeps a private group (object-id key).
        groups: Dict[Any, List[Ticket]] = {}
        order: List[Any] = []
        for ticket in batch:
            op = ticket.request.get("op")
            if op in _COALESCABLE:
                key: Any = (
                    op,
                    json.dumps(
                        {k: v for k, v in ticket.request.items() if k != "id"},
                        sort_keys=True,
                        default=str,
                    ),
                )
            else:
                key = id(ticket)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(ticket)
        for key in order:
            tickets = groups[key]
            if drain_deadline is not None and time.monotonic() > drain_deadline:
                for ticket in tickets:
                    self._stats.bump("rejected")
                    self._reject(
                        ticket,
                        protocol.DRAINING_REJECTED,
                        f"drain grace of {self._service.drain_grace_s:g}s "
                        "expired before dispatch",
                    )
                continue
            ok, body = self._execute(tickets[0])
            self._stats.bump("coalesced", len(tickets) - 1)
            for ticket in tickets:
                self._resolve(ticket, ok, body)

    def _execute(self, ticket: Ticket) -> Tuple[bool, Dict[str, Any]]:
        """Run one request to a (ok, body) verdict, enforcing its deadline."""
        request = ticket.request
        op = request["op"]
        deadline_s = request.get("deadline_s", self._service.deadline_s)
        deadline = (
            None if deadline_s is None else ticket.arrival + float(deadline_s)
        )
        attempts = 0
        self._resume_pending = False
        while True:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._stats.bump("deadline_timeouts")
                    return False, {
                        "code": protocol.DEADLINE_EXCEEDED,
                        "message": f"deadline of {deadline_s:g}s exceeded "
                        f"before {op!r} could run",
                    }
            try:
                handler = self._handlers[op]
                if remaining is not None:
                    guard = FailurePolicy.fail_fast(shard_timeout_s=remaining)
                    with self._runtime.overriding_failure(guard):
                        return True, handler(request, deadline)
                return True, handler(request, deadline)
            except DeadlineExceeded as exc:
                # Repair of any interrupted maintenance is deferred to the
                # next store-touching request — the timeout reply must not
                # wait on it (the 2x-deadline reply bound).
                self._stats.bump("deadline_timeouts")
                return False, {
                    "code": protocol.DEADLINE_EXCEEDED,
                    "message": str(exc),
                }
            except ShardTimeoutError as exc:
                self._stats.bump("deadline_timeouts")
                return False, {
                    "code": protocol.DEADLINE_EXCEEDED,
                    "message": f"deadline of {deadline_s:g}s exceeded "
                    f"in sharded execution: {exc}",
                }
            except WorkerCrashError as exc:
                # Only reachable under the fail-fast deadline override (the
                # default degrade policy absorbs crashes internally).
                # Determinism makes the re-execution bit-identical, so the
                # retry is invisible to the client.
                attempts += 1
                self._stats.bump("request_retries")
                if attempts > self._service.request_retries:
                    self._stats.bump("failed")
                    return False, {
                        "code": protocol.INTERNAL,
                        "message": f"workers kept crashing across "
                        f"{attempts} attempts: {exc}",
                    }
                self._resume_pending = self._store.maintenance_pending
                continue
            except ProtocolError as exc:
                return False, {"code": exc.code, "message": str(exc)}
            except ReproError as exc:
                self._stats.bump("failed")
                return False, {
                    "code": protocol.INTERNAL,
                    "message": f"{type(exc).__name__}: {exc}",
                }

    def _repair_store(self) -> None:
        """Finish any interrupted maintenance so the next request can serve.

        Runs outside every deadline override, so the retry recovers under
        the policy's own (default: degrade-mode) failure handling.
        """
        if self._store is not None and self._store.maintenance_pending:
            self._store.retry_maintenance()

    # ------------------------------------------------------------------ #
    # reply plumbing
    # ------------------------------------------------------------------ #
    def _envelope(self, ticket: Ticket) -> Dict[str, Any]:
        return {
            "id": ticket.request.get("id"),
            "epoch": self.epoch,
            "state": self._state,
            "recovery": self._runtime.recovery_stats.as_dict(),
        }

    def _resolve(self, ticket: Ticket, ok: bool, body: Dict[str, Any]) -> None:
        reply = self._envelope(ticket)
        reply["ok"] = ok
        if ok:
            self._stats.bump("completed")
            reply["result"] = body
        else:
            reply["error"] = body
        ticket.resolve(reply)

    def _reject(
        self,
        ticket: Ticket,
        code: str,
        message: str,
        raw_id: Optional[Any] = None,
    ) -> None:
        reply = self._envelope(ticket)
        if reply["id"] is None and raw_id is not None:
            reply["id"] = raw_id
        reply["ok"] = False
        reply["error"] = {"code": code, "message": message}
        ticket.resolve(reply)

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    def _op_ping(self, request: Dict[str, Any], deadline: Optional[float]) -> Dict[str, Any]:
        return {"pong": True, "slots": len(self._store)}

    def _op_stats(self, request: Dict[str, Any], deadline: Optional[float]) -> Dict[str, Any]:
        checkpoint_info: Dict[str, Any] = {"enabled": self._checkpoints is not None}
        if self._checkpoints is not None:
            checkpoint_info.update(
                restored=self._restored,
                replayed_batches=self._replayed_batches,
                batches_since_checkpoint=self._batches_since_checkpoint,
                path=str(self._checkpoints.checkpoint_path),
            )
        return {
            "state": self._state,
            "epoch": self.epoch,
            "slots": len(self._store),
            "redraws_total": self._store.redraws_total,
            "pool_spawns": self._runtime.pool_spawn_count,
            "payload_mode": self._runtime.pool.payload_mode,
            "requests": self._stats.as_dict(),
            "service": self._service.as_dict(),
            "checkpoint": checkpoint_info,
        }

    def _op_spread(self, request: Dict[str, Any], deadline: Optional[float]) -> Dict[str, Any]:
        self._repair_store()
        advertiser = request.get("advertiser")
        if not isinstance(advertiser, int) or isinstance(advertiser, bool):
            raise ProtocolError("'advertiser' must be an integer")
        if not 0 <= advertiser < self._view.num_advertisers:
            raise ProtocolError(
                f"advertiser {advertiser} out of range "
                f"[0, {self._view.num_advertisers})"
            )
        raw_seeds = request.get("seeds", [])
        if not isinstance(raw_seeds, list):
            raise ProtocolError("'seeds' must be a list of node ids")
        seeds: List[int] = []
        for node in raw_seeds:
            if not isinstance(node, int) or isinstance(node, bool):
                raise ProtocolError("'seeds' must be a list of integers")
            if not 0 <= node < self._view.num_nodes:
                raise ProtocolError(
                    f"seed node {node} out of range [0, {self._view.num_nodes})"
                )
            seeds.append(node)
        collection = self._store.collection
        revenue = estimate_advertiser_revenue(
            collection, advertiser, seeds, self._store.gamma
        )
        return {
            "advertiser": advertiser,
            "seeds": sorted(set(seeds)),
            "revenue": revenue,
            "covered_rr_sets": collection.coverage_count(advertiser, seeds),
            "rr_sets": len(collection),
        }

    def _op_allocate(self, request: Dict[str, Any], deadline: Optional[float]) -> Dict[str, Any]:
        self._repair_store()
        tau = request.get("tau", 0.1)
        if not isinstance(tau, (int, float)) or isinstance(tau, bool) or not 0 < tau < 1:
            raise ProtocolError(f"'tau' must be a number in (0, 1), got {tau!r}")
        budget_scale = request.get("budget_scale", 1.0)
        if (
            not isinstance(budget_scale, (int, float))
            or isinstance(budget_scale, bool)
            or budget_scale <= 0
        ):
            raise ProtocolError(
                f"'budget_scale' must be a positive number, got {budget_scale!r}"
            )
        instance = (
            self._instance
            if budget_scale == 1.0
            else self._instance.with_scaled_budgets(float(budget_scale))
        )
        oracle = RRSetOracle(self._store.collection, self._store.gamma)
        result = rm_with_oracle(
            instance, oracle, tau=float(tau), policy=self._policy
        )
        return {
            "allocation": {
                str(advertiser): sorted(int(node) for node in seeds)
                for advertiser, seeds in result.allocation.items()
            },
            "revenue": result.revenue,
            "seeding_cost": result.seeding_cost,
            "per_advertiser_revenue": {
                str(advertiser): revenue
                for advertiser, revenue in sorted(
                    result.per_advertiser_revenue.items()
                )
            },
            "depleted_budgets": result.depleted_budgets,
            "rr_sets": len(self._store.collection),
        }

    def _op_refresh(self, request: Dict[str, Any], deadline: Optional[float]) -> Dict[str, Any]:
        if self._store.maintenance_pending and self._resume_pending:
            # Re-entry after a worker crash interrupted *this* batch: it is
            # already journaled and applied to the view, so finishing the
            # redraw is the only remaining work.
            report = self._store.retry_maintenance()
        else:
            # Interrupted maintenance left by an *earlier* request (e.g. a
            # deadline-exceeded refresh) must finish before a new batch.
            self._repair_store()
            raw = request.get("deltas", [])
            if not isinstance(raw, list):
                raise ProtocolError("'deltas' must be a list of delta objects")
            deltas = [protocol.delta_from_json(obj) for obj in raw]
            if self._checkpoints is not None:
                # Write-ahead: the batch becomes durable *before* the store
                # sees it; the reply is the acknowledgement.
                self._checkpoints.journal.append(self.epoch + 1, deltas)
            report = self._store.apply_deltas(deltas)
        self._batches_since_checkpoint += 1
        if (
            self._checkpoints is not None
            and self._service.checkpoint_every > 0
            and self._batches_since_checkpoint >= self._service.checkpoint_every
        ):
            self._save_checkpoint()
        return {
            "epoch": self.epoch,
            "total": report.total,
            "invalidated": report.invalidated,
            "redrawn": report.redrawn,
            "kept": report.kept,
            "reason": report.reason,
        }

    def _op_checkpoint(self, request: Dict[str, Any], deadline: Optional[float]) -> Dict[str, Any]:
        if self._checkpoints is None:
            raise ProtocolError(
                "server has no checkpoint directory configured"
            )
        self._repair_store()
        path = self._save_checkpoint()
        return {"path": str(path), "epoch": self.epoch}

    def _op_burn(self, request: Dict[str, Any], deadline: Optional[float]) -> Dict[str, Any]:
        """Diagnostic busy-wait — the deadline/drain test surface.

        Deterministically slow without touching the store, and cooperative:
        it polls the request deadline so timeout tests need no worker pool.
        """
        seconds = request.get("seconds", 0.05)
        if (
            not isinstance(seconds, (int, float))
            or isinstance(seconds, bool)
            or seconds < 0
        ):
            raise ProtocolError(
                f"'seconds' must be a non-negative number, got {seconds!r}"
            )
        end = time.monotonic() + float(seconds)
        while True:
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                raise DeadlineExceeded(
                    f"burn of {seconds:g}s aborted at the request deadline"
                )
            if now >= end:
                break
            time.sleep(min(0.01, end - now))
        return {"burned_s": float(seconds)}

    def _op_shutdown(self, request: Dict[str, Any], deadline: Optional[float]) -> Dict[str, Any]:
        # The reply goes out first; the dispatch loop flips to draining
        # right after this batch completes.
        self._shutdown_requested = True
        return {"draining": True}

    # ------------------------------------------------------------------ #
    def _save_checkpoint(self) -> Path:
        path = self._checkpoints.save_state(self._view, self._store, self.epoch)
        self._batches_since_checkpoint = 0
        return path
