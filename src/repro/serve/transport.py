"""Transports feeding the allocation server: stdio, TCP and Unix sockets.

All transports speak the same line protocol (:mod:`repro.serve.protocol`)
and share one shape: a reader thread pumps request lines into
:meth:`~repro.serve.server.AllocationServer.submit_text`, replies stream
back through each ticket's ``on_done`` callback (serialized per output
stream), and the foreground call returns once the server reaches
``stopped``.  EOF on a transport's input initiates a drain — closing stdin
(or every connection going away after a ``shutdown``) is the polite way to
stop a server; SIGTERM/SIGINT are wired to the same drain by the CLI.

The foreground wait polls the stopped event in short slices so POSIX
signals keep interrupting the main thread promptly (a bare ``Event.wait()``
would also work on Linux, but the sliced wait is portable and keeps signal
handlers timely under every start method).
"""

from __future__ import annotations

import os
import socket
import threading
from typing import IO, Any, List, Optional, Tuple, Union

from repro.exceptions import ServiceError
from repro.serve.lifecycle import Ticket
from repro.serve.protocol import encode_reply
from repro.serve.server import AllocationServer

#: Foreground poll slice — long enough to be cheap, short enough that a
#: signal-initiated drain is observed without perceptible lag.
_WAIT_SLICE_S = 0.2


def _wait_until_stopped(server: AllocationServer) -> None:
    while not server.wait_stopped(_WAIT_SLICE_S):
        pass


def _emitter(stream: IO[str], lock: threading.Lock):
    """A ticket callback that writes the reply as one line on ``stream``."""

    def emit(ticket: Ticket) -> None:
        try:
            data = encode_reply(ticket.reply)
            with lock:
                stream.write(data)
                stream.flush()
        except (OSError, ValueError):  # reader went away; reply is lost
            pass

    return emit


def serve_stdio(
    server: AllocationServer,
    input_stream: IO[str],
    output_stream: IO[str],
) -> None:
    """Serve requests from ``input_stream`` until EOF or an external drain.

    Blocks until the server is fully stopped; the caller owns server
    startup and :meth:`~repro.serve.server.AllocationServer.close`.
    """
    lock = threading.Lock()
    emit = _emitter(output_stream, lock)

    def pump() -> None:
        try:
            for line in input_stream:
                line = line.strip()
                if not line:
                    continue
                server.submit_text(line, on_done=emit)
                if server.wait_stopped(0):
                    break
        except (OSError, ValueError):  # stdin closed abruptly
            pass
        server.initiate_drain()

    reader = threading.Thread(target=pump, name="repro-serve-stdin", daemon=True)
    reader.start()
    _wait_until_stopped(server)


class SocketListener:
    """A TCP or Unix-domain listener multiplexing connections onto a server.

    Parameters
    ----------
    server:
        The (started) :class:`~repro.serve.server.AllocationServer`.
    host, port:
        TCP endpoint; ``port=0`` binds an ephemeral port (read it back from
        :attr:`address` — the test suite relies on this).
    unix_path:
        Unix-domain socket path; mutually exclusive with ``host``/``port``.
    """

    def __init__(
        self,
        server: AllocationServer,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
    ):
        if (port is None) == (unix_path is None):
            raise ServiceError("exactly one of port or unix_path is required")
        self._server = server
        self._unix_path = unix_path
        if unix_path is not None:
            if os.path.exists(unix_path):
                os.unlink(unix_path)
            self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._socket.bind(unix_path)
        else:
            self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._socket.bind((host, int(port)))
        self._socket.listen(16)
        self._closed = False
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._acceptor.start()

    @property
    def address(self) -> Union[Tuple[str, int], str]:
        """The bound endpoint: ``(host, port)`` for TCP, the path for Unix."""
        if self._unix_path is not None:
            return self._unix_path
        host, port = self._socket.getsockname()[:2]
        return host, port

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                connection, _ = self._socket.accept()
            except OSError:  # listener closed
                return
            threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="repro-serve-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        stream = connection.makefile("rw", encoding="utf-8", newline="\n")
        lock = threading.Lock()
        emit = _emitter(stream, lock)
        pending: List[Ticket] = []
        try:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                pending.append(self._server.submit_text(line, on_done=emit))
        except (OSError, ValueError):
            pass
        # Client half-closed (or disconnected): wait for in-flight replies
        # so a well-behaved client that shut down its write side still
        # receives everything it asked for.
        for ticket in pending:
            ticket.done.wait(self._server.service.drain_grace_s)
        try:
            stream.close()
        except (OSError, ValueError):
            pass
        connection.close()

    def serve_until_stopped(self) -> None:
        """Block until the server stops, then close the listener."""
        _wait_until_stopped(self._server)
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._socket.close()
        finally:
            if self._unix_path is not None and os.path.exists(self._unix_path):
                os.unlink(self._unix_path)


def request_over_socket(
    address: Union[Tuple[str, int], str], lines: List[str], timeout: float = 30.0
) -> List[str]:
    """Send protocol lines over one connection and collect the reply lines.

    Test/client helper: connects, writes every line, half-closes the write
    side and reads replies until the server closes the connection.
    """
    if isinstance(address, str):
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        client = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    client.settimeout(timeout)
    replies: List[str] = []
    try:
        client.connect(address)
        payload = "".join(
            line if line.endswith("\n") else line + "\n" for line in lines
        )
        client.sendall(payload.encode("utf-8"))
        client.shutdown(socket.SHUT_WR)
        stream = client.makefile("r", encoding="utf-8", newline="\n")
        for line in stream:
            line = line.strip()
            if line:
                replies.append(line)
    finally:
        client.close()
    return replies
