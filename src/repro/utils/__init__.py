"""Shared utilities: RNG management, lazy-greedy heaps, timers and logging."""

from repro.utils.rng import RandomSource, as_rng, spawn_rngs
from repro.utils.lazy_heap import BatchedLazyGreedy, LazyMarginalHeap, HeapEntry
from repro.utils.resources import peak_rss_bytes, peak_rss_mib
from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_open_interval,
)

__all__ = [
    "RandomSource",
    "as_rng",
    "spawn_rngs",
    "BatchedLazyGreedy",
    "LazyMarginalHeap",
    "HeapEntry",
    "Timer",
    "timed",
    "peak_rss_bytes",
    "peak_rss_mib",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_open_interval",
]
