"""Crash-safe file writes: tmp file + ``os.replace`` + directory fsync.

A plain ``open(path, "w")`` truncates the destination before the new content
is durable, so a crash mid-write (process kill, power loss, full disk) leaves
a torn file where a good one used to be.  Every durable artefact in this
repo — experiment result files (:mod:`repro.experiments.persistence`), the
allocation server's RR-store checkpoints (:mod:`repro.serve.checkpoint`) —
goes through the primitives here instead:

1. the full content is materialised first (in memory or in a sibling tmp
   file), so serialization errors can never touch the destination;
2. the tmp file is flushed and ``fsync``-ed, so the *content* is durable
   before it becomes visible;
3. ``os.replace`` swaps it in — atomic on POSIX within one filesystem — so
   readers only ever observe the old complete file or the new complete file;
4. the containing directory is fsync-ed so the rename itself survives a
   crash.

The guarantee is *atomic visibility*, not write-once semantics: concurrent
writers still race (last replace wins), which is fine for the single-writer
artefacts these functions serve.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

PathLike = Union[str, "os.PathLike[str]"]


def fsync_directory(path: PathLike) -> None:
    """Flush directory metadata (renames, new entries) to disk.

    Best-effort on platforms whose directories cannot be opened for fsync
    (Windows); a no-op failure there does not weaken the tmp+replace
    atomicity, only the durability of the rename across power loss.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``.

    The destination either keeps its previous content or holds exactly
    ``data`` — never a prefix, regardless of when the writer dies.  The tmp
    file is created next to the destination (same filesystem, a hard
    requirement of atomic ``os.replace``) and removed on failure.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)


def atomic_write_text(path: PathLike, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text`` (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))
