"""Lazy-greedy (CELF-style) priority queues — scalar and batched.

The greedy algorithms in the paper repeatedly select the element with the
largest marginal gain (or marginal rate) of a monotone submodular function.
Because marginal gains only shrink as the solution grows, a stale upper bound
stored in a max-heap is still an upper bound; re-evaluating only the current
top element ("lazy evaluation", Leskovec et al. 2007 / CELF) gives exactly the
same selections as the eager arg-max while avoiding most re-evaluations.

Two implementations of this pattern are provided:

* :class:`LazyMarginalHeap` — the reference scalar heap over hashable keys.
  Every insert and every stale refresh is one Python callback; this is the
  seed implementation and stays the default in every consumer.
* :class:`BatchedLazyGreedy` — the vectorized variant over int64-encoded
  elements.  Stale entries are popped in surfacing order up to ``batch_size``
  at a time and refreshed with **one** call to a vectorized ``batch_evaluate``
  (for the RR-set consumers, a single numpy gather against the
  ``(h, n)`` marginal matrix of
  :class:`~repro.rrsets.collection.CoverageState`) instead of K Python
  callback round-trips.  Bulk insertion (``push_array``) likewise evaluates
  the whole candidate set in one call and heapifies once.

The batched heap *replays the scalar heap's schedule exactly*: speculative
batch evaluations are cached, but each refresh is committed one entry at a
time in surfacing order with the same counter sequence the scalar heap would
assign, so ties between equal values resolve identically and the two heaps
produce bit-identical pop sequences — provided ``batch_evaluate`` is pure
(values only change together with ``advance_round``, which every greedy
consumer guarantees by advancing immediately after each accepted seed) and
elements are inserted in the same order.
``tests/test_greedy_engine_equivalence.py`` pins this across all consumers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

import numpy as np

KeyT = TypeVar("KeyT", bound=Hashable)


@dataclass(order=True)
class HeapEntry(Generic[KeyT]):
    """Internal heap record; ordered by ``(-value, tiebreak)`` for a max-heap."""

    sort_key: Tuple[float, int]
    key: KeyT = field(compare=False)
    value: float = field(compare=False)
    round_evaluated: int = field(compare=False)


class LazyMarginalHeap(Generic[KeyT]):
    """Max-heap with lazy re-evaluation of marginal values.

    Parameters
    ----------
    evaluate:
        Callable returning the *current* marginal value of a key.  It is
        invoked at insert time and whenever a stale top-of-heap entry needs to
        be refreshed.
    """

    def __init__(self, evaluate: Callable[[KeyT], float]):
        self._evaluate = evaluate
        self._heap: list[HeapEntry[KeyT]] = []
        self._removed: set[KeyT] = set()
        self._round = 0
        self._counter = itertools.count()
        self._members: Dict[KeyT, float] = {}

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, key: KeyT) -> bool:
        return key in self._members

    def push(self, key: KeyT, value: Optional[float] = None) -> None:
        """Insert ``key``; if ``value`` is None it is computed via ``evaluate``."""
        if key in self._removed:
            self._removed.discard(key)
        actual = self._evaluate(key) if value is None else value
        entry = HeapEntry(
            sort_key=(-actual, next(self._counter)),
            key=key,
            value=actual,
            round_evaluated=self._round,
        )
        heapq.heappush(self._heap, entry)
        self._members[key] = actual

    def push_many(self, keys: Iterable[KeyT]) -> None:
        """Insert every key in ``keys`` with freshly evaluated values."""
        for key in keys:
            self.push(key)

    def remove(self, key: KeyT) -> None:
        """Mark ``key`` as removed; it will be skipped when it surfaces."""
        if key in self._members:
            del self._members[key]
            self._removed.add(key)

    def advance_round(self) -> None:
        """Signal that the underlying solution changed.

        Entries evaluated before this call are considered stale and will be
        re-evaluated when they reach the top of the heap.
        """
        self._round += 1

    def pop_best(self) -> Optional[Tuple[KeyT, float]]:
        """Pop the key with the largest *current* marginal value.

        Returns ``None`` when the heap is empty.  The popped key is removed
        from the heap; callers re-insert it if they decide not to use it.
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            key = entry.key
            if key in self._removed:
                self._removed.discard(key)
                continue
            if key not in self._members:
                continue
            if entry.round_evaluated == self._round:
                del self._members[key]
                return key, entry.value
            # Stale: re-evaluate and push back.
            fresh = self._evaluate(key)
            refreshed = HeapEntry(
                sort_key=(-fresh, next(self._counter)),
                key=key,
                value=fresh,
                round_evaluated=self._round,
            )
            heapq.heappush(self._heap, refreshed)
            self._members[key] = fresh
        return None

    def peek_best(self) -> Optional[Tuple[KeyT, float]]:
        """Return (but do not remove) the key with the largest current value."""
        best = self.pop_best()
        if best is None:
            return None
        key, value = best
        self.push(key, value)
        return key, value


class BatchedLazyGreedy:
    """Vectorized CELF heap over int64-encoded elements.

    Parameters
    ----------
    batch_evaluate:
        Callable mapping an int64 array of element keys to a float64 array of
        their *current* marginal values, evaluated in one vectorized pass.
        For the coverage consumers this is a fancy-index gather against the
        flat ``(h·n,)`` marginal matrix, so refreshing a batch of K stale
        candidates costs one numpy call instead of K Python round-trips.
    batch_size:
        Maximum number of stale entries refreshed per evaluation call.

    Semantics are *bit-identical* to :class:`LazyMarginalHeap` (same
    insertion order, pure ``batch_evaluate``): ``advance_round`` marks every
    entry stale, ``pop_best`` returns the element with the largest current
    value, popped keys leave the heap, and exact value ties resolve in the
    same order.  Identity is achieved by separating *speculation* from
    *commitment*: when a stale entry surfaces, the next ``batch_size`` stale
    candidates in surfacing order are evaluated in one vectorized call and
    cached, but each refresh is committed one entry at a time exactly when
    (and only when) the scalar heap would perform it, drawing the same
    counter sequence.  Speculative values the scalar schedule never demands
    are simply discarded — evaluation is a pure gather, so over-evaluating
    costs vector width, not correctness.

    The purity contract: values returned by ``batch_evaluate`` may only
    change together with an ``advance_round`` call (every greedy consumer
    advances immediately after each accepted seed, so this holds).  The
    speculation cache is invalidated by ``advance_round``.

    The instrumentation counters ``evaluation_calls`` /
    ``elements_evaluated`` record how much callback traffic the batching
    saved; the benchmark reports them.
    """

    def __init__(
        self,
        batch_evaluate: Callable[[np.ndarray], np.ndarray],
        batch_size: int = 64,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self._batch_evaluate = batch_evaluate
        self._batch_size = int(batch_size)
        # Entries are plain tuples (-value, counter, key, round_evaluated):
        # tuple comparison gives the (-value, counter) max-heap order without
        # dataclass overhead on the hot path.
        self._heap: List[Tuple[float, int, int, int]] = []
        self._removed: Set[int] = set()
        self._members: Dict[int, float] = {}
        # Speculative evaluations for the current round: key -> value.
        self._pending: Dict[int, float] = {}
        self._round = 0
        self._next_counter = 0
        self.evaluation_calls = 0
        self.elements_evaluated = 0

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, key: int) -> bool:
        return int(key) in self._members

    def _evaluate(self, keys: np.ndarray) -> np.ndarray:
        values = np.asarray(self._batch_evaluate(keys), dtype=np.float64)
        if values.shape != keys.shape:
            raise ValueError(
                f"batch_evaluate returned shape {values.shape} for {keys.shape} keys"
            )
        self.evaluation_calls += 1
        self.elements_evaluated += int(keys.size)
        return values

    def push_array(
        self, keys: np.ndarray, values: Optional[np.ndarray] = None
    ) -> None:
        """Bulk-insert ``keys``; values come from one ``batch_evaluate`` call.

        When the heap is empty this heapifies once instead of pushing one
        entry at a time.  Ties between equal values resolve by insertion
        order, exactly like repeated :meth:`LazyMarginalHeap.push` calls.
        """
        key_array = np.ascontiguousarray(keys, dtype=np.int64)
        if key_array.size == 0:
            return
        if values is None:
            values = self._evaluate(key_array)
        else:
            values = np.asarray(values, dtype=np.float64)
        key_list = key_array.tolist()
        value_list = values.tolist()
        self._removed.difference_update(key_list)
        base = self._next_counter
        self._next_counter = base + len(key_list)
        entries = [
            (-value, base + offset, key, self._round)
            for offset, (key, value) in enumerate(zip(key_list, value_list))
        ]
        if self._heap:
            for entry in entries:
                heapq.heappush(self._heap, entry)
        else:
            self._heap = entries
            heapq.heapify(self._heap)
        self._members.update(zip(key_list, value_list))

    def remove(self, key: int) -> None:
        """Mark ``key`` as removed; it will be skipped when it surfaces."""
        key = int(key)
        if key in self._members:
            del self._members[key]
            self._removed.add(key)

    def advance_round(self) -> None:
        """Signal that the underlying solution changed (stales every entry)."""
        self._round += 1
        self._pending.clear()

    def _speculate(self, key: int) -> float:
        """Batch-evaluate ``key`` plus lookahead candidates; return its value.

        Called on a pending-cache miss.  Alongside ``key``, the next stale
        entries in surfacing order (up to ``batch_size``, stopping at the
        first fresh entry) are evaluated in the same vectorized call and
        cached for this round.  The lookahead entries are popped to discover
        them and pushed back *unchanged* — a cached value only becomes a
        committed refresh when the entry itself surfaces in
        :meth:`pop_best`, which is what keeps the schedule (and the
        tie-breaking counters) identical to the scalar heap's.
        """
        heap = self._heap
        heappop, heappush = heapq.heappop, heapq.heappush
        removed, members, pending = self._removed, self._members, self._pending
        current_round = self._round
        batch = [key]
        lookahead: List[Tuple[float, int, int, int]] = []
        while heap and len(batch) < self._batch_size:
            entry = heappop(heap)
            other = entry[2]
            if other in removed:
                removed.discard(other)
                continue
            if other not in members:
                continue  # superseded duplicate entry
            lookahead.append(entry)
            if entry[3] == current_round:
                break  # fresh bound: deeper speculation is rarely consumed
            if other not in pending:
                batch.append(other)
        for entry in lookahead:
            heappush(heap, entry)
        keys = np.fromiter(batch, dtype=np.int64, count=len(batch))
        values = self._evaluate(keys)
        pending.update(zip(batch, values.tolist()))
        return pending[key]

    def pop_best(self) -> Optional[Tuple[int, float]]:
        """Pop the key with the largest current marginal value (or ``None``).

        Pop/skip/refresh decisions replay :meth:`LazyMarginalHeap.pop_best`
        step for step; only the *evaluations* are batched (see
        :meth:`_speculate`).
        """
        heap = self._heap
        heappop, heappush = heapq.heappop, heapq.heappush
        removed, members, pending = self._removed, self._members, self._pending
        while heap:
            entry = heappop(heap)
            key = entry[2]
            if key in removed:
                removed.discard(key)
                continue
            if key not in members:
                continue  # superseded duplicate entry
            if entry[3] == self._round:
                del members[key]
                return key, -entry[0]
            # Stale: commit a refresh exactly like the scalar heap would.
            value = pending.get(key)
            if value is None:
                value = self._speculate(key)
            heappush(heap, (-value, self._next_counter, key, self._round))
            self._next_counter += 1
            members[key] = value
        return None

    def peek_best(self) -> Optional[Tuple[int, float]]:
        """Return (but do not remove) the key with the largest current value."""
        best = self.pop_best()
        if best is None:
            return None
        key, value = best
        self.push_array(np.array([key], dtype=np.int64), np.array([value]))
        return key, value
