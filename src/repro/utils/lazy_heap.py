"""Lazy-greedy (CELF-style) priority queue.

The greedy algorithms in the paper repeatedly select the element with the
largest marginal gain (or marginal rate) of a monotone submodular function.
Because marginal gains only shrink as the solution grows, a stale upper bound
stored in a max-heap is still an upper bound; re-evaluating only the current
top element ("lazy evaluation", Leskovec et al. 2007 / CELF) gives exactly the
same selections as the eager arg-max while avoiding most re-evaluations.

:class:`LazyMarginalHeap` implements this pattern generically for hashable
keys.  It supports removing keys (needed when a node is taken by another
advertiser) and draining in the same way the eager loop would.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Hashable, Iterable, Optional, Tuple, TypeVar

KeyT = TypeVar("KeyT", bound=Hashable)


@dataclass(order=True)
class HeapEntry(Generic[KeyT]):
    """Internal heap record; ordered by ``(-value, tiebreak)`` for a max-heap."""

    sort_key: Tuple[float, int]
    key: KeyT = field(compare=False)
    value: float = field(compare=False)
    round_evaluated: int = field(compare=False)


class LazyMarginalHeap(Generic[KeyT]):
    """Max-heap with lazy re-evaluation of marginal values.

    Parameters
    ----------
    evaluate:
        Callable returning the *current* marginal value of a key.  It is
        invoked at insert time and whenever a stale top-of-heap entry needs to
        be refreshed.
    """

    def __init__(self, evaluate: Callable[[KeyT], float]):
        self._evaluate = evaluate
        self._heap: list[HeapEntry[KeyT]] = []
        self._removed: set[KeyT] = set()
        self._round = 0
        self._counter = itertools.count()
        self._members: Dict[KeyT, float] = {}

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, key: KeyT) -> bool:
        return key in self._members

    def push(self, key: KeyT, value: Optional[float] = None) -> None:
        """Insert ``key``; if ``value`` is None it is computed via ``evaluate``."""
        if key in self._removed:
            self._removed.discard(key)
        actual = self._evaluate(key) if value is None else value
        entry = HeapEntry(
            sort_key=(-actual, next(self._counter)),
            key=key,
            value=actual,
            round_evaluated=self._round,
        )
        heapq.heappush(self._heap, entry)
        self._members[key] = actual

    def push_many(self, keys: Iterable[KeyT]) -> None:
        """Insert every key in ``keys`` with freshly evaluated values."""
        for key in keys:
            self.push(key)

    def remove(self, key: KeyT) -> None:
        """Mark ``key`` as removed; it will be skipped when it surfaces."""
        if key in self._members:
            del self._members[key]
            self._removed.add(key)

    def advance_round(self) -> None:
        """Signal that the underlying solution changed.

        Entries evaluated before this call are considered stale and will be
        re-evaluated when they reach the top of the heap.
        """
        self._round += 1

    def pop_best(self) -> Optional[Tuple[KeyT, float]]:
        """Pop the key with the largest *current* marginal value.

        Returns ``None`` when the heap is empty.  The popped key is removed
        from the heap; callers re-insert it if they decide not to use it.
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            key = entry.key
            if key in self._removed:
                self._removed.discard(key)
                continue
            if key not in self._members:
                continue
            if entry.round_evaluated == self._round:
                del self._members[key]
                return key, entry.value
            # Stale: re-evaluate and push back.
            fresh = self._evaluate(key)
            refreshed = HeapEntry(
                sort_key=(-fresh, next(self._counter)),
                key=key,
                value=fresh,
                round_evaluated=self._round,
            )
            heapq.heappush(self._heap, refreshed)
            self._members[key] = fresh
        return None

    def peek_best(self) -> Optional[Tuple[KeyT, float]]:
        """Return (but do not remove) the key with the largest current value."""
        best = self.pop_best()
        if best is None:
            return None
        key, value = best
        self.push(key, value)
        return key, value
