"""Process resource metrics for the benchmark harnesses.

Every ``BENCH_*.json`` records peak resident-set size alongside wall time so
perf PRs are judged on memory as well as speed — the zero-copy payload and
memmapped-graph work only counts if the parent's footprint actually stays
flat while worker count and graph size grow.
"""

from __future__ import annotations

import resource
import sys


def peak_rss_bytes() -> int:
    """Peak resident-set size of the current process, in bytes.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; normalised here
    so benchmark JSONs are comparable across platforms.  The value is a
    high-water mark — it never decreases within a process lifetime, so
    benchmarks that need a per-stage figure must sample before and after and
    report the max, not a delta.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def peak_rss_mib() -> float:
    """Peak resident-set size in MiB (rounded to 1 decimal for reports)."""
    return round(peak_rss_bytes() / (1024.0 * 1024.0), 1)
