"""Random-number-generator plumbing.

Every stochastic component of the library (graph generators, diffusion
simulation, RR-set sampling, dataset synthesis) accepts either an integer
seed, ``None`` or an existing :class:`numpy.random.Generator`.  This module
centralises the conversion so results are reproducible end to end when a seed
is supplied.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

RandomSource = Union[int, None, np.random.Generator]

#: Number of 32-bit entropy words drawn from a Generator when deriving child
#: seed material in :func:`spawn_rngs` (128 bits, matching SeedSequence).
_SPAWN_ENTROPY_WORDS = 4


def as_rng(seed: RandomSource = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an existing generator
        (returned unchanged so that callers can thread a single stream
        through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomSource, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single source.

    Uses :class:`numpy.random.SeedSequence` spawning so the child streams are
    statistically independent regardless of how many are requested.  The
    children are a pure function of the input:

    * ``int`` / ``None`` — ``SeedSequence(seed).spawn(count)``; the same seed
      yields the same children on every call (the parallel engines rely on
      this for fixed-``(seed, n_jobs)`` reproducibility).
    * :class:`numpy.random.SeedSequence` — spawned directly (advances the
      sequence's spawn counter, so repeated calls yield fresh children).
    * :class:`numpy.random.Generator` — child entropy is drawn *through the
      generator's own stream* (via :func:`as_rng`), so the children depend
      only on the generator's current state: two generators in the same state
      (e.g. a pickled copy) spawn identical children, repeated calls on one
      generator advance it and yield fresh, independent batches, and
      generators whose bit generator carries no seed sequence still work.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        entropy = as_rng(seed).integers(
            0, 1 << 32, size=_SPAWN_ENTROPY_WORDS, dtype=np.uint64
        )
        seq = np.random.SeedSequence([int(word) for word in entropy])
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def random_subset(
    items: Iterable[int], probability: float, rng: Optional[np.random.Generator] = None
) -> list[int]:
    """Return each element of ``items`` independently with ``probability``."""
    generator = as_rng(rng)
    kept = [item for item in items if generator.random() < probability]
    return kept
