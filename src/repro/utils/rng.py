"""Random-number-generator plumbing.

Every stochastic component of the library (graph generators, diffusion
simulation, RR-set sampling, dataset synthesis) accepts either an integer
seed, ``None`` or an existing :class:`numpy.random.Generator`.  This module
centralises the conversion so results are reproducible end to end when a seed
is supplied.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

RandomSource = Union[int, None, np.random.Generator]


def as_rng(seed: RandomSource = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an existing generator
        (returned unchanged so that callers can thread a single stream
        through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomSource, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single source.

    Uses :class:`numpy.random.SeedSequence` spawning so the child streams are
    statistically independent regardless of how many are requested.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def random_subset(
    items: Iterable[int], probability: float, rng: Optional[np.random.Generator] = None
) -> list[int]:
    """Return each element of ``items`` independently with ``probability``."""
    generator = as_rng(rng)
    kept = [item for item in items if generator.random() < probability]
    return kept
