"""Lightweight wall-clock timing used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Timer:
    """Accumulates elapsed wall-clock time across named sections.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.section("sampling"):
    ...     pass
    >>> timer.total() >= 0.0
    True
    """

    sections: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time the enclosed block and add it to ``sections[name]``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.sections[name] = self.sections.get(name, 0.0) + elapsed

    def total(self) -> float:
        """Total time accumulated over all sections, in seconds."""
        return sum(self.sections.values())

    def reset(self) -> None:
        """Drop all accumulated measurements."""
        self.sections.clear()


@contextmanager
def timed() -> Iterator[dict]:
    """Context manager yielding a dict whose ``"seconds"`` key is filled on exit."""
    result = {"seconds": 0.0}
    start = time.perf_counter()
    try:
        yield result
    finally:
        result["seconds"] = time.perf_counter() - start
