"""Small argument-validation helpers shared across the library.

They raise :class:`ValueError` with a message naming the offending parameter,
which keeps the call sites in the algorithms short and uniform.
"""

from __future__ import annotations

import math
from typing import Any


def _require_finite_number(name: str, value: Any) -> float:
    try:
        number = float(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{name} must be a number, got {value!r}") from exc
    if math.isnan(number) or math.isinf(number):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return number


def check_positive(name: str, value: Any) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    number = _require_finite_number(name, value)
    if number <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return number


def check_non_negative(name: str, value: Any) -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    number = _require_finite_number(name, value)
    if number < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return number


def check_probability(name: str, value: Any) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    number = _require_finite_number(name, value)
    if not 0.0 <= number <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return number


def check_in_open_interval(name: str, value: Any, low: float, high: float) -> float:
    """Validate that ``value`` lies strictly between ``low`` and ``high``."""
    number = _require_finite_number(name, value)
    if not low < number < high:
        raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")
    return number
