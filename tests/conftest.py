"""Shared fixtures: tiny graphs, instances and oracles used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import ExactOracle, MonteCarloOracle, RRSetOracle
from repro.diffusion.models import IndependentCascadeModel, TopicAwareICModel
from repro.diffusion.topics import TopicDistribution
from repro.graph.builders import from_edge_list
from repro.rrsets.uniform import UniformRRSampler


@pytest.fixture
def path_graph():
    """A directed path 0 -> 1 -> 2 -> 3."""
    return from_edge_list([(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def star_graph():
    """Node 0 points to nodes 1..4."""
    return from_edge_list([(0, 1), (0, 2), (0, 3), (0, 4)])


@pytest.fixture
def diamond_graph():
    """0 -> {1, 2} -> 3 (two parallel paths)."""
    return from_edge_list([(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture
def tiny_instance(diamond_graph):
    """Two advertisers on the diamond graph with deterministic edges (p = 1)."""
    model = IndependentCascadeModel(diamond_graph, probability=1.0)
    advertisers = [
        Advertiser(budget=10.0, cpe=1.0, name="a0"),
        Advertiser(budget=8.0, cpe=1.0, name="a1"),
    ]
    costs = np.full((2, diamond_graph.num_nodes), 1.0)
    return RMInstance(diamond_graph, model, advertisers, costs)


@pytest.fixture
def tiny_exact_oracle(tiny_instance):
    """Exact oracle on the tiny deterministic instance."""
    return ExactOracle(tiny_instance)


@pytest.fixture
def probabilistic_instance(diamond_graph):
    """Two advertisers on the diamond graph with p = 0.5 on every edge."""
    model = IndependentCascadeModel(diamond_graph, probability=0.5)
    advertisers = [
        Advertiser(budget=6.0, cpe=1.0, name="a0"),
        Advertiser(budget=5.0, cpe=2.0, name="a1"),
    ]
    costs = np.array(
        [
            [1.0, 1.5, 1.5, 2.0],
            [2.0, 1.0, 1.0, 1.0],
        ]
    )
    return RMInstance(diamond_graph, model, advertisers, costs)


@pytest.fixture
def single_advertiser_instance(star_graph):
    """One advertiser on the star graph, deterministic edges, unit costs."""
    model = IndependentCascadeModel(star_graph, probability=1.0)
    advertisers = [Advertiser(budget=7.0, cpe=1.0, name="solo")]
    costs = np.full((1, star_graph.num_nodes), 1.0)
    return RMInstance(star_graph, model, advertisers, costs)


@pytest.fixture
def topic_instance():
    """Three advertisers with distinct topic mixes on a 6-node TIC graph."""
    graph = from_edge_list(
        [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (1, 5), (2, 4)]
    )
    rng = np.random.default_rng(3)
    topic_matrix = rng.uniform(0.0, 0.8, size=(3, graph.num_edges))
    model = TopicAwareICModel(graph, topic_matrix)
    advertisers = [
        Advertiser(budget=12.0, cpe=1.0, topic_mix=TopicDistribution([0.8, 0.1, 0.1])),
        Advertiser(budget=10.0, cpe=1.5, topic_mix=TopicDistribution([0.1, 0.8, 0.1])),
        Advertiser(budget=9.0, cpe=2.0, topic_mix=TopicDistribution([0.1, 0.1, 0.8])),
    ]
    costs = rng.uniform(0.5, 2.0, size=(3, graph.num_nodes))
    return RMInstance(graph, model, advertisers, costs)


@pytest.fixture
def rr_oracle(probabilistic_instance):
    """RR-set oracle over a moderately sized uniform sample."""
    sampler = UniformRRSampler(
        probabilistic_instance.graph,
        probabilistic_instance.all_edge_probabilities(),
        probabilistic_instance.cpes(),
        seed=11,
    )
    collection = sampler.generate_collection(600)
    return RRSetOracle(collection, probabilistic_instance.gamma)


@pytest.fixture
def mc_oracle(probabilistic_instance):
    """Monte-Carlo oracle on the probabilistic instance."""
    return MonteCarloOracle(probabilistic_instance, num_simulations=300, seed=5)
