"""Tests for Advertiser, Allocation and RMInstance."""

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.diffusion.models import IndependentCascadeModel
from repro.diffusion.topics import TopicDistribution
from repro.exceptions import ProblemDefinitionError
from repro.graph.builders import from_edge_list


class TestAdvertiser:
    def test_valid_construction(self):
        advertiser = Advertiser(budget=100.0, cpe=1.5, name="brand")
        assert advertiser.budget == 100.0
        assert advertiser.max_engagements == pytest.approx(100 / 1.5)

    def test_with_budget_returns_copy(self):
        advertiser = Advertiser(budget=100.0, cpe=1.0)
        scaled = advertiser.with_budget(50.0)
        assert scaled.budget == 50.0
        assert advertiser.budget == 100.0
        assert scaled.cpe == advertiser.cpe

    def test_topic_mix_accepted(self):
        advertiser = Advertiser(budget=1.0, cpe=1.0, topic_mix=TopicDistribution([1, 1]))
        assert advertiser.topic_mix.num_topics == 2

    @pytest.mark.parametrize("budget,cpe", [(0.0, 1.0), (-5.0, 1.0), (10.0, 0.0), (10.0, -1.0)])
    def test_invalid_values_rejected(self, budget, cpe):
        with pytest.raises(ProblemDefinitionError):
            Advertiser(budget=budget, cpe=cpe)

    def test_invalid_topic_mix_type(self):
        with pytest.raises(ProblemDefinitionError):
            Advertiser(budget=1.0, cpe=1.0, topic_mix=[0.5, 0.5])


class TestAllocation:
    def test_assign_and_query(self):
        allocation = Allocation(2)
        allocation.assign(3, 0)
        assert allocation.seeds(0) == frozenset({3})
        assert allocation.owner_of(3) == 0
        assert allocation.is_assigned(3)
        assert allocation.total_seed_count() == 1

    def test_partition_constraint_enforced(self):
        allocation = Allocation(2)
        allocation.assign(3, 0)
        with pytest.raises(ProblemDefinitionError):
            allocation.assign(3, 1)

    def test_reassigning_same_advertiser_is_noop(self):
        allocation = Allocation(2)
        allocation.assign(3, 0)
        allocation.assign(3, 0)
        assert allocation.seed_count(0) == 1

    def test_unassign(self):
        allocation = Allocation(2)
        allocation.assign(3, 0)
        allocation.unassign(3)
        assert not allocation.is_assigned(3)
        allocation.assign(3, 1)
        assert allocation.owner_of(3) == 1

    def test_copy_is_independent(self):
        allocation = Allocation(2)
        allocation.assign(1, 0)
        clone = allocation.copy()
        clone.assign(2, 1)
        assert not allocation.is_assigned(2)
        assert allocation == Allocation.from_dict(2, {0: [1]})

    def test_from_dict_validates_disjointness(self):
        with pytest.raises(ProblemDefinitionError):
            Allocation.from_dict(2, {0: [1], 1: [1]})

    def test_items_and_pairs(self):
        allocation = Allocation.from_dict(2, {0: [1, 2], 1: [3]})
        items = dict(allocation.items())
        assert items[0] == frozenset({1, 2})
        assert set(allocation.pairs()) == {(1, 0), (2, 0), (3, 1)}

    def test_invalid_advertiser(self):
        allocation = Allocation(2)
        with pytest.raises(ProblemDefinitionError):
            allocation.assign(0, 7)

    def test_is_empty(self):
        allocation = Allocation(1)
        assert allocation.is_empty()
        allocation.assign(0, 0)
        assert not allocation.is_empty()


class TestRMInstance:
    def test_basic_accessors(self, probabilistic_instance):
        instance = probabilistic_instance
        assert instance.num_advertisers == 2
        assert instance.num_nodes == 4
        assert instance.gamma == pytest.approx(3.0)
        assert instance.min_budget == pytest.approx(5.0)
        assert instance.budgets().tolist() == [6.0, 5.0]
        assert instance.cpes().tolist() == [1.0, 2.0]

    def test_cost_lookups(self, probabilistic_instance):
        assert probabilistic_instance.cost(0, 1) == pytest.approx(1.5)
        assert probabilistic_instance.cost_of_set(1, [1, 2, 3]) == pytest.approx(3.0)
        assert probabilistic_instance.cost_of_set(0, []) == 0.0

    def test_shared_cost_vector_broadcast(self, diamond_graph):
        model = IndependentCascadeModel(diamond_graph, 0.5)
        advertisers = [Advertiser(budget=5, cpe=1), Advertiser(budget=5, cpe=1)]
        instance = RMInstance(diamond_graph, model, advertisers, np.array([1.0, 2.0, 3.0, 4.0]))
        assert instance.cost(0, 2) == instance.cost(1, 2) == 3.0

    def test_edge_probabilities_cached(self, topic_instance):
        first = topic_instance.edge_probabilities(0)
        second = topic_instance.edge_probabilities(0)
        assert first is second

    def test_edge_probabilities_differ_across_topic_mixes(self, topic_instance):
        assert not np.allclose(
            topic_instance.edge_probabilities(0), topic_instance.edge_probabilities(1)
        )

    def test_with_scaled_budgets(self, probabilistic_instance):
        scaled = probabilistic_instance.with_scaled_budgets(2.0)
        assert scaled.budgets().tolist() == [12.0, 10.0]
        assert probabilistic_instance.budgets().tolist() == [6.0, 5.0]

    def test_total_seeding_cost(self, probabilistic_instance):
        allocation = Allocation.from_dict(2, {0: [0], 1: [3]})
        expected = probabilistic_instance.cost(0, 0) + probabilistic_instance.cost(1, 3)
        assert probabilistic_instance.total_seeding_cost(allocation) == pytest.approx(expected)

    def test_invalid_costs_rejected(self, diamond_graph):
        model = IndependentCascadeModel(diamond_graph, 0.5)
        advertisers = [Advertiser(budget=5, cpe=1)]
        with pytest.raises(ProblemDefinitionError):
            RMInstance(diamond_graph, model, advertisers, np.zeros((1, 4)))
        with pytest.raises(ProblemDefinitionError):
            RMInstance(diamond_graph, model, advertisers, np.ones((2, 4)))

    def test_mismatched_graph_rejected(self, diamond_graph, path_graph):
        model = IndependentCascadeModel(path_graph, 0.5)
        advertisers = [Advertiser(budget=5, cpe=1)]
        with pytest.raises(ProblemDefinitionError):
            RMInstance(diamond_graph, model, advertisers, np.ones((1, 4)))

    def test_no_advertisers_rejected(self, diamond_graph):
        model = IndependentCascadeModel(diamond_graph, 0.5)
        with pytest.raises(ProblemDefinitionError):
            RMInstance(diamond_graph, model, [], np.ones((0, 4)))

    def test_cost_dict_form(self, diamond_graph):
        model = IndependentCascadeModel(diamond_graph, 0.5)
        advertisers = [Advertiser(budget=5, cpe=1), Advertiser(budget=5, cpe=1)]
        costs = {0: np.ones(4), 1: np.full(4, 2.0)}
        instance = RMInstance(diamond_graph, model, advertisers, costs)
        assert instance.cost(1, 0) == 2.0
