"""Tests for the revenue oracles (exact, Monte-Carlo, RR-set)."""

import numpy as np
import pytest

from repro.advertising.allocation import Allocation
from repro.advertising.oracle import ExactOracle, MonteCarloOracle, RRSetOracle
from repro.diffusion.simulation import exact_spread
from repro.exceptions import SolverError
from repro.rrsets.collection import RRCollection
from repro.rrsets.uniform import UniformRRSampler


class TestExactOracle:
    def test_revenue_matches_exact_spread(self, probabilistic_instance):
        oracle = ExactOracle(probabilistic_instance)
        truth = exact_spread(
            probabilistic_instance.graph,
            probabilistic_instance.edge_probabilities(1),
            {0},
        )
        assert oracle.revenue(1, {0}) == pytest.approx(2.0 * truth)

    def test_empty_set_revenue_zero(self, tiny_exact_oracle):
        assert tiny_exact_oracle.revenue(0, set()) == 0.0

    def test_marginal_revenue_consistent(self, probabilistic_instance):
        oracle = ExactOracle(probabilistic_instance)
        base = oracle.revenue(0, {1})
        extended = oracle.revenue(0, {1, 2})
        assert oracle.marginal_revenue(0, 2, {1}) == pytest.approx(extended - base)

    def test_marginal_of_existing_member_is_zero(self, tiny_exact_oracle):
        assert tiny_exact_oracle.marginal_revenue(0, 1, {1}) == 0.0

    def test_total_revenue_sums_over_advertisers(self, tiny_exact_oracle):
        allocation = Allocation.from_dict(2, {0: [0], 1: [3]})
        expected = tiny_exact_oracle.revenue(0, {0}) + tiny_exact_oracle.revenue(1, {3})
        assert tiny_exact_oracle.total_revenue(allocation) == pytest.approx(expected)

    def test_total_revenue_accepts_plain_dict(self, tiny_exact_oracle):
        assert tiny_exact_oracle.total_revenue({0: {0}}) == tiny_exact_oracle.revenue(0, {0})

    def test_spread_helper(self, tiny_exact_oracle):
        revenue = tiny_exact_oracle.revenue(0, {0})
        assert tiny_exact_oracle.spread(0, {0}, cpe=1.0) == pytest.approx(revenue)

    def test_large_graph_rejected(self, topic_instance):
        # topic_instance has 8 edges which is fine; force a lower cap instead.
        with pytest.raises(SolverError):
            ExactOracle(topic_instance, max_edges=2)


class TestMonteCarloOracle:
    def test_agrees_with_exact_oracle(self, probabilistic_instance):
        exact = ExactOracle(probabilistic_instance)
        monte = MonteCarloOracle(probabilistic_instance, num_simulations=4000, seed=1)
        assert monte.revenue(0, {0}) == pytest.approx(exact.revenue(0, {0}), rel=0.1)

    def test_monotone_in_seeds(self, mc_oracle):
        assert mc_oracle.revenue(0, {0, 1}) >= mc_oracle.revenue(0, {0}) - 1e-9

    def test_caches_queries(self, probabilistic_instance):
        oracle = MonteCarloOracle(probabilistic_instance, num_simulations=50, seed=1)
        first = oracle.revenue(0, {0, 1})
        second = oracle.revenue(0, {1, 0})
        assert first == second
        assert oracle.query_count == 1

    def test_invalid_simulation_count(self, probabilistic_instance):
        with pytest.raises(SolverError):
            MonteCarloOracle(probabilistic_instance, num_simulations=0)


class TestRRSetOracle:
    def test_scale_factor(self, probabilistic_instance):
        sampler = UniformRRSampler(
            probabilistic_instance.graph,
            probabilistic_instance.all_edge_probabilities(),
            probabilistic_instance.cpes(),
            seed=3,
        )
        collection = sampler.generate_collection(100)
        oracle = RRSetOracle(collection, probabilistic_instance.gamma)
        expected_scale = probabilistic_instance.num_nodes * probabilistic_instance.gamma / 100
        assert oracle.scale == pytest.approx(expected_scale)

    def test_agrees_with_exact_oracle_on_large_sample(self, probabilistic_instance):
        sampler = UniformRRSampler(
            probabilistic_instance.graph,
            probabilistic_instance.all_edge_probabilities(),
            probabilistic_instance.cpes(),
            seed=3,
        )
        collection = sampler.generate_collection(20000)
        oracle = RRSetOracle(collection, probabilistic_instance.gamma)
        exact = ExactOracle(probabilistic_instance)
        assert oracle.revenue(1, {0, 1}) == pytest.approx(exact.revenue(1, {0, 1}), rel=0.1)

    def test_marginal_consistency(self, rr_oracle):
        base = rr_oracle.revenue(0, {1})
        extended = rr_oracle.revenue(0, {1, 3})
        assert rr_oracle.marginal_revenue(0, 3, {1}) == pytest.approx(extended - base)

    def test_marginal_of_member_zero(self, rr_oracle):
        assert rr_oracle.marginal_revenue(0, 1, {1}) == 0.0

    def test_monotone_and_submodular(self, rr_oracle):
        empty_gain = rr_oracle.marginal_revenue(0, 2, set())
        later_gain = rr_oracle.marginal_revenue(0, 2, {0, 1})
        assert later_gain <= empty_gain + 1e-9
        assert rr_oracle.revenue(0, {0, 1, 2}) >= rr_oracle.revenue(0, {0, 1}) - 1e-9

    def test_empty_collection_rejected(self):
        with pytest.raises(SolverError):
            RRSetOracle(RRCollection(3, 1), gamma=1.0)

    def test_invalid_advertiser(self, rr_oracle):
        with pytest.raises(SolverError):
            rr_oracle.revenue(9, {0})
