"""Tests for the CA-Greedy and CS-Greedy oracle-setting baselines."""

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import ExactOracle
from repro.baselines.ca_greedy import ca_greedy
from repro.baselines.cs_greedy import cs_greedy
from repro.diffusion.models import IndependentCascadeModel
from repro.exceptions import SolverError
from repro.graph.builders import from_edge_list


@pytest.fixture
def oracle(probabilistic_instance):
    return ExactOracle(probabilistic_instance)


class TestCAGreedy:
    def test_budget_feasible_output(self, probabilistic_instance, oracle):
        result = ca_greedy(probabilistic_instance, oracle)
        for advertiser, seeds in result.allocation.items():
            if seeds:
                payment = probabilistic_instance.cost_of_set(advertiser, seeds) + oracle.revenue(
                    advertiser, seeds
                )
                assert payment <= probabilistic_instance.budget(advertiser) + 1e-9

    def test_partition_constraint(self, topic_instance):
        oracle = ExactOracle(topic_instance)
        result = ca_greedy(topic_instance, oracle)
        nodes = [node for _, seeds in result.allocation.items() for node in seeds]
        assert len(nodes) == len(set(nodes))

    def test_revenue_matches_oracle_evaluation(self, probabilistic_instance, oracle):
        result = ca_greedy(probabilistic_instance, oracle)
        assert result.revenue == pytest.approx(oracle.total_revenue(result.allocation))

    def test_mismatched_oracle_rejected(self, probabilistic_instance, single_advertiser_instance):
        with pytest.raises(SolverError):
            ca_greedy(probabilistic_instance, ExactOracle(single_advertiser_instance))

    def test_cost_agnostic_picks_expensive_high_gain_node(self):
        """Reproduces the paper's footnote-8 example: CA prefers the big node."""
        graph = from_edge_list([(0, 1), (0, 2), (0, 3), (4, 5), (6, 7)], num_nodes=8)
        model = IndependentCascadeModel(graph, probability=1.0)
        advertisers = [Advertiser(budget=10.0, cpe=1.0)]
        # Node 0 reaches 4 nodes but costs 5.9; nodes 4 and 6 reach 2 each and cost 1.
        costs = np.array([[5.9, 1, 1, 1, 1.0, 1, 1.0, 1]])
        instance = RMInstance(graph, model, advertisers, costs)
        oracle = ExactOracle(instance)
        ca = ca_greedy(instance, oracle)
        cs = cs_greedy(instance, oracle)
        assert 0 in ca.allocation.seeds(0)
        # Cost-sensitive greedy prefers the two cheap efficient nodes.
        assert {4, 6} <= cs.allocation.seeds(0)
        assert cs.revenue > ca.revenue


class TestCSGreedy:
    def test_budget_feasible_output(self, probabilistic_instance, oracle):
        result = cs_greedy(probabilistic_instance, oracle)
        for advertiser, seeds in result.allocation.items():
            if seeds:
                payment = probabilistic_instance.cost_of_set(advertiser, seeds) + oracle.revenue(
                    advertiser, seeds
                )
                assert payment <= probabilistic_instance.budget(advertiser) + 1e-9

    def test_selects_nonempty_when_feasible(self, probabilistic_instance, oracle):
        result = cs_greedy(probabilistic_instance, oracle)
        assert result.allocation.total_seed_count() > 0

    def test_per_advertiser_revenue_reported(self, probabilistic_instance, oracle):
        result = cs_greedy(probabilistic_instance, oracle)
        assert set(result.per_advertiser_revenue) == {0, 1}

    def test_closed_advertisers_metadata(self, probabilistic_instance, oracle):
        result = cs_greedy(probabilistic_instance, oracle)
        assert 0 <= result.metadata["closed_advertisers"] <= 2
