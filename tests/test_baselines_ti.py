"""Tests for TIM sample sizing and the TI-CARM / TI-CSRM baselines."""

import numpy as np
import pytest

from repro.advertising.oracle import ExactOracle
from repro.baselines.ti_carm import ti_carm
from repro.baselines.ti_common import TIParameters
from repro.baselines.ti_csrm import ti_csrm
from repro.baselines.tim import (
    estimate_kpt,
    estimate_max_seed_count,
    pilot_pool,
    tim_sample_size,
)
from repro.exceptions import SolverError


def quick_ti(**overrides):
    defaults = dict(epsilon=0.2, delta=0.05, pilot_size=64, max_rr_sets_per_advertiser=256, seed=2)
    defaults.update(overrides)
    return TIParameters(**defaults)


class TestTIMComponents:
    def test_max_seed_count_bounds(self, probabilistic_instance):
        for advertiser in range(probabilistic_instance.num_advertisers):
            k = estimate_max_seed_count(probabilistic_instance, advertiser)
            assert 1 <= k <= probabilistic_instance.num_nodes

    def test_max_seed_count_grows_with_budget(self, probabilistic_instance):
        bigger = probabilistic_instance.with_scaled_budgets(3.0)
        assert estimate_max_seed_count(bigger, 0) >= estimate_max_seed_count(
            probabilistic_instance, 0
        )

    def test_pilot_pool_size(self, probabilistic_instance):
        pool = pilot_pool(probabilistic_instance, 0, size=32, rng=1)
        assert len(pool) == 32

    def test_kpt_estimate_positive_and_bounded(self, probabilistic_instance):
        pool = pilot_pool(probabilistic_instance, 0, size=200, rng=1)
        kpt = estimate_kpt(pool, probabilistic_instance.num_nodes, seed_count=2)
        assert 1.0 <= kpt <= probabilistic_instance.num_nodes

    def test_kpt_requires_pool(self):
        with pytest.raises(SolverError):
            estimate_kpt([], 10, 1)

    def test_sample_size_scales_inverse_epsilon_squared(self):
        small = tim_sample_size(1000, 5, 50.0, epsilon=0.1, delta=0.01)
        large = tim_sample_size(1000, 5, 50.0, epsilon=0.2, delta=0.01)
        assert small / large == pytest.approx(4.0, rel=0.1)

    def test_sample_size_invalid_parameters(self):
        with pytest.raises(SolverError):
            tim_sample_size(1000, 5, 50.0, epsilon=0.0, delta=0.01)
        with pytest.raises(SolverError):
            tim_sample_size(1000, 5, 0.0, epsilon=0.1, delta=0.01)


class TestTIBaselines:
    def test_ti_csrm_runs_and_is_feasible(self, probabilistic_instance):
        result = ti_csrm(probabilistic_instance, quick_ti())
        oracle = ExactOracle(probabilistic_instance)
        assert result.algorithm == "TI-CSRM"
        for advertiser, seeds in result.allocation.items():
            if seeds:
                payment = probabilistic_instance.cost_of_set(advertiser, seeds) + oracle.revenue(
                    advertiser, seeds
                )
                # The conservative upper bound keeps true payments within budget
                # up to residual estimation noise on this tiny sample.
                assert payment <= probabilistic_instance.budget(advertiser) * 1.2

    def test_ti_carm_runs(self, probabilistic_instance):
        result = ti_carm(probabilistic_instance, quick_ti())
        assert result.algorithm == "TI-CARM"
        assert result.revenue >= 0.0

    def test_partition_constraint(self, topic_instance):
        result = ti_csrm(topic_instance, quick_ti())
        nodes = [node for _, seeds in result.allocation.items() for node in seeds]
        assert len(nodes) == len(set(nodes))

    def test_metadata_reports_required_rr_sets(self, probabilistic_instance):
        result = ti_csrm(probabilistic_instance, quick_ti())
        assert result.metadata["required_rr_sets_total"] >= result.metadata[
            "generated_rr_sets_total"
        ] or result.metadata["generated_rr_sets_total"] <= 2 * 256 + 2 * 64

    def test_required_rr_sets_grow_as_epsilon_shrinks(self, probabilistic_instance):
        loose = ti_csrm(probabilistic_instance, quick_ti(epsilon=0.3, seed=4))
        tight = ti_csrm(probabilistic_instance, quick_ti(epsilon=0.05, seed=4))
        assert (
            tight.metadata["required_rr_sets_total"] > loose.metadata["required_rr_sets_total"]
        )

    def test_invalid_parameters_rejected(self, probabilistic_instance):
        with pytest.raises(SolverError):
            ti_csrm(probabilistic_instance, TIParameters(epsilon=0.0))
        with pytest.raises(SolverError):
            ti_carm(probabilistic_instance, TIParameters(pilot_size=0))

    def test_subsim_variant_runs(self, probabilistic_instance):
        from repro.runtime import ExecutionPolicy

        result = ti_csrm(
            probabilistic_instance, quick_ti(policy=ExecutionPolicy(rr_engine="subsim"))
        )
        assert result.revenue >= 0.0

    def test_conservative_budget_usage_lower_than_rma(self, topic_instance):
        """The TI baselines' conservatism should under-utilise budgets vs RMA."""
        from repro.core.sampling_solver import SamplingParameters, rm_without_oracle

        ti_result = ti_csrm(topic_instance, quick_ti())
        rma_result = rm_without_oracle(
            topic_instance,
            SamplingParameters(initial_rr_sets=512, max_rr_sets=1024, rho=0.2, seed=2),
        )
        oracle = ExactOracle(topic_instance)
        def usage(result):
            total = 0.0
            for advertiser, seeds in result.allocation.items():
                total += topic_instance.cost_of_set(advertiser, seeds)
                total += oracle.revenue(advertiser, seeds) if seeds else 0.0
            return total / topic_instance.budgets().sum()
        assert usage(rma_result) >= usage(ti_result) * 0.8
