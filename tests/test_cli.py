"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.command == "solve"
        assert args.algorithm == "RMA"
        assert args.dataset == "lastfm_like"

    def test_compare_algorithm_list(self):
        args = build_parser().parse_args(["compare", "--algorithms", "RMA", "TI-CSRM"])
        assert args.algorithms == ["RMA", "TI-CSRM"]

    def test_dataset_defaults(self):
        args = build_parser().parse_args(["dataset", "--name", "dblp_like"])
        assert args.name == "dblp_like"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--algorithm", "Mystery"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--dataset", "facebook"])

    def test_numeric_options_parsed(self):
        args = build_parser().parse_args(
            ["solve", "--alpha", "0.3", "--epsilon", "0.2", "--max-rr-sets", "1000"]
        )
        assert args.alpha == 0.3
        assert args.epsilon == 0.2
        assert args.max_rr_sets == 1000


class TestCommands:
    def test_dataset_command_prints_stats(self, capsys):
        exit_code = main(["dataset", "--name", "lastfm_like", "--scale", "0.1", "--seed", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "lastfm_like" in captured.out
        assert "nodes" in captured.out

    def test_solve_command_runs_small_instance(self, capsys):
        exit_code = main(
            [
                "solve",
                "--dataset", "lastfm_like",
                "--advertisers", "2",
                "--scale", "0.1",
                "--seed", "1",
                "--algorithm", "OneBatchRM",
                "--initial-rr-sets", "128",
                "--max-rr-sets", "256",
                "--evaluation-rr-sets", "800",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "OneBatchRM" in captured.out
        assert "revenue" in captured.out

    def test_compare_command_runs_two_algorithms(self, capsys):
        exit_code = main(
            [
                "compare",
                "--dataset", "lastfm_like",
                "--advertisers", "2",
                "--scale", "0.1",
                "--seed", "1",
                "--algorithms", "OneBatchRM", "TI-CSRM",
                "--initial-rr-sets", "128",
                "--max-rr-sets", "256",
                "--evaluation-rr-sets", "800",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Best revenue" in captured.out
        assert "TI-CSRM" in captured.out


class TestPolicyFlags:
    def test_solve_defaults_to_fast_policy(self, capsys):
        exit_code = main(
            [
                "solve",
                "--dataset", "lastfm_like",
                "--advertisers", "2",
                "--scale", "0.1",
                "--seed", "1",
                "--algorithm", "OneBatchRM",
                "--initial-rr-sets", "128",
                "--max-rr-sets", "256",
                "--evaluation-rr-sets", "800",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "effective policy: fast:" in captured.out

    def test_policy_seed_is_the_escape_hatch(self, capsys):
        exit_code = main(
            [
                "solve",
                "--dataset", "lastfm_like",
                "--advertisers", "2",
                "--scale", "0.1",
                "--seed", "1",
                "--algorithm", "OneBatchRM",
                "--policy", "seed",
                "--initial-rr-sets", "128",
                "--max-rr-sets", "256",
                "--evaluation-rr-sets", "800",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "effective policy: seed:" in captured.out

    @pytest.mark.parametrize("flag", ["--subsim", "--batched-greedy", "--fast"])
    def test_retired_engine_flags_exit_with_pointed_message(self, flag, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", flag])
        assert excinfo.value.code == 2
        captured = capsys.readouterr()
        assert "has been removed" in captured.err
        assert "--policy seed" in captured.err

    def test_retired_flags_are_hidden_from_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--help"])
        captured = capsys.readouterr()
        assert "--policy" in captured.out
        for retired in ("--subsim", "--batched-greedy", "--fast"):
            assert retired not in captured.out


class TestRefresh:
    def test_refresh_parser_defaults(self):
        args = build_parser().parse_args(["refresh"])
        assert args.command == "refresh"
        assert args.rr_sets == 2000
        assert args.deltas == 8
        assert args.rounds == 1
        assert args.maintenance is None
        assert not args.verify

    def test_refresh_rejects_unknown_maintenance_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["refresh", "--maintenance", "warp"])

    def test_refresh_command_runs_and_verifies(self, capsys):
        exit_code = main(
            [
                "refresh",
                "--scale", "0.05",
                "--rr-sets", "150",
                "--deltas", "4",
                "--rounds", "2",
                "--seed", "3",
                "--jobs", "1",
                "--maintenance", "inline",
                "--verify",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "effective policy:" in captured.out
        assert "maintenance=inline" in captured.out
        assert "redrawn" in captured.out
        assert captured.out.count("bit-identical") == 2
