"""Tests for the Theorem 4.2 sample-size bounds and the martingale bounds."""

import numpy as np
import pytest

from repro.advertising.oracle import ExactOracle
from repro.core.bounds import (
    epsilon_split,
    lower_bound_from_estimate,
    max_seeds_per_advertiser,
    theta_bar_max,
    theta_hat_max,
    theta_max,
    theta_zero,
    upper_bound_from_estimate,
)
from repro.exceptions import SolverError


class TestMaxSeeds:
    def test_bounded_by_num_nodes(self, probabilistic_instance):
        mus = max_seeds_per_advertiser(probabilistic_instance, rho=0.1)
        assert (mus <= probabilistic_instance.num_nodes).all()
        assert (mus >= 1).all()

    def test_grows_with_rho(self, topic_instance):
        small = max_seeds_per_advertiser(topic_instance, rho=0.1)
        large = max_seeds_per_advertiser(topic_instance, rho=1.0)
        assert (large >= small).all()

    def test_invalid_rho(self, probabilistic_instance):
        with pytest.raises(SolverError):
            max_seeds_per_advertiser(probabilistic_instance, rho=0.0)


class TestThetaBounds:
    def test_theta_hat_decreases_with_epsilon(self):
        small_eps = theta_hat_max(1000, 0.1, 0.05, 0.01, [5, 5])
        large_eps = theta_hat_max(1000, 0.1, 0.2, 0.01, [5, 5])
        assert small_eps > large_eps

    def test_theta_bar_decreases_with_rho(self):
        small_rho = theta_bar_max(1000, 10.0, 0.1, 100.0, 0.01, 5, 10.0)
        large_rho = theta_bar_max(1000, 10.0, 0.5, 100.0, 0.01, 5, 10.0)
        assert small_rho > large_rho

    def test_theta_max_is_max_of_components(self, probabilistic_instance):
        lam, eps, delta, rho = 0.15, 0.05, 0.01, 0.1
        mus = max_seeds_per_advertiser(probabilistic_instance, rho)
        hat = theta_hat_max(probabilistic_instance.num_nodes, lam, eps, delta, mus)
        bar = theta_bar_max(
            probabilistic_instance.num_nodes,
            probabilistic_instance.gamma,
            rho,
            probabilistic_instance.min_budget,
            delta,
            probabilistic_instance.num_advertisers,
            float(mus.max()),
        )
        assert theta_max(probabilistic_instance, lam, eps, delta, rho) == pytest.approx(
            max(hat, bar)
        )

    def test_theta_zero_smaller_than_theta_max(self, probabilistic_instance):
        lam = 0.15
        t_max = theta_max(probabilistic_instance, lam, 0.05, 0.01, 0.1)
        t_zero = theta_zero(probabilistic_instance, 0.1, 0.01 / 4)
        assert t_zero < t_max

    def test_invalid_parameters(self):
        with pytest.raises(SolverError):
            theta_hat_max(100, 0.1, 0.0, 0.01, [1])
        with pytest.raises(SolverError):
            theta_bar_max(100, 1.0, 0.1, 0.0, 0.01, 1, 1.0)


class TestEpsilonSplit:
    def test_split_recovers_epsilon(self):
        lam, eps = 0.2, 0.05
        eps1, eps2 = epsilon_split(eps, lam, 0.01, 1000, [5, 5, 5])
        assert lam * eps1 + eps2 == pytest.approx(eps)
        assert eps1 > 0 and eps2 > 0


class TestMartingaleBounds:
    def test_upper_above_lower(self):
        for estimate in [0.0, 5.0, 50.0, 500.0]:
            upper = upper_bound_from_estimate(estimate, 1000, 4000.0, a=3.0)
            lower = lower_bound_from_estimate(estimate, 1000, 4000.0, a=3.0)
            assert upper >= lower

    def test_bounds_bracket_estimate(self):
        estimate = 100.0
        upper = upper_bound_from_estimate(estimate, 2000, 4000.0, a=3.0)
        lower = lower_bound_from_estimate(estimate, 2000, 4000.0, a=3.0)
        assert lower <= estimate <= upper

    def test_bounds_tighten_with_more_samples(self):
        estimate = 100.0
        few = upper_bound_from_estimate(estimate, 100, 4000.0, a=3.0) - lower_bound_from_estimate(
            estimate, 100, 4000.0, a=3.0
        )
        many = upper_bound_from_estimate(estimate, 10000, 4000.0, a=3.0) - lower_bound_from_estimate(
            estimate, 10000, 4000.0, a=3.0
        )
        assert many < few

    def test_lower_bound_never_negative(self):
        assert lower_bound_from_estimate(0.0, 100, 4000.0, a=10.0) == pytest.approx(0.0, abs=1e-9)

    def test_invalid_parameters(self):
        with pytest.raises(SolverError):
            upper_bound_from_estimate(1.0, 0, 10.0, 1.0)
        with pytest.raises(SolverError):
            lower_bound_from_estimate(1.0, 10, 10.0, -1.0)

    def test_coverage_of_true_revenue(self, probabilistic_instance):
        """Empirically, the bounds should contain the true revenue almost always."""
        from repro.rrsets.uniform import UniformRRSampler
        from repro.rrsets.estimators import estimate_advertiser_revenue

        oracle = ExactOracle(probabilistic_instance)
        truth = oracle.revenue(0, {0, 1})
        scale_total = probabilistic_instance.num_nodes * probabilistic_instance.gamma
        misses = 0
        trials = 20
        for trial in range(trials):
            sampler = UniformRRSampler(
                probabilistic_instance.graph,
                probabilistic_instance.all_edge_probabilities(),
                probabilistic_instance.cpes(),
                seed=trial,
            )
            collection = sampler.generate_collection(400)
            estimate = estimate_advertiser_revenue(
                collection, 0, {0, 1}, probabilistic_instance.gamma
            )
            upper = upper_bound_from_estimate(estimate, 400, scale_total, a=3.0)
            lower = lower_bound_from_estimate(estimate, 400, scale_total, a=3.0)
            if not lower <= truth <= upper:
                misses += 1
        assert misses <= 2
