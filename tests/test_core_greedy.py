"""Tests for Algorithm 1 (single-advertiser Greedy) and the marginal rate."""

import itertools

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import ExactOracle
from repro.core.greedy import greedy_single_advertiser, marginal_rate
from repro.diffusion.models import IndependentCascadeModel
from repro.exceptions import SolverError
from repro.graph.builders import from_edge_list


def brute_force_single(instance, oracle, advertiser=0, budget=None):
    """Exhaustive optimum over all feasible seed sets for one advertiser."""
    budget = instance.budget(advertiser) if budget is None else budget
    nodes = list(range(instance.num_nodes))
    best_value = 0.0
    best_set = set()
    for size in range(len(nodes) + 1):
        for subset in itertools.combinations(nodes, size):
            seeds = set(subset)
            revenue = oracle.revenue(advertiser, seeds)
            if instance.cost_of_set(advertiser, seeds) + revenue <= budget and revenue > best_value:
                best_value = revenue
                best_set = seeds
    return best_set, best_value


class TestMarginalRate:
    def test_formula(self):
        assert marginal_rate(3.0, 1.0) == pytest.approx(0.75)

    def test_zero_gain(self):
        assert marginal_rate(0.0, 5.0) == 0.0

    def test_negative_gain_clamped(self):
        assert marginal_rate(-1.0, 5.0) == 0.0

    def test_rate_below_one(self):
        assert 0.0 < marginal_rate(100.0, 0.01) < 1.0


class TestGreedySingleAdvertiser:
    def test_respects_budget(self, single_advertiser_instance):
        instance = single_advertiser_instance
        oracle = ExactOracle(instance)
        best, selected, stopple = greedy_single_advertiser(instance, oracle, 0)
        cost = instance.cost_of_set(0, best)
        revenue = oracle.revenue(0, best)
        # The returned set is either budget feasible (S_i) or the stopple node.
        if best == selected:
            assert cost + revenue <= instance.budget(0) + 1e-9

    def test_achieves_one_third_of_optimum(self, single_advertiser_instance):
        instance = single_advertiser_instance
        oracle = ExactOracle(instance)
        best, _, _ = greedy_single_advertiser(instance, oracle, 0)
        _, optimum = brute_force_single(instance, oracle)
        assert oracle.revenue(0, best) >= optimum / 3.0 - 1e-9

    def test_one_third_bound_across_random_instances(self):
        """Theorem 3.1 must hold on a batch of random tiny instances."""
        rng = np.random.default_rng(0)
        for trial in range(6):
            edges = [(0, 1), (1, 2), (0, 3), (3, 4), (2, 4)]
            graph = from_edge_list(edges, num_nodes=5)
            probs = rng.uniform(0.1, 0.9, graph.num_edges)
            model = IndependentCascadeModel(graph, probs)
            costs = rng.uniform(0.5, 3.0, size=(1, 5))
            budget = float(rng.uniform(3.0, 8.0))
            instance = RMInstance(graph, model, [Advertiser(budget=budget, cpe=1.0)], costs)
            oracle = ExactOracle(instance)
            best, _, _ = greedy_single_advertiser(instance, oracle, 0)
            _, optimum = brute_force_single(instance, oracle)
            assert oracle.revenue(0, best) >= optimum / 3.0 - 1e-9, f"trial {trial}"

    def test_candidate_restriction(self, single_advertiser_instance):
        instance = single_advertiser_instance
        oracle = ExactOracle(instance)
        best, _, _ = greedy_single_advertiser(instance, oracle, 0, candidates=[1, 2])
        assert best <= {1, 2}

    def test_budget_override(self, single_advertiser_instance):
        instance = single_advertiser_instance
        oracle = ExactOracle(instance)
        best, selected, stopple = greedy_single_advertiser(instance, oracle, 0, budget=2.0)
        # Budget 2 with unit costs and cpe 1: each node's revenue >= 1 so at
        # most one node fits in S_i (cost 1 + revenue >= 1 <= 2).
        assert len(selected) <= 1

    def test_infeasible_singletons_are_dropped(self, single_advertiser_instance):
        instance = single_advertiser_instance
        oracle = ExactOracle(instance)
        # Budget so small that node 0 (spread 5) cannot fit, but leaves fit.
        best, selected, stopple = greedy_single_advertiser(instance, oracle, 0, budget=2.5)
        assert 0 not in selected

    def test_empty_candidates_gives_empty_solution(self, single_advertiser_instance):
        instance = single_advertiser_instance
        oracle = ExactOracle(instance)
        best, selected, stopple = greedy_single_advertiser(instance, oracle, 0, candidates=[])
        assert best == set() and selected == set() and stopple == set()

    def test_invalid_advertiser(self, single_advertiser_instance):
        oracle = ExactOracle(single_advertiser_instance)
        with pytest.raises(SolverError):
            greedy_single_advertiser(single_advertiser_instance, oracle, 5)

    def test_invalid_budget(self, single_advertiser_instance):
        oracle = ExactOracle(single_advertiser_instance)
        with pytest.raises(SolverError):
            greedy_single_advertiser(single_advertiser_instance, oracle, 0, budget=0.0)

    def test_stopple_node_is_single(self, star_graph):
        """D_i holds at most one node — the first budget violator."""
        model = IndependentCascadeModel(star_graph, probability=1.0)
        instance = RMInstance(
            star_graph, model, [Advertiser(budget=3.0, cpe=1.0)], np.full((1, 5), 0.5)
        )
        oracle = ExactOracle(instance)
        _, _, stopple = greedy_single_advertiser(instance, oracle, 0)
        assert len(stopple) <= 1
