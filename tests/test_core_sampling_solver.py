"""Tests for the RMA progressive solver (Algorithm 6) and the one-batch variant."""

import numpy as np
import pytest

from repro.advertising.oracle import ExactOracle
from repro.core.oracle_solver import approximation_ratio
from repro.core.sampling_solver import SamplingParameters, one_batch_rm, rm_without_oracle
from repro.exceptions import SolverError
from tests.test_core_search_and_solver import brute_force_optimum


def quick_params(**overrides):
    defaults = dict(
        epsilon=0.1,
        delta=0.05,
        tau=0.1,
        rho=0.2,
        initial_rr_sets=256,
        max_rr_sets=2048,
        seed=3,
    )
    defaults.update(overrides)
    return SamplingParameters(**defaults)


class TestSamplingParameters:
    def test_defaults_validate(self):
        SamplingParameters().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("epsilon", 0.0),
            ("delta", 1.5),
            ("tau", 0.0),
            ("rho", -1.0),
            ("initial_rr_sets", 0),
            ("max_rr_sets", 0),
            ("min_initial_rr_sets", 0),
            ("validation_ratio", 0.0),
            ("validation_growth_factor", 0.5),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        params = SamplingParameters()
        setattr(params, field, value)
        with pytest.raises(SolverError):
            params.validate()


class TestRMWithoutOracle:
    def test_returns_allocation_with_metadata(self, probabilistic_instance):
        result = rm_without_oracle(probabilistic_instance, quick_params())
        assert result.algorithm == "RMA"
        assert result.metadata["rr_sets"] >= 256
        assert result.metadata["iterations"] >= 1
        assert 0.0 <= result.metadata["beta"]
        assert result.revenue >= 0.0

    def test_bicriteria_budget_feasibility(self, probabilistic_instance):
        """The true payment must stay within (1 + rho) x budget per advertiser."""
        params = quick_params(rho=0.3, initial_rr_sets=1024, max_rr_sets=4096)
        result = rm_without_oracle(probabilistic_instance, params)
        oracle = ExactOracle(probabilistic_instance)
        for advertiser, seeds in result.allocation.items():
            if not seeds:
                continue
            payment = probabilistic_instance.cost_of_set(advertiser, seeds) + oracle.revenue(
                advertiser, seeds
            )
            limit = (1.0 + params.rho) * probabilistic_instance.budget(advertiser)
            # Allow a small slack for residual estimation error on the tiny sample.
            assert payment <= limit * 1.15

    def test_revenue_close_to_optimum_on_tiny_instance(self, probabilistic_instance):
        result = rm_without_oracle(
            probabilistic_instance, quick_params(initial_rr_sets=2048, max_rr_sets=8192)
        )
        oracle = ExactOracle(probabilistic_instance)
        true_revenue = oracle.total_revenue(result.allocation)
        optimum = brute_force_optimum(probabilistic_instance, oracle)
        lam = approximation_ratio(probabilistic_instance.num_advertisers, 0.1)
        assert true_revenue >= (lam - 0.1) * optimum

    def test_partition_constraint(self, topic_instance):
        result = rm_without_oracle(topic_instance, quick_params())
        nodes = [node for _, seeds in result.allocation.items() for node in seeds]
        assert len(nodes) == len(set(nodes))

    def test_doubling_stops_at_cap(self, probabilistic_instance):
        params = quick_params(epsilon=1e-6, initial_rr_sets=64, max_rr_sets=256)
        result = rm_without_oracle(probabilistic_instance, params)
        assert result.metadata["rr_sets"] <= 256 * 2

    def test_reproducible_with_seed(self, probabilistic_instance):
        first = rm_without_oracle(probabilistic_instance, quick_params(seed=11))
        second = rm_without_oracle(probabilistic_instance, quick_params(seed=11))
        assert first.allocation.as_dict() == second.allocation.as_dict()

    def test_subsim_generator_path(self, probabilistic_instance):
        from repro.runtime import ExecutionPolicy

        result = rm_without_oracle(
            probabilistic_instance, quick_params(policy=ExecutionPolicy(rr_engine="subsim"))
        )
        assert result.revenue >= 0.0

    def test_validation_ratio_check_path(self, probabilistic_instance):
        params = quick_params(validation_ratio_check=True, validation_ratio=1.0)
        result = rm_without_oracle(probabilistic_instance, params)
        assert result.metadata["rr_sets"] >= 256

    def test_theoretical_thetas_reported(self, probabilistic_instance):
        result = rm_without_oracle(probabilistic_instance, quick_params())
        assert result.metadata["theta_max_theoretical"] > 0
        assert result.metadata["theta_zero_theoretical"] > 0

    def test_single_advertiser_instance(self, single_advertiser_instance):
        result = rm_without_oracle(single_advertiser_instance, quick_params())
        assert result.metadata["lambda"] == pytest.approx(1 / 3)
        assert result.allocation.num_advertisers == 1


class TestOneBatch:
    def test_basic_run(self, probabilistic_instance):
        result = one_batch_rm(probabilistic_instance, num_rr_sets=512, params=quick_params())
        assert result.algorithm == "OneBatchRM"
        assert result.metadata["rr_sets"] == 512

    def test_invalid_rr_count(self, probabilistic_instance):
        with pytest.raises(SolverError):
            one_batch_rm(probabilistic_instance, num_rr_sets=0)

    def test_more_samples_do_not_hurt_much(self, probabilistic_instance):
        oracle = ExactOracle(probabilistic_instance)
        small = one_batch_rm(probabilistic_instance, 64, quick_params(seed=5))
        large = one_batch_rm(probabilistic_instance, 2048, quick_params(seed=5))
        revenue_small = oracle.total_revenue(small.allocation)
        revenue_large = oracle.total_revenue(large.allocation)
        assert revenue_large >= revenue_small * 0.8
