"""Tests for Search (Algorithm 4), RM_with_Oracle (Algorithm 5) and SeekUB (Algorithm 7)."""

import itertools

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import ExactOracle
from repro.core.oracle_solver import approximation_ratio, rm_with_oracle
from repro.core.result import SearchByproducts
from repro.core.search import gamma_max, search_threshold
from repro.core.seek_ub import seek_upper_bound
from repro.diffusion.models import IndependentCascadeModel
from repro.exceptions import SolverError
from repro.graph.builders import from_edge_list


def brute_force_optimum(instance, oracle):
    """Exhaustive optimum over all feasible allocations (tiny instances only)."""
    nodes = list(range(instance.num_nodes))
    h = instance.num_advertisers
    best = 0.0
    # Each node is assigned to one advertiser or left out: (h+1)^n options.
    for assignment in itertools.product(range(h + 1), repeat=len(nodes)):
        seed_sets = {i: set() for i in range(h)}
        for node, owner in zip(nodes, assignment):
            if owner < h:
                seed_sets[owner].add(node)
        feasible = True
        total = 0.0
        for advertiser, seeds in seed_sets.items():
            revenue = oracle.revenue(advertiser, seeds) if seeds else 0.0
            cost = instance.cost_of_set(advertiser, seeds)
            if cost + revenue > instance.budget(advertiser) + 1e-9:
                feasible = False
                break
            total += revenue
        if feasible and total > best:
            best = total
    return best


class TestApproximationRatio:
    def test_single_advertiser(self):
        assert approximation_ratio(1, 0.1) == pytest.approx(1 / 3)

    def test_two_advertisers(self):
        assert approximation_ratio(2, 0.1) == pytest.approx(1 / (2 * 3 * 1.1))

    def test_three_advertisers(self):
        assert approximation_ratio(3, 0.1) == pytest.approx(1 / (2 * 4 * 1.1))

    def test_four_advertisers(self):
        assert approximation_ratio(4, 0.1) == pytest.approx(1 / (10 * 1.1))

    def test_many_advertisers_decreasing(self):
        ratios = [approximation_ratio(h, 0.1) for h in range(4, 12)]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_smaller_tau_improves_ratio(self):
        assert approximation_ratio(5, 0.05) > approximation_ratio(5, 0.5)

    def test_invalid_inputs(self):
        with pytest.raises(SolverError):
            approximation_ratio(0, 0.1)
        with pytest.raises(SolverError):
            approximation_ratio(2, 1.5)


class TestGammaMax:
    def test_positive_on_nontrivial_instance(self, probabilistic_instance):
        oracle = ExactOracle(probabilistic_instance)
        assert gamma_max(probabilistic_instance, oracle) > 0.0

    def test_formula_on_hand_instance(self, tiny_instance, tiny_exact_oracle):
        value = gamma_max(tiny_instance, tiny_exact_oracle)
        expected = 0.0
        for advertiser in range(tiny_instance.num_advertisers):
            for node in range(tiny_instance.num_nodes):
                revenue = tiny_exact_oracle.revenue(advertiser, {node})
                rate = revenue / (tiny_instance.cost(advertiser, node) + revenue)
                expected = max(expected, tiny_instance.budget(advertiser) * rate)
        assert value == pytest.approx(expected)


class TestSearch:
    def test_returns_best_of_tried_solutions(self, probabilistic_instance):
        oracle = ExactOracle(probabilistic_instance)
        allocation, revenue, byproducts, diagnostics = search_threshold(
            probabilistic_instance, oracle, tau=0.2, b_min=1
        )
        assert revenue == pytest.approx(oracle.total_revenue(allocation))
        assert diagnostics["search_iterations"] >= 1

    def test_boundary_solutions_consistent(self, probabilistic_instance):
        oracle = ExactOracle(probabilistic_instance)
        _, _, byproducts, _ = search_threshold(probabilistic_instance, oracle, tau=0.2, b_min=1)
        assert byproducts.gamma_low <= byproducts.gamma_high + 1e-12
        if byproducts.allocation_low is not None:
            assert byproducts.b_low >= 1
        if byproducts.allocation_high is not None:
            assert byproducts.b_high < 1 or byproducts.b_high < byproducts.b_min or True

    def test_invalid_parameters(self, probabilistic_instance):
        oracle = ExactOracle(probabilistic_instance)
        with pytest.raises(SolverError):
            search_threshold(probabilistic_instance, oracle, tau=0.0, b_min=1)
        with pytest.raises(SolverError):
            search_threshold(probabilistic_instance, oracle, tau=0.1, b_min=3)

    def test_terminates_within_iteration_cap(self, topic_instance):
        oracle = ExactOracle(topic_instance)
        _, _, _, diagnostics = search_threshold(
            topic_instance, oracle, tau=0.1, b_min=1, max_iterations=10
        )
        assert diagnostics["search_iterations"] <= 10


class TestRMWithOracle:
    def test_single_advertiser_dispatch(self, single_advertiser_instance):
        oracle = ExactOracle(single_advertiser_instance)
        result = rm_with_oracle(single_advertiser_instance, oracle, tau=0.1)
        assert result.algorithm == "RM_with_Oracle"
        assert result.search is None
        assert result.metadata["lambda"] == pytest.approx(1 / 3)

    def test_multi_advertiser_produces_byproducts(self, probabilistic_instance):
        oracle = ExactOracle(probabilistic_instance)
        result = rm_with_oracle(probabilistic_instance, oracle, tau=0.1)
        assert isinstance(result.search, SearchByproducts)
        assert result.metadata["b_min"] == 1

    def test_meets_theoretical_ratio_against_brute_force(self, probabilistic_instance):
        oracle = ExactOracle(probabilistic_instance)
        result = rm_with_oracle(probabilistic_instance, oracle, tau=0.1)
        optimum = brute_force_optimum(probabilistic_instance, oracle)
        lam = approximation_ratio(probabilistic_instance.num_advertisers, 0.1)
        assert result.revenue >= lam * optimum - 1e-9

    def test_ratio_on_random_two_advertiser_instances(self):
        rng = np.random.default_rng(1)
        for trial in range(4):
            graph = from_edge_list([(0, 1), (1, 2), (2, 3), (0, 3), (3, 4)], num_nodes=5)
            probs = rng.uniform(0.1, 0.9, graph.num_edges)
            model = IndependentCascadeModel(graph, probs)
            advertisers = [
                Advertiser(budget=float(rng.uniform(4, 9)), cpe=1.0),
                Advertiser(budget=float(rng.uniform(4, 9)), cpe=float(rng.choice([1.0, 2.0]))),
            ]
            costs = rng.uniform(0.5, 2.0, size=(2, 5))
            instance = RMInstance(graph, model, advertisers, costs)
            oracle = ExactOracle(instance)
            result = rm_with_oracle(instance, oracle, tau=0.1)
            optimum = brute_force_optimum(instance, oracle)
            lam = approximation_ratio(2, 0.1)
            assert result.revenue >= lam * optimum - 1e-9, f"trial {trial}"

    def test_allocation_is_partition(self, topic_instance):
        oracle = ExactOracle(topic_instance)
        result = rm_with_oracle(topic_instance, oracle, tau=0.1)
        nodes = [node for _, seeds in result.allocation.items() for node in seeds]
        assert len(nodes) == len(set(nodes))

    def test_budget_override_respected(self, probabilistic_instance):
        oracle = ExactOracle(probabilistic_instance)
        result = rm_with_oracle(
            probabilistic_instance, oracle, tau=0.1, budgets=np.array([2.0, 2.0])
        )
        for advertiser, seeds in result.allocation.items():
            if len(seeds) > 1:
                spend = probabilistic_instance.cost_of_set(advertiser, seeds) + oracle.revenue(
                    advertiser, seeds
                )
                assert spend <= 2.0 + 1e-9

    def test_mismatched_oracle_rejected(self, probabilistic_instance, single_advertiser_instance):
        oracle = ExactOracle(single_advertiser_instance)
        with pytest.raises(SolverError):
            rm_with_oracle(probabilistic_instance, oracle)


class TestSeekUpperBound:
    def test_single_advertiser_trivial_bound(self):
        bound = seek_upper_bound(9.0, None, num_advertisers=1, lam=1 / 3, revenue_of=lambda a: 0.0)
        assert bound == pytest.approx(27.0)

    def test_never_exceeds_trivial_bound(self):
        byproducts = SearchByproducts(
            allocation_low=Allocation(2),
            b_low=2,
            gamma_low=1.0,
            allocation_high=Allocation(2),
            b_high=0,
            gamma_high=2.0,
            b_min=2,
        )
        bound = seek_upper_bound(
            10.0, byproducts, num_advertisers=2, lam=0.1, revenue_of=lambda a: 4.0
        )
        assert bound <= 10.0 / 0.1 + 1e-9

    def test_case_b_low_below_bmin(self):
        byproducts = SearchByproducts(
            allocation_low=None,
            b_low=0,
            allocation_high=Allocation(2),
            b_high=0,
            gamma_high=0.0,
            b_min=2,
        )
        bound = seek_upper_bound(
            100.0, byproducts, num_advertisers=2, lam=0.1, revenue_of=lambda a: 5.0
        )
        assert bound == pytest.approx(30.0)

    def test_case_b_high_zero(self):
        byproducts = SearchByproducts(
            allocation_low=Allocation(2),
            b_low=2,
            gamma_low=1.0,
            allocation_high=Allocation(2),
            b_high=0,
            gamma_high=3.0,
            b_min=2,
        )
        bound = seek_upper_bound(
            1000.0, byproducts, num_advertisers=2, lam=0.1, revenue_of=lambda a: 5.0
        )
        assert bound == pytest.approx(2 * 5.0 + 2 * 3.0)

    def test_case_b_high_one(self):
        byproducts = SearchByproducts(
            allocation_low=Allocation(3),
            b_low=2,
            gamma_low=1.0,
            allocation_high=Allocation(3),
            b_high=1,
            gamma_high=3.0,
            b_min=2,
        )
        bound = seek_upper_bound(
            1000.0, byproducts, num_advertisers=3, lam=0.05, revenue_of=lambda a: 5.0
        )
        assert bound == pytest.approx(6 * 5.0 + 3 * 3.0)

    def test_case_no_high_solution(self):
        byproducts = SearchByproducts(
            allocation_low=Allocation(2),
            b_low=2,
            gamma_low=1.0,
            allocation_high=None,
            b_high=0,
            gamma_high=5.0,
            b_min=2,
        )
        bound = seek_upper_bound(
            1000.0, byproducts, num_advertisers=2, lam=0.2, revenue_of=lambda a: 8.0
        )
        assert bound == pytest.approx(8.0 / 0.2)

    def test_invalid_lambda(self):
        with pytest.raises(SolverError):
            seek_upper_bound(1.0, None, 1, lam=0.0, revenue_of=lambda a: 0.0)

    def test_bound_is_valid_on_real_instance(self, probabilistic_instance):
        """The SeekUB value must upper-bound the brute-force optimum."""
        oracle = ExactOracle(probabilistic_instance)
        result = rm_with_oracle(probabilistic_instance, oracle, tau=0.1)
        lam = approximation_ratio(probabilistic_instance.num_advertisers, 0.1)
        bound = seek_upper_bound(
            result.revenue,
            result.search,
            probabilistic_instance.num_advertisers,
            lam,
            revenue_of=oracle.total_revenue,
        )
        optimum = brute_force_optimum(probabilistic_instance, oracle)
        assert bound >= optimum - 1e-9
