"""Tests for ThresholdGreedy (Algorithm 2) and Fill (Algorithm 3)."""

import numpy as np
import pytest

from repro.advertising.allocation import Allocation
from repro.advertising.oracle import ExactOracle
from repro.core.threshold_greedy import fill, threshold_greedy
from repro.exceptions import SolverError


@pytest.fixture
def oracle(probabilistic_instance):
    return ExactOracle(probabilistic_instance)


class TestThresholdGreedy:
    def test_zero_threshold_selects_greedily(self, probabilistic_instance, oracle):
        allocation, depleted = threshold_greedy(probabilistic_instance, oracle, gamma=0.0)
        assert allocation.total_seed_count() > 0
        assert 0 <= depleted <= probabilistic_instance.num_advertisers

    def test_huge_threshold_selects_nothing_before_fill(self, probabilistic_instance, oracle):
        allocation, depleted = threshold_greedy(
            probabilistic_instance, oracle, gamma=1e9, run_fill=False
        )
        assert allocation.total_seed_count() == 0
        assert depleted == 0

    def test_fill_spends_leftover_budget(self, probabilistic_instance, oracle):
        bare, _ = threshold_greedy(probabilistic_instance, oracle, gamma=1e9, run_fill=False)
        filled, _ = threshold_greedy(probabilistic_instance, oracle, gamma=1e9, run_fill=True)
        assert filled.total_seed_count() >= bare.total_seed_count()

    def test_budget_feasibility_of_output(self, probabilistic_instance, oracle):
        allocation, _ = threshold_greedy(probabilistic_instance, oracle, gamma=0.5)
        for advertiser, seeds in allocation.items():
            if not seeds:
                continue
            spend = probabilistic_instance.cost_of_set(advertiser, seeds) + oracle.revenue(
                advertiser, seeds
            )
            # ThresholdGreedy keeps either a feasible S_i or a single stopple
            # node D_i (whose own payment can exceed the budget only through
            # its revenue, never through an accumulated set).
            if len(seeds) > 1:
                assert spend <= probabilistic_instance.budget(advertiser) + 1e-9

    def test_partition_constraint(self, probabilistic_instance, oracle):
        allocation, _ = threshold_greedy(probabilistic_instance, oracle, gamma=0.0)
        seen = set()
        for _, seeds in allocation.items():
            assert not (seen & seeds)
            seen |= seeds

    def test_respects_budget_override(self, probabilistic_instance, oracle):
        tight = np.array([2.0, 2.0])
        allocation, _ = threshold_greedy(probabilistic_instance, oracle, 0.0, budgets=tight)
        for advertiser, seeds in allocation.items():
            assert len(seeds) <= 2

    def test_candidate_restriction(self, probabilistic_instance, oracle):
        allocation, _ = threshold_greedy(
            probabilistic_instance, oracle, gamma=0.0, candidates=[0, 1]
        )
        assert allocation.assigned_nodes() <= {0, 1}

    def test_negative_gamma_rejected(self, probabilistic_instance, oracle):
        with pytest.raises(SolverError):
            threshold_greedy(probabilistic_instance, oracle, gamma=-1.0)

    def test_wrong_budget_shape_rejected(self, probabilistic_instance, oracle):
        with pytest.raises(SolverError):
            threshold_greedy(probabilistic_instance, oracle, 0.0, budgets=np.array([1.0]))

    def test_depleted_count_matches_budget_pressure(self, probabilistic_instance, oracle):
        """With tiny budgets every advertiser should deplete; with huge ones none."""
        _, depleted_tiny = threshold_greedy(
            probabilistic_instance, oracle, 0.0, budgets=np.array([3.5, 5.2])
        )
        _, depleted_huge = threshold_greedy(
            probabilistic_instance, oracle, 0.0, budgets=np.array([1e6, 1e6])
        )
        assert depleted_tiny >= 1
        assert depleted_huge == 0

    def test_monotone_in_gamma_for_threshold_rule(self, topic_instance):
        """A larger γ can only restrict the set of elements eligible pre-Fill."""
        oracle = ExactOracle(topic_instance)
        low, _ = threshold_greedy(topic_instance, oracle, gamma=0.0, run_fill=False)
        high, _ = threshold_greedy(topic_instance, oracle, gamma=50.0, run_fill=False)
        assert high.total_seed_count() <= low.total_seed_count()


class TestFill:
    def test_fill_only_adds_nodes(self, probabilistic_instance, oracle):
        start = Allocation.from_dict(2, {0: [0]})
        result = fill(probabilistic_instance, oracle, start)
        assert start.seeds(0) <= result.seeds(0)

    def test_fill_does_not_mutate_input(self, probabilistic_instance, oracle):
        start = Allocation.from_dict(2, {0: [0]})
        fill(probabilistic_instance, oracle, start)
        assert start.total_seed_count() == 1

    def test_fill_keeps_budget_feasible(self, probabilistic_instance, oracle):
        result = fill(probabilistic_instance, oracle, Allocation(2))
        for advertiser, seeds in result.items():
            if seeds:
                spend = probabilistic_instance.cost_of_set(advertiser, seeds) + oracle.revenue(
                    advertiser, seeds
                )
                assert spend <= probabilistic_instance.budget(advertiser) + 1e-9

    def test_fill_respects_partition(self, probabilistic_instance, oracle):
        result = fill(probabilistic_instance, oracle, Allocation(2))
        owners = {}
        for advertiser, seeds in result.items():
            for node in seeds:
                assert node not in owners
                owners[node] = advertiser

    def test_fill_with_wrong_budget_shape(self, probabilistic_instance, oracle):
        with pytest.raises(SolverError):
            fill(probabilistic_instance, oracle, Allocation(2), budgets=np.array([1.0]))
