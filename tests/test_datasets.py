"""Tests for the synthetic datasets and the dataset registry."""

import numpy as np
import pytest

from repro.datasets.registry import (
    DATASET_BUILDERS,
    build_dataset,
    build_instance,
    sample_advertisers,
)
from repro.datasets.synthetic import (
    dblp_like,
    flixster_like,
    lastfm_like,
    livejournal_like,
    synthetic_tic_probabilities,
)
from repro.diffusion.learning import positive_probability_fraction
from repro.diffusion.models import TopicAwareICModel, WeightedCascadeModel
from repro.exceptions import DatasetError
from repro.graph.generators import power_law_configuration_digraph


class TestSyntheticNetworks:
    def test_lastfm_like_structure(self):
        network = lastfm_like(scale=0.2, seed=1)
        assert network.name == "lastfm_like"
        assert network.directed
        assert isinstance(network.propagation_model, TopicAwareICModel)
        assert network.num_topics == 10
        assert network.num_nodes >= 50

    def test_flixster_like_structure(self):
        network = flixster_like(scale=0.1, seed=1)
        assert isinstance(network.propagation_model, TopicAwareICModel)
        assert network.num_nodes >= 100

    def test_dblp_like_is_weighted_cascade_and_symmetric(self):
        network = dblp_like(scale=0.05, seed=1)
        assert isinstance(network.propagation_model, WeightedCascadeModel)
        edges = set(network.graph.edges())
        assert all((v, u) in edges for u, v in edges)

    def test_livejournal_like_structure(self):
        network = livejournal_like(scale=0.05, seed=1)
        assert isinstance(network.propagation_model, WeightedCascadeModel)
        assert network.directed

    def test_relative_size_ordering(self):
        sizes = [
            lastfm_like(scale=0.3, seed=1).num_nodes,
            flixster_like(scale=0.3, seed=1).num_nodes,
            dblp_like(scale=0.3, seed=1).num_nodes,
            livejournal_like(scale=0.3, seed=1).num_nodes,
        ]
        assert sizes == sorted(sizes)

    def test_reproducible_networks(self):
        a = lastfm_like(scale=0.2, seed=5)
        b = lastfm_like(scale=0.2, seed=5)
        assert a.graph == b.graph

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            lastfm_like(scale=0.0)


class TestSyntheticTICProbabilities:
    def test_shape_and_range(self):
        graph = power_law_configuration_digraph(120, seed=2)
        matrix = synthetic_tic_probabilities(graph, num_topics=4, seed=2)
        assert matrix.shape == (4, graph.num_edges)
        assert (matrix >= 0).all() and (matrix <= 1).all()

    def test_positive_fraction_respected(self):
        graph = power_law_configuration_digraph(150, seed=2)
        sparse = synthetic_tic_probabilities(graph, 3, positive_fraction=0.5, seed=2)
        dense = synthetic_tic_probabilities(graph, 3, positive_fraction=0.99, seed=2)
        assert positive_probability_fraction(sparse) < positive_probability_fraction(dense)

    def test_invalid_parameters(self):
        graph = power_law_configuration_digraph(50, seed=2)
        with pytest.raises(DatasetError):
            synthetic_tic_probabilities(graph, 0)
        with pytest.raises(DatasetError):
            synthetic_tic_probabilities(graph, 2, positive_fraction=0.0)


class TestSampleAdvertisers:
    def test_count_and_positivity(self):
        advertisers = sample_advertisers(8, num_nodes=500, num_topics=5, seed=3)
        assert len(advertisers) == 8
        assert all(adv.budget > 0 and adv.cpe > 0 for adv in advertisers)

    def test_budgets_track_network_size(self):
        small = sample_advertisers(5, num_nodes=100, num_topics=1, seed=3)
        large = sample_advertisers(5, num_nodes=10000, num_topics=1, seed=3)
        assert np.mean([a.budget for a in large]) > np.mean([a.budget for a in small])

    def test_uniform_budget_fraction(self):
        advertisers = sample_advertisers(
            4, num_nodes=1000, num_topics=1, uniform_budget_fraction=0.2, seed=3
        )
        expected = {0.2 * 1000 * adv.cpe for adv in advertisers}
        assert {adv.budget for adv in advertisers} == expected

    def test_topic_mixes_only_with_multiple_topics(self):
        with_topics = sample_advertisers(3, 100, num_topics=5, seed=1)
        without_topics = sample_advertisers(3, 100, num_topics=1, seed=1)
        assert all(adv.topic_mix is not None for adv in with_topics)
        assert all(adv.topic_mix is None for adv in without_topics)

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            sample_advertisers(0, 10, 1)
        with pytest.raises(DatasetError):
            sample_advertisers(2, 10, 1, demand_range=(0.5, 0.1))


class TestBuildDataset:
    def test_builds_consistent_instance(self):
        data = build_dataset(
            "lastfm_like", num_advertisers=4, scale=0.2, seed=2, singleton_rr_sets=200
        )
        instance = data.instance
        assert instance.num_advertisers == 4
        assert instance.num_nodes == data.network.num_nodes
        assert data.singleton_spreads.shape == (instance.num_nodes,)
        assert (instance.cost_matrix() > 0).all()

    def test_costs_follow_incentive_model(self):
        linear = build_dataset(
            "lastfm_like", num_advertisers=2, incentive="linear", alpha=0.1, scale=0.2,
            seed=2, singleton_rr_sets=200,
        )
        superlinear = build_dataset(
            "lastfm_like", num_advertisers=2, incentive="superlinear", alpha=0.1, scale=0.2,
            seed=2, singleton_rr_sets=200,
        )
        # Same network/spreads (same seed): superlinear costs dominate linear
        # wherever the singleton spread exceeds 1.
        mask = linear.singleton_spreads > 1.5
        assert (
            superlinear.instance.cost_matrix()[0][mask]
            >= linear.instance.cost_matrix()[0][mask] - 1e-9
        ).all()

    def test_every_registered_dataset_builds(self):
        for name in DATASET_BUILDERS:
            instance = build_instance(
                name, num_advertisers=2, scale=0.05, seed=1, singleton_rr_sets=100
            )
            assert instance.num_advertisers == 2

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            build_dataset("imaginary")

    def test_custom_advertisers_respected(self):
        from repro.advertising.advertiser import Advertiser

        custom = [Advertiser(budget=50.0, cpe=1.0), Advertiser(budget=60.0, cpe=2.0)]
        data = build_dataset(
            "dblp_like", advertisers=custom, scale=0.05, seed=2, singleton_rr_sets=100
        )
        assert data.instance.budgets().tolist() == [50.0, 60.0]
