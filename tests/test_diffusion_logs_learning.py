"""Tests for action-log generation and topic-aware probability learning."""

import numpy as np
import pytest

from repro.diffusion.action_logs import ActionEvent, ActionLog, cascades_touching_edge, generate_action_log
from repro.diffusion.learning import learn_topic_edge_probabilities, positive_probability_fraction
from repro.exceptions import DiffusionError
from repro.graph.builders import from_edge_list
from repro.graph.generators import preferential_attachment_digraph


@pytest.fixture
def log_graph():
    return preferential_attachment_digraph(60, out_degree=3, seed=2)


@pytest.fixture
def ground_truth(log_graph):
    rng = np.random.default_rng(4)
    matrix = rng.uniform(0.2, 0.6, size=(2, log_graph.num_edges))
    return matrix


class TestActionLog:
    def test_generation_produces_events(self, log_graph, ground_truth):
        log = generate_action_log(log_graph, ground_truth, num_items=20, seed=5)
        assert len(log) > 0
        assert log.num_items == 20

    def test_item_topics_in_range(self, log_graph, ground_truth):
        log = generate_action_log(log_graph, ground_truth, num_items=10, seed=5)
        assert set(log.item_topics.values()) <= {0, 1}

    def test_events_for_item_sorted_by_time(self, log_graph, ground_truth):
        log = generate_action_log(log_graph, ground_truth, num_items=5, seed=5)
        for item in range(5):
            events = log.events_for_item(item)
            times = [event.timestamp for event in events]
            assert times == sorted(times)

    def test_seed_events_have_time_zero(self, log_graph, ground_truth):
        log = generate_action_log(log_graph, ground_truth, num_items=5, seeds_per_item=2, seed=5)
        for item in range(5):
            events = log.events_for_item(item)
            assert sum(1 for event in events if event.timestamp == 0) >= 1

    def test_users_method(self):
        log = ActionLog(events=[ActionEvent(1, 0, 0), ActionEvent(2, 0, 1)], item_topics={0: 0})
        assert log.users() == {1, 2}

    def test_invalid_parameters(self, log_graph, ground_truth):
        with pytest.raises(DiffusionError):
            generate_action_log(log_graph, ground_truth, num_items=0)
        with pytest.raises(DiffusionError):
            generate_action_log(log_graph, np.zeros((2, 3)), num_items=1)

    def test_cascades_touching_edge_counts(self):
        log = ActionLog(
            events=[ActionEvent(0, 0, 0), ActionEvent(1, 0, 1), ActionEvent(1, 1, 0)],
            item_topics={0: 0, 1: 0},
        )
        assert cascades_touching_edge(log, 0, 1) == 1


class TestLearning:
    def test_learned_matrix_shape_and_range(self, log_graph, ground_truth):
        log = generate_action_log(log_graph, ground_truth, num_items=40, seed=6)
        learned = learn_topic_edge_probabilities(log_graph, log, num_topics=2)
        assert learned.shape == (2, log_graph.num_edges)
        assert (learned >= 0).all() and (learned <= 1).all()

    def test_no_events_gives_zero_matrix(self, log_graph):
        empty = ActionLog()
        learned = learn_topic_edge_probabilities(log_graph, empty, num_topics=3)
        assert not learned.any()

    def test_learning_recovers_signal(self, log_graph):
        """Edges with high ground-truth probability should learn higher values."""
        rng = np.random.default_rng(8)
        matrix = np.zeros((1, log_graph.num_edges))
        strong = rng.choice(log_graph.num_edges, size=log_graph.num_edges // 4, replace=False)
        matrix[0, strong] = 0.9
        log = generate_action_log(log_graph, matrix, num_items=120, seeds_per_item=5, seed=9)
        learned = learn_topic_edge_probabilities(log_graph, log, num_topics=1)
        weak = np.setdiff1d(np.arange(log_graph.num_edges), strong)
        strong_mean = learned[0, strong].mean()
        weak_mean = learned[0, weak].mean() if weak.size else 0.0
        assert strong_mean > weak_mean

    def test_invalid_topic_annotation_rejected(self, log_graph):
        log = ActionLog(events=[], item_topics={0: 99})
        with pytest.raises(DiffusionError):
            learn_topic_edge_probabilities(log_graph, log, num_topics=2)

    def test_invalid_parameters(self, log_graph):
        log = ActionLog()
        with pytest.raises(DiffusionError):
            learn_topic_edge_probabilities(log_graph, log, num_topics=0)
        with pytest.raises(DiffusionError):
            learn_topic_edge_probabilities(log_graph, log, num_topics=1, propagation_window=0)
        with pytest.raises(DiffusionError):
            learn_topic_edge_probabilities(log_graph, log, num_topics=1, smoothing=-1)


class TestPositiveFraction:
    def test_empty_matrix(self):
        assert positive_probability_fraction(np.zeros((0, 0))) == 0.0

    def test_half_positive(self):
        matrix = np.array([[0.0, 0.5], [0.2, 0.0]])
        assert positive_probability_fraction(matrix) == pytest.approx(0.5)
