"""Tests for the propagation models."""

import numpy as np
import pytest

from repro.diffusion.models import (
    IndependentCascadeModel,
    TopicAwareICModel,
    TrivalencyModel,
    WeightedCascadeModel,
)
from repro.diffusion.topics import TopicDistribution
from repro.exceptions import DiffusionError
from repro.graph.builders import from_edge_list


class TestIndependentCascade:
    def test_scalar_probability_broadcast(self, diamond_graph):
        model = IndependentCascadeModel(diamond_graph, probability=0.3)
        probs = model.edge_probabilities()
        assert probs.shape == (diamond_graph.num_edges,)
        assert np.allclose(probs, 0.3)

    def test_array_probability(self, path_graph):
        custom = np.array([0.1, 0.2, 0.3])
        model = IndependentCascadeModel(path_graph, probability=custom)
        assert np.allclose(model.edge_probabilities(), custom)

    def test_topic_mix_ignored(self, path_graph):
        model = IndependentCascadeModel(path_graph, probability=0.5)
        assert np.allclose(model.edge_probabilities([0.2, 0.8]), 0.5)

    def test_invalid_scalar(self, path_graph):
        with pytest.raises(DiffusionError):
            IndependentCascadeModel(path_graph, probability=1.5)

    def test_invalid_array_shape(self, path_graph):
        with pytest.raises(DiffusionError):
            IndependentCascadeModel(path_graph, probability=np.array([0.1]))

    def test_num_topics_is_one(self, path_graph):
        assert IndependentCascadeModel(path_graph).num_topics == 1


class TestWeightedCascade:
    def test_probability_is_inverse_in_degree(self):
        graph = from_edge_list([(0, 2), (1, 2), (0, 1)])
        model = WeightedCascadeModel(graph)
        probs = model.edge_probabilities()
        targets = graph.targets
        for edge_id, target in enumerate(targets):
            assert probs[edge_id] == pytest.approx(1.0 / graph.in_degree(int(target)))

    def test_probabilities_in_unit_interval(self, diamond_graph):
        probs = WeightedCascadeModel(diamond_graph).edge_probabilities()
        assert (probs >= 0).all() and (probs <= 1).all()


class TestTrivalency:
    def test_values_from_given_set(self, diamond_graph):
        model = TrivalencyModel(diamond_graph, values=(0.1, 0.01), seed=1)
        assert set(np.unique(model.edge_probabilities())).issubset({0.1, 0.01})

    def test_invalid_values(self, diamond_graph):
        with pytest.raises(DiffusionError):
            TrivalencyModel(diamond_graph, values=(1.5,))


class TestTopicAwareIC:
    def test_mixing_matches_manual_computation(self, path_graph):
        matrix = np.array([[0.2, 0.4, 0.6], [0.8, 0.0, 0.2]])
        model = TopicAwareICModel(path_graph, matrix)
        mix = TopicDistribution([0.25, 0.75])
        expected = 0.25 * matrix[0] + 0.75 * matrix[1]
        assert np.allclose(model.edge_probabilities(mix), expected)

    def test_none_mix_defaults_to_uniform(self, path_graph):
        matrix = np.array([[0.2, 0.4, 0.6], [0.8, 0.0, 0.2]])
        model = TopicAwareICModel(path_graph, matrix)
        assert np.allclose(model.edge_probabilities(None), matrix.mean(axis=0))

    def test_pure_topic_mix_selects_row(self, path_graph):
        matrix = np.array([[0.2, 0.4, 0.6], [0.8, 0.0, 0.2]])
        model = TopicAwareICModel(path_graph, matrix)
        assert np.allclose(model.edge_probabilities([1.0, 0.0]), matrix[0])

    def test_num_topics(self, path_graph):
        matrix = np.zeros((5, path_graph.num_edges))
        assert TopicAwareICModel(path_graph, matrix).num_topics == 5

    def test_invalid_matrix_shape(self, path_graph):
        with pytest.raises(DiffusionError):
            TopicAwareICModel(path_graph, np.zeros((2, 99)))

    def test_invalid_probabilities(self, path_graph):
        with pytest.raises(DiffusionError):
            TopicAwareICModel(path_graph, np.full((1, path_graph.num_edges), 1.2))

    def test_wrong_mix_length_rejected(self, path_graph):
        matrix = np.zeros((2, path_graph.num_edges))
        model = TopicAwareICModel(path_graph, matrix)
        with pytest.raises(DiffusionError):
            model.edge_probabilities([1.0])

    def test_non_normalised_mix_rejected(self, path_graph):
        matrix = np.zeros((2, path_graph.num_edges))
        model = TopicAwareICModel(path_graph, matrix)
        with pytest.raises(DiffusionError):
            model.edge_probabilities([0.7, 0.7])

    def test_result_clipped_to_unit_interval(self, path_graph):
        matrix = np.full((2, path_graph.num_edges), 1.0)
        model = TopicAwareICModel(path_graph, matrix)
        assert (model.edge_probabilities([0.5, 0.5]) <= 1.0).all()
