"""Tests for cascade simulation, Monte-Carlo spread and exact spread."""

import numpy as np
import pytest

from repro.diffusion.simulation import (
    exact_spread,
    monte_carlo_spread,
    reachable_from,
    simulate_cascade,
    singleton_spreads_monte_carlo,
)
from repro.exceptions import DiffusionError
from repro.graph.builders import from_edge_list


class TestSimulateCascade:
    def test_deterministic_graph_activates_all_reachable(self, path_graph):
        probs = np.ones(path_graph.num_edges)
        activated = simulate_cascade(path_graph, probs, [0], rng=0)
        assert activated == {0, 1, 2, 3}

    def test_zero_probability_activates_only_seeds(self, path_graph):
        probs = np.zeros(path_graph.num_edges)
        assert simulate_cascade(path_graph, probs, [0, 2], rng=0) == {0, 2}

    def test_empty_seed_set(self, path_graph):
        probs = np.ones(path_graph.num_edges)
        assert simulate_cascade(path_graph, probs, [], rng=0) == set()

    def test_invalid_seed_raises(self, path_graph):
        with pytest.raises(DiffusionError):
            simulate_cascade(path_graph, np.ones(path_graph.num_edges), [99])

    def test_wrong_probability_length_raises(self, path_graph):
        with pytest.raises(DiffusionError):
            simulate_cascade(path_graph, np.ones(2), [0])

    def test_activated_contains_seeds(self, diamond_graph):
        probs = np.full(diamond_graph.num_edges, 0.5)
        activated = simulate_cascade(diamond_graph, probs, [1], rng=3)
        assert 1 in activated


class TestMonteCarloSpread:
    def test_deterministic_spread(self, path_graph):
        probs = np.ones(path_graph.num_edges)
        assert monte_carlo_spread(path_graph, probs, [0], 50, rng=0) == pytest.approx(4.0)

    def test_empty_seeds_spread_zero(self, path_graph):
        assert monte_carlo_spread(path_graph, np.ones(path_graph.num_edges), [], 10) == 0.0

    def test_spread_at_least_seed_count(self, diamond_graph):
        probs = np.full(diamond_graph.num_edges, 0.3)
        spread = monte_carlo_spread(diamond_graph, probs, [0, 3], 100, rng=1)
        assert spread >= 2.0

    def test_matches_exact_on_small_graph(self, diamond_graph):
        probs = np.full(diamond_graph.num_edges, 0.5)
        exact = exact_spread(diamond_graph, probs, [0])
        estimate = monte_carlo_spread(diamond_graph, probs, [0], 4000, rng=7)
        assert estimate == pytest.approx(exact, rel=0.1)

    def test_invalid_simulation_count(self, path_graph):
        with pytest.raises(DiffusionError):
            monte_carlo_spread(path_graph, np.ones(path_graph.num_edges), [0], 0)


class TestExactSpread:
    def test_path_graph_closed_form(self, path_graph):
        # sigma({0}) = 1 + p + p^2 + p^3 on a 4-node path.
        p = 0.5
        probs = np.full(path_graph.num_edges, p)
        expected = 1 + p + p ** 2 + p ** 3
        assert exact_spread(path_graph, probs, [0]) == pytest.approx(expected)

    def test_diamond_closed_form(self, diamond_graph):
        # sigma({0}) = 1 + 2p + (1 - (1-p^2)^2) for the diamond.
        p = 0.5
        probs = np.full(diamond_graph.num_edges, p)
        expected = 1 + 2 * p + (1 - (1 - p ** 2) ** 2)
        assert exact_spread(diamond_graph, probs, [0]) == pytest.approx(expected)

    def test_all_seeds_spread_is_n(self, diamond_graph):
        probs = np.zeros(diamond_graph.num_edges)
        assert exact_spread(diamond_graph, probs, [0, 1, 2, 3]) == pytest.approx(4.0)

    def test_monotone_in_seed_set(self, diamond_graph):
        probs = np.full(diamond_graph.num_edges, 0.4)
        small = exact_spread(diamond_graph, probs, [1])
        large = exact_spread(diamond_graph, probs, [1, 2])
        assert large >= small

    def test_submodular_marginals(self, diamond_graph):
        probs = np.full(diamond_graph.num_edges, 0.4)
        def sigma(seeds):
            return exact_spread(diamond_graph, probs, seeds)
        gain_small = sigma([1, 0]) - sigma([1])
        gain_large = sigma([1, 2, 0]) - sigma([1, 2])
        assert gain_large <= gain_small + 1e-9

    def test_too_many_edges_rejected(self):
        graph = from_edge_list([(i, i + 1) for i in range(25)])
        with pytest.raises(DiffusionError):
            exact_spread(graph, np.full(graph.num_edges, 0.5), [0])

    def test_empty_seed_set(self, path_graph):
        assert exact_spread(path_graph, np.ones(path_graph.num_edges), []) == 0.0


class TestReachableFrom:
    def test_respects_live_edge_mask(self, path_graph):
        live = np.array([True, False, True])
        assert reachable_from(path_graph, [0], live) == {0, 1}

    def test_all_live(self, path_graph):
        live = np.ones(path_graph.num_edges, dtype=bool)
        assert reachable_from(path_graph, [0], live) == {0, 1, 2, 3}


class TestSingletonSpreads:
    def test_all_nodes_have_spread_at_least_one(self, diamond_graph):
        probs = np.full(diamond_graph.num_edges, 0.3)
        spreads = singleton_spreads_monte_carlo(diamond_graph, probs, 50, rng=1)
        assert (spreads >= 1.0).all()

    def test_source_node_has_largest_spread(self, star_graph):
        probs = np.ones(star_graph.num_edges)
        spreads = singleton_spreads_monte_carlo(star_graph, probs, 30, rng=1)
        assert spreads[0] == spreads.max()
