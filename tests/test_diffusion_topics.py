"""Tests for topic distributions."""

import numpy as np
import pytest

from repro.diffusion.topics import TopicDistribution, random_topics, skewed_topics, uniform_topics
from repro.exceptions import DiffusionError


class TestTopicDistribution:
    def test_normalises_weights(self):
        dist = TopicDistribution([2, 2, 4])
        assert np.allclose(dist.weights, [0.25, 0.25, 0.5])

    def test_num_topics_and_len(self):
        dist = TopicDistribution([1, 1])
        assert dist.num_topics == 2
        assert len(dist) == 2

    def test_probability_lookup(self):
        dist = TopicDistribution([1, 3])
        assert dist.probability(1) == pytest.approx(0.75)

    def test_probability_out_of_range(self):
        with pytest.raises(DiffusionError):
            TopicDistribution([1, 1]).probability(5)

    def test_rejects_negative_weights(self):
        with pytest.raises(DiffusionError):
            TopicDistribution([1, -1])

    def test_rejects_all_zero(self):
        with pytest.raises(DiffusionError):
            TopicDistribution([0, 0])

    def test_rejects_empty(self):
        with pytest.raises(DiffusionError):
            TopicDistribution([])

    def test_rejects_nan(self):
        with pytest.raises(DiffusionError):
            TopicDistribution([float("nan"), 1.0])

    def test_sample_respects_support(self):
        dist = TopicDistribution([0, 1, 0])
        samples = {dist.sample(np.random.default_rng(i)) for i in range(10)}
        assert samples == {1}

    def test_entropy_uniform_is_log_l(self):
        dist = uniform_topics(4)
        assert dist.entropy() == pytest.approx(np.log(4))

    def test_entropy_point_mass_is_zero(self):
        dist = TopicDistribution([1, 0, 0])
        assert dist.entropy() == pytest.approx(0.0)

    def test_equality(self):
        assert TopicDistribution([1, 1]) == TopicDistribution([5, 5])

    def test_weights_are_read_only(self):
        dist = TopicDistribution([1, 2])
        with pytest.raises(ValueError):
            dist.weights[0] = 0.9


class TestConstructors:
    def test_uniform(self):
        assert np.allclose(uniform_topics(5).weights, 0.2)

    def test_uniform_rejects_zero_topics(self):
        with pytest.raises(DiffusionError):
            uniform_topics(0)

    def test_random_is_valid_distribution(self):
        dist = random_topics(6, concentration=0.5, seed=1)
        assert dist.num_topics == 6
        assert dist.weights.sum() == pytest.approx(1.0)

    def test_random_reproducible(self):
        assert random_topics(4, seed=3) == random_topics(4, seed=3)

    def test_skewed_places_dominance(self):
        dist = skewed_topics(5, dominant_topic=2, dominance=0.8)
        assert dist.probability(2) == pytest.approx(0.8)

    def test_skewed_single_topic(self):
        dist = skewed_topics(1, dominant_topic=0)
        assert dist.probability(0) == pytest.approx(1.0)

    def test_skewed_invalid_dominant(self):
        with pytest.raises(DiffusionError):
            skewed_topics(3, dominant_topic=5)
