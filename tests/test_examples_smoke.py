"""Smoke tests: every script in ``examples/`` must run end to end.

Each example is executed as a subprocess exactly the way the README tells
users to run it (``PYTHONPATH=src python examples/<name>.py``); a test fails
if the script crashes or stops printing the section its docstring promises.
The two flag-demonstration examples additionally pin that the opt-in fast
engines stay wired (``use_subsim`` / ``use_batched_greedy`` /
``use_batched_mc``).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

#: script name -> substring its stdout must contain
EXPECTED_OUTPUT = {
    "quickstart.py": "Monte-Carlo estimate",
    "compare_algorithms.py": "Best revenue",
    "incentive_models.py": "",
    "scalability_study.py": "",
    "topic_aware_campaign.py": "",
}


def _run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=600,
    )


def test_every_example_is_covered():
    """A new example script must be added to the smoke list."""
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_example_runs(name):
    result = _run_example(name)
    assert result.returncode == 0, (
        f"{name} failed (rc={result.returncode}):\n{result.stderr[-2000:]}"
    )
    assert EXPECTED_OUTPUT[name] in result.stdout


def test_quickstart_demonstrates_all_three_fast_engines():
    source = (EXAMPLES_DIR / "quickstart.py").read_text()
    assert 'rr_engine="subsim"' in source
    assert 'greedy_engine="batched"' in source
    assert 'mc_engine="batched"' in source
    assert "ExecutionPolicy.fast" in source
    assert "Runtime(" in source


def test_compare_algorithms_demonstrates_fast_engines():
    source = (EXAMPLES_DIR / "compare_algorithms.py").read_text()
    assert 'rr_engine="subsim"' in source
    assert 'greedy_engine="batched"' in source
