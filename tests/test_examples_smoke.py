"""Smoke tests: every script in ``examples/`` must run end to end.

Each example is executed as a subprocess exactly the way the README tells
users to run it (``PYTHONPATH=src python examples/<name>.py``); a test fails
if the script crashes or stops printing the section its docstring promises.
The quickstart additionally pins that it demonstrates the two remaining
execution knobs: the ``ExecutionPolicy.seed()`` escape hatch and the
``Runtime`` pool-reuse context (the fast engines are the default and need
no flags).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

#: script name -> substring its stdout must contain
EXPECTED_OUTPUT = {
    "quickstart.py": "Monte-Carlo estimate",
    "compare_algorithms.py": "Best revenue",
    "incentive_models.py": "",
    "scalability_study.py": "",
    "topic_aware_campaign.py": "",
}


def _run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=600,
    )


def test_every_example_is_covered():
    """A new example script must be added to the smoke list."""
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_example_runs(name):
    result = _run_example(name)
    assert result.returncode == 0, (
        f"{name} failed (rc={result.returncode}):\n{result.stderr[-2000:]}"
    )
    assert EXPECTED_OUTPUT[name] in result.stdout


def test_quickstart_demonstrates_the_remaining_knobs():
    source = (EXAMPLES_DIR / "quickstart.py").read_text()
    assert "ExecutionPolicy.seed()" in source  # the escape hatch
    assert "ExecutionPolicy.fast" in source
    assert "Runtime(" in source
    # the retired per-flag API must not resurface in the examples
    for flag in ("use_subsim", "use_batched_mc", "use_batched_greedy"):
        assert flag not in source


def test_compare_algorithms_runs_on_the_default_policy():
    source = (EXAMPLES_DIR / "compare_algorithms.py").read_text()
    assert "ExecutionPolicy(" not in source  # no knobs needed: fast is the default
    assert "ExecutionPolicy.seed()" in source  # the escape hatch is documented
