"""Tests for the experiment harness: metrics, runner, report and figure sweeps."""

import numpy as np
import pytest

from repro.advertising.allocation import Allocation
from repro.advertising.oracle import ExactOracle
from repro.core.sampling_solver import SamplingParameters
from repro.baselines.ti_common import TIParameters
from repro.exceptions import ExperimentError
from repro.experiments import figures
from repro.experiments.metrics import (
    budget_usage,
    evaluate_allocation,
    independent_evaluator,
    rate_of_return,
)
from repro.experiments.report import format_series, format_table, rows_to_csv, summarise_comparison
from repro.experiments.runner import compare_algorithms, run_algorithm


class TestMetrics:
    def test_independent_evaluator_agrees_with_exact(self, probabilistic_instance):
        evaluator = independent_evaluator(probabilistic_instance, num_rr_sets=20000, seed=1)
        exact = ExactOracle(probabilistic_instance)
        allocation = Allocation.from_dict(2, {0: [0], 1: [3]})
        estimated = evaluator.total_revenue(allocation)
        assert estimated == pytest.approx(exact.total_revenue(allocation), rel=0.1)

    def test_evaluate_allocation_fields(self, probabilistic_instance):
        allocation = Allocation.from_dict(2, {0: [0], 1: [3]})
        result = evaluate_allocation(probabilistic_instance, allocation, num_rr_sets=2000, seed=1)
        assert result.total_seeds == 2
        expected_cost = probabilistic_instance.cost(0, 0) + probabilistic_instance.cost(1, 3)
        assert result.seeding_cost == pytest.approx(expected_cost)
        assert 0.0 <= result.rate_of_return <= 1.0
        assert result.budget_usage > 0.0
        assert set(result.as_row()) >= {"revenue", "seeding_cost", "budget_usage"}

    def test_budget_usage_formula(self, probabilistic_instance):
        value = budget_usage(probabilistic_instance, revenue=5.0, seeding_cost=3.0)
        assert value == pytest.approx(8.0 / probabilistic_instance.budgets().sum())

    def test_rate_of_return_formula(self):
        assert rate_of_return(8.0, 2.0) == pytest.approx(0.8)
        assert rate_of_return(0.0, 0.0) == 0.0

    def test_invalid_rr_sets(self, probabilistic_instance):
        with pytest.raises(ExperimentError):
            independent_evaluator(probabilistic_instance, num_rr_sets=0)


class TestRunner:
    @pytest.fixture
    def evaluator(self, probabilistic_instance):
        return independent_evaluator(probabilistic_instance, num_rr_sets=3000, seed=1)

    def test_run_rma(self, probabilistic_instance, evaluator):
        run = run_algorithm(
            "RMA",
            probabilistic_instance,
            evaluator=evaluator,
            sampling_params=SamplingParameters(initial_rr_sets=128, max_rr_sets=512, seed=1),
        )
        assert run.algorithm == "RMA"
        assert run.running_time_seconds > 0
        assert "revenue" in run.as_row()

    def test_run_ti_baselines(self, probabilistic_instance, evaluator):
        ti_params = TIParameters(epsilon=0.3, pilot_size=32, max_rr_sets_per_advertiser=128, seed=1)
        for name in ("TI-CARM", "TI-CSRM"):
            run = run_algorithm(name, probabilistic_instance, evaluator=evaluator, ti_params=ti_params)
            assert run.algorithm == name

    def test_run_oracle_algorithms(self, probabilistic_instance, evaluator):
        oracle = ExactOracle(probabilistic_instance)
        for name in ("RM_with_Oracle", "CA-Greedy", "CS-Greedy"):
            run = run_algorithm(name, probabilistic_instance, evaluator=evaluator, oracle=oracle)
            assert run.evaluation.revenue >= 0.0

    def test_oracle_algorithm_requires_oracle(self, probabilistic_instance, evaluator):
        with pytest.raises(ExperimentError):
            run_algorithm("CA-Greedy", probabilistic_instance, evaluator=evaluator)

    def test_unknown_algorithm(self, probabilistic_instance, evaluator):
        with pytest.raises(ExperimentError):
            run_algorithm("Mystery", probabilistic_instance, evaluator=evaluator)

    def test_compare_algorithms(self, probabilistic_instance, evaluator):
        runs = compare_algorithms(
            ["OneBatchRM", "TI-CSRM"],
            probabilistic_instance,
            evaluator=evaluator,
            sampling_params=SamplingParameters(initial_rr_sets=128, max_rr_sets=256, seed=1),
            ti_params=TIParameters(epsilon=0.3, pilot_size=32, max_rr_sets_per_advertiser=128, seed=1),
            one_batch_rr_sets=256,
        )
        assert [run.algorithm for run in runs] == ["OneBatchRM", "TI-CSRM"]


class TestReport:
    def test_format_table_alignment_and_content(self):
        rows = [{"alg": "RMA", "revenue": 1234.5}, {"alg": "TI-CSRM", "revenue": 98.7}]
        text = format_table(rows, title="Figure 1")
        assert "Figure 1" in text
        assert "RMA" in text and "TI-CSRM" in text
        assert "1,234" in text or "1234" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_series(self):
        text = format_series("alpha", [0.1, 0.2], {"RMA": [10.0, 9.0], "TI": [8.0, 7.0]})
        assert "alpha" in text and "RMA" in text

    def test_rows_to_csv(self):
        csv_text = rows_to_csv([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert csv_text.splitlines()[0] == "a,b"
        assert "3,4" in csv_text

    def test_summarise_comparison(self):
        rows = [
            {"algorithm": "RMA", "revenue": 10.0},
            {"algorithm": "RMA", "revenue": 20.0},
            {"algorithm": "TI", "revenue": 5.0},
        ]
        summary = summarise_comparison(rows, "revenue")
        assert summary["RMA"] == pytest.approx(15.0)
        assert summary["TI"] == pytest.approx(5.0)


class TestFigureSweeps:
    """Smoke tests for the figure definitions at very small scale."""

    def test_table1_rows(self):
        rows = figures.table1_datasets(scale=0.05, seed=1, datasets=["lastfm_like"])
        assert rows[0]["dataset"] == "lastfm_like"
        assert rows[0]["nodes"] > 0

    def test_table2_rows(self):
        rows = figures.table2_budgets(datasets=("lastfm_like",), num_advertisers=3, scale=0.05)
        assert rows[0]["budget_min"] <= rows[0]["budget_mean"] <= rows[0]["budget_max"]

    def test_alpha_sweep_shape(self):
        rows = figures.alpha_sweep(
            "lastfm_like",
            alphas=(0.1,),
            incentives=("linear",),
            algorithms=("OneBatchRM", "TI-CSRM"),
            num_advertisers=2,
            scale=0.1,
            evaluation_rr_sets=800,
            seed=1,
            sampling_overrides={"initial_rr_sets": 128, "max_rr_sets": 256},
            ti_overrides={"pilot_size": 32, "max_rr_sets_per_advertiser": 128, "epsilon": 0.3},
        )
        assert len(rows) == 2
        assert {row["algorithm"] for row in rows} == {"OneBatchRM", "TI-CSRM"}
        for row in rows:
            assert row["revenue"] >= 0.0
            assert row["running_time_seconds"] > 0.0

    def test_tau_sweep_rows(self):
        rows = figures.tau_sweep(
            "lastfm_like",
            taus=(0.1, 0.4),
            num_advertisers=2,
            scale=0.1,
            evaluation_rr_sets=600,
            seed=1,
        )
        assert [row["tau"] for row in rows] == [0.1, 0.4]

    def test_prepare_base_reuse(self):
        base = figures.prepare_base("lastfm_like", num_advertisers=2, scale=0.1, seed=1,
                                    singleton_rr_sets=100)
        instance_a = base.instance_for("linear", 0.1)
        instance_b = base.instance_for("linear", 0.5)
        assert (instance_b.cost_matrix() >= instance_a.cost_matrix() - 1e-12).all()
