"""Fault-tolerance suite for the supervised sharded execution layer.

Every test stages a real worker failure through the deterministic
fault-injection harness (:mod:`repro.parallel.faults`) — ``os._exit`` mid
shard, a sleep past the shard timeout, a death inside the payload-broadcast
barrier — and asserts the recovery contract:

* under ``on_pool_failure="degrade"`` the run completes and its results are
  **bit-identical** to a failure-free run (shard layout and RNG substreams
  are pure functions of ``(seed, n_jobs)``, so re-executing a lost shard —
  on a respawned pool or in-process — reproduces it exactly);
* under ``on_pool_failure="raise"`` the failure surfaces promptly as
  :class:`~repro.exceptions.WorkerCrashError` /
  :class:`~repro.exceptions.ShardTimeoutError`;
* recovery telemetry (:class:`~repro.parallel.failure.RecoveryStats`,
  ``PersistentPool.spawn_count``) counts what actually happened, and clean
  runs stay at zero.

Both pool flavours are covered: ephemeral (per-call pool) and persistent
(the :class:`~repro.runtime.Runtime` pool), over the real sharded stages —
RR-set generation and Monte-Carlo spread estimation — plus a tiny echo task
for the mechanics-only cases.  All faults fire on fixed shards with one-shot
cross-process latches, so the suite is deterministic.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import pytest

from repro.diffusion.models import WeightedCascadeModel
from repro.exceptions import (
    ExecutionError,
    PolicyError,
    ReproError,
    ShardTimeoutError,
    WorkerCrashError,
)
from repro.graph.generators import preferential_attachment_digraph
from repro.parallel import (
    DEFAULT_FAILURE_POLICY,
    FailurePolicy,
    FaultInjector,
    PersistentPool,
    RecoveryStats,
    ShardedExecutor,
)
from repro.parallel.faults import FAULT_EXIT_CODE
from repro.parallel.mc import sharded_spread
from repro.parallel.rr import run_generation_shards
from repro.rrsets.generator import RRSetGenerator

#: Degrade fast in tests: short backoff, default retry budget.
DEGRADE = FailurePolicy(retry_backoff_s=0.01)

#: Raise mode with a short timeout for the timeout-surfacing tests.
RAISE_FAST = FailurePolicy.fail_fast(shard_timeout_s=1.0)


@pytest.fixture(scope="module")
def micro_graph():
    return preferential_attachment_digraph(60, out_degree=3, seed=2)


@pytest.fixture(scope="module")
def wc_probabilities(micro_graph):
    return np.asarray(
        WeightedCascadeModel(micro_graph).edge_probabilities(), dtype=np.float64
    )


def _echo_task(payload, shard):
    return payload + shard


def _slow_echo_task(payload, shard):
    time.sleep(0.05)
    return payload + shard


def _rr_signature(shards):
    """Hashable bit-level signature of a list of GenerationShards."""
    return tuple(
        (tuple(shard.members.tolist()), tuple(shard.sizes.tolist()))
        for shard in shards
    )


def _recovered(executor, **kwargs):
    """Run ``executor.run`` swallowing only the recovery RuntimeWarnings."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return executor.run(**kwargs)


# --------------------------------------------------------------------------- #
# FailurePolicy algebra
# --------------------------------------------------------------------------- #
class TestFailurePolicy:
    def test_defaults(self):
        policy = FailurePolicy()
        assert policy.shard_timeout_s is None
        assert policy.max_retries == 2
        assert policy.on_pool_failure == "degrade"
        assert policy == DEFAULT_FAILURE_POLICY

    def test_fail_fast_preset(self):
        policy = FailurePolicy.fail_fast(shard_timeout_s=3.0)
        assert policy.on_pool_failure == "raise"
        assert policy.max_retries == 0
        assert policy.shard_timeout_s == 3.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shard_timeout_s": 0.0},
            {"shard_timeout_s": -1.0},
            {"max_retries": -1},
            {"retry_backoff_s": -0.1},
            {"on_pool_failure": "explode"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(PolicyError):
            FailurePolicy(**kwargs)

    def test_describe(self):
        assert FailurePolicy().describe() == (
            "degrade(timeout=none, retries=2, backoff=0.1s)"
        )
        assert "raise(timeout=2s" in FailurePolicy.fail_fast(2.0).describe()

    def test_exception_family(self):
        assert issubclass(WorkerCrashError, ExecutionError)
        assert issubclass(ShardTimeoutError, ExecutionError)
        assert issubclass(ExecutionError, ReproError)

    def test_recovery_stats_events(self):
        stats = RecoveryStats()
        assert stats.events == 0
        stats.worker_crashes += 1
        stats.shards_rerun += 2
        assert stats.events == 3
        assert "crashes=1" in stats.describe()


# --------------------------------------------------------------------------- #
# Ephemeral pool: crash / timeout / degradation mechanics
# --------------------------------------------------------------------------- #
class TestEphemeralRecovery:
    def test_clean_run_zero_recovery(self):
        executor = ShardedExecutor(2, failure=DEGRADE)
        assert executor.run(_echo_task, 100, list(range(6))) == [
            100 + shard for shard in range(6)
        ]
        assert executor.recovery_stats.events == 0

    @pytest.mark.parametrize("when", ["before", "after"])
    def test_worker_kill_recovers_bit_identical(self, when):
        expected = ShardedExecutor(2, failure=DEGRADE).run(
            _echo_task, 100, list(range(6))
        )
        executor = ShardedExecutor(2, failure=DEGRADE)
        injector = FaultInjector()
        spec = injector.kill_worker(shard=1, when=when)
        with injector:
            with pytest.warns(RuntimeWarning):
                results = executor.run(_echo_task, 100, list(range(6)))
        assert results == expected
        assert spec.fire_count == 1
        stats = executor.recovery_stats
        assert stats.worker_crashes >= 1
        assert stats.pool_respawns >= 1
        assert stats.shards_rerun >= 1
        assert stats.serial_fallbacks == 0

    def test_worker_kill_raise_mode(self):
        executor = ShardedExecutor(2, failure=FailurePolicy.fail_fast())
        injector = FaultInjector()
        injector.kill_worker(shard=0, when="before")
        with injector:
            with pytest.raises(WorkerCrashError, match="died"):
                executor.run(_echo_task, 0, list(range(4)))
        # The injected exit code is named in the error path's telemetry.
        assert executor.recovery_stats.worker_crashes == 1

    def test_fault_exit_code_reported(self):
        executor = ShardedExecutor(2, failure=FailurePolicy.fail_fast())
        injector = FaultInjector()
        injector.kill_worker(shard=0, when="before")
        with injector:
            with pytest.raises(WorkerCrashError, match=str(FAULT_EXIT_CODE)):
                executor.run(_echo_task, 0, list(range(4)))

    def test_shard_timeout_degrades_bit_identical(self):
        policy = FailurePolicy(shard_timeout_s=0.4, retry_backoff_s=0.01)
        expected = ShardedExecutor(2).run(_echo_task, 7, list(range(4)))
        executor = ShardedExecutor(2, failure=policy)
        injector = FaultInjector()
        injector.delay_shard(shard=2, seconds=30.0)
        with injector:
            with pytest.warns(RuntimeWarning):
                results = executor.run(_echo_task, 7, list(range(4)))
        assert results == expected
        assert executor.recovery_stats.shard_timeouts >= 1

    def test_shard_timeout_raise_mode_is_prompt(self):
        executor = ShardedExecutor(2, failure=RAISE_FAST)
        injector = FaultInjector()
        injector.delay_shard(shard=0, seconds=30.0)
        start = time.monotonic()
        with injector:
            with pytest.raises(ShardTimeoutError, match="exceeded"):
                executor.run(_slow_echo_task, 0, list(range(4)))
        elapsed = time.monotonic() - start
        # Must surface within the configured timeout plus supervision slack,
        # never wait out the 30 s injected delay.
        assert elapsed < RAISE_FAST.shard_timeout_s + 5.0

    def test_permanent_fault_degrades_to_serial(self):
        # times=-1 → the shard dies on *every* pool, forcing the last rung.
        expected = ShardedExecutor(2).run(_echo_task, 50, list(range(4)))
        executor = ShardedExecutor(2, failure=DEGRADE)
        injector = FaultInjector()
        injector.kill_worker(shard=1, when="before", times=-1)
        with injector:
            with pytest.warns(RuntimeWarning):
                results = executor.run(_echo_task, 50, list(range(4)))
        assert results == expected
        stats = executor.recovery_stats
        assert stats.serial_fallbacks >= 1
        assert stats.worker_crashes > DEGRADE.max_retries

    def test_task_errors_propagate_not_retried(self):
        executor = ShardedExecutor(2, failure=DEGRADE)
        with pytest.raises(ZeroDivisionError):
            executor.run(_divide_task, 1, [1, 0, 2, 4])
        # A deterministic task error is not a pool failure: no recovery.
        assert executor.recovery_stats.events == 0


def _divide_task(payload, shard):
    return payload / shard


# --------------------------------------------------------------------------- #
# Persistent pool: crash recovery, broadcast poisoning, reuse after recovery
# --------------------------------------------------------------------------- #
class TestPersistentRecovery:
    def test_crash_recovery_bit_identical_and_pool_reusable(self):
        expected = ShardedExecutor(2).run(_echo_task, 9, list(range(6)))
        pool = PersistentPool()
        try:
            executor = ShardedExecutor(2, pool=pool, failure=DEGRADE)
            injector = FaultInjector()
            injector.kill_worker(shard=1, when="before")
            with injector:
                with pytest.warns(RuntimeWarning):
                    results = executor.run(_echo_task, 9, list(range(6)))
            assert results == expected
            assert pool.spawn_count == 2  # initial spawn + recovery respawn
            assert pool.recovery_stats.pool_respawns >= 1
            # The recovered pool keeps serving cleanly.
            before = pool.recovery_stats.events
            assert executor.run(_echo_task, 9, list(range(6))) == expected
            assert pool.spawn_count == 2
            assert pool.recovery_stats.events == before
        finally:
            pool.close()

    def test_crash_raise_mode(self):
        pool = PersistentPool()
        try:
            executor = ShardedExecutor(
                2, pool=pool, failure=FailurePolicy.fail_fast()
            )
            injector = FaultInjector()
            injector.kill_worker(shard=0, when="after")
            with injector:
                with pytest.raises(WorkerCrashError):
                    executor.run(_echo_task, 3, list(range(4)))
        finally:
            pool.close()

    def test_poisoned_broadcast_recovers(self):
        expected = ShardedExecutor(2).run(_echo_task, 11, list(range(4)))
        pool = PersistentPool()
        try:
            executor = ShardedExecutor(2, pool=pool, failure=DEGRADE)
            injector = FaultInjector()
            injector.poison_broadcast()
            with injector:
                with pytest.warns(RuntimeWarning):
                    results = executor.run(_echo_task, 11, list(range(4)))
            assert results == expected
            assert pool.spawn_count == 2
            assert pool.recovery_stats.worker_crashes >= 1
        finally:
            pool.close()

    def test_poisoned_broadcast_raise_mode(self):
        pool = PersistentPool()
        try:
            executor = ShardedExecutor(
                2, pool=pool, failure=FailurePolicy.fail_fast()
            )
            injector = FaultInjector()
            injector.poison_broadcast()
            with injector:
                with pytest.raises(WorkerCrashError, match="broadcast|barrier"):
                    executor.run(_echo_task, 1, list(range(4)))
        finally:
            pool.close()

    def test_permanently_poisoned_broadcast_degrades_serially(self):
        expected = ShardedExecutor(2).run(_echo_task, 21, list(range(4)))
        pool = PersistentPool()
        try:
            executor = ShardedExecutor(2, pool=pool, failure=DEGRADE)
            injector = FaultInjector()
            injector.poison_broadcast(times=-1)
            with injector:
                with pytest.warns(RuntimeWarning):
                    results = executor.run(_echo_task, 21, list(range(4)))
            assert results == expected
            assert pool.recovery_stats.serial_fallbacks == 4
        finally:
            pool.close()


# --------------------------------------------------------------------------- #
# Bit-identity on the real sharded stages: RR generation and sharded MC
# --------------------------------------------------------------------------- #
class TestStageBitIdentity:
    N_JOBS = 2
    RR_COUNT = 48
    MC_SIMS = 200

    def _rr(self, micro_graph, wc_probabilities, executor):
        return run_generation_shards(
            RRSetGenerator, micro_graph, wc_probabilities, self.RR_COUNT, 11, executor
        )

    def _mc(self, micro_graph, wc_probabilities, executor):
        seeds = np.array([0, 3, 5], dtype=np.int64)
        return sharded_spread(
            micro_graph, wc_probabilities, seeds, self.MC_SIMS, 13, executor
        )

    @pytest.fixture(scope="class")
    def rr_expected(self, micro_graph, wc_probabilities):
        return _rr_signature(
            self._rr(micro_graph, wc_probabilities, ShardedExecutor(self.N_JOBS))
        )

    @pytest.fixture(scope="class")
    def mc_expected(self, micro_graph, wc_probabilities):
        return self._mc(micro_graph, wc_probabilities, ShardedExecutor(self.N_JOBS))

    @pytest.mark.parametrize("shard", [0, 1])
    def test_rr_generation_survives_kill_ephemeral(
        self, micro_graph, wc_probabilities, rr_expected, shard
    ):
        executor = ShardedExecutor(self.N_JOBS, failure=DEGRADE)
        injector = FaultInjector()
        injector.kill_worker(shard=shard, when="before")
        with injector, warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            shards = self._rr(micro_graph, wc_probabilities, executor)
        assert _rr_signature(shards) == rr_expected
        assert executor.recovery_stats.worker_crashes >= 1

    def test_rr_generation_survives_kill_persistent(
        self, micro_graph, wc_probabilities, rr_expected
    ):
        pool = PersistentPool()
        try:
            executor = ShardedExecutor(self.N_JOBS, pool=pool, failure=DEGRADE)
            injector = FaultInjector()
            injector.kill_worker(shard=1, when="after")
            with injector, warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                shards = self._rr(micro_graph, wc_probabilities, executor)
            assert _rr_signature(shards) == rr_expected
            assert pool.recovery_stats.worker_crashes >= 1
        finally:
            pool.close()

    def test_mc_spread_survives_kill_ephemeral(
        self, micro_graph, wc_probabilities, mc_expected
    ):
        executor = ShardedExecutor(self.N_JOBS, failure=DEGRADE)
        injector = FaultInjector()
        injector.kill_worker(shard=0, when="before")
        with injector, warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            spread = self._mc(micro_graph, wc_probabilities, executor)
        assert spread == mc_expected

    def test_mc_spread_survives_kill_persistent(
        self, micro_graph, wc_probabilities, mc_expected
    ):
        pool = PersistentPool()
        try:
            executor = ShardedExecutor(self.N_JOBS, pool=pool, failure=DEGRADE)
            injector = FaultInjector()
            injector.kill_worker(shard=0, when="before")
            with injector, warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                spread = self._mc(micro_graph, wc_probabilities, executor)
            assert spread == mc_expected
        finally:
            pool.close()

    def test_mc_spread_survives_serial_degradation(
        self, micro_graph, wc_probabilities, mc_expected
    ):
        executor = ShardedExecutor(self.N_JOBS, failure=DEGRADE)
        injector = FaultInjector()
        injector.kill_worker(shard=1, when="before", times=-1)
        with injector, warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            spread = self._mc(micro_graph, wc_probabilities, executor)
        assert spread == mc_expected
        assert executor.recovery_stats.serial_fallbacks >= 1


# --------------------------------------------------------------------------- #
# Policy threading: ExecutionPolicy / Runtime / CLI
# --------------------------------------------------------------------------- #
class TestPolicyThreading:
    def test_execution_policy_carries_failure(self):
        from repro.runtime import ExecutionPolicy

        policy = ExecutionPolicy.seed(n_jobs=2, failure=RAISE_FAST)
        assert policy.failure is RAISE_FAST
        assert "failure=raise" in policy.describe()
        assert ExecutionPolicy.fast(failure=DEGRADE).failure is DEGRADE
        default = ExecutionPolicy.seed()
        assert default.failure == DEFAULT_FAILURE_POLICY
        assert "failure=" not in default.describe()

    def test_execution_policy_rejects_bad_failure(self):
        from repro.runtime import ExecutionPolicy

        with pytest.raises(PolicyError):
            ExecutionPolicy.seed(failure="degrade")

    def test_runtime_executor_inherits_failure_policy(self):
        from repro.runtime import ExecutionPolicy, Runtime

        with Runtime(ExecutionPolicy.seed(n_jobs=2, failure=RAISE_FAST)) as rt:
            executor = rt.sharded_executor(2)
            assert executor.failure is RAISE_FAST
            assert rt.recovery_stats.events == 0

    def test_cli_flags_build_failure_policy(self):
        from repro.cli import _resolve_policy, build_parser

        parser = build_parser()
        args = parser.parse_args(
            [
                "solve",
                "--algorithm",
                "RMA",
                "--shard-timeout",
                "30",
                "--on-pool-failure",
                "raise",
            ]
        )
        policy = _resolve_policy(args)
        assert policy.failure.shard_timeout_s == 30.0
        assert policy.failure.on_pool_failure == "raise"

    def test_runtime_run_with_injected_crash_bit_identical(
        self, micro_graph, wc_probabilities
    ):
        from repro.runtime import ExecutionPolicy, Runtime

        def generate(runtime):
            return _rr_signature(
                run_generation_shards(
                    RRSetGenerator,
                    micro_graph,
                    wc_probabilities,
                    32,
                    5,
                    runtime.sharded_executor(2),
                )
            )

        policy = ExecutionPolicy.seed(n_jobs=2, failure=DEGRADE)
        with Runtime(policy) as rt:
            expected = generate(rt)
        injector = FaultInjector()
        injector.kill_worker(shard=0, when="before")
        with Runtime(policy) as rt:
            with injector, warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                recovered = generate(rt)
            assert rt.recovery_stats.worker_crashes >= 1
            assert rt.pool_spawn_count == 2
        assert recovered == expected


# --------------------------------------------------------------------------- #
# exception diagnostics: every raise carries the recovery ledger
# --------------------------------------------------------------------------- #
class TestExceptionDiagnostics:
    """Operators triage from the exception text alone — it must name the
    outstanding shards and embed the full ``RecoveryStats.describe()``."""

    def test_worker_crash_message_embeds_recovery_stats(self):
        executor = ShardedExecutor(2, failure=FailurePolicy.fail_fast())
        injector = FaultInjector()
        injector.kill_worker(shard=0, when="before")
        with injector:
            with pytest.raises(WorkerCrashError) as excinfo:
                executor.run(_echo_task, 0, list(range(4)))
        message = str(excinfo.value)
        assert "[recovery: " in message
        assert executor.recovery_stats.describe() in message
        assert "crashes=1" in message
        # The outstanding shard list is named so the blast radius is visible.
        assert "shard(s) [" in message

    def test_shard_timeout_message_embeds_recovery_stats(self):
        executor = ShardedExecutor(2, failure=RAISE_FAST)
        injector = FaultInjector()
        injector.delay_shard(shard=0, seconds=30.0)
        with injector:
            with pytest.raises(ShardTimeoutError) as excinfo:
                executor.run(_slow_echo_task, 0, list(range(4)))
        message = str(excinfo.value)
        assert "[recovery: " in message
        assert executor.recovery_stats.describe() in message
        assert "timeouts=" in message
        assert f"shard_timeout_s={RAISE_FAST.shard_timeout_s:g}" in message
        assert "shard(s) [" in message  # which shards blew the deadline

    def test_crash_message_stats_include_prior_recoveries(self):
        """The embedded ledger is cumulative: a degrade-mode recovery
        earlier in the runtime's life shows up in a later raise — the
        server's deadline path relies on this for triage context."""
        from repro.runtime import ExecutionPolicy, Runtime

        with Runtime(ExecutionPolicy(n_jobs=2, failure=DEGRADE)) as runtime:
            injector = FaultInjector()
            injector.kill_worker(shard=0, when="before", times=1)
            with injector:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    runtime.sharded_executor(2).run(_echo_task, 0, list(range(4)))
            assert runtime.recovery_stats.worker_crashes == 1
            runtime.close()  # faults arm at pool spawn
            injector2 = FaultInjector()
            injector2.kill_worker(shard=1, when="before")
            with injector2:
                with runtime.overriding_failure(FailurePolicy.fail_fast()):
                    with pytest.raises(WorkerCrashError) as excinfo:
                        runtime.sharded_executor(2).run(
                            _echo_task, 0, list(range(4))
                        )
            assert "crashes=2" in str(excinfo.value)


# --------------------------------------------------------------------------- #
# runtime recovery accumulation + re-entrancy
# --------------------------------------------------------------------------- #
class TestRuntimeRecoveryAccumulation:
    def test_stats_accumulate_across_sequential_executors(self):
        """One runtime, several executors: the runtime-level ledger is the
        union of everything its pool survived."""
        from repro.runtime import ExecutionPolicy, Runtime

        with Runtime(ExecutionPolicy(n_jobs=2, failure=DEGRADE)) as runtime:
            for round_index in range(2):
                runtime.close()  # faults arm at pool spawn
                injector = FaultInjector()
                injector.kill_worker(shard=0, when="before", times=1)
                with injector:
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore", RuntimeWarning)
                        results = runtime.sharded_executor(2).run(
                            _echo_task, round_index, list(range(4))
                        )
                assert results == [round_index + s for s in range(4)]
                assert runtime.recovery_stats.worker_crashes == round_index + 1
            stats = runtime.recovery_stats
            assert stats.worker_crashes == 2
            assert stats.pool_respawns >= 2
            assert stats.shards_rerun >= 2
            assert stats.as_dict()["worker_crashes"] == 2

    def test_acquire_executor_prefers_ambient_runtime(self):
        from repro.runtime import ExecutionPolicy, Runtime, acquire_executor

        with Runtime(ExecutionPolicy(n_jobs=2)) as runtime:
            executor = acquire_executor(2)
            # Bound to the runtime's pool: they share one recovery ledger.
            assert executor.recovery_stats is runtime.recovery_stats
            # n_jobs always comes from the caller, never the runtime.
            serial = acquire_executor(None)
            assert serial.n_jobs == 1

    def test_acquire_executor_reentrant_under_override(self):
        """acquire_executor during an overriding_failure window hands out
        executors carrying the override; after the window, the policy's own
        failure policy is restored."""
        from repro.runtime import ExecutionPolicy, Runtime, acquire_executor

        policy = ExecutionPolicy(n_jobs=2, failure=DEGRADE)
        deadline = FailurePolicy.fail_fast(shard_timeout_s=0.5)
        with Runtime(policy) as runtime:
            with runtime.overriding_failure(deadline):
                inner = acquire_executor(2)
                assert inner.failure is deadline
                # Nested override wins, then unwinds to the outer one.
                tighter = FailurePolicy.fail_fast(shard_timeout_s=0.1)
                with runtime.overriding_failure(tighter):
                    assert acquire_executor(2).failure is tighter
                assert acquire_executor(2).failure is deadline
                # An explicit failure= still beats the ambient override.
                explicit = runtime.sharded_executor(2, failure=DEGRADE)
                assert explicit.failure is DEGRADE
            assert acquire_executor(2).failure is policy.failure

    def test_override_restored_after_exception(self):
        from repro.runtime import ExecutionPolicy, Runtime

        policy = ExecutionPolicy(n_jobs=2, failure=DEGRADE)
        deadline = FailurePolicy.fail_fast(shard_timeout_s=0.5)
        with Runtime(policy) as runtime:
            with pytest.raises(RuntimeError, match="boom"):
                with runtime.overriding_failure(deadline):
                    raise RuntimeError("boom")
            assert runtime.sharded_executor(2).failure is policy.failure

    def test_close_during_drain_is_reentrant(self):
        """close() is idempotent and the runtime stays usable after it —
        the server's drain path closes the pool while later requests may
        still acquire executors."""
        from repro.runtime import ExecutionPolicy, Runtime

        with Runtime(ExecutionPolicy(n_jobs=2)) as runtime:
            first = runtime.sharded_executor(2).run(_echo_task, 1, [0, 1])
            runtime.close()
            runtime.close()  # double close is fine
            again = runtime.sharded_executor(2).run(_echo_task, 1, [0, 1])
            assert again == first
            assert runtime.pool_spawn_count >= 2
