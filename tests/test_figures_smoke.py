"""Tiny-scale smoke tests for the remaining figure sweep functions.

The benchmark suite exercises these sweeps at their full (quick) size; the
tests here run them at the smallest possible size so a broken sweep is
caught by ``pytest tests/`` without waiting for the benchmarks.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures


@pytest.fixture(scope="module")
def tiny_base():
    return figures.prepare_base(
        "lastfm_like", num_advertisers=2, scale=0.1, seed=3, singleton_rr_sets=100
    )


TINY_SAMPLING = {"initial_rr_sets": 64, "max_rr_sets": 128}
TINY_TI = {"pilot_size": 32, "max_rr_sets_per_advertiser": 64, "epsilon": 0.3}


def test_epsilon_sweep_smoke(tiny_base):
    rows = figures.epsilon_sweep(
        "lastfm_like",
        epsilons=(0.1, 0.3),
        algorithms=("OneBatchRM", "TI-CSRM"),
        num_advertisers=2,
        evaluation_rr_sets=500,
        seed=3,
        base=tiny_base,
    )
    assert len(rows) == 4
    assert all("memory_proxy_bytes" in row for row in rows)


def test_budget_sweep_smoke():
    rows = figures.budget_sweep(
        "dblp_like",
        budget_fractions=(0.1, 0.2),
        algorithms=("OneBatchRM",),
        num_advertisers=2,
        scale=0.05,
        evaluation_rr_sets=400,
        seed=3,
    )
    assert [row["budget_fraction"] for row in rows] == [0.1, 0.2]
    assert all(row["revenue"] >= 0 for row in rows)


def test_advertiser_count_sweep_smoke():
    rows = figures.advertiser_count_sweep(
        "dblp_like",
        advertiser_counts=(1, 2),
        algorithms=("OneBatchRM",),
        scale=0.05,
        evaluation_rr_sets=400,
        seed=3,
    )
    assert [row["num_advertisers"] for row in rows] == [1, 2]


def test_holistic_demand_sweep_smoke():
    rows = figures.holistic_demand_sweep(
        "lastfm_like",
        total_demands=(1.0, 1.5),
        algorithms=("OneBatchRM",),
        num_advertisers=2,
        scale=0.1,
        evaluation_rr_sets=400,
        seed=3,
    )
    assert len(rows) == 2
    # Every advertiser in the holistic scenario has cpe = 1, so the revenue
    # can never exceed the number of nodes times h.
    assert all(row["revenue"] >= 0 for row in rows)


def test_rho_sweep_smoke(tiny_base):
    rows = figures.rho_sweep(
        "lastfm_like",
        rhos=(0.1, 1.0),
        num_advertisers=2,
        evaluation_rr_sets=400,
        seed=3,
        base=tiny_base,
    )
    assert [row["rho"] for row in rows] == [0.1, 1.0]


def test_subsim_sweep_smoke(tiny_base):
    rows = figures.subsim_sweep(
        "lastfm_like",
        alphas=(0.1,),
        algorithms=("OneBatchRM",),
        num_advertisers=2,
        evaluation_rr_sets=400,
        seed=3,
        base=tiny_base,
    )
    assert rows[0]["generator"] == "SUBSIM"


def test_unknown_dataset_rejected():
    from repro.exceptions import ExperimentError

    with pytest.raises(ExperimentError):
        figures.prepare_base("unknown_dataset")
