"""Tests for graph builders and conversions."""

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graph.builders import from_edge_array, from_edge_list, from_networkx, to_networkx


class TestFromEdgeList:
    def test_infers_num_nodes(self):
        graph = from_edge_list([(0, 3)])
        assert graph.num_nodes == 4

    def test_explicit_num_nodes(self):
        graph = from_edge_list([(0, 1)], num_nodes=10)
        assert graph.num_nodes == 10

    def test_num_nodes_too_small_raises(self):
        with pytest.raises(GraphError):
            from_edge_list([(0, 5)], num_nodes=3)

    def test_undirected_adds_both_directions(self):
        graph = from_edge_list([(0, 1)], undirected=True)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)

    def test_empty_edge_list(self):
        graph = from_edge_list([])
        assert graph.num_nodes == 0
        assert graph.num_edges == 0


class TestFromEdgeArray:
    def test_matches_edge_list_builder(self):
        a = from_edge_array([0, 1], [1, 2])
        b = from_edge_list([(0, 1), (1, 2)])
        assert a == b

    def test_undirected(self):
        graph = from_edge_array([0], [1], undirected=True)
        assert graph.num_edges == 2


class TestNetworkxConversion:
    def test_directed_roundtrip(self):
        nx_graph = nx.DiGraph([(0, 1), (1, 2), (2, 0)])
        graph = from_networkx(nx_graph)
        assert graph.num_nodes == 3
        assert graph.num_edges == 3
        back = to_networkx(graph)
        assert set(back.edges()) == set(nx_graph.edges())

    def test_undirected_graph_becomes_bidirectional(self):
        nx_graph = nx.Graph([(0, 1)])
        graph = from_networkx(nx_graph)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)

    def test_non_integer_labels_rejected(self):
        nx_graph = nx.DiGraph([("a", "b")])
        with pytest.raises(GraphError):
            from_networkx(nx_graph)

    def test_self_loops_dropped(self):
        nx_graph = nx.DiGraph([(0, 0), (0, 1)])
        graph = from_networkx(nx_graph)
        assert graph.num_edges == 1

    def test_isolated_nodes_preserved(self):
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(range(5))
        nx_graph.add_edge(0, 1)
        graph = from_networkx(nx_graph)
        assert graph.num_nodes == 5
