"""Tests for the CSR directed graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph.builders import from_edge_list
from repro.graph.digraph import CSRDiGraph


class TestConstruction:
    def test_basic_counts(self, path_graph):
        assert path_graph.num_nodes == 4
        assert path_graph.num_edges == 3

    def test_empty_graph(self):
        graph = CSRDiGraph(3, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert graph.num_nodes == 3
        assert graph.num_edges == 0

    def test_zero_node_graph(self):
        graph = CSRDiGraph(0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert graph.num_nodes == 0

    def test_rejects_self_loops(self):
        with pytest.raises(GraphError):
            CSRDiGraph(2, np.array([0]), np.array([0]))

    def test_rejects_out_of_range_endpoints(self):
        with pytest.raises(GraphError):
            CSRDiGraph(2, np.array([0]), np.array([5]))

    def test_rejects_negative_endpoints(self):
        with pytest.raises(GraphError):
            CSRDiGraph(2, np.array([-1]), np.array([1]))

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(GraphError):
            CSRDiGraph(3, np.array([0, 1]), np.array([1]))

    def test_deduplicates_parallel_edges(self):
        graph = from_edge_list([(0, 1), (0, 1), (0, 1)])
        assert graph.num_edges == 1

    def test_rejects_negative_num_nodes(self):
        with pytest.raises(GraphError):
            CSRDiGraph(-1, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


class TestAdjacency:
    def test_out_neighbors(self, star_graph):
        assert set(star_graph.out_neighbors(0).tolist()) == {1, 2, 3, 4}
        assert star_graph.out_neighbors(1).size == 0

    def test_in_neighbors(self, star_graph):
        assert star_graph.in_neighbors(1).tolist() == [0]
        assert star_graph.in_neighbors(0).size == 0

    def test_degrees(self, star_graph):
        assert star_graph.out_degree(0) == 4
        assert star_graph.in_degree(0) == 0
        assert star_graph.in_degree(3) == 1

    def test_degree_arrays_match_scalar_access(self, diamond_graph):
        out_degrees = diamond_graph.out_degrees()
        in_degrees = diamond_graph.in_degrees()
        for node in diamond_graph.nodes():
            assert out_degrees[node] == diamond_graph.out_degree(node)
            assert in_degrees[node] == diamond_graph.in_degree(node)

    def test_edge_ids_align_with_canonical_order(self, diamond_graph):
        sources = diamond_graph.sources
        targets = diamond_graph.targets
        for node in diamond_graph.nodes():
            for neighbor, edge_id in zip(
                diamond_graph.out_neighbors(node), diamond_graph.out_edge_ids(node)
            ):
                assert sources[edge_id] == node
                assert targets[edge_id] == neighbor
            for neighbor, edge_id in zip(
                diamond_graph.in_neighbors(node), diamond_graph.in_edge_ids(node)
            ):
                assert targets[edge_id] == node
                assert sources[edge_id] == neighbor

    def test_has_edge(self, path_graph):
        assert path_graph.has_edge(0, 1)
        assert not path_graph.has_edge(1, 0)

    def test_node_out_of_range_raises(self, path_graph):
        with pytest.raises(GraphError):
            path_graph.out_neighbors(99)


class TestTransformations:
    def test_reverse_swaps_directions(self, path_graph):
        reverse = path_graph.reverse()
        assert reverse.has_edge(1, 0)
        assert not reverse.has_edge(0, 1)
        assert reverse.num_edges == path_graph.num_edges

    def test_double_reverse_is_identity(self, diamond_graph):
        assert diamond_graph.reverse().reverse() == diamond_graph

    def test_subgraph_keeps_internal_edges(self, diamond_graph):
        sub = diamond_graph.subgraph([0, 1, 3])
        assert sub.num_nodes == 3
        # relabel: 0->0, 1->1, 3->2 ; edges kept: (0,1), (1,3)
        assert sub.num_edges == 2
        assert sub.has_edge(0, 1)
        assert sub.has_edge(1, 2)

    def test_subgraph_invalid_node_raises(self, diamond_graph):
        with pytest.raises(GraphError):
            diamond_graph.subgraph([0, 99])

    def test_subgraph_duplicate_node_ids_are_deduplicated(self, diamond_graph):
        # Regression: duplicated ids must not inflate the node count or
        # change the relabelling.
        sub = diamond_graph.subgraph([0, 1, 1, 3, 0])
        assert sub.num_nodes == 3
        assert sub == diamond_graph.subgraph([0, 1, 3])

    def test_equality(self, path_graph):
        same = from_edge_list([(0, 1), (1, 2), (2, 3)])
        assert path_graph == same

    def test_repr_mentions_sizes(self, path_graph):
        assert "num_nodes=4" in repr(path_graph)


@settings(max_examples=50, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda e: e[0] != e[1]),
        max_size=60,
    )
)
def test_csr_roundtrip_preserves_edge_set(edges):
    """Building a CSR graph preserves exactly the de-duplicated edge set."""
    graph = from_edge_list(edges, num_nodes=16)
    expected = {(u, v) for u, v in edges}
    actual = set(graph.edges())
    assert actual == expected
    # In/out degree sums both equal the number of edges.
    assert int(graph.out_degrees().sum()) == len(expected)
    assert int(graph.in_degrees().sum()) == len(expected)
