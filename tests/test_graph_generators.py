"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.generators import (
    erdos_renyi_digraph,
    power_law_configuration_digraph,
    preferential_attachment_digraph,
    small_world_digraph,
)


class TestErdosRenyi:
    def test_zero_probability_gives_no_edges(self):
        graph = erdos_renyi_digraph(50, 0.0, seed=1)
        assert graph.num_edges == 0

    def test_edge_count_near_expectation(self):
        graph = erdos_renyi_digraph(100, 0.05, seed=1)
        expected = 100 * 99 * 0.05
        assert 0.4 * expected < graph.num_edges < 1.6 * expected

    def test_reproducible(self):
        a = erdos_renyi_digraph(40, 0.1, seed=5)
        b = erdos_renyi_digraph(40, 0.1, seed=5)
        assert a == b

    def test_invalid_probability_rejected(self):
        with pytest.raises(GraphError):
            erdos_renyi_digraph(10, 1.5)

    def test_no_self_loops(self):
        graph = erdos_renyi_digraph(30, 0.2, seed=2)
        assert all(u != v for u, v in graph.edges())


class TestPreferentialAttachment:
    def test_sizes(self):
        graph = preferential_attachment_digraph(200, out_degree=4, seed=3)
        assert graph.num_nodes == 200
        assert graph.num_edges > 200

    def test_heavy_tailed_in_degrees(self):
        graph = preferential_attachment_digraph(400, out_degree=4, seed=3, reciprocity=0.0)
        in_degrees = graph.in_degrees()
        # A hub should accumulate far more than the mean in-degree.
        assert in_degrees.max() > 5 * in_degrees.mean()

    def test_reciprocity_increases_mutual_edges(self):
        low = preferential_attachment_digraph(150, 3, seed=1, reciprocity=0.0)
        high = preferential_attachment_digraph(150, 3, seed=1, reciprocity=0.9)
        def mutual(graph):
            edges = set(graph.edges())
            return sum(1 for u, v in edges if (v, u) in edges)
        assert mutual(high) > mutual(low)

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            preferential_attachment_digraph(0, 3)
        with pytest.raises(GraphError):
            preferential_attachment_digraph(10, 0)


class TestSmallWorld:
    def test_all_nodes_have_edges(self):
        graph = small_world_digraph(100, nearest_neighbors=4, rewire_probability=0.1, seed=2)
        degrees = graph.out_degrees() + graph.in_degrees()
        assert (degrees > 0).all()

    def test_no_rewiring_gives_ring_lattice(self):
        graph = small_world_digraph(20, nearest_neighbors=2, rewire_probability=0.0, seed=2)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(19, 0)

    def test_invalid_neighbors(self):
        with pytest.raises(GraphError):
            small_world_digraph(10, nearest_neighbors=10, rewire_probability=0.1)


class TestPowerLawConfiguration:
    def test_sizes_and_mean_degree(self):
        graph = power_law_configuration_digraph(500, mean_degree=8.0, seed=4)
        assert graph.num_nodes == 500
        mean_degree = graph.num_edges / 500
        assert 4.0 < mean_degree < 12.0

    def test_in_degree_skew(self):
        graph = power_law_configuration_digraph(800, mean_degree=10.0, seed=4)
        in_degrees = graph.in_degrees()
        assert in_degrees.max() > 8 * max(1.0, float(np.median(in_degrees)))

    def test_reproducible(self):
        a = power_law_configuration_digraph(100, seed=9)
        b = power_law_configuration_digraph(100, seed=9)
        assert a == b

    def test_invalid_exponent(self):
        with pytest.raises(GraphError):
            power_law_configuration_digraph(10, exponent=0.5)
