"""Tests for edge-list IO and graph statistics."""

import pytest

from repro.exceptions import GraphError
from repro.graph.builders import from_edge_list
from repro.graph.generators import preferential_attachment_digraph
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import compute_stats


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path, diamond_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(diamond_graph, path, header="diamond")
        loaded = read_edge_list(path)
        assert loaded == diamond_graph

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_self_loops_skipped_on_read(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 0\n0 1\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1

    def test_undirected_read(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n")
        graph = read_edge_list(path, undirected=True)
        assert graph.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_non_integer_endpoint_raises(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphError):
            read_edge_list(path)


class TestStats:
    def test_basic_counts(self, diamond_graph):
        stats = compute_stats(diamond_graph)
        assert stats.num_nodes == 4
        assert stats.num_edges == 4
        assert stats.max_out_degree == 2
        assert stats.max_in_degree == 2

    def test_reciprocity_of_mutual_pair(self):
        graph = from_edge_list([(0, 1), (1, 0), (1, 2)])
        stats = compute_stats(graph)
        assert stats.reciprocity == pytest.approx(2 / 3)

    def test_isolated_fraction(self):
        graph = from_edge_list([(0, 1)], num_nodes=4)
        stats = compute_stats(graph)
        assert stats.fraction_isolated == pytest.approx(0.5)

    def test_wcc_fraction_connected_graph(self, path_graph):
        stats = compute_stats(path_graph)
        assert stats.largest_wcc_fraction == pytest.approx(1.0)

    def test_wcc_fraction_two_components(self):
        graph = from_edge_list([(0, 1), (2, 3), (3, 4)])
        stats = compute_stats(graph)
        assert stats.largest_wcc_fraction == pytest.approx(3 / 5)

    def test_as_row_keys(self, diamond_graph):
        row = compute_stats(diamond_graph).as_row()
        assert {"nodes", "edges", "mean_out_degree", "reciprocity"} <= set(row)

    def test_stats_on_generated_graph(self):
        graph = preferential_attachment_digraph(120, 3, seed=2)
        stats = compute_stats(graph)
        assert stats.largest_wcc_fraction > 0.9
        assert stats.mean_out_degree > 1.0
